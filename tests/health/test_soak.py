"""Chaos-soak harness: composition determinism, invariants, minimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.health import soak


class TestCompose:
    def test_composition_is_seed_deterministic(self):
        for seed in range(16):
            assert soak.compose(seed, 4) == soak.compose(seed, 4)
        assert any(
            soak.compose(s, 4) != soak.compose(s + 1, 4) for s in range(8)
        )

    def test_every_component_appears_somewhere(self):
        kinds = set()
        for seed in range(64):
            kinds.update(soak.compose(seed, 4))
        assert {"crash", "delay", "flap", "partition"} <= kinds

    def test_drop_never_composed_with_crash(self):
        # A lost agreement mask would split the removal vote; the
        # composer keeps these two apart on purpose.
        for seed in range(128):
            comp = soak.compose(seed, 4)
            assert not ("drop" in comp and "crash" in comp)


class TestMaterialize:
    def test_crash_lands_at_a_collective_entry(self):
        ranks = 4
        comp = {"crash": {"round": soak.CRASH_ROUND}}
        plan = soak.materialize(comp, ranks, seed=0)
        at_op = plan.crash_step(ranks - 1)
        # Entry of a collective: a multiple of the flat exchange's
        # n-1 data-plane ops, so no survivor holds the contribution.
        assert at_op == soak.CRASH_ROUND * (ranks - 1)

    def test_payload_is_integer_valued(self):
        vec = soak._payload(3, 7, 64)
        assert np.array_equal(vec, np.trunc(vec))


class TestRunRound:
    @pytest.mark.parametrize("seed", [2, 3])
    def test_fixed_crash_seeds_are_clean(self, seed):
        # Seeds whose composition is a pure entry-of-collective crash:
        # the full detect -> confirm -> checkpoint -> shrink -> replay
        # pipeline must hold every invariant.
        comp = soak.compose(seed, 4)
        assert comp == {"crash": {"round": soak.CRASH_ROUND}}
        violations = soak.run_round(
            comp, seed=seed, ranks=4, rounds=3, elements=64,
            backend="threaded",
        )
        assert violations == []


class TestMinimize:
    def test_minimizer_strips_irrelevant_components(self, monkeypatch):
        # Pretend only the crash component matters: the minimizer must
        # strip everything else and keep reproducing the failure.
        def fake_run_round(comp, *args, **kwargs):
            return ["boom"] if "crash" in comp else []

        monkeypatch.setattr(soak, "run_round", fake_run_round)
        comp = {
            "crash": {"round": 1},
            "delay": {"rank": 0, "seconds": 0.01},
            "jitter": {"amplitude": 0.001},
        }
        minimized = soak.minimize(
            comp, seed=0, ranks=4, rounds=3, elements=64, backend="threaded"
        )
        assert minimized == {"crash": {"round": 1}}
