"""End-to-end self-heal acceptance: crash -> confirm -> shrink -> replay.

The ``supervised_crash`` scenario kills the last rank at the entry of a
later collective.  With zero operator calls, the detector confirms the
death, the supervisor checkpoints at the boundary and shrinks, and the
survivors' subsequent collectives must be bit-identical to a native
world of the surviving size running the same steps — on both backends.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Communicator
from repro.core.policy import ConsistencyPolicy
from repro.faults import FaultPlan, RankCrashedError
from repro.faults.scenarios import get_scenario
from repro.gaspi import BACKENDS, run_backend
from repro.health import SupervisorPolicy, supervise

DEGRADED = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")
N, STEPS, ELEMS = 4, 5, 128
CRASH_STEP = 1  # supervised_crash dies entering its 2nd collective
LINGER = 2.5


def _payload(rank, step):
    # Integer-valued on purpose: the tolerant exchange folds in arrival
    # order, so only exactly-representable sums are bitwise comparable.
    return np.arange(ELEMS, dtype=np.float64) + rank * 1000.0 + step * 17.0


def _supervised_worker(runtime, plan):
    comm = Communicator(runtime, faults=plan, detect_timeout=0.5)
    sup, det = supervise(
        comm, policy=SupervisorPolicy(confirm_timeout=5.0), period=0.02
    )
    blobs, sizes = [], []
    crashed = False
    try:
        for step in range(STEPS):
            try:
                out = sup.communicator.allreduce(
                    _payload(sup.communicator.rank, step), policy=DEGRADED
                )
            except RankCrashedError:
                crashed = True
                return None
            blobs.append(out.copy())
            sizes.append(sup.communicator.size)
        return {
            "incidents": sup.incidents,
            "world": sup.world_ranks,
            "sizes": sizes,
            "post": np.concatenate(blobs[CRASH_STEP + 1:]).tobytes(),
        }
    finally:
        sup.close()
        if not crashed:
            time.sleep(LINGER)
        det.stop()
        child = sup.communicator
        child.close()
        if child is not comm:
            comm.close()


def _native_worker(runtime):
    # The reference: a world born at the surviving size running the same
    # post-crash steps (same payloads, same degraded policy, no faults).
    comm = Communicator(runtime, faults=FaultPlan.none(), detect_timeout=0.5)
    try:
        blobs = [
            comm.allreduce(_payload(comm.rank, step), policy=DEGRADED).copy()
            for step in range(CRASH_STEP + 1, STEPS)
        ]
        return np.concatenate(blobs).tobytes()
    finally:
        comm.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_selfheal_end_to_end(backend):
    plan = get_scenario("supervised_crash").plan(N, seed=1)
    results = run_backend(
        N, _supervised_worker, plan, backend=backend, timeout=120.0
    )
    survivors = [r for r in results if r is not None]
    assert len(survivors) == N - 1  # the victim crashed, nobody else

    for r in survivors:
        assert r["incidents"] == 1
        assert r["world"] == tuple(range(N - 1))
        assert r["sizes"][0] == N
        assert r["sizes"][-1] == N - 1

    # Survivors agree bitwise among themselves...
    posts = {r["post"] for r in survivors}
    assert len(posts) == 1
    # ...and with a native world of the surviving size.
    native = run_backend(
        N - 1, _native_worker, backend=backend, timeout=120.0
    )
    assert set(native) == posts
