"""Recovery supervisor: escalation, quorum guard, flap tolerance."""

from __future__ import annotations

import numpy as np

from repro import Communicator
from repro.core.policy import ConsistencyPolicy
from repro.faults import FaultPlan, RankCrashedError
from repro.gaspi import run_spmd
from repro.health import SupervisorPolicy, supervise

DEGRADED = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")
ELEMS = 64


def _payload(rank, step):
    return np.arange(ELEMS, dtype=np.float64) + rank * 1000.0 + step * 17.0


# How long a finished rank keeps its detector beating so stragglers (a
# flapped world can run a detection window out of phase) do not read the
# shutdown as a death.  Mirrors repro.health.soak.SOAK_LINGER.
LINGER = 2.5


def _supervised_loop(runtime, plan, steps):
    """Run ``steps`` supervised allreduces; report the world's fate."""
    import time

    comm = Communicator(runtime, faults=plan, detect_timeout=1.0)
    sup, det = supervise(
        comm, policy=SupervisorPolicy(confirm_timeout=10.0), period=0.02
    )
    sizes = []
    crashed = False
    try:
        for step in range(steps):
            try:
                sup.communicator.allreduce(
                    _payload(sup.communicator.rank, step), policy=DEGRADED
                )
            except RankCrashedError:
                crashed = True
                return None
            sizes.append(sup.communicator.size)
        return {
            "state": sup.state,
            "incidents": sup.incidents,
            "world": sup.world_ranks,
            "sizes": sizes,
        }
    finally:
        sup.close()
        if not crashed:
            time.sleep(LINGER)
        det.stop()
        child = sup.communicator
        child.close()
        if child is not comm:
            comm.close()


class TestSupervisedCrash:
    def test_entry_crash_heals_exactly_once(self):
        n, steps = 4, 4
        # Victim dies at the entry of its second collective: no survivor
        # holds its contribution, so all trigger at the same boundary.
        plan = FaultPlan(crash_at={n - 1: n - 1}, seed=3)
        results = [
            r for r in run_spmd(n, _supervised_loop, plan, steps, timeout=90.0)
            if r is not None
        ]
        assert len(results) == n - 1
        for r in results:
            assert r["incidents"] == 1
            assert r["world"] == tuple(range(n - 1))
            # One degraded step at the crash boundary, then full strength
            # in the shrunk world.
            assert r["sizes"][0] == n
            assert r["sizes"][-1] == n - 1


class TestQuorumGuard:
    def test_no_heal_without_surviving_majority(self):
        # Two of four die: the two survivors are not a strict majority of
        # the old world, so the supervisor must refuse to shrink (a
        # symmetric partition would otherwise split-brain) and stay
        # degraded instead.
        n, steps = 4, 4
        plan = FaultPlan(crash_at={2: n - 1, 3: n - 1}, seed=3)
        results = [
            r for r in run_spmd(n, _supervised_loop, plan, steps, timeout=90.0)
            if r is not None
        ]
        assert len(results) == 2
        for r in results:
            assert r["incidents"] == 0
            assert r["world"] == tuple(range(n))
            assert all(size == n for size in r["sizes"])


class TestFlapTolerance:
    def test_transient_silence_does_not_shrink_the_world(self):
        # One rank's outbound data-plane messages black-hole for a
        # window, then flow again; its heartbeats never stop.  The
        # boundary sees it missing, but the confirm gate resolves it
        # alive — no heal, no eviction.
        n, steps = 4, 4
        victim = 0
        plan = FaultPlan(
            drop_links=frozenset(
                (victim, peer) for peer in range(n) if peer != victim
            ),
            drop_window=(n - 1, 2 * (n - 1)),  # exactly its 2nd collective
            seed=3,
        )
        results = [
            r for r in run_spmd(n, _supervised_loop, plan, steps, timeout=90.0)
            if r is not None
        ]
        assert len(results) == n
        for r in results:
            assert r["incidents"] == 0
            assert r["world"] == tuple(range(n))
            assert all(size == n for size in r["sizes"])
