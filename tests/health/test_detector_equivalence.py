"""Backend equivalence: the same fault plan yields the same verdicts.

The detector's *timing* differs between a threaded world and forked shm
processes (process start-up skew can even cause a transient suspicion
that resolves right back to alive), but the verdict it *settles* on —
which peers end confirmed dead, and that a death was seen as
suspect-then-confirm — is a function of the fault plan, not the
backend.  That eventual agreement is exactly what the supervisor's
confirm gate consumes.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.faults.injection import FaultyRuntime
from repro.gaspi import BACKENDS, run_backend
from repro.health import HeartbeatDetector

PERIOD = 0.01


def _observe_world(runtime, plan_kwargs, settle):
    import time

    plan = FaultPlan(**plan_kwargs)
    faulty = FaultyRuntime(runtime, plan)
    with HeartbeatDetector(faulty, period=PERIOD) as det:
        deadline = time.monotonic() + settle
        while time.monotonic() < deadline:
            time.sleep(PERIOD)
        # The plan-determined signature is the verdict each peer settles
        # on.  Suspicion episodes that resolved back to alive (start-up
        # skew, scheduling stalls) are timing noise, so only the events
        # after the last reinstate count.
        out = {}
        for peer in range(faulty.size):
            if peer == faulty.rank:
                continue
            kinds = [e.kind for e in det.events_for(peer)]
            while "reinstate" in kinds:
                kinds = kinds[kinds.index("reinstate") + 1:]
            out[peer] = (kinds, det.state(peer))
        return faulty.rank, out


def _signature(backend, plan_kwargs, *, num_ranks=3, settle=1.5):
    results = run_backend(
        num_ranks, _observe_world, plan_kwargs, settle,
        backend=backend, timeout=60.0,
    )
    victims = set(plan_kwargs.get("crash_at", {}))
    return {
        rank: verdicts
        for rank, verdicts in results
        if rank not in victims  # a dead rank's view is not defined
    }


CASES = [
    pytest.param({}, id="healthy"),
    pytest.param({"crash_at": {2: 0}}, id="crash"),
    pytest.param({"crash_at": {2: 0}, "delay": {1: 0.002}}, id="crash+delay"),
]


@pytest.mark.parametrize("plan_kwargs", CASES)
def test_same_plan_same_verdicts_across_backends(plan_kwargs):
    signatures = {
        backend: _signature(backend, plan_kwargs) for backend in BACKENDS
    }
    reference = signatures[BACKENDS[0]]
    for backend, sig in signatures.items():
        assert sig == reference, (
            f"backend {backend} disagrees with {BACKENDS[0]}: "
            f"{sig} != {reference}"
        )


def test_crash_signature_is_the_expected_one():
    sig = _signature("threaded", {"crash_at": {2: 0}})
    assert set(sig) == {0, 1}
    for verdicts in sig.values():
        kinds, state = verdicts[2]
        assert kinds == ["suspect", "confirm"]
        assert state == "confirmed"
        for peer, (peer_kinds, peer_state) in verdicts.items():
            if peer != 2:
                assert peer_kinds == []
                assert peer_state == "alive"
