"""Heartbeat detector behavior in detector-only worlds.

These worlds run *no* collectives: each rank starts a detector on a
:class:`FaultyRuntime` and watches its peers.  With zero data-plane ops,
the detector interprets a rank's ``crash_at`` step in the beat domain
(beats sent), so deaths and flaps can be scripted purely by plan.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.faults.injection import FaultyRuntime
from repro.gaspi import run_spmd
from repro.health import ALIVE, CONFIRMED, HeartbeatDetector

PERIOD = 0.01


def detector_world(plan, body, *, num_ranks=3, timeout=60.0, **kwargs):
    """SPMD world where each rank runs only a detector and ``body``."""

    def worker(runtime):
        faulty = FaultyRuntime(runtime, plan)
        with HeartbeatDetector(faulty, period=PERIOD, **kwargs) as det:
            return body(det, faulty)

    return run_spmd(num_ranks, worker, timeout=timeout)


class TestHealthyWorld:
    def test_no_events_and_all_alive(self):
        plan = FaultPlan.none()

        def body(det, faulty):
            import time

            time.sleep(0.5)
            peers = [p for p in range(faulty.size) if p != faulty.rank]
            return (
                [e.kind for e in det.events],
                all(det.state(p) == ALIVE for p in peers),
            )

        for kinds, all_alive in detector_world(plan, body):
            assert kinds == []
            assert all_alive


class TestCrash:
    def test_dead_rank_is_suspected_then_confirmed(self):
        victim = 2
        plan = FaultPlan(crash_at={victim: 0})

        def body(det, faulty):
            if faulty.rank == victim:
                return None
            assert det.wait_for("confirm", victim, timeout=30.0)
            kinds = [e.kind for e in det.events_for(victim)]
            return kinds, det.state(victim), sorted(det.confirmed())

        results = [r for r in detector_world(plan, body) if r is not None]
        assert len(results) == 2
        for kinds, state, confirmed in results:
            assert kinds[:2] == ["suspect", "confirm"]
            assert state == CONFIRMED
            assert confirmed == [victim]

    def test_survivors_never_suspect_each_other(self):
        victim = 2
        plan = FaultPlan(crash_at={victim: 0})

        def body(det, faulty):
            if faulty.rank == victim:
                return None
            det.wait_for("confirm", victim, timeout=30.0)
            others = [
                p for p in range(faulty.size)
                if p not in (faulty.rank, victim)
            ]
            return [det.state(p) for p in others]

        for states in detector_world(plan, body):
            if states is not None:
                assert all(s == ALIVE for s in states)


class TestFlap:
    def test_flapping_rank_is_reinstated_when_beats_resume(self):
        # Rank 0's beats to everyone are dropped for a bounded window,
        # then flow again: peers must suspect during the silence and
        # reinstate (clearing suspicion, counting a flap) on resumption —
        # regardless of how deep the suspicion got meanwhile.  This is
        # the property the supervisor's confirm gate relies on.
        victim, num_ranks = 0, 3
        links = frozenset(
            (victim, peer) for peer in range(num_ranks) if peer != victim
        )
        plan = FaultPlan(drop_links=links, drop_window=(5, 25))

        def body(det, faulty):
            if faulty.rank == victim:
                import time

                time.sleep(2.0)
                return None
            assert det.wait_for("suspect", victim, timeout=30.0)
            assert det.wait_for("reinstate", victim, timeout=30.0)
            return (
                [e.kind for e in det.events_for(victim)],
                det.state(victim),
                det.flaps(victim),
            )

        results = [
            r
            for r in detector_world(plan, body, num_ranks=num_ranks)
            if r is not None
        ]
        assert len(results) == 2
        for kinds, state, flaps in results:
            assert kinds[0] == "suspect"
            assert "reinstate" in kinds
            assert state == ALIVE
            assert flaps >= 1


class TestSubscriptions:
    def test_listener_sees_the_same_events(self):
        victim = 1
        plan = FaultPlan(crash_at={victim: 0})

        def body(det, faulty):
            if faulty.rank == victim:
                return None
            seen = []
            det.subscribe(lambda event: seen.append(event.kind))
            det.wait_for("confirm", victim, timeout=30.0)
            return seen

        for seen in detector_world(plan, body, num_ranks=2):
            if seen is not None:
                assert seen[:2] == ["suspect", "confirm"]

    def test_wait_for_times_out_cleanly(self):
        plan = FaultPlan.none()

        def body(det, faulty):
            return det.wait_for("confirm", (faulty.rank + 1) % 2, timeout=0.2)

        assert detector_world(plan, body, num_ranks=2) == [None, None]


class TestValidation:
    def test_bad_thresholds_rejected(self):
        def body(det, faulty):  # pragma: no cover - never reached
            return None

        with pytest.raises(Exception):
            detector_world(
                FaultPlan.none(), body, num_ranks=2,
                suspect_phi=5.0, confirm_phi=2.0,
            )
