"""Phi-accrual estimator model behavior (pure, no runtime)."""

from __future__ import annotations

import pytest

from repro.health import PhiAccrualEstimator


def beat_regularly(est: PhiAccrualEstimator, start: float, n: int, dt: float):
    t = start
    for _ in range(n):
        est.heartbeat(t)
        t += dt
    return t - dt  # time of the last beat


class TestPhiAccrual:
    def test_no_history_means_no_suspicion(self):
        est = PhiAccrualEstimator(0.02)
        assert est.phi(123.0) == 0.0

    def test_phi_grows_monotonically_with_silence(self):
        est = PhiAccrualEstimator(0.02)
        last = beat_regularly(est, 0.0, 10, 0.02)
        phis = [est.phi(last + s) for s in (0.05, 0.1, 0.2, 0.5, 1.0)]
        assert phis == sorted(phis)
        assert phis[-1] > 6.0  # outright silence confirms

    def test_acceptable_pause_absorbs_benign_hiccups(self):
        strict = PhiAccrualEstimator(0.02, acceptable_pause=0.0)
        lax = PhiAccrualEstimator(0.02, acceptable_pause=0.5)
        last = beat_regularly(strict, 0.0, 10, 0.02)
        beat_regularly(lax, 0.0, 10, 0.02)
        assert strict.phi(last + 0.2) > 2.0
        assert lax.phi(last + 0.2) < 0.5

    def test_phi_stays_finite(self):
        est = PhiAccrualEstimator(0.02)
        last = beat_regularly(est, 0.0, 10, 0.02)
        assert est.phi(last + 1e6) <= 30.0 + 1e-9

    def test_bootstrap_window_is_generous(self):
        est = PhiAccrualEstimator(0.02)
        est.heartbeat(0.0)  # one sample: still bootstrapping
        assert est.samples == 0
        assert est.phi(0.15) < PhiAccrualEstimator(0.02, min_std=0.001).phi(0.15) + 5

    def test_min_std_floors_overconfidence(self):
        # A metronomic sender has ~zero variance; without the floor, a
        # tiny delay would spike phi to the cap.
        est = PhiAccrualEstimator(0.02, min_std=0.01)
        last = beat_regularly(est, 0.0, 50, 0.02)
        assert est.phi(last + 0.13) < 10.0

    def test_reset_drops_the_silence_from_the_window(self):
        est = PhiAccrualEstimator(0.02)
        last = beat_regularly(est, 0.0, 10, 0.02)
        # Long silence, then the peer comes back: reset re-anchors.
        est.reset(last + 5.0)
        assert est.samples == 0
        assert est.phi(last + 5.0 + 0.02) < 0.5
        # Without reset, the 5 s gap would have poisoned the mean; a new
        # regular cadence re-establishes fast detection.
        last2 = beat_regularly(est, last + 5.0, 10, 0.02)
        assert est.phi(last2 + 0.5) > 3.0

    def test_validation(self):
        with pytest.raises(Exception):
            PhiAccrualEstimator(0.0)
        with pytest.raises(Exception):
            PhiAccrualEstimator(0.02, min_std=0.0)
