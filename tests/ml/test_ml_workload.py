"""Tests of the ML workload: datasets, MF model, distributed SGD."""

import numpy as np
import pytest

from repro.ml import (
    DistributedSGDConfig,
    MatrixFactorizationModel,
    iterations_to_target,
    movielens_like,
    rmse,
    run_distributed_sgd,
    run_slack_sweep,
    synthetic_ratings,
    time_to_target,
    train_test_split,
)


class TestDatasets:
    def test_synthetic_shape_and_range(self):
        ds = synthetic_ratings(num_users=100, num_items=50, num_ratings=2000, seed=1)
        assert ds.num_users == 100 and ds.num_items == 50
        assert ds.num_ratings <= 2000
        assert np.all(ds.ratings >= 0.5) and np.all(ds.ratings <= 5.0)
        assert ds.users.max() < 100 and ds.items.max() < 50
        assert 0.0 < ds.density <= 1.0

    def test_deterministic_for_seed(self):
        a = synthetic_ratings(seed=3)
        b = synthetic_ratings(seed=3)
        c = synthetic_ratings(seed=4)
        assert np.array_equal(a.ratings, b.ratings)
        assert not np.array_equal(a.ratings, c.ratings)

    def test_no_duplicate_pairs(self):
        ds = synthetic_ratings(num_users=30, num_items=20, num_ratings=500, seed=0)
        keys = ds.users.astype(np.int64) * ds.num_items + ds.items
        assert len(np.unique(keys)) == len(keys)

    def test_sharding_partitions_all_ratings(self):
        ds = movielens_like("small")
        shards = [ds.shard(4, i) for i in range(4)]
        assert sum(s.num_ratings for s in shards) == ds.num_ratings
        assert abs(shards[0].num_ratings - shards[3].num_ratings) <= 1

    def test_presets(self):
        small = movielens_like("small")
        medium = movielens_like("medium")
        assert medium.num_ratings > small.num_ratings
        with pytest.raises(ValueError):
            movielens_like("huge")

    def test_train_test_split(self):
        ds = movielens_like("small")
        train, test = train_test_split(ds, test_fraction=0.2, seed=1)
        assert train.num_ratings + test.num_ratings == ds.num_ratings
        assert test.num_ratings == pytest.approx(0.2 * ds.num_ratings, rel=0.05)


class TestMatrixFactorizationModel:
    def test_flat_roundtrip(self):
        model = MatrixFactorizationModel.initialize(10, 6, 4, seed=0)
        flat = model.get_flat()
        assert flat.size == model.num_parameters == 10 * 4 + 6 * 4
        clone = MatrixFactorizationModel.initialize(10, 6, 4, seed=99)
        clone.set_flat(flat)
        assert np.allclose(clone.user_factors, model.user_factors)
        assert np.allclose(clone.item_factors, model.item_factors)

    def test_same_seed_same_model(self):
        a = MatrixFactorizationModel.initialize(8, 8, 4, seed=5)
        b = MatrixFactorizationModel.initialize(8, 8, 4, seed=5)
        assert np.array_equal(a.get_flat(), b.get_flat())

    def test_gradient_matches_finite_differences(self):
        ds = synthetic_ratings(num_users=12, num_items=8, num_ratings=60, seed=2)
        model = MatrixFactorizationModel.initialize(12, 8, 3, seed=1, regularization=0.0)
        grad = model.gradient_flat(ds)
        flat = model.get_flat()
        eps = 1e-6
        rng = np.random.default_rng(0)
        for idx in rng.choice(flat.size, size=6, replace=False):
            probe = model.copy()
            plus = flat.copy()
            plus[idx] += eps
            probe.set_flat(plus)
            loss_plus = np.mean(
                (probe.predict(ds.users, ds.items) - ds.ratings) ** 2
            )
            minus = flat.copy()
            minus[idx] -= eps
            probe.set_flat(minus)
            loss_minus = np.mean(
                (probe.predict(ds.users, ds.items) - ds.ratings) ** 2
            )
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert grad[idx] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_gradient_descent_reduces_rmse(self):
        ds = movielens_like("small", seed=0)
        model = MatrixFactorizationModel.initialize(ds.num_users, ds.num_items, 8, seed=0)
        before = model.rmse(ds)
        for _ in range(30):
            model.apply_update(model.gradient_flat(ds), learning_rate=10.0)
        assert model.rmse(ds) < before * 0.8

    def test_empty_shard_gradient_is_regularisation_only(self):
        ds = synthetic_ratings(num_users=10, num_items=5, num_ratings=20, seed=0)
        empty = ds.subset(np.array([], dtype=int))
        model = MatrixFactorizationModel.initialize(10, 5, 2, seed=0)
        grad = model.gradient_flat(empty)
        assert np.all(grad == 0.0)

    def test_shape_validation(self):
        model = MatrixFactorizationModel.initialize(4, 4, 2)
        with pytest.raises(ValueError):
            model.set_flat(np.zeros(3))
        with pytest.raises(ValueError):
            model.apply_update(np.zeros(3), 0.1)


class TestMetrics:
    def test_rmse(self):
        assert rmse(np.array([1.0, 2.0]), np.array([1.0, 4.0])) == pytest.approx(np.sqrt(2.0))
        with pytest.raises(ValueError):
            rmse(np.zeros(2), np.zeros(3))

    def test_time_and_iterations_to_target(self):
        times = [1.0, 2.0, 3.0]
        errors = [0.9, 0.5, 0.2]
        assert time_to_target(times, errors, 0.5) == 2.0
        assert time_to_target(times, errors, 0.1) is None
        assert iterations_to_target(errors, 0.5) == 2


class TestDistributedSGD:
    def test_single_worker_matches_serial(self):
        ds = movielens_like("small", seed=0)
        config = DistributedSGDConfig(
            num_workers=1, iterations=10, base_compute_time=0.0, perturbation="none", seed=0
        )
        results = run_distributed_sgd(ds, config)
        serial = MatrixFactorizationModel.initialize(ds.num_users, ds.num_items, 8, seed=0)
        for _ in range(10):
            serial.apply_update(serial.gradient_flat(ds), config.learning_rate)
        assert results[0].final_rmse == pytest.approx(serial.rmse(ds), rel=1e-9)

    def test_ssp_and_ring_converge(self):
        ds = movielens_like("small", seed=0)
        initial = MatrixFactorizationModel.initialize(ds.num_users, ds.num_items, 8, seed=0).rmse(ds)
        for algorithm in ("ssp", "ring"):
            config = DistributedSGDConfig(
                num_workers=4,
                iterations=12,
                algorithm=algorithm,
                slack=1,
                base_compute_time=0.0005,
                perturbation="none",
                seed=0,
            )
            results = run_distributed_sgd(ds, config)
            assert len(results) == 4
            assert results[0].final_rmse < initial
            assert all(len(w.records) == 12 for w in results)

    def test_staleness_bounded_by_slack(self):
        ds = movielens_like("small", seed=0)
        config = DistributedSGDConfig(
            num_workers=4,
            iterations=10,
            slack=2,
            base_compute_time=0.001,
            perturbation="linear:1.7",
            seed=0,
        )
        results = run_distributed_sgd(ds, config)
        for w in results:
            assert w.staleness.max_staleness <= 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DistributedSGDConfig(algorithm="bsp")
        with pytest.raises(ValueError):
            DistributedSGDConfig(num_workers=0)

    def test_slack_sweep_reports_all_requested_slacks(self):
        ds = movielens_like("small", seed=0)
        config = DistributedSGDConfig(
            num_workers=4,
            iterations=8,
            base_compute_time=0.001,
            perturbation="linear:1.8",
            seed=0,
        )
        sweep = run_slack_sweep(ds, [0, 2], config)
        assert set(sweep) == {0, 2}
        for entry in sweep.values():
            assert entry.mean_iterations_per_second > 0
            assert entry.final_rmse > 0
        # with a straggler profile, slack must not slow iterations down
        assert (
            sweep[2].mean_iterations_per_second
            >= sweep[0].mean_iterations_per_second * 0.9
        )


class TestOverlappingGradientExchange:
    """The ring_overlap algorithm: bucketed nonblocking gradient allreduce."""

    def test_ring_overlap_trains_like_ring(self):
        from repro.ml.sgd import DistributedSGDConfig, run_distributed_sgd

        ds = synthetic_ratings(num_users=40, num_items=25, num_ratings=600, seed=2)
        base = dict(
            num_workers=4,
            iterations=4,
            base_compute_time=0.0,
            perturbation="none",
            seed=5,
        )
        ring = run_distributed_sgd(ds, DistributedSGDConfig(algorithm="ring", **base))
        overlap = run_distributed_sgd(
            ds,
            DistributedSGDConfig(algorithm="ring_overlap", overlap_buckets=3, **base),
        )
        # The exchange sums the same gradients (bucketed, possibly
        # different fold orders within the ring) -> same training result
        # up to floating-point round-off.
        assert overlap[0].final_rmse == pytest.approx(ring[0].final_rmse, rel=1e-9)
        for r, o in zip(ring, overlap):
            assert len(r.records) == len(o.records)

    def test_overlap_demo_runs_and_matches(self):
        from repro.ml.sgd import run_overlap_demo

        result = run_overlap_demo(
            num_workers=2,
            buckets=3,
            bucket_elements=512,
            compute_time=0.002,
            iterations=2,
        )
        assert result.blocking_seconds > 0
        assert result.overlapped_seconds > 0
        assert result.results_match  # bit-identical reduced gradients
