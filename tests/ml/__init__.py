"""Test package."""
