"""The fault-experiment sweeps in repro.bench.faults."""

from __future__ import annotations

import math

import pytest

from repro.bench.faults import (
    crash_sweep,
    elasticity_sweep,
    measure_crash_errors,
    skew_sweep,
)


class TestCrashSweep:
    def test_simulated_time_falls_with_crash_count(self):
        result = crash_sweep(
            num_ranks=8, crash_counts=(0, 1, 2), measure_errors=False
        )
        rows = result["rows"]
        assert [r["crashes"] for r in rows] == [0, 1, 2]
        times = [r["simulated_us"] for r in rows]
        assert times[2] < times[1] < times[0]
        assert "crash count" in result["table"]

    def test_threaded_errors_and_correction(self):
        rows = measure_crash_errors(
            num_ranks=4, crash_counts=(0, 1), elements=128, threshold=0.5
        )
        by_crashes = {r["crashes"]: r for r in rows}
        assert by_crashes[0]["degraded_error"] < 1e-12
        assert by_crashes[0]["missing"] == 0
        assert by_crashes[1]["missing"] == 1
        assert by_crashes[1]["contributors"] == 3
        assert by_crashes[1]["degraded_error"] > 1e-3
        assert by_crashes[1]["corrected_error"] < 1e-12

    def test_infeasible_crash_count_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            measure_crash_errors(num_ranks=4, crash_counts=(4,), threshold=0.75)


class TestElasticitySweep:
    def test_measures_shrink_and_respawn_times(self):
        result = elasticity_sweep(rank_counts=(4,), elements=256)
        rows = result["rows"]
        assert [r["ranks"] for r in rows] == [4]
        assert rows[0]["time_to_shrink_s"] > 0
        assert rows[0]["time_to_respawn_s"] > 0
        assert not math.isnan(rows[0]["time_to_shrink_s"])
        assert "shrink" in result["table"]

    def test_rejects_single_rank(self):
        with pytest.raises(ValueError, match="2 ranks"):
            elasticity_sweep(rank_counts=(1,))


class TestSkewSweep:
    def test_completion_grows_with_skew(self):
        result = skew_sweep(num_ranks=8, skews_us=(0.0, 100.0, 1000.0))
        times = [r["simulated_us"] for r in result["rows"]]
        assert times == sorted(times)
        assert times[-1] > times[0]
        assert not any(math.isnan(t) for t in times)

    def test_scenario_shapes_differ(self):
        sorted_t = skew_sweep(num_ranks=8, skews_us=(500.0,), scenario="sorted_arrival")
        random_t = skew_sweep(num_ranks=8, skews_us=(500.0,), scenario="random_arrival")
        assert sorted_t["rows"][0]["simulated_us"] > 0
        assert random_t["rows"][0]["simulated_us"] > 0
