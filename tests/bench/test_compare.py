"""Benchmark report diffing (:mod:`repro.bench.compare`)."""

from __future__ import annotations

import pytest

from repro.bench.compare import (
    compare_documents,
    compare_reports,
    format_comparison,
    main,
    record_key,
)
from repro.bench.harness import BenchRecord, write_json_report


def _report(path, rows):
    records = [
        BenchRecord(
            benchmark="micro",
            metric="latency_seconds",
            value=value,
            collective=collective,
            algorithm=algorithm,
            payload_bytes=nbytes,
            mode=mode,
        )
        for collective, algorithm, nbytes, mode, value in rows
    ]
    return write_json_report(str(path), records, benchmark="micro")


class TestCompare:
    def test_matched_records_report_ratio(self, tmp_path):
        old = _report(
            tmp_path / "old.json",
            [("bcast", "bst", 1024, "cached", 2e-4)],
        )
        new = _report(
            tmp_path / "new.json",
            [("bcast", "bst", 1024, "cached", 1e-4)],
        )
        result = compare_documents(old, new)
        assert result["summary"]["matched"] == 1
        assert result["summary"]["added"] == 0
        assert result["matched"][0]["ratio"] == pytest.approx(2.0)
        assert result["summary"]["geomean_ratio"] == pytest.approx(2.0)

    def test_added_and_removed_records_listed_not_failed(self, tmp_path):
        old = _report(
            tmp_path / "old.json",
            [
                ("bcast", "bst", 1024, "cached", 2e-4),
                ("reduce", "bst", 1024, "cached", 3e-4),
            ],
        )
        new = _report(
            tmp_path / "new.json",
            [
                ("bcast", "bst", 1024, "cached", 1e-4),
                ("allreduce", "ring_pipelined", 262144, "pipelined", 5e-4),
            ],
        )
        result = compare_documents(old, new)
        assert result["summary"]["matched"] == 1
        assert result["summary"]["added"] == 1
        assert result["summary"]["removed"] == 1
        assert result["added"][0]["algorithm"] == "ring_pipelined"

    def test_format_comparison_prints_new_and_removed_sections(self, tmp_path):
        """Rows present in only one report (e.g. a fresh shm sweep against
        an old threaded-only baseline) render as dedicated sections."""
        old = _report(
            tmp_path / "old.json",
            [
                ("bcast", "bst", 1024, "cached", 2e-4),
                ("reduce", "bst", 1024, "cached", 3e-4),
            ],
        )
        new = _report(
            tmp_path / "new.json",
            [
                ("bcast", "bst", 1024, "cached", 1e-4),
                ("bcast", "bst", 1024, "cached@shm", 9e-5),
                ("allreduce", "ring", 262144, "cached@shm", 5e-4),
            ],
        )
        result = compare_documents(old, new)
        text = format_comparison(result, "old.json", "new.json")
        assert "new records (only in the new report)" in text
        assert "removed records (only in the old report)" in text
        assert "cached@shm" in text
        assert "matched 1, added 2, removed 1" in text

    def test_format_comparison_omits_empty_sections(self, tmp_path):
        old = _report(tmp_path / "old.json", [("bcast", "bst", 1024, "cold", 2e-4)])
        new = _report(tmp_path / "new.json", [("bcast", "bst", 1024, "cold", 1e-4)])
        text = format_comparison(compare_documents(old, new), "old.json", "new.json")
        assert "new records" not in text
        assert "removed records" not in text

    def test_record_key_uses_identity_fields_only(self):
        a = {"benchmark": "micro", "metric": "latency_seconds", "collective": "bcast",
             "algorithm": "bst", "payload_bytes": 1024, "mode": "cached",
             "value": 1.0, "extra": {"x": 1}}
        b = dict(a, value=2.0, extra={})
        assert record_key(a) == record_key(b)

    def test_compare_reports_round_trip_and_formatting(self, tmp_path):
        _report(tmp_path / "old.json", [("bcast", "bst", 1024, "cold", 4e-4)])
        _report(tmp_path / "new.json", [("bcast", "bst", 1024, "cold", 2e-4)])
        result = compare_reports(
            str(tmp_path / "old.json"), str(tmp_path / "new.json")
        )
        text = format_comparison(result, "old.json", "new.json")
        assert "matched 1" in text
        assert "geomean" in text

    def test_cli_is_report_only(self, tmp_path, capsys):
        _report(tmp_path / "old.json", [("bcast", "bst", 1024, "cold", 1e-4)])
        _report(tmp_path / "new.json", [("bcast", "bst", 1024, "cold", 9e-4)])
        # A 9x regression still exits 0: timings never fail the build.
        assert main([str(tmp_path / "old.json"), str(tmp_path / "new.json")]) == 0
        assert "speedup old/new" in capsys.readouterr().out

    def test_schema_mismatch_is_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/v0", "records": []}')
        _report(tmp_path / "ok.json", [("bcast", "bst", 1024, "cold", 1e-4)])
        with pytest.raises(ValueError):
            compare_reports(str(bad), str(tmp_path / "ok.json"))
