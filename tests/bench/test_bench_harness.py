"""Tests of the benchmark harness, statistics and report rendering."""

import pytest

from repro.bench import (
    TimingExperiment,
    confidence_interval_95,
    format_comparison,
    format_series_table,
    run_node_sweep,
    run_size_sweep,
    series_to_rows,
    summarize,
    time_algorithm,
)
from repro.bench.harness import crossover_point
from repro.bench.stats import geometric_mean
from repro.simulate import skylake_fdr


class TestStats:
    def test_summarize_basic(self):
        m = summarize([1.0, 2.0, 3.0])
        assert m.mean == pytest.approx(2.0)
        assert m.count == 3
        assert m.minimum == 1.0 and m.maximum == 3.0
        assert m.lower < m.mean < m.upper

    def test_single_sample_has_zero_ci(self):
        m = summarize([5.0])
        assert m.ci95 == 0.0 and m.std == 0.0

    def test_ci_shrinks_with_more_samples(self):
        wide = confidence_interval_95([1.0, 3.0])
        narrow = confidence_interval_95([1.0, 3.0] * 20)
        assert narrow < wide

    def test_empty_summarize_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestHarness:
    def _experiment(self):
        return TimingExperiment(
            name="t",
            machine=skylake_fdr(),
            algorithms={"gaspi": "gaspi_allreduce_ring", "mpi": "mpi_allreduce_default"},
        )

    def test_time_algorithm_positive(self):
        t = time_algorithm("gaspi_allreduce_ring", 8, 80_000, skylake_fdr(8))
        assert t > 0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            time_algorithm("nope", 8, 100, skylake_fdr(8))

    def test_node_sweep_structure(self):
        series = run_node_sweep(self._experiment(), [2, 4, 8], 80_000)
        assert set(series) == {"gaspi", "mpi"}
        assert [p.parameter for p in series["gaspi"]] == [2, 4, 8]
        assert all(p.seconds > 0 for p in series["mpi"])

    def test_size_sweep_structure(self):
        series = run_size_sweep(self._experiment(), [8_000, 80_000], 8)
        assert [p.payload_bytes for p in series["gaspi"]] == [8_000, 80_000]
        # time grows with message size
        assert series["gaspi"][1].seconds > series["gaspi"][0].seconds

    def test_threshold_kwargs_change_results(self):
        exp = TimingExperiment(
            name="t",
            machine=skylake_fdr(),
            algorithms={"a": "gaspi_bcast_bst", "b": "gaspi_bcast_bst"},
            algorithm_kwargs={"a": {"threshold": 0.25}, "b": {"threshold": 1.0}},
        )
        series = run_node_sweep(exp, [16], 8_000_000)
        assert series["a"][0].seconds < series["b"][0].seconds

    def test_crossover_point(self):
        series = run_size_sweep(
            self._experiment(), [8 * 1024, 8 * 131072, 8 * 2_097_152], 16
        )
        crossover = crossover_point(series["gaspi"], series["mpi"])
        assert crossover is not None
        assert crossover > 8 * 1024  # gaspi does not win at tiny sizes


class TestReport:
    def _series(self):
        return run_node_sweep(
            TimingExperiment(
                name="t",
                machine=skylake_fdr(),
                algorithms={"gaspi": "gaspi_allreduce_ring", "mpi": "mpi_allreduce_default"},
            ),
            [2, 4],
            80_000,
        )

    def test_series_to_rows(self):
        rows = series_to_rows(self._series())
        assert len(rows) == 4
        assert {"algorithm", "parameter", "seconds"} <= set(rows[0])

    def test_format_series_table_contains_labels(self):
        text = format_series_table(self._series(), "nodes", "us", title="demo")
        assert "demo" in text and "gaspi" in text and "mpi" in text
        assert "us" in text

    def test_format_comparison(self):
        text = format_comparison(self._series(), "gaspi")
        assert "relative to 'gaspi'" in text
        with pytest.raises(KeyError):
            format_comparison(self._series(), "missing")


class TestExperimentsSmallScale:
    def test_fig08_structure(self):
        from repro.bench.experiments import fig08_bcast

        result = fig08_bcast("small", elements=10_000)
        assert result["figure"] == "fig08"
        assert "25% gaspi" in result["series"]
        assert len(result["series"]) == 6

    def test_fig11_includes_all_variants(self):
        from repro.bench.experiments import fig11_allreduce_nodes

        result = fig11_allreduce_nodes("small", elements=10_000)
        assert "gaspi" in result["series"]
        assert sum(1 for k in result["series"] if k.startswith("mpi")) == 12

    def test_fig12_reports_crossovers(self):
        from repro.bench.experiments import fig12_allreduce_sizes

        result = fig12_allreduce_sizes("small")
        assert result["crossover_bytes"]
        assert any(v is not None for v in result["crossover_bytes"].values())

    def test_fig13_structure(self):
        from repro.bench.experiments import fig13_alltoall

        result = fig13_alltoall("small")
        assert set(result["series"]) == {4, 8}
        assert result["series"][4]["crossover_bytes"] is not None

    def test_invalid_scale_rejected(self):
        from repro.bench.experiments import fig08_bcast

        with pytest.raises(ValueError):
            fig08_bcast("huge")
