"""Test package."""
