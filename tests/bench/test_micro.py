"""Micro-benchmark sweep: record shape, schema round-trip, CLI smoke."""

from __future__ import annotations

import json

from repro.bench.harness import BENCH_SCHEMA, load_json_report
from repro.bench.micro import (
    backend_comparison,
    main,
    run_micro_sweep,
    time_collective,
    time_threaded_collective,
)


def test_time_threaded_collective_reports_cached_hits():
    cached = time_threaded_collective(
        "allreduce", "ring", 1024, ranks=2, iterations=3, warmup=2
    )
    cold = time_threaded_collective(
        "allreduce", "ring", 1024, ranks=2, iterations=3, warmup=2, plan_cache=0
    )
    assert cached["latency_seconds"] > 0
    assert cold["latency_seconds"] > 0
    assert cached["algorithm"] == "gaspi_allreduce_ring"
    assert cached["plan_hits"] >= 3  # every measured iteration hit the plan
    assert cold["plan_hits"] == 0


def test_run_micro_sweep_covers_modes_and_sizes():
    cases = [("bcast", "bst"), ("allreduce", "ring")]
    sizes = [256, 1024]
    records, summary = run_micro_sweep(
        cases, sizes, ranks=2, iterations=2, warmup=1
    )
    assert len(records) == len(cases) * len(sizes) * 2  # cold + cached
    assert {r.mode for r in records} == {"cold", "cached"}
    assert {r.payload_bytes for r in records} == set(sizes)
    assert all(r.metric == "latency_seconds" and r.value > 0 for r in records)
    assert all(r.extra["throughput_bytes_per_second"] > 0 for r in records)
    assert len(summary) == len(cases) * len(sizes)
    assert all(row["speedup"] > 0 for row in summary)


def test_per_rank_timing_reports_max_over_ranks():
    measured = time_collective("allreduce", "ring", 1024, ranks=2, iterations=2,
                               warmup=1)
    assert measured["latency_rank_min_seconds"] <= measured["latency_seconds"]
    assert (
        measured["latency_rank_min_seconds"]
        <= measured["latency_rank_mean_seconds"]
        <= measured["latency_seconds"]
    )


def test_shm_backend_sweep_records_are_tagged():
    records, summary = run_micro_sweep(
        [("allreduce", "ring")], [512], backend="shm", ranks=2,
        iterations=2, warmup=1,
    )
    assert {r.mode for r in records} == {"cold@shm", "cached@shm"}
    assert all(r.extra["backend"] == "shm" for r in records)
    assert summary[0]["backend"] == "shm"


def test_backend_comparison_pairs_cached_rows():
    summaries = {
        "threaded": [
            {"collective": "bcast", "algorithm": "gaspi_bcast_bst",
             "payload_bytes": 1024, "cached_us": 200.0, "cold_us": 400.0,
             "speedup": 2.0, "backend": "threaded"},
        ],
        "shm": [
            {"collective": "bcast", "algorithm": "gaspi_bcast_bst",
             "payload_bytes": 1024, "cached_us": 100.0, "cold_us": 500.0,
             "speedup": 5.0, "backend": "shm"},
            {"collective": "reduce", "algorithm": "gaspi_reduce_bst",
             "payload_bytes": 2048, "cached_us": 100.0, "cold_us": 500.0,
             "speedup": 5.0, "backend": "shm"},  # unmatched: dropped
        ],
    }
    rows = backend_comparison(summaries)
    assert len(rows) == 1
    assert rows[0]["shm_speedup"] == 2.0


def test_main_both_backends_writes_comparison(tmp_path):
    out = tmp_path / "bench-both.json"
    assert (
        main(
            [
                "--backend", "both",
                "--ranks", "2",
                "--sizes", "256",
                "--iterations", "2",
                "--warmup", "1",
                "--quick",
                "--skip-overlap",
                "--out", str(out),
            ]
        )
        == 0
    )
    document = load_json_report(str(out))
    assert document["meta"]["backends"] == ["threaded", "shm"]
    comparison = document["meta"]["backend_comparison"]
    assert comparison and all(row["shm_speedup"] > 0 for row in comparison)
    modes = {r["mode"] for r in document["records"]}
    assert "cached" in modes and "cached@shm" in modes


def test_main_writes_schema_stable_report(tmp_path):
    out = tmp_path / "bench.json"
    assert (
        main(
            [
                "--ranks",
                "2",
                "--sizes",
                "256",
                "--iterations",
                "2",
                "--warmup",
                "1",
                "--quick",
                "--skip-overlap",
                "--out",
                str(out),
            ]
        )
        == 0
    )
    document = load_json_report(str(out))
    assert document["schema"] == BENCH_SCHEMA
    assert document["benchmark"] == "micro"
    assert document["meta"]["sizes"] == [256]
    assert document["meta"]["min_speedup"] > 0
    modes = {(r["collective"], r["mode"]) for r in document["records"]}
    assert ("bcast", "cold") in modes and ("bcast", "cached") in modes
    assert ("reduce", "cached") in modes and ("allreduce", "cached") in modes
    # The file is plain JSON, loadable without any repro import.
    assert json.loads(out.read_text())["schema"] == BENCH_SCHEMA
