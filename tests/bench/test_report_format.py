"""Unit tests of the plain-text report rendering (bench/report.py)."""

from __future__ import annotations

import pytest

from repro.bench.harness import SweepPoint
from repro.bench.report import (
    format_comparison,
    format_kv_table,
    format_series_table,
    series_to_rows,
)


def _point(parameter, seconds, algorithm="algo", num_ranks=8, payload=1024):
    return SweepPoint(
        parameter=parameter,
        seconds=seconds,
        algorithm=algorithm,
        num_ranks=num_ranks,
        payload_bytes=payload,
    )


@pytest.fixture
def series():
    return {
        "gaspi": [_point(2, 1e-6, "gaspi"), _point(4, 2e-6, "gaspi")],
        "mpi": [_point(2, 2e-6, "mpi"), _point(4, 8e-6, "mpi")],
    }


class TestSeriesToRows:
    def test_flattens_every_point(self, series):
        rows = series_to_rows(series)
        assert len(rows) == 4
        assert {r["algorithm"] for r in rows} == {"gaspi", "mpi"}
        first = rows[0]
        assert set(first) == {
            "algorithm", "parameter", "num_ranks", "payload_bytes", "seconds",
        }

    def test_empty_series(self):
        assert series_to_rows({}) == []


class TestSeriesTable:
    def test_contains_header_rows_and_unit(self, series):
        table = format_series_table(series, "nodes", "us", title="Fig X")
        lines = table.splitlines()
        assert lines[0] == "Fig X"
        assert "nodes" in table and "gaspi" in table and "mpi" in table
        assert "(times in us)" in table
        # Both sweep parameters appear as row labels.
        assert any(line.strip().startswith("2 ") for line in lines)
        assert any(line.strip().startswith("4 ") for line in lines)

    def test_unit_scaling(self, series):
        us = format_series_table(series, "nodes", "us")
        ms = format_series_table(series, "nodes", "ms")
        assert "1.00" in us  # 1e-6 s -> 1.00 us
        assert "0.00" in ms  # 1e-6 s -> 0.001 ms, rendered at 2 decimals

    def test_missing_points_leave_blank_cells(self, series):
        series["mpi"] = series["mpi"][:1]  # drop the 4-node point
        table = format_series_table(series, "nodes", "us")
        four_row = [l for l in table.splitlines() if l.strip().startswith("4")][0]
        assert len(four_row.split()) == 2  # parameter + single surviving cell


class TestComparison:
    def test_ratios_relative_to_baseline(self, series):
        table = format_comparison(series, "gaspi")
        assert "relative to 'gaspi'" in table
        assert "2.00" in table  # mpi is 2x slower at 2 nodes
        assert "4.00" in table  # and 4x slower at 4 nodes

    def test_unknown_baseline_rejected(self, series):
        with pytest.raises(KeyError, match="not among"):
            format_comparison(series, "nope")


class TestKvTable:
    def test_alignment_and_float_formatting(self):
        rows = [
            {"crashes": 0, "error": 0.0},
            {"crashes": 2, "error": 0.46875},
        ]
        table = format_kv_table(rows, title="faults")
        lines = table.splitlines()
        assert lines[0] == "faults"
        assert lines[1].split() == ["crashes", "error"]
        assert "0.4688" in table  # floats rendered at 4 significant digits

    def test_empty_rows_render_title_only(self):
        assert format_kv_table([], title="empty") == "empty"
        assert format_kv_table([]) == ""
