"""The symbolic model: numerical fidelity and clean verification.

The model executes the *real* plan classes on an in-memory runtime, so a
planner bug shows up twice: as a wrong number here and as a finding in
the checkers.  Both directions are pinned — the modelled collectives must
compute the exact same results as the live backends, and every registered
plannable algorithm must verify with zero findings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import analyze, build_model, verify_algorithm
from repro.core.registry import REGISTRY

PLANNABLE = sorted(
    info.name for info in REGISTRY.items() if info.plannable
)


def _payload(name):
    """(nbytes, chunk_bytes) giving pipelined plans several chunks."""
    if REGISTRY.get(name).capabilities.pipelined:
        return 512, 128
    return 256, None


# --------------------------------------------------------------------------- #
# numerical fidelity
# --------------------------------------------------------------------------- #
def test_model_bcast_delivers_root_payload():
    run = build_model("gaspi_bcast_bst", 8, 256)
    for rank in range(1, 8):
        assert np.array_equal(run.sendbufs[rank], run.sendbufs[0])


def test_model_allreduce_sums_exactly():
    run = build_model("gaspi_allreduce_ring", 8, 256)
    expected = sum(
        np.arange(32, dtype=np.float64) + rank + 1 for rank in range(8)
    )
    for rank in range(8):
        assert np.allclose(run.recvbufs[rank], expected)


def test_model_reduce_sums_exactly_at_root():
    run = build_model("gaspi_reduce_bst", 8, 256)
    expected = sum(
        np.arange(32, dtype=np.float64) + rank + 1 for rank in range(8)
    )
    assert np.allclose(run.recvbufs[0], expected)


def test_model_pipelined_reduce_sums_exactly_at_root():
    run = build_model("gaspi_reduce_bst_pipelined", 8, 512, chunk_bytes=128)
    expected = sum(
        np.arange(64, dtype=np.float64) + rank + 1 for rank in range(8)
    )
    assert np.allclose(run.recvbufs[0], expected)


def test_model_nondefault_root():
    run = build_model("gaspi_bcast_bst", 8, 256, root=3)
    for rank in range(8):
        assert np.array_equal(run.sendbufs[rank], run.sendbufs[3])


# --------------------------------------------------------------------------- #
# clean verification
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("ranks", [4, 8])
@pytest.mark.parametrize("algorithm", PLANNABLE)
def test_every_plannable_algorithm_verifies_clean(algorithm, ranks):
    nbytes, chunk_bytes = _payload(algorithm)
    findings = verify_algorithm(
        algorithm, ranks, nbytes, chunk_bytes=chunk_bytes
    )
    assert findings == [], [finding.describe() for finding in findings]


def test_model_traces_carry_events():
    run = build_model("gaspi_allreduce_ring", 4, 256)
    assert run.trace.total_events() > 0
    assert run.trace.num_ranks == 4
    assert not run.stalled_ranks


def test_analyze_reports_trace_name():
    run = build_model("gaspi_bcast_bst", 4, 256)
    from repro.analysis.mutations import drop_notify

    findings = analyze(drop_notify(run.trace))
    assert findings
    for finding in findings:
        assert "gaspi_bcast_bst" in finding.trace


# --------------------------------------------------------------------------- #
# registry flag
# --------------------------------------------------------------------------- #
def test_verified_capability_matches_plannable():
    # Exactly the plannable algorithms are covered by the verifier; the
    # schedule-only and cold-path-only entries keep the default.
    for info in REGISTRY.items():
        assert info.capabilities.verified == bool(info.plannable), info.name
