"""TracingRuntime: real executions replayed through the static checkers.

The acceptance contract of the tracing path: a clean live run — real
threads, real notification boards, real interleavings — replays with no
findings through the same checkers that verify the symbolic model; an
injected protocol violation is caught.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import DOUBLE_POST, TraceSink, analyze
from repro.core.plan import PlanKey, policy_fingerprint
from repro.core.policy import CollectiveRequest, ConsistencyPolicy
from repro.core.registry import REGISTRY
from tests.helpers import spmd

SEGMENT = 29


def _run_traced(algorithm, collective, ranks, nbytes, calls=2):
    """Execute a planned collective twice under tracing wrappers."""
    sink = TraceSink(ranks)
    policy = ConsistencyPolicy()
    elements = nbytes // 8

    def worker(runtime):
        rt = runtime.traced(sink)
        info = REGISTRY.get(algorithm)
        key = PlanKey(
            collective=collective,
            algorithm=algorithm,
            size=ranks,
            root=0,
            nbytes=nbytes,
            dtype="<f8",
            op="sum",
            policy=policy_fingerprint(policy),
        )
        plan = info.plan(rt, key, SEGMENT, policy)
        sendbuf = np.arange(elements, dtype=np.float64) + rt.rank + 1
        recvbuf = np.zeros(elements, dtype=np.float64)
        for _ in range(calls):
            request = CollectiveRequest(
                collective=collective,
                sendbuf=sendbuf.copy(),
                recvbuf=recvbuf,
                policy=policy,
            )
            plan.execute(request)
        rt.barrier()
        plan.close()
        return recvbuf

    results = spmd(ranks, worker)
    return sink, results


def test_traced_threaded_run_agrees_with_the_model():
    # An 8-rank live threaded run of the planned ring allreduce, recorded
    # and replayed through the identical checkers the model uses: clean.
    sink, results = _run_traced("gaspi_allreduce_ring", "allreduce", 8, 256)
    expected = sum(
        np.arange(32, dtype=np.float64) + rank + 1 for rank in range(8)
    )
    for recvbuf in results:
        assert np.allclose(recvbuf, expected)
    trace = sink.trace(name="live allreduce_ring x2")
    assert trace.total_events() > 0
    findings = analyze(trace)
    assert findings == [], [finding.describe() for finding in findings]


def test_traced_bcast_run_is_clean():
    sink, _ = _run_traced("gaspi_bcast_bst", "bcast", 8, 256)
    findings = analyze(sink.trace(name="live bcast_bst x2"))
    assert findings == [], [finding.describe() for finding in findings]


def test_injected_double_post_is_caught():
    # Post the same notification id twice before the consume: the board
    # overwrites the unconsumed value — exactly the bug class the
    # double-post checker exists for.
    sink = TraceSink(2)

    def worker(runtime):
        rt = runtime.traced(sink)
        rt.segment_create(7, 64)
        rt.barrier()
        if rt.rank == 0:
            rt.notify(1, 7, 3)
            rt.notify(1, 7, 3)  # overwrite before any consume
            rt.wait(0)
        rt.barrier()
        if rt.rank == 1:
            assert rt.notify_waitsome(7, 3, 1) == 3
            rt.notify_reset(7, 3)
        rt.barrier()

    spmd(2, worker)
    findings = analyze(sink.trace(name="injected double post"))
    assert DOUBLE_POST in {finding.check for finding in findings}


def test_tracing_preserves_notify_drain_consumes():
    # The wrapper routes notify_drain through the base-class loop so each
    # reset is individually recorded: every drained id shows up.
    sink = TraceSink(2)

    def worker(runtime):
        rt = runtime.traced(sink)
        rt.segment_create(11, 64)
        rt.barrier()
        if rt.rank == 0:
            for nid in range(3):
                rt.notify(1, 11, nid)
            rt.wait(0)
        rt.barrier()
        got = {}
        if rt.rank == 1:
            got = rt.notify_drain(11, 0, 8)
            assert set(got) == {0, 1, 2}
        rt.barrier()
        return got

    spmd(2, worker)
    consumes = [
        event
        for event in sink.events[1]
        if event.kind == "consume" and event.segment == 11
    ]
    assert {event.notif_id for event in consumes} == {0, 1, 2}


def test_cli_single_algorithm_smoke(capsys):
    from repro.analysis.__main__ import main

    assert main(["--algorithm", "gaspi_bcast_bst", "--ranks", "4"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_json_output(capsys):
    import json

    from repro.analysis.__main__ import main

    assert main(
        ["--algorithm", "gaspi_allreduce_ring", "--ranks", "4", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_findings"] == 0
    assert payload["cells"]
