"""Seeded-mutation fixtures: each checker flags exactly its defect class.

Every test plants one deliberate protocol defect in a clean modelled
trace and asserts the *exact* set of finding classes the analyzers
report.  The sets are deterministic — the replay explores one canonical
adverse schedule — so a checker that goes silent on its own class, or
that starts misfiling defects under another class, fails here.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    BUDGET,
    DATA_RACE,
    DEADLOCK,
    DOUBLE_POST,
    UNMATCHED,
    analyze,
    build_model,
)
from repro.analysis.mutations import (
    corrupt_notification_id,
    corrupt_offset,
    drop_consumes,
    drop_notify,
    duplicate_chunk_id,
    hoist_first_consume,
)


def classes(findings):
    return {finding.check for finding in findings}


def test_clean_traces_have_no_findings():
    trace = build_model("gaspi_bcast_bst", 8, 256).trace
    assert analyze(trace) == []


def test_drop_notify_is_unmatched_notification():
    # A forgotten notify: the consumer waits on a slot nobody ever funds.
    trace = build_model("gaspi_bcast_bst", 8, 256).trace
    assert classes(analyze(drop_notify(trace))) == {UNMATCHED}


def test_hoisted_consume_deadlocks_the_ring():
    # Every rank waits before it sends: a full circular wait on the ring.
    trace = build_model("gaspi_allreduce_ring", 4, 256).trace
    assert classes(analyze(hoist_first_consume(trace))) == {DEADLOCK}


def test_duplicate_chunk_id_is_double_post():
    # Two chunks of one sender collide on one id: the shared slot is
    # overwritten before its consume, and the starved orphan slot leaves
    # the receiver blocked mid-pipeline.
    trace = build_model(
        "gaspi_bcast_bst_pipelined", 8, 512, chunk_bytes=128
    ).trace
    assert classes(analyze(duplicate_chunk_id(trace))) == {
        DOUBLE_POST,
        DEADLOCK,
    }


def test_shrunk_ack_handshake_is_double_post():
    # The flat broadcast root stops consuming its peers' acks — call 2
    # may then overwrite the data slot while call 1 is unconsumed, and
    # the unread acks starve.
    run = build_model("gaspi_bcast_flat", 4, 256)
    mutated = drop_consumes(run.trace, 0, run.plans[0].peer_ack_slots)
    assert classes(analyze(mutated)) == {DOUBLE_POST, UNMATCHED}


def test_dropped_ready_fence_is_a_data_race():
    # BST reduce: a child that skips the parent's READY fence pushes its
    # next call's partial into the parent's child slot while the parent
    # may still be folding the previous call — concurrent overlapping
    # writes to the same segment bytes.
    from repro.core.reduce import _NOTIF_READY_BASE

    run = build_model("gaspi_reduce_bst", 4, 256)
    mutated = drop_consumes(run.trace, 3, [_NOTIF_READY_BASE])
    found = classes(analyze(mutated))
    assert DATA_RACE in found
    assert found == {DATA_RACE, DOUBLE_POST}


def test_corrupt_notification_id_is_budget_only():
    # Both sides of the handshake agree on the wrong id, so the schedule
    # still matches — only the board-budget check can see the defect.
    trace = build_model("gaspi_bcast_bst", 8, 256).trace
    assert classes(analyze(corrupt_notification_id(trace))) == {BUDGET}


def test_corrupt_offset_is_budget_only():
    # The staging slice slides past the end of its workspace; matching,
    # ordering and destination ranges are untouched.
    trace = build_model("gaspi_bcast_bst", 8, 256).trace
    assert classes(analyze(corrupt_offset(trace))) == {BUDGET}


@pytest.mark.parametrize(
    "mutate",
    [drop_notify, hoist_first_consume, corrupt_notification_id, corrupt_offset],
)
def test_mutations_tag_the_trace_name(mutate):
    trace = build_model("gaspi_allreduce_ring", 4, 256).trace
    assert mutate.__name__ in mutate(trace).name
