"""Test package."""
