"""Tests of the network model, machine presets and schedule executor."""

import pytest

from repro.core.schedule import CommunicationSchedule, LocalCompute, Message, Protocol
from repro.simulate import (
    MachineModel,
    NetworkParameters,
    ScheduleExecutor,
    galileo,
    get_machine,
    marenostrum4,
    simulate_schedule,
    skylake_fdr,
)


class TestNetworkParameters:
    def test_wire_time_monotone_in_size(self):
        net = NetworkParameters()
        assert net.wire_time(1 << 20, False) > net.wire_time(1 << 10, False)

    def test_intra_node_cheaper_latency(self):
        net = NetworkParameters()
        assert net.wire_time(0, True) < net.wire_time(0, False)

    def test_rendezvous_above_eager_threshold(self):
        net = NetworkParameters(eager_threshold=1024)
        assert not net.twosided_cost(512, False).rendezvous
        assert net.twosided_cost(4096, False).rendezvous

    def test_twosided_more_expensive_than_onesided(self):
        net = NetworkParameters()
        for size in (64, 4096, 1 << 20):
            assert (
                net.twosided_cost(size, False).total_latency
                > net.onesided_cost(size, False).total_latency
            )

    def test_barrier_time_grows_with_ranks(self):
        net = NetworkParameters()
        assert net.barrier_time(64) > net.barrier_time(4) > net.barrier_time(1) == 0.0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetworkParameters(bandwidth=0)

    def test_scaled_copy(self):
        net = NetworkParameters()
        tuned = net.scaled(latency=5e-6)
        assert tuned.latency == 5e-6
        assert net.latency != 5e-6  # original untouched


class TestMachineModel:
    def test_presets_exist(self):
        for name in ("skylake_fdr", "marenostrum4", "galileo"):
            machine = get_machine(name)
            assert machine.name == name

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_machine("summit")

    def test_node_mapping(self):
        machine = galileo(4)  # 4 ranks per node
        assert machine.node_of(0) == 0
        assert machine.node_of(5) == 1
        assert machine.same_node(4, 7)
        assert not machine.same_node(3, 4)

    def test_with_ranks_resizes(self):
        machine = skylake_fdr(2).with_ranks(10)
        assert machine.num_nodes == 10
        machine2 = galileo(2).with_ranks(12, ranks_per_node=4)
        assert machine2.num_nodes == 3

    def test_total_ranks(self):
        assert galileo(8).total_ranks == 32

    def test_invalid_layout(self):
        with pytest.raises(ValueError):
            MachineModel("x", 0, 1, NetworkParameters())


class TestScheduleExecutor:
    def _two_rank_schedule(self, nbytes=1024, protocol=Protocol.ONESIDED):
        sched = CommunicationSchedule("t", 2)
        sched.add_round([Message(0, 1, nbytes, protocol)])
        return sched

    def test_single_message_cost_positive(self, machine32):
        result = simulate_schedule(self._two_rank_schedule(), machine32.with_ranks(2))
        assert result.total_time > 0
        assert len(result.rank_times) == 2

    def test_larger_messages_take_longer(self, machine32):
        machine = machine32.with_ranks(2)
        small = simulate_schedule(self._two_rank_schedule(1024), machine).total_time
        big = simulate_schedule(self._two_rank_schedule(1 << 22), machine).total_time
        assert big > small

    def test_setup_overhead_by_protocol(self, machine32):
        machine = machine32.with_ranks(2)
        one = simulate_schedule(self._two_rank_schedule(0), machine)
        two = simulate_schedule(self._two_rank_schedule(0, Protocol.TWOSIDED), machine)
        assert one.setup_time == machine.network.onesided_setup_overhead
        assert two.setup_time == machine.network.twosided_setup_overhead

    def test_setup_can_be_excluded(self, machine32):
        machine = machine32.with_ranks(2)
        result = ScheduleExecutor(machine).run(self._two_rank_schedule(), include_setup=False)
        assert result.setup_time == 0.0

    def test_rounds_serialise_per_rank(self, machine32):
        machine = machine32.with_ranks(2)
        one_round = CommunicationSchedule("a", 2)
        one_round.add_round([Message(0, 1, 1 << 20)])
        two_rounds = CommunicationSchedule("b", 2)
        two_rounds.add_round([Message(0, 1, 1 << 20)])
        two_rounds.add_round([Message(0, 1, 1 << 20)])
        assert (
            simulate_schedule(two_rounds, machine).total_time
            > simulate_schedule(one_round, machine).total_time
        )

    def test_injection_serialisation_for_fanout(self, machine32):
        machine = machine32.with_ranks(9)
        fan = CommunicationSchedule("fan", 9)
        fan.add_round([Message(0, dst, 1 << 20) for dst in range(1, 9)])
        single = CommunicationSchedule("one", 9)
        single.add_round([Message(0, 1, 1 << 20)])
        assert (
            simulate_schedule(fan, machine).total_time
            > simulate_schedule(single, machine).total_time * 2
        )

    def test_barrier_after_synchronises(self, machine32):
        machine = machine32.with_ranks(4)
        sched = CommunicationSchedule("b", 4)
        sched.add_round([Message(0, 1, 1 << 20)], barrier_after=True)
        result = simulate_schedule(sched, machine)
        # after a barrier every rank carries the same completion time
        assert max(result.rank_times) == pytest.approx(min(result.rank_times))
        assert result.barrier_time > 0

    def test_reduce_bytes_add_compute(self, machine32):
        machine = machine32.with_ranks(2)
        plain = CommunicationSchedule("p", 2)
        plain.add_round([Message(0, 1, 1 << 22)])
        reducing = CommunicationSchedule("r", 2)
        reducing.add_round([Message(0, 1, 1 << 22, reduce_bytes=1 << 22)])
        assert (
            simulate_schedule(reducing, machine).total_time
            > simulate_schedule(plain, machine).total_time
        )

    def test_local_compute_only_round(self, machine32):
        machine = machine32.with_ranks(2)
        sched = CommunicationSchedule("c", 2)
        sched.add_round(local_compute=[LocalCompute(1, 1 << 24)])
        result = simulate_schedule(sched, machine)
        assert result.rank_times[1] > result.rank_times[0]

    def test_intra_node_faster_than_inter_node(self):
        machine = galileo(2)  # 4 ranks per node
        intra = CommunicationSchedule("i", 8)
        intra.add_round([Message(0, 1, 1 << 20)])  # same node
        inter = CommunicationSchedule("x", 8)
        inter.add_round([Message(0, 4, 1 << 20)])  # different nodes
        assert (
            simulate_schedule(intra, machine, include_setup=False).total_time
            < simulate_schedule(inter, machine, include_setup=False).total_time
        )

    def test_trace_collection(self, machine32):
        machine = machine32.with_ranks(4)
        sched = CommunicationSchedule("t", 4)
        sched.add_round([Message(0, 1, 2048), Message(2, 3, 2048)])
        result = ScheduleExecutor(machine, collect_trace=True).run(sched)
        assert result.trace is not None
        assert len(result.trace) == 2
        assert result.trace.total_bytes() == 4096
        assert result.trace.bytes_by_rank() == {0: 2048, 2: 2048}
        assert 0.0 <= result.trace.rendezvous_fraction() <= 1.0

    def test_empty_schedule(self, machine32):
        sched = CommunicationSchedule("empty", 4)
        result = simulate_schedule(sched, machine32.with_ranks(4))
        assert result.total_time == 0.0

    def test_schedule_referencing_too_many_ranks_rejected(self, machine32):
        sched = CommunicationSchedule("bad", 2)
        sched.rounds.append(
            __import__("repro.core.schedule", fromlist=["Round"]).Round(
                messages=[Message(0, 3, 8)]
            )
        )
        with pytest.raises(ValueError):
            simulate_schedule(sched, machine32.with_ranks(2))
