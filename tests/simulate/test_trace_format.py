"""Unit tests of the trace recorder's summaries and the skew replay path."""

from __future__ import annotations

import pytest

from repro.core.schedule import Message, Protocol
from repro.simulate import simulate_schedule, skylake_fdr
from repro.simulate.trace import MessageTrace, TraceRecorder


def _record(recorder, round_index, src, dst, nbytes, inject, arrival, complete,
            rendezvous=False, intra=False, tag=""):
    recorder.record(
        round_index,
        Message(src=src, dst=dst, nbytes=nbytes, protocol=Protocol.ONESIDED, tag=tag),
        inject_time=inject,
        arrival_time=arrival,
        complete_time=complete,
        rendezvous=rendezvous,
        intra_node=intra,
    )


class TestMessageTrace:
    def test_derived_times(self):
        trace = MessageTrace(
            round_index=0, src=0, dst=1, nbytes=100,
            inject_time=1.0, arrival_time=3.0, complete_time=3.5,
            rendezvous=False, intra_node=True,
        )
        assert trace.transfer_time == pytest.approx(2.0)
        assert trace.receiver_time == pytest.approx(0.5)


class TestTraceRecorder:
    def test_disabled_recorder_records_nothing(self):
        recorder = TraceRecorder(enabled=False)
        _record(recorder, 0, 0, 1, 10, 0.0, 1.0, 2.0)
        assert len(recorder) == 0
        assert recorder.total_bytes() == 0

    def test_summaries(self):
        recorder = TraceRecorder()
        _record(recorder, 0, 0, 1, 100, 0.0, 1.0, 2.0, rendezvous=True, intra=True)
        _record(recorder, 0, 0, 2, 300, 0.0, 2.0, 3.0)
        _record(recorder, 1, 1, 2, 600, 2.0, 3.0, 9.0)
        assert len(recorder) == 3
        assert recorder.total_bytes() == 1000
        assert recorder.bytes_by_rank() == {0: 400, 1: 600}
        assert recorder.rendezvous_fraction() == pytest.approx(1 / 3)
        assert recorder.intra_node_fraction() == pytest.approx(1 / 3)

    def test_slowest_messages_ordering(self):
        recorder = TraceRecorder()
        _record(recorder, 0, 0, 1, 1, 0.0, 0.5, 1.0)   # 1.0 end-to-end
        _record(recorder, 0, 1, 2, 1, 0.0, 4.0, 5.0)   # 5.0 end-to-end
        _record(recorder, 0, 2, 3, 1, 0.0, 1.0, 2.5)   # 2.5 end-to-end
        slowest = recorder.slowest_messages(2)
        assert [(t.src, t.dst) for t in slowest] == [(1, 2), (2, 3)]

    def test_empty_recorder_fractions_are_zero(self):
        recorder = TraceRecorder()
        assert recorder.rendezvous_fraction() == 0.0
        assert recorder.intra_node_fraction() == 0.0
        assert recorder.slowest_messages() == []


class TestRankOffsets:
    """The executor's process-arrival-pattern support (``rank_offsets``)."""

    def _schedule(self):
        from repro.core.allreduce_ring import ring_allreduce_schedule

        return ring_allreduce_schedule(4, 4096)

    def test_offsets_shift_completion(self):
        machine = skylake_fdr(4)
        base = simulate_schedule(self._schedule(), machine).total_time
        skewed = simulate_schedule(
            self._schedule(), machine, rank_offsets=[0.0, 0.0, 0.0, 1.0]
        ).total_time
        assert skewed >= base + 1.0

    def test_offsets_length_validated(self):
        with pytest.raises(ValueError, match="one entry per rank"):
            simulate_schedule(
                self._schedule(), skylake_fdr(4), rank_offsets=[0.0, 0.0]
            )

    def test_negative_offsets_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            simulate_schedule(
                self._schedule(), skylake_fdr(4), rank_offsets=[0.0, -1.0, 0.0, 0.0]
            )

    def test_zero_offsets_match_default(self):
        machine = skylake_fdr(4)
        base = simulate_schedule(self._schedule(), machine)
        zeroed = simulate_schedule(
            self._schedule(), machine, rank_offsets=[0.0] * 4
        )
        assert base.total_time == zeroed.total_time
        assert zeroed.metadata["max_arrival_skew"] == 0.0
