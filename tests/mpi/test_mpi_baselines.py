"""Tests of the MPI baseline substrate: two-sided layer, functional
collectives and the schedules of the twelve Allreduce variants."""

import numpy as np
import pytest

from repro.core.schedule import Protocol
from repro.mpi import TwoSidedLayer, select_allreduce_variant, select_alltoall_variant
from repro.mpi.allreduce_variants import (
    VARIANTS,
    rabenseifner_schedule,
    recursive_doubling_allreduce,
    recursive_doubling_schedule,
    ring_allreduce_twosided,
    ring_schedule,
    shumilin_ring_schedule,
)
from repro.mpi.alltoall_variants import (
    bruck_alltoall_schedule,
    isend_irecv_alltoall_schedule,
    pairwise_alltoall_schedule,
    pairwise_alltoall_twosided,
)
from repro.mpi.bcast_variants import binomial_bcast_schedule, binomial_bcast_twosided, scatter_allgather_bcast_schedule
from repro.mpi.reduce_variants import binomial_reduce_schedule, binomial_reduce_twosided, reduce_scatter_gather_schedule
from repro.mpi.tuning import ALLREDUCE_VARIANT_LABELS, select_bcast_variant, select_reduce_variant

from tests.helpers import expected_sum, rank_vector, spmd


# --------------------------------------------------------------------------- #
# two-sided layer
# --------------------------------------------------------------------------- #
class TestTwoSidedLayer:
    def test_send_recv_roundtrip(self):
        def worker(rt):
            with TwoSidedLayer(rt, max_elements=64) as layer:
                if rt.rank == 0:
                    layer.send(np.arange(10.0), dest=1, tag=5)
                    return None
                payload, env = layer.recv(0, tag=5)
                assert env.source == 0 and env.tag == 5 and env.count == 10
                return payload

        results = spmd(2, worker)
        assert np.array_equal(results[1], np.arange(10.0))

    def test_tag_mismatch_raises(self):
        def worker(rt):
            with TwoSidedLayer(rt, max_elements=8) as layer:
                if rt.rank == 0:
                    layer.send(np.ones(2), dest=1, tag=3)
                    return True
                with pytest.raises(ValueError):
                    layer.recv(0, tag=9)
                return True

        assert all(spmd(2, worker))

    def test_sendrecv_exchange(self):
        def worker(rt):
            with TwoSidedLayer(rt, max_elements=4) as layer:
                partner = 1 - rt.rank
                got = layer.sendrecv(np.full(3, float(rt.rank)), partner, partner, tag=1)
                return got

        results = spmd(2, worker)
        assert np.all(results[0] == 1.0) and np.all(results[1] == 0.0)

    def test_message_too_large_rejected(self):
        def worker(rt):
            with TwoSidedLayer(rt, max_elements=4) as layer:
                if rt.rank == 0:
                    with pytest.raises(ValueError):
                        layer.send(np.ones(10), dest=1)
            return True

        spmd(2, worker)

    def test_multiple_messages_in_order(self):
        def worker(rt):
            with TwoSidedLayer(rt, max_elements=4) as layer:
                if rt.rank == 0:
                    for i in range(5):
                        layer.send(np.full(2, float(i)), dest=1, tag=i)
                    return None
                seen = []
                for i in range(5):
                    payload, env = layer.recv(0)
                    seen.append((env.tag, payload[0]))
                return seen

        results = spmd(2, worker)
        assert results[1] == [(i, float(i)) for i in range(5)]


# --------------------------------------------------------------------------- #
# functional MPI baselines (cross-validated against NumPy)
# --------------------------------------------------------------------------- #
class TestFunctionalBaselines:
    @pytest.mark.parametrize("num_ranks", [2, 4, 8])
    def test_recursive_doubling_allreduce(self, num_ranks):
        n = 33

        def worker(rt):
            with TwoSidedLayer(rt, max_elements=n) as layer:
                return recursive_doubling_allreduce(layer, rank_vector(rt.rank, n))

        results = spmd(num_ranks, worker)
        for out in results:
            assert np.allclose(out, expected_sum(num_ranks, n))

    @pytest.mark.parametrize("num_ranks", [2, 3, 5, 8])
    def test_ring_allreduce_twosided(self, num_ranks):
        n = 41

        def worker(rt):
            with TwoSidedLayer(rt, max_elements=n) as layer:
                return ring_allreduce_twosided(layer, rank_vector(rt.rank, n))

        results = spmd(num_ranks, worker)
        for out in results:
            assert np.allclose(out, expected_sum(num_ranks, n))

    @pytest.mark.parametrize("num_ranks", [2, 5, 8])
    def test_binomial_bcast_twosided(self, num_ranks):
        def worker(rt):
            buf = np.arange(16.0) if rt.rank == 0 else np.zeros(16)
            with TwoSidedLayer(rt, max_elements=16) as layer:
                binomial_bcast_twosided(layer, buf, root=0)
            return buf

        for buf in spmd(num_ranks, worker):
            assert np.array_equal(buf, np.arange(16.0))

    @pytest.mark.parametrize("num_ranks", [2, 6, 8])
    def test_binomial_reduce_twosided(self, num_ranks):
        n = 24

        def worker(rt):
            with TwoSidedLayer(rt, max_elements=n) as layer:
                return binomial_reduce_twosided(layer, rank_vector(rt.rank, n), root=0)

        results = spmd(num_ranks, worker)
        assert np.allclose(results[0], expected_sum(num_ranks, n))

    @pytest.mark.parametrize("num_ranks", [2, 4, 8])
    def test_pairwise_alltoall_twosided(self, num_ranks):
        block = 3

        def worker(rt):
            send = np.concatenate(
                [np.full(block, 10.0 * rt.rank + dst) for dst in range(rt.size)]
            )
            with TwoSidedLayer(rt, max_elements=block) as layer:
                return pairwise_alltoall_twosided(layer, send)

        results = spmd(num_ranks, worker)
        for rank, recv in enumerate(results):
            expected = np.concatenate(
                [np.full(block, 10.0 * src + rank) for src in range(num_ranks)]
            )
            assert np.array_equal(recv, expected)


# --------------------------------------------------------------------------- #
# schedules of the twelve variants
# --------------------------------------------------------------------------- #
class TestVariantSchedules:
    def test_all_twelve_variants_build_and_validate(self):
        assert len(VARIANTS) == 12
        assert set(VARIANTS) == set(ALLREDUCE_VARIANT_LABELS)
        for name, builder in VARIANTS.items():
            sched = builder(16, 8000, ranks_per_node=1)
            sched.validate()
            assert sched.total_messages() > 0, name
            assert all(m.protocol is Protocol.TWOSIDED for m in sched.messages()), name

    def test_recursive_doubling_round_count(self):
        sched = recursive_doubling_schedule(16, 800)
        assert sched.num_rounds == 4

    def test_recursive_doubling_handles_non_power_of_two(self):
        sched = recursive_doubling_schedule(12, 800)
        labels = [r.label for r in sched.rounds]
        assert labels[0] == "fold-in" and labels[-1] == "fold-out"

    def test_rabenseifner_moves_less_than_recursive_doubling(self):
        n = 1_000_000
        rd = recursive_doubling_schedule(32, n)
        rab = rabenseifner_schedule(32, n)
        assert rab.total_bytes() < rd.total_bytes()

    def test_ring_variants_structure(self):
        shum = shumilin_ring_schedule(8, 64_000)
        ring = ring_schedule(8, 64_000)
        assert sum(r.barrier_after for r in shum.rounds) == 1
        assert sum(r.barrier_after for r in ring.rounds) == 2

    def test_gather_scatter_messages_grow_with_subtree(self):
        sched = VARIANTS["mpi5_gather_scatter"](8, 1000)
        sizes = [m.nbytes for m in sched.messages() if m.tag.startswith("gather")]
        assert max(sizes) >= 4 * 1000

    def test_shm_variants_use_intra_node_rounds_when_multiple_ppn(self):
        sched = VARIANTS["mpi10_shm_flat"](16, 8000, ranks_per_node=4)
        labels = {r.label for r in sched.rounds}
        assert "shm-reduce" in labels and "shm-bcast" in labels


class TestOtherCollectiveSchedules:
    def test_binomial_bcast_vs_scatter_allgather_bytes(self):
        n = 8_000_000
        binom = binomial_bcast_schedule(32, n)
        vdg = scatter_allgather_bcast_schedule(32, n)
        # scatter+allgather moves far fewer bytes on the critical path
        assert vdg.bytes_sent_by(0) < binom.bytes_sent_by(0)

    def test_reduce_scatter_gather_less_root_traffic(self):
        n = 8_000_000
        binom = binomial_reduce_schedule(32, n)
        rsg = reduce_scatter_gather_schedule(32, n)
        assert rsg.bytes_received_by(0) < binom.bytes_received_by(0)

    def test_bruck_has_log_rounds(self):
        sched = bruck_alltoall_schedule(16, 64)
        assert sched.num_rounds == 4

    def test_pairwise_has_p_minus_1_rounds(self):
        sched = pairwise_alltoall_schedule(8, 1024)
        assert sched.num_rounds == 7

    def test_isend_irecv_single_round(self):
        sched = isend_irecv_alltoall_schedule(8, 1024)
        assert sched.num_rounds == 1
        assert sched.total_messages() == 56


class TestTuning:
    def test_allreduce_selection_by_size(self):
        small = select_allreduce_variant(32, 1024)
        large = select_allreduce_variant(32, 8 << 20)
        assert small.__name__ == "recursive_doubling_schedule"
        assert large.__name__ == "shumilin_ring_schedule"

    def test_bcast_selection(self):
        assert select_bcast_variant(32, 1024).__name__ == "binomial_bcast_schedule"
        assert select_bcast_variant(32, 8 << 20).__name__ == "scatter_allgather_bcast_schedule"

    def test_reduce_selection(self):
        assert select_reduce_variant(32, 1024).__name__ == "binomial_reduce_schedule"
        assert select_reduce_variant(32, 8 << 20).__name__ == "reduce_scatter_gather_schedule"

    def test_alltoall_selection(self):
        assert select_alltoall_variant(64, 128).__name__ == "bruck_alltoall_schedule"
        assert select_alltoall_variant(64, 32768).__name__ == "pairwise_alltoall_schedule"

    def test_default_schedules_record_selection(self):
        from repro.mpi.alltoall_variants import default_alltoall_schedule

        sched = default_alltoall_schedule(8, 64)
        assert sched.metadata["selected_by"] == "mpi_default_tuning"
