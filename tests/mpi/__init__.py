"""Test package."""
