"""Test package."""
