"""Shared test helpers, importable as :mod:`tests.helpers`.

These used to live in ``tests/conftest.py``, but importing helpers from a
conftest via relative imports breaks pytest's module loading ("attempted
relative import with no known parent package").  Keeping them in a proper
module lets every test package import them the same way::

    from tests.helpers import expected_sum, rank_vector, spmd
"""

from __future__ import annotations

import numpy as np

from repro.gaspi import run_spmd


def spmd(num_ranks, fn, *args, **kwargs):
    """Run an SPMD region with a CI-friendly timeout."""
    kwargs.setdefault("timeout", 60.0)
    return run_spmd(num_ranks, fn, *args, **kwargs)


def rank_vector(rank: int, n: int, dtype=np.float64) -> np.ndarray:
    """Deterministic per-rank test vector."""
    rng = np.random.default_rng(1000 + rank)
    return rng.standard_normal(n).astype(dtype)


def expected_sum(num_ranks: int, n: int, dtype=np.float64) -> np.ndarray:
    """Exact elementwise sum of every rank's :func:`rank_vector`."""
    total = np.zeros(n, dtype=np.float64)
    for r in range(num_ranks):
        total += rank_vector(r, n, dtype)
    return total.astype(dtype)
