"""The named fault-scenario catalog."""

from __future__ import annotations

import pytest

from repro.faults import SCENARIOS, get_scenario, scenario_names
from repro.faults.scenarios import DEFAULT_SKEW


class TestCatalog:
    def test_expected_scenarios_present(self):
        names = scenario_names()
        for required in (
            "single_crash",
            "double_crash",
            "late_crash",
            "rolling_stragglers",
            "sorted_arrival",
            "random_arrival",
            "partition_heal",
            "message_loss",
            "crash_then_shrink",
            "crash_then_respawn",
        ):
            assert required in names

    def test_unknown_scenario_lists_available(self):
        with pytest.raises(KeyError, match="single_crash"):
            get_scenario("nope")

    def test_every_scenario_materialises(self):
        for name in scenario_names():
            plan = SCENARIOS[name].plan(8, seed=1)
            assert plan.describe()  # non-empty even for pure-skew plans

    def test_descriptions_nonempty(self):
        assert all(s.description for s in SCENARIOS.values())


class TestCrashScenarios:
    def test_single_crash_kills_last_rank(self):
        plan = get_scenario("single_crash").plan(8)
        assert plan.crash_step(7) == 0
        assert plan.crash_step(0) is None

    def test_double_crash(self):
        plan = get_scenario("double_crash").plan(8)
        assert plan.crash_step(7) == 0 and plan.crash_step(6) == 0

    def test_late_crash_is_mid_collective(self):
        plan = get_scenario("late_crash").plan(8)
        assert 1 <= plan.crash_step(7) < 7

    def test_crash_then_shrink_dies_before_contributing(self):
        plan = get_scenario("crash_then_shrink").plan(8)
        assert plan.crash_step(7) == 0
        assert all(plan.crash_step(r) is None for r in range(7))

    def test_crash_then_respawn_dies_mid_collective(self):
        plan = get_scenario("crash_then_respawn").plan(8)
        assert 1 <= plan.crash_step(7) < 7
        assert all(plan.crash_step(r) is None for r in range(7))


class TestArrivalPatterns:
    def test_sorted_arrival_is_monotone(self):
        offsets = get_scenario("sorted_arrival").arrival_offsets(8)
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0
        assert offsets[-1] == pytest.approx(DEFAULT_SKEW)

    def test_random_arrival_is_seeded(self):
        scenario = get_scenario("random_arrival")
        assert scenario.arrival_offsets(8, seed=5) == scenario.arrival_offsets(8, seed=5)
        assert scenario.arrival_offsets(8, seed=5) != scenario.arrival_offsets(8, seed=6)
        assert all(0.0 <= o <= DEFAULT_SKEW for o in scenario.arrival_offsets(8, seed=5))

    def test_rolling_straggler_rotates(self):
        plan = get_scenario("rolling_stragglers").plan(4)
        for k in range(8):
            slow = [r for r in range(4) if plan.arrival_skew(r, k) > 0]
            assert slow == [k % 4]


class TestDegradationScenarios:
    def test_partition_cuts_cross_links_then_heals(self):
        plan = get_scenario("partition_heal").plan(8)
        assert plan.should_drop(0, 4, 0)
        assert plan.should_drop(5, 3, 0)
        assert not plan.should_drop(0, 1, 0)
        assert not plan.should_drop(0, 4, 8)  # healed at op = num_ranks

    def test_message_loss_probability(self):
        plan = get_scenario("message_loss").plan(8, seed=2)
        drops = sum(plan.should_drop(0, 1, op) for op in range(1000))
        assert 10 <= drops <= 120  # ~5% of 1000, loosely bounded
