"""Degraded-mode collectives: detection, thresholded completion, correction."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Communicator, ConsistencyPolicy, FaultPlan, RankCrashedError
from repro.faults import (
    DegradedCollectiveError,
    FaultyRuntime,
    get_scenario,
    send_late_contribution,
    tolerant_allreduce,
    tolerant_allreduce_schedule,
    tolerant_bcast,
    tolerant_bcast_schedule,
    tolerant_reduce,
    tolerant_reduce_schedule,
)
from repro.simulate import simulate_schedule, skylake_fdr

from tests.helpers import expected_sum, rank_vector, spmd

#: Short detection window: fast tests, still far above thread scheduling noise.
DETECT = 0.3


class TestTolerantWithoutFaults:
    def test_allreduce_exact_and_complete(self):
        n = 64

        def worker(rt):
            detail = tolerant_allreduce(rt, rank_vector(rt.rank, n), detect_timeout=DETECT)
            return detail

        for detail in spmd(4, worker):
            assert detail.missing_ranks == ()
            assert detail.contributors == 4
            assert detail.met_threshold
            assert np.allclose(detail.value, expected_sum(4, n))

    def test_reduce_exact_at_root(self):
        n = 48

        def worker(rt):
            return tolerant_reduce(rt, rank_vector(rt.rank, n), root=1, detect_timeout=DETECT)

        results = spmd(4, worker)
        assert np.allclose(results[1].value, expected_sum(4, n))
        assert results[1].missing_ranks == ()
        assert results[0].value is None

    def test_bcast_delivers_full_payload(self):
        n = 32

        def worker(rt):
            buf = np.full(n, 42.0) if rt.rank == 0 else np.zeros(n)
            detail = tolerant_bcast(rt, buf, root=0, detect_timeout=DETECT)
            return detail.missing_ranks, buf

        for missing, buf in spmd(4, worker):
            assert missing == ()
            assert np.all(buf == 42.0)

    def test_bcast_data_threshold_ships_prefix(self):
        n = 40

        def worker(rt):
            buf = np.ones(n) if rt.rank == 0 else np.zeros(n)
            tolerant_bcast(rt, buf, root=0, threshold=0.5, detect_timeout=DETECT)
            return rt.rank, buf

        for rank, buf in spmd(2, worker):
            if rank != 0:
                assert np.all(buf[: n // 2] == 1.0)
                assert np.all(buf[n // 2 :] == 0.0)


class TestDegradedCompletion:
    def test_acceptance_8_ranks_one_crash_with_correction(self):
        """The headline scenario: 8 ranks, one crash, threshold 0.75.

        Survivors complete with the crashed rank reported missing; the
        crashed rank recovers, re-contributes, and the correction pass
        restores the exact full-participation result on every survivor.
        """
        n = 256
        survivors_done = threading.Barrier(7)
        resend = threading.Event()

        def worker(rt):
            plan = FaultPlan.single_crash(7, at_op=0)
            comm = Communicator(rt, faults=plan, detect_timeout=DETECT)
            data = rank_vector(comm.rank, n)
            try:
                comm.allreduce(data, policy=ConsistencyPolicy.process_threshold(0.75))
            except RankCrashedError:
                resend.wait(30.0)
                comm.runtime.recover()
                send_late_contribution(comm.runtime, data, comm.last_segment_id)
                return None
            result = comm.last_result
            assert result.algorithm == "gaspi_allreduce_tolerant"
            degraded = result.value.copy()
            missing = result.missing_ranks
            suspected = comm.suspected_ranks
            survivors_done.wait(30.0)
            resend.set()
            corrected = result.detail.correct(timeout=10.0)
            return missing, suspected, degraded, corrected.copy()

        outcomes = [o for o in spmd(8, worker) if o is not None]
        assert len(outcomes) == 7
        exact = expected_sum(8, n)
        partial = exact - rank_vector(7, n)
        for missing, suspected, degraded, corrected in outcomes:
            assert missing == (7,)
            assert suspected == frozenset({7})
            assert np.allclose(degraded, partial)
            assert np.allclose(corrected, exact)

    def test_below_threshold_aborts_with_detail(self):
        # Ranks 2 and 3 crash; 2/4 contributors < 75% -> abort on survivors.
        def strict_worker(rt):
            faulty = FaultyRuntime(rt, FaultPlan.crashes([2, 3], at_op=0))
            data = np.ones(16)
            try:
                detail = tolerant_allreduce(faulty, data, threshold=0.75,
                                            detect_timeout=DETECT)
            except RankCrashedError:
                return "crashed"
            except DegradedCollectiveError as exc:
                assert exc.detail.missing_ranks == (2, 3)
                assert not exc.detail.met_threshold
                exc.detail.close()
                return "aborted"
            return f"completed:{detail.contributors}"

        outcomes = spmd(4, strict_worker)
        assert outcomes.count("crashed") == 2
        assert outcomes.count("aborted") == 2

    def test_on_failure_complete_publishes_below_threshold(self):
        def worker(rt):
            faulty = FaultyRuntime(rt, FaultPlan.crashes([2, 3], at_op=0))
            data = np.full(8, float(rt.rank + 1))
            try:
                detail = tolerant_allreduce(
                    faulty, data, threshold=0.75, on_failure="complete",
                    detect_timeout=DETECT,
                )
            except RankCrashedError:
                return None
            out = detail.value.copy()
            detail.close()
            return detail.missing_ranks, out

        outcomes = [o for o in spmd(4, worker) if o is not None]
        for missing, out in outcomes:
            assert missing == (2, 3)
            assert np.all(out == 3.0)  # ranks 0 and 1 contributed 1 + 2

    def test_policy_on_failure_validation(self):
        with pytest.raises(ValueError, match="on_failure"):
            ConsistencyPolicy(on_failure="retry")
        policy = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")
        assert "on_failure=complete" in policy.describe()

    def test_reduce_records_missing_child_and_corrects(self):
        n = 32
        root_done = threading.Event()

        def worker(rt):
            faulty = FaultyRuntime(rt, FaultPlan.single_crash(3, at_op=0))
            data = rank_vector(rt.rank, n)
            try:
                detail = tolerant_reduce(
                    faulty, data, root=0, threshold=0.5, detect_timeout=DETECT
                )
            except RankCrashedError:
                root_done.wait(30.0)
                faulty.recover()
                # Default targets: peers that already released their
                # workspace (the other children) are skipped silently.
                send_late_contribution(faulty, data, 140)
                return None
            if rt.rank == 0:
                assert detail.missing_ranks == (3,)
                root_done.set()
                corrected = detail.correct(timeout=10.0)
                return corrected.copy()
            return True

        results = spmd(4, worker)
        assert np.allclose(results[0], expected_sum(4, n))

    def test_bcast_receiver_survives_dead_root(self):
        def worker(rt):
            faulty = FaultyRuntime(rt, FaultPlan.single_crash(0, at_op=0))
            buf = np.full(16, 9.0) if rt.rank == 0 else np.zeros(16)
            try:
                detail = tolerant_bcast(
                    faulty, buf, root=0, on_failure="complete", detect_timeout=DETECT
                )
            except RankCrashedError:
                return None
            missing = detail.missing_ranks
            detail.close()
            return missing, buf.copy()

        outcomes = [o for o in spmd(3, worker) if o is not None]
        assert len(outcomes) == 2
        for missing, buf in outcomes:
            assert missing == (0,)
            assert np.all(buf == 0.0)  # nothing arrived, buffer untouched


class TestSuspectTracking:
    def test_next_collective_skips_suspects(self):
        """After a degraded call the suspect is excluded, so the follow-up
        completes without waiting out another detection timeout."""
        import time

        n = 16
        resume = threading.Barrier(3)

        def worker(rt):
            plan = FaultPlan.single_crash(3, at_op=0)
            comm = Communicator(rt, faults=plan, detect_timeout=DETECT)
            policy = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")
            data = np.full(n, float(comm.rank + 1))
            try:
                comm.allreduce(data, policy=policy)
            except RankCrashedError:
                return None
            assert comm.suspected_ranks == frozenset({3})
            comm.last_result.detail.close()
            resume.wait(30.0)
            start = time.monotonic()
            out = comm.allreduce(data, policy=policy)
            elapsed = time.monotonic() - start
            assert comm.last_result.missing_ranks == (3,)
            return out.copy(), elapsed

        outcomes = [o for o in spmd(4, worker) if o is not None]
        assert len(outcomes) == 3
        for out, elapsed in outcomes:
            assert np.all(out == 6.0)  # 1 + 2 + 3
            assert elapsed < DETECT  # no detection timeout: suspect skipped

    def test_divergent_suspicion_cannot_deadlock(self):
        """A mid-send crash leaves survivors with *different* suspect sets
        (some received the dying rank's contribution, some did not).  The
        next tolerant collective must still terminate: the entry handshake
        is timeout-bounded and writes to a never-created workspace are
        tolerated, so disagreement costs latency, never a hang."""
        n = 16
        resume = threading.Barrier(7)

        def worker(rt):
            plan = FaultPlan.single_crash(7, at_op=3)  # dies mid-send
            comm = Communicator(rt, faults=plan, detect_timeout=DETECT)
            policy = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")
            data = np.full(n, 1.0)
            try:
                comm.allreduce(data, policy=policy)
            except RankCrashedError:
                return None
            if comm.last_result.detail.correctable:
                comm.last_result.detail.close()
            resume.wait(30.0)
            out = comm.allreduce(data, policy=policy)
            comm.last_result.detail.close()
            return out.copy(), comm.last_result.missing_ranks

        outcomes = [o for o in spmd(8, worker, timeout=30.0) if o is not None]
        assert len(outcomes) == 7
        for out, missing in outcomes:
            # The second collective completes over the seven survivors no
            # matter how their suspicion about rank 7 diverged.
            assert missing == (7,)
            assert np.all(out == 7.0)

    def test_split_child_keeps_fault_awareness(self):
        """A sub-communicator of a fault-injected world must keep routing
        to tolerant algorithms (the crash still fires through the wrapped
        runtime) and inherit the detection timeout."""

        def worker(rt):
            comm = Communicator(
                rt, faults=FaultPlan.single_crash(3, at_op=10**6), detect_timeout=DETECT
            )
            comm._suspected.add(3)
            child = comm.split(comm.rank % 2)
            assert child.runtime.fault_injected
            assert child._detect_timeout == DETECT
            info = child.resolve("allreduce", nbytes=1024)
            # Parent rank 3 is child rank 1 of the odd-color group.
            expected_suspects = frozenset({1}) if comm.rank % 2 == 1 else frozenset()
            assert child.suspected_ranks == expected_suspects
            return info.name

        assert all(
            name == "gaspi_allreduce_tolerant" for name in spmd(4, worker)
        )

    def test_wrongly_suspected_rank_is_folded_back_in(self):
        """A rank others merely *suspect* dead (it straggled past an earlier
        detection window) keeps sending; its contribution must be folded in,
        not consumed and discarded, so the survivors' result converges."""
        n = 16

        def worker(rt):
            faulty = FaultyRuntime(rt, FaultPlan.single_crash(4, at_op=0))
            data = np.full(n, float(rt.rank + 1))
            suspected = () if rt.rank == 3 else (3,)
            # Rank 3 (the wrongly suspected one) gives up on its own
            # handshake quickly, so its contribution lands inside the
            # suspecters' detection window, which rank 4's real crash
            # holds open.
            timeout = 0.1 if rt.rank == 3 else 0.6
            try:
                detail = tolerant_allreduce(
                    faulty, data, threshold=0.5, on_failure="complete",
                    detect_timeout=timeout, known_failed=suspected,
                )
            except RankCrashedError:
                return None
            out = detail.value.copy()
            missing = detail.missing_ranks
            detail.close()
            return rt.rank, missing, out

        outcomes = [o for o in spmd(5, worker) if o is not None]
        for rank, missing, out in outcomes:
            if rank == 3:
                continue  # the suspected rank itself completes alone
            assert missing == (4,), f"rank {rank} missed {missing}"
            assert np.all(out == 1.0 + 2.0 + 3.0 + 4.0)

    def test_reinstate_restores_participation(self):
        def worker(rt):
            comm = Communicator(rt)
            comm._suspected.add(2)
            assert comm.suspected_ranks == frozenset({2})
            comm.reinstate(2)
            assert comm.suspected_ranks == frozenset()
            return True

        assert all(spmd(2, worker))


class TestSimulatorReplay:
    def test_single_crash_replays_deterministically(self):
        machine = skylake_fdr(8)
        plan = get_scenario("single_crash").plan(8)
        from repro.faults import degrade_schedule

        schedule = tolerant_allreduce_schedule(8, 4096)
        times = [
            simulate_schedule(degrade_schedule(schedule, plan), machine).total_time
            for _ in range(2)
        ]
        assert times[0] == times[1]
        full = simulate_schedule(schedule, machine).total_time
        assert times[0] < full  # one sender fewer -> strictly less traffic

    def test_sorted_arrival_replays_deterministically(self):
        machine = skylake_fdr(8)
        offsets = get_scenario("sorted_arrival").arrival_offsets(8)
        schedule = tolerant_allreduce_schedule(8, 4096)
        a = simulate_schedule(schedule, machine, rank_offsets=offsets)
        b = simulate_schedule(schedule, machine, rank_offsets=offsets)
        assert a.total_time == b.total_time
        assert a.total_time >= max(offsets)
        assert a.metadata["max_arrival_skew"] == pytest.approx(max(offsets))

    def test_communicator_simulator_backend_degrades_schedule(self):
        n = 64

        def worker(rt):
            plan = FaultPlan.single_crash(3, at_op=0)
            comm = Communicator(
                rt, machine=skylake_fdr(4), faults=plan, detect_timeout=DETECT
            )
            policy = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")
            try:
                comm.allreduce(np.ones(n), policy=policy)
            except RankCrashedError:
                return None
            sim = comm.last_result.simulated
            comm.last_result.detail.close()
            return sim

        sims = [s for s in spmd(4, worker) if s is not None]
        clean = simulate_schedule(tolerant_allreduce_schedule(4, 64 * 8), skylake_fdr(4))
        for sim in sims:
            assert sim.metadata["dropped_messages"] > 0
            assert sim.total_time < clean.total_time

    def test_schedule_builders_validate(self):
        for build in (
            tolerant_allreduce_schedule,
            tolerant_reduce_schedule,
            tolerant_bcast_schedule,
        ):
            sched = build(8, 4096, failed=(7,))
            assert all(m.src != 7 and m.dst != 7 for m in sched.messages())


class TestDispatchIntegration:
    def test_auto_prefers_tolerant_under_lossy_faults(self):
        def worker(rt):
            comm = Communicator(rt, faults=FaultPlan.single_crash(1, at_op=10**6))
            info = comm.resolve("allreduce", nbytes=1024)
            return info.name

        assert all(name == "gaspi_allreduce_tolerant" for name in spmd(2, worker))

    def test_auto_keeps_tuned_selection_for_timing_only_plans(self):
        """Delay/skew plans make ranks late, not absent: the tuned regular
        algorithms stay selected (the flat tolerant exchange is O(n^2))."""

        def worker(rt):
            comm = Communicator(rt, faults=FaultPlan(skew={0: 0.001}, delay={1: 0.001}))
            return comm.resolve("allreduce", nbytes=1024).name

        assert all(name != "gaspi_allreduce_tolerant" for name in spmd(2, worker))

    def test_auto_prefers_tolerant_for_complete_policies(self):
        def worker(rt):
            comm = Communicator(rt)
            policy = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")
            return comm.resolve("allreduce", nbytes=1024, policy=policy).name

        assert all(name == "gaspi_allreduce_tolerant" for name in spmd(2, worker))

    def test_auto_without_faults_keeps_tuned_selection(self):
        def worker(rt):
            comm = Communicator(rt)
            return comm.resolve("allreduce", nbytes=1024).name

        assert all(name != "gaspi_allreduce_tolerant" for name in spmd(2, worker))

    def test_tolerant_alias_resolves(self):
        def worker(rt):
            comm = Communicator(rt)
            return (
                comm.resolve("allreduce", algorithm="tolerant").name,
                comm.resolve("bcast", algorithm="tolerant").name,
                comm.resolve("reduce", algorithm="tolerant").name,
            )

        for names in spmd(2, worker):
            assert names == (
                "gaspi_allreduce_tolerant",
                "gaspi_bcast_tolerant",
                "gaspi_reduce_tolerant",
            )

    def test_capability_flag_exposed(self):
        from repro import REGISTRY

        assert REGISTRY.get("gaspi_allreduce_tolerant").capabilities.fault_tolerant
        assert not REGISTRY.get("gaspi_allreduce_ring").capabilities.fault_tolerant

    def test_process_threshold_mode_required(self):
        from repro import REGISTRY

        info = REGISTRY.get("gaspi_allreduce_tolerant")
        ok, _ = info.supports(4, ConsistencyPolicy.process_threshold(0.5))
        assert ok
        ok, why = info.supports(4, ConsistencyPolicy.data_threshold(0.5))
        assert not ok and "data" in why
