"""Tests of the fault-injection / degraded-collective subsystem."""
