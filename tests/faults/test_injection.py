"""FaultPlan semantics and the FaultyRuntime decorator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allreduce_ring import ring_allreduce_schedule
from repro.faults import FaultPlan, FaultyRuntime, RankCrashedError, degrade_schedule
from repro.gaspi import ThreadedWorld

from tests.helpers import spmd


class TestFaultPlan:
    def test_benign_plan(self):
        plan = FaultPlan.none()
        assert plan.is_benign
        assert plan.crash_step(0) is None
        assert not plan.should_drop(0, 1, 0)
        assert plan.send_delay(0, 0) == 0.0
        assert plan.arrival_skew(0) == 0.0
        assert plan.describe() == "benign"

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_at={0: -1})
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(delay={1: -0.5})
        with pytest.raises(ValueError):
            FaultPlan(jitter=-1.0)

    def test_drops_are_deterministic(self):
        a = FaultPlan(drop_probability=0.5, seed=7)
        b = FaultPlan(drop_probability=0.5, seed=7)
        pattern_a = [a.should_drop(0, 1, op) for op in range(64)]
        pattern_b = [b.should_drop(0, 1, op) for op in range(64)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)
        other_seed = [FaultPlan(drop_probability=0.5, seed=8).should_drop(0, 1, op) for op in range(64)]
        assert other_seed != pattern_a

    def test_jitter_is_deterministic_and_bounded(self):
        plan = FaultPlan(jitter=0.01, seed=3)
        values = [plan.send_delay(2, op) for op in range(32)]
        assert values == [plan.send_delay(2, op) for op in range(32)]
        assert all(0.0 <= v <= 0.01 for v in values)
        assert len(set(values)) > 1

    def test_partition_window(self):
        plan = FaultPlan.partition([0, 1], [2, 3], heal_at_op=4)
        assert plan.should_drop(0, 2, 0)
        assert plan.should_drop(3, 1, 3)
        # Intra-group traffic is never cut.
        assert not plan.should_drop(0, 1, 0)
        # The partition heals at op 4.
        assert not plan.should_drop(0, 2, 4)

    def test_recover_clears_crash(self):
        plan = FaultPlan.single_crash(2, at_op=5)
        assert plan.crash_step(2) == 5
        plan.recover(2)
        assert plan.crash_step(2) is None

    def test_arrival_offsets(self):
        plan = FaultPlan(skew={1: 0.25})
        assert plan.arrival_offsets(3) == [0.0, 0.25, 0.0]
        rolling = FaultPlan(skew_fn=lambda rank, k: 0.1 if rank == k % 2 else 0.0)
        assert rolling.arrival_skew(0, 0) == pytest.approx(0.1)
        assert rolling.arrival_skew(1, 1) == pytest.approx(0.1)
        assert rolling.arrival_skew(0, 1) == 0.0


class TestFaultyRuntime:
    def test_crash_at_op_counts_data_plane_only(self, world2):
        def worker(rt):
            faulty = FaultyRuntime(rt, FaultPlan.single_crash(1, at_op=1))
            faulty.segment_create(10, 64)
            faulty.barrier()  # barriers are not data-plane ops
            if faulty.rank == 1:
                faulty.notify(0, 10, 0)  # op 0: fine
                with pytest.raises(RankCrashedError):
                    faulty.notify(0, 10, 1)  # op 1: crash
                assert faulty.is_crashed
                # Every subsequent operation keeps failing ...
                with pytest.raises(RankCrashedError):
                    faulty.wait(0)
                # ... until the rank is recovered.
                faulty.recover()
                faulty.notify(0, 10, 2)
                return True
            got = rt.notify_waitsome(10, 0, 4, timeout=5.0)
            return got is not None

        assert all(spmd(2, worker))

    def test_dropped_messages_never_arrive(self, world2):
        def worker(rt):
            plan = FaultPlan(drop_links=frozenset({(0, 1)}))
            faulty = FaultyRuntime(rt, plan)
            faulty.segment_create(11, 64)
            faulty.barrier()
            if faulty.rank == 0:
                faulty.notify(1, 11, 0)
                faulty.wait(0)
                faulty.barrier()
                return True
            faulty.barrier()
            return faulty.notify_peek(11, 0) == 0

        assert all(spmd(2, worker))

    def test_delay_slows_the_sender(self, world2):
        import time

        def worker(rt):
            faulty = FaultyRuntime(rt, FaultPlan(delay={0: 0.05}))
            faulty.segment_create(12, 64)
            faulty.barrier()
            if faulty.rank == 0:
                start = time.monotonic()
                faulty.notify(1, 12, 0)
                return time.monotonic() - start
            rt.notify_waitsome(12, 0, 1, timeout=5.0)
            return None

        elapsed = spmd(2, worker)[0]
        assert elapsed >= 0.05

    def test_wrapper_preserves_identity_and_reads(self):
        world = ThreadedWorld(2)
        try:
            faulty = FaultyRuntime(world.runtime(1), FaultPlan.none())
            assert faulty.rank == 1
            assert faulty.size == 2
            faulty.segment_create(13, 32)
            view = faulty.segment_view(13, count=4)
            view[:] = 7.0
            assert np.all(faulty.segment_read(13, count=4) == 7.0)
            assert faulty.ops_performed == 0
        finally:
            world.close()


class TestDegradeSchedule:
    def test_crashed_sender_messages_removed(self):
        schedule = ring_allreduce_schedule(4, 4096)
        degraded = degrade_schedule(schedule, FaultPlan.single_crash(2, at_op=0))
        assert degraded.total_messages() < schedule.total_messages()
        # Nothing leaves the dead rank and nothing is delivered to it.
        assert all(m.src != 2 and m.dst != 2 for m in degraded.messages())
        touching_crashed = sum(1 for m in schedule.messages() if 2 in (m.src, m.dst))
        assert degraded.metadata["dropped_messages"] == touching_crashed

    def test_late_crash_keeps_early_messages(self):
        schedule = ring_allreduce_schedule(4, 4096)
        degraded = degrade_schedule(schedule, FaultPlan.single_crash(2, at_op=2))
        early = [m for m in degraded.messages() if m.src == 2]
        assert len(early) == 2

    def test_replay_is_deterministic(self):
        schedule = ring_allreduce_schedule(8, 1 << 16)
        plan = FaultPlan(drop_probability=0.3, seed=11)
        a = degrade_schedule(schedule, plan)
        b = degrade_schedule(schedule, plan)
        assert [(m.src, m.dst, m.nbytes) for m in a.messages()] == [
            (m.src, m.dst, m.nbytes) for m in b.messages()
        ]
        assert a.metadata["dropped_messages"] == b.metadata["dropped_messages"] > 0

    def test_benign_plan_is_identity(self):
        schedule = ring_allreduce_schedule(4, 4096)
        degraded = degrade_schedule(schedule, FaultPlan.none())
        assert degraded.total_messages() == schedule.total_messages()
        assert degraded.total_bytes() == schedule.total_bytes()
