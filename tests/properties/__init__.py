"""Test package."""
