"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bcast import bst_bcast_schedule, threshold_elements
from repro.core.compression import ThresholdCompressor, TopKCompressor
from repro.core.reduce import ReduceMode, bst_reduce_schedule
from repro.core.allreduce_ring import ring_allreduce_schedule
from repro.core.topology import BinomialTree, Hypercube, KnomialTree, Ring, chunk_bounds
from repro.simulate import simulate_schedule, skylake_fdr
from repro.ssp import SSPConfig, combine_clocks
from repro.bench.stats import confidence_interval_95, summarize

ranks = st.integers(min_value=1, max_value=64)
pow2_ranks = st.sampled_from([1, 2, 4, 8, 16, 32, 64])
sizes = st.integers(min_value=0, max_value=1 << 22)
fractions = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)


# --------------------------------------------------------------------------- #
# topology invariants
# --------------------------------------------------------------------------- #
@given(num_ranks=ranks, root=st.integers(min_value=0, max_value=63))
@settings(max_examples=60, deadline=None)
def test_binomial_tree_is_a_spanning_tree(num_ranks, root):
    root = root % num_ranks
    tree = BinomialTree(num_ranks, root)
    reached = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for child in tree.children(node):
            assert child not in reached  # no cycles / duplicates
            assert tree.parent(child) == node
            reached.add(child)
            frontier.append(child)
    assert reached == set(range(num_ranks))


@given(num_ranks=ranks, fraction=fractions)
@settings(max_examples=60, deadline=None)
def test_participating_ranks_connected_and_enough(num_ranks, fraction):
    tree = BinomialTree(num_ranks)
    kept = set(tree.participating_ranks(fraction))
    assert 0 in kept
    assert len(kept) >= max(1, int(np.ceil(fraction * num_ranks - 1e-9)))
    for r in kept - {0}:
        assert tree.parent(r) in kept


@given(num_ranks=pow2_ranks)
@settings(max_examples=20, deadline=None)
def test_hypercube_partner_involution_and_coverage(num_ranks):
    cube = Hypercube(num_ranks)
    for r in range(num_ranks):
        partners = cube.partners(r)
        assert len(set(partners)) == len(partners)
        for k, p in enumerate(partners):
            assert cube.partner(p, k) == r


@given(num_ranks=ranks, radix=st.integers(min_value=2, max_value=8))
@settings(max_examples=40, deadline=None)
def test_knomial_tree_spans_all_ranks(num_ranks, radix):
    tree = KnomialTree(num_ranks, radix=radix)
    for r in range(num_ranks):
        node, hops = r, 0
        while tree.parent(node) is not None:
            node = tree.parent(node)
            hops += 1
            assert hops <= num_ranks
        assert node == 0


@given(total=st.integers(min_value=0, max_value=10_000), chunks=st.integers(min_value=1, max_value=64))
@settings(max_examples=100, deadline=None)
def test_chunk_bounds_partition(total, chunks):
    covered = 0
    prev_end = 0
    for i in range(chunks):
        begin, end = chunk_bounds(total, chunks, i)
        assert begin == prev_end
        assert end >= begin
        covered += end - begin
        prev_end = end
    assert covered == total and prev_end == total


@given(num_ranks=ranks)
@settings(max_examples=40, deadline=None)
def test_ring_chunk_flow_consistency(num_ranks):
    ring = Ring(num_ranks)
    for step in range(max(num_ranks - 1, 0)):
        for i in range(num_ranks):
            assert ring.scatter_reduce_recv_chunk(i, step) == ring.scatter_reduce_send_chunk(
                ring.prev_rank(i), step
            )


# --------------------------------------------------------------------------- #
# schedule invariants
# --------------------------------------------------------------------------- #
@given(num_ranks=ranks, nbytes=sizes, threshold=fractions)
@settings(max_examples=50, deadline=None)
def test_bcast_schedule_reaches_everyone_and_scales(num_ranks, nbytes, threshold):
    sched = bst_bcast_schedule(num_ranks, nbytes, threshold=threshold, include_acks=False)
    sched.validate()
    receivers = sorted(m.dst for m in sched.messages())
    assert receivers == list(range(1, num_ranks))
    if nbytes:
        shipped = max(1, int(nbytes * threshold))
        assert all(m.nbytes == shipped for m in sched.messages())


@given(num_ranks=ranks, nbytes=sizes, threshold=fractions,
       mode=st.sampled_from([ReduceMode.DATA, ReduceMode.PROCESSES]))
@settings(max_examples=50, deadline=None)
def test_reduce_schedule_flows_toward_root(num_ranks, nbytes, threshold, mode):
    sched = bst_reduce_schedule(
        num_ranks, nbytes, threshold=threshold, mode=mode, include_handshake=False
    )
    sched.validate()
    tree = BinomialTree(num_ranks)
    for m in sched.messages():
        assert tree.parent(m.src) == m.dst


@given(num_ranks=ranks, nbytes=sizes)
@settings(max_examples=50, deadline=None)
def test_ring_allreduce_schedule_byte_balance(num_ranks, nbytes):
    sched = ring_allreduce_schedule(num_ranks, nbytes)
    sched.validate()
    if num_ranks > 1 and nbytes > 0:
        # Ring symmetry: what a rank sends and receives differs at most by the
        # remainder chunks (uneven block distribution of nbytes over P chunks).
        slack = 2 * (-(-nbytes // num_ranks))
        for r in range(num_ranks):
            assert abs(sched.bytes_sent_by(r) - sched.bytes_received_by(r)) <= slack
        # Global conservation is exact: every byte sent is received.
        total_sent = sum(sched.bytes_sent_by(r) for r in range(num_ranks))
        total_recv = sum(sched.bytes_received_by(r) for r in range(num_ranks))
        assert total_sent == total_recv
        assert sched.num_rounds == 2 * (num_ranks - 1)


@given(num_ranks=st.integers(min_value=2, max_value=24), nbytes=st.integers(min_value=1, max_value=1 << 20))
@settings(max_examples=30, deadline=None)
def test_simulated_time_is_positive_and_monotone_in_size(num_ranks, nbytes):
    machine = skylake_fdr(num_ranks)
    small = simulate_schedule(ring_allreduce_schedule(num_ranks, nbytes), machine)
    large = simulate_schedule(ring_allreduce_schedule(num_ranks, nbytes * 4), machine)
    assert small.total_time > 0
    assert large.total_time >= small.total_time


# --------------------------------------------------------------------------- #
# SSP invariants
# --------------------------------------------------------------------------- #
@given(clocks=st.lists(st.integers(min_value=0, max_value=1_000), min_size=1, max_size=16))
def test_combined_clock_is_lower_bound(clocks):
    combined = combine_clocks(clocks)
    assert combined <= min(clocks) + 0
    assert combined in clocks


@given(slack=st.integers(min_value=0, max_value=100),
       clock=st.integers(min_value=1, max_value=1_000),
       staleness=st.integers(min_value=0, max_value=200))
def test_ssp_admissibility_definition(slack, clock, staleness):
    cfg = SSPConfig(slack=slack)
    contribution_clock = clock - staleness
    assert cfg.admissible(contribution_clock, clock) == (staleness <= slack)


@given(n=st.integers(min_value=0, max_value=10_000), threshold=fractions)
def test_threshold_elements_bounds(n, threshold):
    k = threshold_elements(n, threshold)
    if n == 0:
        assert k == 0
    else:
        assert 1 <= k <= n
        assert k <= max(1, int(n * threshold) + 1)


# --------------------------------------------------------------------------- #
# compression invariants
# --------------------------------------------------------------------------- #
@given(
    values=st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=200),
    k=st.integers(min_value=1, max_value=50),
)
def test_topk_keeps_k_largest_by_magnitude(values, k):
    vec = np.asarray(values, dtype=np.float64)
    comp = TopKCompressor(k).compress(vec)
    assert comp.nnz == min(k, vec.size)
    dense = comp.decompress()
    assert dense.shape == vec.shape
    kept_min = np.min(np.abs(comp.values)) if comp.nnz else 0.0
    dropped = np.delete(np.abs(vec), comp.indices)
    if dropped.size:
        assert kept_min >= np.max(dropped) - 1e-12


@given(
    values=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=200),
    threshold=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)
def test_threshold_compressor_partition(values, threshold):
    vec = np.asarray(values, dtype=np.float64)
    comp = ThresholdCompressor(threshold).compress(vec)
    dense = comp.decompress()
    kept = np.abs(vec) >= threshold
    assert np.array_equal(dense[kept], vec[kept])
    assert np.all(dense[~kept] == 0.0)


# --------------------------------------------------------------------------- #
# statistics invariants
# --------------------------------------------------------------------------- #
@given(samples=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
def test_summary_bounds(samples):
    import math

    m = summarize(samples)
    # The mean sits between min and max up to floating-point rounding.
    assert m.mean >= m.minimum or math.isclose(m.mean, m.minimum, rel_tol=1e-9, abs_tol=1e-12)
    assert m.mean <= m.maximum or math.isclose(m.mean, m.maximum, rel_tol=1e-9, abs_tol=1e-12)
    assert m.ci95 >= 0.0
    assert m.count == len(samples)


@given(samples=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=2, max_size=50))
def test_ci_is_symmetric_interval(samples):
    m = summarize(samples)
    assert m.upper - m.mean == m.mean - m.lower or abs((m.upper - m.mean) - (m.mean - m.lower)) < 1e-9
    assert confidence_interval_95(samples) == m.ci95
