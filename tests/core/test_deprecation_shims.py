"""The v1 kwarg shims: they must warn *and* match the policy= path exactly.

PR 1 kept the v1 loose kwargs (``threshold=``, ``mode=``, ``slack=``) and
the short ``algorithm=`` aliases alive behind deprecation shims.  These
tests pin down the contract: every shim emits a ``DeprecationWarning``
(except ``slack=`` on ``allreduce_ssp``, which is documented as kept), and
the result is bit-identical to the explicit ``policy=`` spelling.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import Communicator, ConsistencyPolicy
from repro.core.policy import coerce_policy
from repro.core.reduce import ReduceMode

from tests.helpers import expected_sum, rank_vector, spmd


def _no_deprecation(record) -> bool:
    return not any(issubclass(w.category, DeprecationWarning) for w in record)


class TestBcastThresholdShim:
    N = 64

    def test_warns_and_matches_policy_path(self):
        def worker(rt):
            comm = Communicator(rt)
            legacy = np.arange(self.N, dtype=np.float64) if rt.rank == 0 else np.zeros(self.N)
            with pytest.warns(DeprecationWarning, match="threshold"):
                legacy_result = comm.bcast(legacy, root=0, threshold=0.25)
            modern = np.arange(self.N, dtype=np.float64) if rt.rank == 0 else np.zeros(self.N)
            with warnings.catch_warnings(record=True) as record:
                warnings.simplefilter("always")
                modern_result = comm.bcast(
                    modern, root=0, policy=ConsistencyPolicy.data_threshold(0.25)
                )
            assert _no_deprecation(record)
            assert legacy_result.elements_received == modern_result.elements_received
            assert legacy_result.policy == modern_result.policy
            return np.array_equal(legacy, modern)

        assert all(spmd(4, worker))


class TestReduceThresholdModeShim:
    N = 80

    def test_warns_and_matches_policy_path(self):
        def worker(rt):
            comm = Communicator(rt)
            data = rank_vector(rt.rank, self.N)
            legacy_out = np.zeros(self.N)
            with pytest.warns(DeprecationWarning, match="threshold/mode"):
                legacy_result = comm.reduce(
                    data, legacy_out, root=0, threshold=0.5, mode="processes"
                )
            modern_out = np.zeros(self.N)
            with warnings.catch_warnings(record=True) as record:
                warnings.simplefilter("always")
                modern_result = comm.reduce(
                    modern_out * 0 + data,
                    modern_out,
                    root=0,
                    policy=ConsistencyPolicy.process_threshold(0.5),
                )
            assert _no_deprecation(record)
            assert legacy_result.policy == modern_result.policy
            assert legacy_result.policy.mode is ReduceMode.PROCESSES
            assert legacy_result.contributors == modern_result.contributors
            return np.array_equal(legacy_out, modern_out)

        assert all(spmd(4, worker))

    def test_mode_alone_also_warns(self):
        def worker(rt):
            comm = Communicator(rt)
            with pytest.warns(DeprecationWarning):
                comm.reduce(np.ones(8), np.zeros(8), root=0, mode=ReduceMode.DATA)
            return True

        assert all(spmd(2, worker))


class TestSspSlackShim:
    """``slack=`` is a kept spelling (no warning), but must equal policy=."""

    N = 32

    def test_slack_matches_ssp_policy(self):
        def worker(rt):
            comm = Communicator(rt)
            data = rank_vector(rt.rank, self.N)
            with warnings.catch_warnings(record=True) as record:
                warnings.simplefilter("always")
                via_slack = comm.allreduce_ssp(data, slack=0, key=0)
            assert _no_deprecation(record)
            via_policy = comm.allreduce_ssp(
                data, policy=ConsistencyPolicy.ssp(0), key=1
            )
            comm.close()
            return np.array_equal(via_slack.value, via_policy.value)

        assert all(spmd(4, worker))

    def test_slack_and_policy_together_rejected(self):
        def worker(rt):
            comm = Communicator(rt)
            with pytest.raises(ValueError, match="not both"):
                comm.allreduce_ssp(
                    np.ones(8), slack=1, policy=ConsistencyPolicy.ssp(1)
                )
            return True

        assert all(spmd(2, worker))


class TestAlgorithmAliases:
    N = 96

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("ring", "gaspi_allreduce_ring"),
            ("hypercube", "gaspi_allreduce_ssp_hypercube"),
        ],
    )
    def test_allreduce_aliases_match_canonical_names(self, alias, canonical):
        def worker(rt):
            comm = Communicator(rt)
            data = rank_vector(rt.rank, self.N)
            via_alias = comm.allreduce(data, algorithm=alias)
            assert comm.last_result.algorithm == canonical
            via_name = comm.allreduce(data, algorithm=canonical)
            return np.array_equal(via_alias, via_name)

        assert all(spmd(4, worker))

    def test_bcast_and_reduce_aliases(self):
        def worker(rt):
            comm = Communicator(rt)
            buf = np.ones(16) if rt.rank == 0 else np.zeros(16)
            comm.bcast(buf, root=0, algorithm="bst")
            assert comm.last_result.algorithm == "gaspi_bcast_bst"
            comm.bcast(buf, root=0, algorithm="flat")
            assert comm.last_result.algorithm == "gaspi_bcast_flat"
            comm.reduce(np.ones(16), np.zeros(16), root=0, algorithm="bst")
            assert comm.last_result.algorithm == "gaspi_reduce_bst"
            return True

        assert all(spmd(2, worker))

    def test_alias_results_are_exact(self):
        def worker(rt):
            comm = Communicator(rt)
            return comm.allreduce(rank_vector(rt.rank, self.N), algorithm="ring")

        for out in spmd(4, worker):
            assert np.allclose(out, expected_sum(4, self.N))


class TestCoerceShimEquivalence:
    def test_loose_kwargs_build_the_same_policy(self):
        assert coerce_policy(None, threshold=0.25) == ConsistencyPolicy.data_threshold(0.25)
        assert coerce_policy(None, threshold=0.5, mode="processes") == (
            ConsistencyPolicy.process_threshold(0.5)
        )
        assert coerce_policy(None, slack=3) == ConsistencyPolicy.ssp(3)

    def test_policy_plus_loose_kwargs_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            coerce_policy(ConsistencyPolicy.strict(), threshold=0.5)
