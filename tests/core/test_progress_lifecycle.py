"""ProgressEngine background-thread lifecycle and mid-flight error handling.

The asynchronous progress thread (``comm.start_progress_thread()``) must:
complete outstanding handles without the caller pumping, be joined
exactly once by ``close()`` (idempotently), and survive a handle that
errors mid-flight — the error surfaces on ``handle.wait()``, the engine
drains, and later collectives on the same plan still work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator
from repro.gaspi import GaspiError
from repro.gaspi.runtime import GaspiRuntime

from tests.helpers import expected_sum, rank_vector, spmd


class ArmableExplodingRuntime(GaspiRuntime):
    """Delegating wrapper that fails every data-plane op while armed."""

    def __init__(self, base):
        self._base = base
        self.armed = False

    # -- identity -------------------------------------------------------- #
    @property
    def rank(self):
        return self._base.rank

    @property
    def size(self):
        return self._base.size

    # -- fault trigger ---------------------------------------------------- #
    def _maybe_explode(self):
        if self.armed:
            raise GaspiError(f"rank {self.rank}: injected mid-flight failure")

    # -- data plane (armed) ------------------------------------------------ #
    def write(self, *args, **kwargs):
        self._maybe_explode()
        return self._base.write(*args, **kwargs)

    def notify(self, *args, **kwargs):
        self._maybe_explode()
        return self._base.notify(*args, **kwargs)

    def write_notify(self, *args, **kwargs):
        self._maybe_explode()
        return self._base.write_notify(*args, **kwargs)

    # -- everything else delegates ----------------------------------------- #
    def segment_create(self, *args, **kwargs):
        return self._base.segment_create(*args, **kwargs)

    def segment_delete(self, *args, **kwargs):
        return self._base.segment_delete(*args, **kwargs)

    def segment_bind(self, *args, **kwargs):
        return self._base.segment_bind(*args, **kwargs)

    @property
    def supports_bind(self):
        return self._base.supports_bind

    def segment_view(self, *args, **kwargs):
        return self._base.segment_view(*args, **kwargs)

    def segment_size(self, *args, **kwargs):
        return self._base.segment_size(*args, **kwargs)

    def segment_read(self, *args, **kwargs):
        return self._base.segment_read(*args, **kwargs)

    def notify_waitsome(self, *args, **kwargs):
        return self._base.notify_waitsome(*args, **kwargs)

    def notify_reset(self, *args, **kwargs):
        return self._base.notify_reset(*args, **kwargs)

    def notify_peek(self, *args, **kwargs):
        return self._base.notify_peek(*args, **kwargs)

    def notify_probe(self, *args, **kwargs):
        return self._base.notify_probe(*args, **kwargs)

    def notify_drain(self, *args, **kwargs):
        return self._base.notify_drain(*args, **kwargs)

    def wait(self, *args, **kwargs):
        return self._base.wait(*args, **kwargs)

    def barrier(self, *args, **kwargs):
        return self._base.barrier(*args, **kwargs)

    def atomic_fetch_add(self, *args, **kwargs):
        return self._base.atomic_fetch_add(*args, **kwargs)


def test_background_thread_drives_handles_and_close_joins_once():
    """start_progress_thread → handles complete unpumped → close() joins."""
    elements = 256

    def worker(rt):
        comm = Communicator(rt)
        comm.start_progress_thread()
        handles = [
            comm.iallreduce(rank_vector(rt.rank, elements) * (tag + 1), tag=tag)
            for tag in range(3)
        ]
        # No manual pumping: the background thread must finish these.
        values = [h.wait(timeout=30.0).value.copy() for h in handles]
        engine = comm._progress
        thread = engine._thread
        assert engine.threaded and thread is not None and thread.is_alive()
        assert engine.active == 0
        comm.close()
        first_join = (not engine.threaded) and not thread.is_alive()
        comm.close()  # idempotent: the already-joined thread stays joined
        second_ok = not engine.threaded and not thread.is_alive()
        return values, first_join, second_ok

    expected = expected_sum(4, elements)
    for values, first_join, second_ok in spmd(4, worker):
        assert first_join and second_ok
        for tag, value in enumerate(values):
            np.testing.assert_allclose(value, expected * (tag + 1), rtol=1e-12)


def test_stop_and_restart_progress_thread_is_idempotent():
    def worker(rt):
        comm = Communicator(rt)
        comm.start_progress_thread()
        comm.start_progress_thread()  # second start is a no-op
        t1 = comm._progress._thread
        comm.stop_progress_thread()
        comm.stop_progress_thread()  # second stop is a no-op
        assert comm._progress._thread is None and not t1.is_alive()
        comm.start_progress_thread()  # restart after stop works
        h = comm.iallreduce(rank_vector(rt.rank, 64))
        h.wait(timeout=30.0)
        comm.close()
        return True

    assert all(spmd(4, worker))


def test_handle_error_mid_flight_surfaces_on_wait_and_engine_recovers():
    """A handle that errors mid-flight: wait() raises, the engine drains,
    the background thread survives, and the same plan works again."""
    elements = 128

    def worker(rt):
        wrapper = ArmableExplodingRuntime(rt)
        comm = Communicator(wrapper)
        comm.start_progress_thread()
        # Call 1 compiles the plan and completes normally.
        comm.iallreduce(rank_vector(rt.rank, elements)).wait(timeout=30.0)
        # Call 2 fails on its first data-plane operation, on every rank.
        wrapper.armed = True
        handle = comm.iallreduce(rank_vector(rt.rank, elements))
        with pytest.raises(GaspiError, match="injected mid-flight"):
            handle.wait(timeout=30.0)
        assert handle.done and handle.result is None
        assert isinstance(handle.error, GaspiError)
        assert comm._progress.active == 0  # the failed handle was retired
        # Call 3 (disarmed): the engine and the plan still work.
        wrapper.armed = False
        value = comm.iallreduce(rank_vector(rt.rank, elements)).wait(
            timeout=30.0
        ).value.copy()
        thread = comm._progress._thread
        assert thread is not None and thread.is_alive()  # survived the error
        comm.close()
        assert not thread.is_alive()
        return value

    expected = expected_sum(4, elements)
    for value in spmd(4, worker):
        np.testing.assert_allclose(value, expected, rtol=1e-12)


def test_wait_all_completes_after_a_mid_flight_error():
    """close()/wait_all() must not hang when a handle failed mid-flight."""

    def worker(rt):
        wrapper = ArmableExplodingRuntime(rt)
        comm = Communicator(wrapper)
        comm.iallreduce(rank_vector(rt.rank, 64)).wait(timeout=30.0)
        wrapper.armed = True
        failed = comm.iallreduce(rank_vector(rt.rank, 64))
        comm.wait_all(timeout=30.0)  # drains the failed handle, no raise
        assert failed.done and failed.error is not None
        wrapper.armed = False
        comm.close()
        return True

    assert all(spmd(4, worker))
