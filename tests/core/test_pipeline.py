"""Pipelined chunked data path: equivalence, tuning, schedules, faults.

The contract of the pipelined variants is *bit-identical equivalence*
with the monolithic implementations — chunking, zero-copy binding and
fused folds are pure executions of the same mathematical collective —
plus correct routing: large payloads route to them automatically, fault
plans route *around* them to the tolerant flat algorithms.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator, ConsistencyPolicy, FaultPlan
from repro.core.pipeline import ChunkLayout
from repro.core.registry import REGISTRY
from repro.core.tuning import (
    PIPELINE_MIN_BYTES,
    select_algorithm,
    select_chunk_bytes,
)
from repro.simulate.machine import skylake_fdr

from tests.helpers import rank_vector, spmd

PAIRS = (
    ("bcast", "bst", "bst_pipelined"),
    ("reduce", "bst", "bst_pipelined"),
    ("allreduce", "ring", "ring_pipelined"),
)


def _run_collective(comm, collective, algorithm, sendbuf, policy=None):
    """One collective call; returns the output buffer of this rank."""
    if collective == "bcast":
        buf = sendbuf.copy()
        comm.bcast(buf, root=0, algorithm=algorithm, policy=policy)
        return buf
    if collective == "reduce":
        recv = np.zeros_like(sendbuf)
        comm.reduce(sendbuf, recvbuf=recv, root=0, algorithm=algorithm, policy=policy)
        return recv
    out = np.empty_like(sendbuf)
    comm.allreduce(sendbuf, recvbuf=out, algorithm=algorithm, policy=policy)
    return out


class TestBitIdenticalEquivalence:
    """Pipelined vs monolithic on the threaded backend: exact equality."""

    @pytest.mark.parametrize("ranks", [4, 8])
    @pytest.mark.parametrize("collective,mono,pipe", PAIRS)
    def test_pipelined_matches_monolithic(self, ranks, collective, mono, pipe):
        n = 4096  # forced through multiple chunks below

        def worker(rt):
            comm = Communicator(rt)
            send = rank_vector(rt.rank, n)
            chunked = ConsistencyPolicy(chunk_bytes=4096)  # 8 chunks
            out = {}
            for label, algorithm, policy in (
                ("mono", mono, None),
                ("pipe", pipe, None),
                ("pipe_chunked", pipe, chunked),
            ):
                out[label] = _run_collective(comm, collective, algorithm, send, policy)
                # run twice: the second call exercises the cached plan's
                # cross-call handshakes
                out[label + "2"] = _run_collective(
                    comm, collective, algorithm, send, policy
                )
            comm.close()
            return out

        for result in spmd(ranks, worker, timeout=90.0):
            for label in ("pipe", "pipe_chunked", "mono2", "pipe2", "pipe_chunked2"):
                assert np.array_equal(result["mono"], result[label]), label

    @pytest.mark.parametrize("collective,mono,pipe", PAIRS)
    def test_cold_path_matches_cached(self, collective, mono, pipe):
        n = 2048

        def worker(rt):
            cold = Communicator(rt, plan_cache=0, segment_base=300)
            cached = Communicator(rt, segment_base=500)
            send = rank_vector(rt.rank, n)
            a = _run_collective(cold, collective, pipe, send)
            b = _run_collective(cached, collective, pipe, send)
            cold.close()
            cached.close()
            return a, b

        for a, b in spmd(4, worker):
            assert np.array_equal(a, b)

    def test_threshold_policies_match(self):
        n = 1024

        def worker(rt):
            comm = Communicator(rt)
            send = rank_vector(rt.rank, n)
            policy = ConsistencyPolicy.data_threshold(0.25)
            out = {}
            for collective, mono, pipe in PAIRS[:2]:
                out[collective] = (
                    _run_collective(comm, collective, mono, send, policy),
                    _run_collective(comm, collective, pipe, send, policy),
                )
            # process-threshold reduce
            pp = ConsistencyPolicy.process_threshold(0.75)
            out["reduce_procs"] = (
                _run_collective(comm, "reduce", "bst", send, pp),
                _run_collective(comm, "reduce", "bst_pipelined", send, pp),
            )
            comm.close()
            return out

        for result in spmd(8, worker, timeout=90.0):
            for label, (mono, pipe) in result.items():
                assert np.array_equal(mono, pipe), label

    def test_simulator_backend_attaches_pipelined_schedule(self):
        n = PIPELINE_MIN_BYTES // 8 + 64

        def worker(rt):
            comm = Communicator(rt, machine=skylake_fdr(4))
            send = rank_vector(rt.rank, n)
            out = comm.allreduce(send)  # auto -> pipelined at this size
            result = comm.last_result
            comm.close()
            return (
                out,
                result.algorithm,
                result.simulated_seconds,
                result.simulated.schedule_name,
            )

        outs = spmd(4, worker)
        reference = outs[0][0]
        for out, algorithm, seconds, schedule_name in outs:
            assert algorithm == "gaspi_allreduce_ring_pipelined"
            assert np.array_equal(out, reference)
            assert seconds is not None and seconds > 0
            assert "pipelined" in schedule_name


class TestTuningAndChunks:
    def test_auto_routes_large_payloads_to_pipelined(self):
        from repro.core.tuning import REDUCE_PIPELINE_MIN_BYTES

        for collective, threshold, expected in (
            ("bcast", PIPELINE_MIN_BYTES, "gaspi_bcast_bst_pipelined"),
            ("reduce", REDUCE_PIPELINE_MIN_BYTES, "gaspi_reduce_bst_pipelined"),
            ("allreduce", PIPELINE_MIN_BYTES, "gaspi_allreduce_ring_pipelined"),
        ):
            info = select_algorithm(collective, 8, threshold)
            assert info.name == expected
            small = select_algorithm(collective, 8, 4096)
            assert not small.capabilities.pipelined

    def test_reduce_crossover_sits_higher(self):
        from repro.core.tuning import REDUCE_PIPELINE_MIN_BYTES

        # Measured on this substrate: the monolithic reduce wins at a
        # quarter megabyte, the pipelined one beyond half a megabyte.
        below = select_algorithm("reduce", 8, REDUCE_PIPELINE_MIN_BYTES - 1)
        assert below.name == "gaspi_reduce_bst"

    def test_chunk_table_grows_with_payload(self):
        assert select_chunk_bytes(256 * 1024) is None  # single chunk
        assert select_chunk_bytes(1 << 20) == 512 * 1024
        assert select_chunk_bytes(4 << 20) == 1 << 20
        assert select_chunk_bytes(64 << 20) == 2 << 20

    def test_chunk_layout_bounds_cover_payload_exactly(self):
        layout = ChunkLayout.for_elements(1000, 8, 2048)  # 256-element chunks
        assert layout.num_chunks == 4
        assert layout.bounds[0] == (0, 256)
        assert layout.bounds[-1] == (768, 1000)
        covered = [b for bounds in layout.bounds for b in range(*bounds)]
        assert covered == list(range(1000))
        assert layout.byte_bounds(1) == (256 * 8, 512 * 8)

    def test_chunk_layout_degenerates_to_single_chunk(self):
        for chunk_bytes in (None, 1 << 30):
            layout = ChunkLayout.for_elements(100, 8, chunk_bytes)
            assert layout.num_chunks == 1
            assert layout.bounds == ((0, 100),)

    def test_policy_chunk_bytes_overrides_table(self):
        policy = ConsistencyPolicy(chunk_bytes=1024)
        assert policy.chunk_bytes == 1024
        assert "chunk_bytes=1024" in policy.describe()
        with pytest.raises(ValueError):
            ConsistencyPolicy(chunk_bytes=0)


class TestFaultPlansBypassPipelines:
    """Loss-capable fault plans must route around the pipelined path."""

    def test_auto_with_crash_plan_selects_tolerant_flat(self):
        n = PIPELINE_MIN_BYTES // 8 + 16  # large enough for the pipelined rules

        def worker(rt):
            plan = FaultPlan.single_crash(3, at_op=10_000)
            comm = Communicator(rt, faults=plan, detect_timeout=5.0)
            info = comm.resolve("bcast", n * 8)
            info_reduce = comm.resolve("reduce", n * 8)
            info_ar = comm.resolve("allreduce", n * 8)
            comm.close()
            return info.name, info_reduce.name, info_ar.name

        for bcast, reduce, allreduce in spmd(4, worker):
            assert bcast == "gaspi_bcast_tolerant"
            assert reduce == "gaspi_reduce_tolerant"
            assert allreduce == "gaspi_allreduce_tolerant"

    def test_nonblocking_with_fault_plan_completes_synchronously(self):
        n = 2048

        def worker(rt):
            plan = FaultPlan.single_crash(3, at_op=10_000)
            comm = Communicator(
                rt,
                faults=plan,
                detect_timeout=5.0,
                policy=ConsistencyPolicy.process_threshold(0.5, on_failure="complete"),
            )
            send = rank_vector(rt.rank, n)
            out = np.empty_like(send)
            handle = comm.iallreduce(send, recvbuf=out)
            done_at_return = handle.done
            result = handle.wait()
            comm.close()
            return done_at_return, result.algorithm

        for done, algorithm in spmd(4, worker):
            # No pipelined plan under a loss-capable fault plan: the call
            # ran synchronously through the tolerant algorithm.
            assert done
            assert algorithm == "gaspi_allreduce_tolerant"

    def test_pipelined_plans_skipped_when_faults_attached(self):
        n = PIPELINE_MIN_BYTES // 8 + 16

        def worker(rt):
            plan = FaultPlan.single_crash(2, at_op=10_000)
            comm = Communicator(
                rt,
                faults=plan,
                detect_timeout=5.0,
                policy=ConsistencyPolicy.process_threshold(0.5, on_failure="complete"),
            )
            send = rank_vector(rt.rank, n)
            comm.allreduce(send)
            algorithm = comm.last_result.algorithm
            stats = comm.plan_cache_stats()
            comm.close()
            return algorithm, stats.entries

        for algorithm, entries in spmd(4, worker):
            assert algorithm == "gaspi_allreduce_tolerant"
            assert entries == 0  # nothing was compiled


class TestPipelinedSchedules:
    """Simulator models: chunk waves overlap tree stages."""

    def test_bcast_waves_interleave_stages_and_chunks(self):
        sched = REGISTRY.build(
            "gaspi_bcast_bst_pipelined", 8, 1 << 20, chunk_bytes=1 << 18
        )
        assert sched.metadata["chunks"] == 4
        # 3 stages, 4 chunks -> 6 waves, each a round
        assert len(sched.rounds) == 6
        # total bytes conserved: every non-root rank receives the payload
        total = sum(m.nbytes for m in sched.messages())
        assert total == 7 * (1 << 20)

    def test_pipelining_shortens_simulated_time_for_large_payloads(self):
        from repro.simulate.executor import simulate_schedule

        machine = skylake_fdr(8)
        mono = REGISTRY.build("gaspi_bcast_bst", 8, 8 << 20)
        pipe = REGISTRY.build("gaspi_bcast_bst_pipelined", 8, 8 << 20, chunk_bytes=1 << 20)
        t_mono = simulate_schedule(mono, machine).total_time
        t_pipe = simulate_schedule(pipe, machine).total_time
        # The classic segmented-broadcast effect: S + C - 1 chunk times
        # instead of S full-payload times.
        assert t_pipe < t_mono

    def test_reduce_waves_run_deepest_stage_first(self):
        sched = REGISTRY.build(
            "gaspi_reduce_bst_pipelined", 8, 1 << 20, chunk_bytes=1 << 19
        )
        assert sched.metadata["chunks"] == 2
        first = sched.rounds[0].messages
        # wave 0 carries chunk 0 of the deepest stage only
        assert all(m.tag.endswith("chunk-0") for m in first)

    def test_ring_schedule_reports_sub_chunks(self):
        sched = REGISTRY.build(
            "gaspi_allreduce_ring_pipelined", 4, 4 << 20, chunk_bytes=1 << 18
        )
        assert sched.metadata["chunks"] == 4
        sched.validate()
