"""Functional correctness of the GASPI collectives on the threaded runtime.

Every collective is checked against a NumPy reference over several world
sizes, including non-power-of-two worlds where the algorithm supports
them, and under asynchronous delivery (real overlap) for the most
important ones.
"""

import numpy as np
import pytest

from repro.core import (
    Communicator,
    ReduceMode,
    alltoall,
    alltoallv,
    bst_bcast,
    bst_reduce,
    flat_bcast,
    notification_barrier,
    ring_allgather,
    ring_allreduce,
    threshold_elements,
)
from repro.gaspi import WorldConfig, run_spmd

from tests.helpers import expected_sum, rank_vector, spmd


SIZES = [1, 2, 3, 4, 5, 8]


# --------------------------------------------------------------------------- #
# Broadcast
# --------------------------------------------------------------------------- #
class TestBroadcast:
    @pytest.mark.parametrize("num_ranks", SIZES)
    def test_bst_full_broadcast(self, num_ranks):
        n = 257

        def worker(rt):
            buf = np.arange(n, dtype=np.float64) * 3.0 if rt.rank == 0 else np.zeros(n)
            result = bst_bcast(rt, buf, root=0, threshold=1.0)
            assert result.complete
            return buf

        results = spmd(num_ranks, worker)
        for buf in results:
            assert np.array_equal(buf, np.arange(n) * 3.0)

    @pytest.mark.parametrize("threshold", [0.25, 0.5, 0.75])
    def test_bst_threshold_broadcast_partial_prefix(self, threshold):
        n = 400

        def worker(rt):
            buf = np.arange(n, dtype=np.float64) if rt.rank == 0 else np.full(n, -1.0)
            result = bst_bcast(rt, buf, root=0, threshold=threshold)
            return buf, result

        results = spmd(4, worker)
        expect = threshold_elements(n, threshold)
        for rank, (buf, result) in enumerate(results):
            if rank == 0:
                continue
            assert np.array_equal(buf[:expect], np.arange(expect, dtype=np.float64))
            assert np.all(buf[expect:] == -1.0)  # untouched tail
            assert result.elements_received == expect
            assert not result.complete

    def test_bst_non_zero_root(self):
        def worker(rt):
            buf = np.full(64, 7.0) if rt.rank == 2 else np.zeros(64)
            bst_bcast(rt, buf, root=2)
            return buf

        for buf in spmd(5, worker):
            assert np.all(buf == 7.0)

    @pytest.mark.parametrize("num_ranks", [2, 4, 7])
    def test_flat_broadcast(self, num_ranks):
        def worker(rt):
            buf = np.full(50, 1.25) if rt.rank == 0 else np.zeros(50)
            flat_bcast(rt, buf, root=0)
            return buf

        for buf in spmd(num_ranks, worker):
            assert np.all(buf == 1.25)

    def test_bcast_under_async_delivery(self):
        def worker(rt):
            buf = np.arange(128, dtype=np.float64) if rt.rank == 0 else np.zeros(128)
            bst_bcast(rt, buf, root=0)
            return buf

        results = run_spmd(
            4, worker, world_config=WorldConfig(delivery="async", delivery_delay=0.0005), timeout=60
        )
        for buf in results:
            assert np.array_equal(buf, np.arange(128, dtype=np.float64))

    def test_invalid_threshold_rejected(self):
        def worker(rt):
            with pytest.raises(ValueError):
                bst_bcast(rt, np.zeros(8), threshold=0.0)
            return True

        assert spmd(1, worker) == [True]

    def test_result_reports_stage(self):
        def worker(rt):
            buf = np.zeros(16) if rt.rank else np.ones(16)
            res = bst_bcast(rt, buf, root=0)
            return res.stage

        stages = spmd(8, worker)
        assert stages[0] == 0
        assert stages[1] == 1
        assert stages[4] == 3


# --------------------------------------------------------------------------- #
# Reduce
# --------------------------------------------------------------------------- #
class TestReduce:
    @pytest.mark.parametrize("num_ranks", SIZES)
    def test_full_sum_reduce(self, num_ranks):
        n = 131

        def worker(rt):
            send = rank_vector(rt.rank, n)
            recv = np.zeros(n)
            bst_reduce(rt, send, recv, root=0, op="sum")
            return recv

        results = spmd(num_ranks, worker)
        assert np.allclose(results[0], expected_sum(num_ranks, n))

    @pytest.mark.parametrize("op,reference", [("max", np.maximum), ("min", np.minimum), ("prod", np.multiply)])
    def test_other_operators(self, op, reference):
        n = 40

        def worker(rt):
            send = rank_vector(rt.rank, n) + 2.0
            recv = np.zeros(n)
            bst_reduce(rt, send, recv, root=0, op=op)
            return recv

        results = spmd(4, worker)
        expected = rank_vector(0, n) + 2.0
        for r in range(1, 4):
            expected = reference(expected, rank_vector(r, n) + 2.0)
        assert np.allclose(results[0], expected)

    def test_data_threshold_reduces_prefix_only(self):
        n = 200

        def worker(rt):
            send = np.full(n, float(rt.rank + 1))
            recv = np.full(n, -5.0)
            res = bst_reduce(rt, send, recv, root=0, threshold=0.25, mode="data")
            return recv, res

        results = spmd(8, worker)
        recv0, res0 = results[0]
        expect_elems = threshold_elements(n, 0.25)
        assert np.allclose(recv0[:expect_elems], sum(range(1, 9)))
        assert np.all(recv0[expect_elems:] == -5.0)
        assert res0.elements_reduced == expect_elems

    def test_process_threshold_engages_subset(self):
        n = 64

        def worker(rt):
            send = np.ones(n)
            recv = np.zeros(n)
            res = bst_reduce(rt, send, recv, root=0, threshold=0.5, mode="processes")
            return recv, res

        results = spmd(8, worker)
        recv0, res0 = results[0]
        # At least half the processes contribute, but not necessarily all.
        assert 4 <= recv0[0] <= 8
        assert res0.contributors == int(recv0[0])
        participated = [res.participated for _recv, res in results]
        assert sum(participated) >= 4
        assert participated[0] is True

    def test_non_zero_root(self):
        def worker(rt):
            send = np.full(32, float(rt.rank))
            recv = np.zeros(32)
            bst_reduce(rt, send, recv, root=3, op="sum")
            return recv

        results = spmd(6, worker)
        assert np.allclose(results[3], sum(range(6)))

    def test_root_without_recvbuf_is_allowed(self):
        def worker(rt):
            res = bst_reduce(rt, np.ones(8), None, root=0)
            return res.participated

        assert all(spmd(4, worker))

    def test_invalid_mode_rejected(self):
        def worker(rt):
            with pytest.raises(ValueError):
                bst_reduce(rt, np.ones(8), mode="bogus")
            return True

        spmd(1, worker)


# --------------------------------------------------------------------------- #
# Ring allreduce
# --------------------------------------------------------------------------- #
class TestRingAllreduce:
    @pytest.mark.parametrize("num_ranks", SIZES)
    def test_sum_matches_numpy(self, num_ranks):
        n = 203

        def worker(rt):
            send = rank_vector(rt.rank, n)
            recv = np.zeros(n)
            ring_allreduce(rt, send, recv, op="sum")
            return recv

        results = spmd(num_ranks, worker)
        reference = expected_sum(num_ranks, n)
        for recv in results:
            assert np.allclose(recv, reference)

    def test_in_place_when_no_recvbuf(self):
        def worker(rt):
            buf = np.full(64, float(rt.rank + 1))
            ring_allreduce(rt, buf)
            return buf

        for buf in spmd(4, worker):
            assert np.allclose(buf, 1 + 2 + 3 + 4)

    def test_vector_shorter_than_world(self):
        """Chunks may be empty; the pipeline must still line up."""

        def worker(rt):
            buf = np.full(3, 1.0)
            ring_allreduce(rt, buf)
            return buf

        for buf in spmd(6, worker):
            assert np.allclose(buf, 6.0)

    def test_max_operator(self):
        def worker(rt):
            buf = np.array([float(rt.rank), -float(rt.rank)])
            ring_allreduce(rt, buf, op="max")
            return buf

        for buf in spmd(5, worker):
            assert np.array_equal(buf, [4.0, 0.0])

    def test_stats_byte_accounting(self):
        n = 96

        def worker(rt):
            stats = ring_allreduce(rt, np.ones(n))
            return stats

        results = spmd(4, worker)
        for stats in results:
            assert stats.steps == 2 * 3
            # every rank sends and receives the whole vector (2 passes, 1/P chunks)
            assert stats.bytes_sent == stats.bytes_received
            assert stats.bytes_sent == pytest.approx(2 * (4 - 1) * (n // 4) * 8, rel=0.1)

    def test_async_delivery(self):
        def worker(rt):
            buf = np.full(500, float(rt.rank + 1))
            ring_allreduce(rt, buf)
            return buf

        results = run_spmd(
            4, worker, world_config=WorldConfig(delivery="async"), timeout=60
        )
        for buf in results:
            assert np.allclose(buf, 10.0)

    def test_mismatched_recvbuf_rejected(self):
        def worker(rt):
            with pytest.raises(ValueError):
                ring_allreduce(rt, np.ones(8), np.zeros(4))
            return True

        spmd(2, worker)


# --------------------------------------------------------------------------- #
# Allgather / AlltoAll
# --------------------------------------------------------------------------- #
class TestAllgather:
    @pytest.mark.parametrize("num_ranks", SIZES)
    def test_gathers_blocks_in_rank_order(self, num_ranks):
        block = 13

        def worker(rt):
            send = np.full(block, float(rt.rank))
            return ring_allgather(rt, send)

        results = spmd(num_ranks, worker)
        expected = np.repeat(np.arange(num_ranks, dtype=np.float64), block)
        for out in results:
            assert np.array_equal(out, expected)

    def test_with_preallocated_recvbuf(self):
        def worker(rt):
            recv = np.zeros(4 * 3)
            out = ring_allgather(rt, np.full(3, float(rt.rank)), recv)
            assert out is recv
            return recv

        results = spmd(4, worker)
        assert np.array_equal(results[2], np.repeat(np.arange(4.0), 3))


class TestAlltoAll:
    @pytest.mark.parametrize("num_ranks", SIZES)
    def test_alltoall_permutes_blocks(self, num_ranks):
        block = 5

        def worker(rt):
            send = np.concatenate(
                [np.full(block, 100.0 * rt.rank + dst) for dst in range(rt.size)]
            )
            return alltoall(rt, send)

        results = spmd(num_ranks, worker)
        for rank, recv in enumerate(results):
            expected = np.concatenate(
                [np.full(block, 100.0 * src + rank) for src in range(num_ranks)]
            )
            assert np.array_equal(recv, expected)

    def test_alltoall_indivisible_length_rejected(self):
        def worker(rt):
            with pytest.raises(ValueError):
                alltoall(rt, np.ones(7))
            return True

        spmd(4, worker)

    @pytest.mark.parametrize("num_ranks", [2, 3, 4, 6])
    def test_alltoallv_variable_blocks(self, num_ranks):
        def worker(rt):
            send_counts = [(rt.rank + dst) % 3 + 1 for dst in range(rt.size)]
            recv_counts = [(src + rt.rank) % 3 + 1 for src in range(rt.size)]
            send = np.concatenate(
                [np.full(c, 10.0 * rt.rank + dst) for dst, c in enumerate(send_counts)]
            )
            recv = alltoallv(rt, send, send_counts, recv_counts)
            expected = np.concatenate(
                [np.full(c, 10.0 * src + rt.rank) for src, c in enumerate(recv_counts)]
            )
            assert np.array_equal(recv, expected)
            return True

        assert all(spmd(num_ranks, worker))

    def test_alltoallv_zero_counts(self):
        def worker(rt):
            send_counts = [0] * rt.size
            send_counts[(rt.rank + 1) % rt.size] = 2
            recv_counts = [0] * rt.size
            recv_counts[(rt.rank - 1) % rt.size] = 2
            send = np.full(2, float(rt.rank))
            recv = alltoallv(rt, send, send_counts, recv_counts)
            assert np.array_equal(recv, np.full(2, float((rt.rank - 1) % rt.size)))
            return True

        assert all(spmd(4, worker))


# --------------------------------------------------------------------------- #
# Barrier and Communicator façade
# --------------------------------------------------------------------------- #
class TestBarrierAndCommunicator:
    def test_notification_barrier_orders_phases(self):
        import threading

        flags = []
        lock = threading.Lock()

        def worker(rt):
            with lock:
                flags.append(("pre", rt.rank))
            notification_barrier(rt)
            with lock:
                flags.append(("post", rt.rank))
            return True

        spmd(6, worker)
        pres = [i for i, (p, _r) in enumerate(flags) if p == "pre"]
        posts = [i for i, (p, _r) in enumerate(flags) if p == "post"]
        assert max(pres) < min(posts)

    def test_communicator_end_to_end(self):
        def worker(rt):
            comm = Communicator(rt)
            assert comm.rank == rt.rank and comm.size == rt.size
            x = np.full(100, float(comm.rank + 1))
            total = comm.allreduce(x, algorithm="ring")
            assert np.allclose(total, sum(range(1, comm.size + 1)))
            buf = np.arange(60, dtype=np.float64) if comm.rank == 0 else np.zeros(60)
            comm.bcast(buf, root=0)
            assert np.array_equal(buf, np.arange(60, dtype=np.float64))
            recv = np.zeros(100)
            comm.reduce(x, recv, root=0)
            comm.barrier()
            gathered = comm.allgather(np.full(2, float(comm.rank)))
            assert gathered.size == 2 * comm.size
            comm.close()
            return True

        assert all(spmd(4, worker))

    def test_communicator_repeated_collectives_use_fresh_segments(self):
        def worker(rt):
            comm = Communicator(rt)
            for i in range(5):
                buf = np.full(32, float(i)) if comm.rank == 0 else np.zeros(32)
                comm.bcast(buf, root=0)
                assert np.all(buf == float(i))
            return True

        assert all(spmd(3, worker))

    def test_communicator_rejects_unknown_algorithms(self):
        def worker(rt):
            comm = Communicator(rt)
            with pytest.raises(ValueError):
                comm.allreduce(np.ones(4), algorithm="magic")
            with pytest.raises(ValueError):
                comm.bcast(np.ones(4), algorithm="magic")
            return True

        spmd(1, worker)
