"""Tests for sub-communicators: split()/dup() and the group runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator, run_spmd
from repro.gaspi import GaspiInvalidArgumentError, GroupRuntime, ThreadedWorld

from tests.helpers import expected_sum, rank_vector, spmd


class TestGroupRuntime:
    def test_rank_and_size_are_group_local(self):
        world = ThreadedWorld(4)
        try:
            sub = GroupRuntime(world.runtime(2), [1, 2, 3])
            assert sub.rank == 1
            assert sub.size == 3
            assert sub.to_base_rank(0) == 1
            assert sub.to_base_rank(2) == 3
        finally:
            world.close()

    def test_non_member_construction_rejected(self):
        world = ThreadedWorld(4)
        try:
            with pytest.raises(GaspiInvalidArgumentError, match="not part"):
                GroupRuntime(world.runtime(0), [1, 2])
            with pytest.raises(GaspiInvalidArgumentError, match="duplicate"):
                GroupRuntime(world.runtime(1), [1, 1, 2])
            with pytest.raises(GaspiInvalidArgumentError, match="outside"):
                GroupRuntime(world.runtime(1), [1, 7])
        finally:
            world.close()

    def test_member_order_defines_group_ranks(self):
        world = ThreadedWorld(4)
        try:
            sub = GroupRuntime(world.runtime(3), [3, 0])  # reordered on purpose
            assert sub.rank == 0
            assert sub.to_base_rank(1) == 0
        finally:
            world.close()


class TestSplit:
    def test_split_sum_covers_only_the_color_group(self):
        """The acceptance-criterion case: group-local reductions."""
        n = 64

        def worker(rt):
            comm = Communicator(rt)
            sub = comm.split(comm.rank % 2, key=comm.rank)
            assert sub is not None
            total = sub.allreduce(rank_vector(comm.rank, n))
            return comm.rank, sub.rank, sub.size, total

        results = spmd(6, worker)
        for world_rank, sub_rank, sub_size, total in results:
            group = [r for r in range(6) if r % 2 == world_rank % 2]
            assert sub_size == 3
            assert sub_rank == group.index(world_rank)
            expected = np.sum([rank_vector(r, n) for r in group], axis=0)
            assert np.allclose(total, expected)

    def test_split_key_reorders_group_ranks(self):
        def worker(rt):
            comm = Communicator(rt)
            # Reverse the ordering: highest world rank becomes group rank 0.
            sub = comm.split(0, key=comm.size - comm.rank)
            return comm.rank, sub.rank

        for world_rank, sub_rank in spmd(4, worker):
            assert sub_rank == 3 - world_rank

    def test_color_none_opts_out(self):
        def worker(rt):
            comm = Communicator(rt)
            sub = comm.split(7 if comm.rank < 2 else None)
            if comm.rank < 2:
                assert sub is not None and sub.size == 2
                out = sub.allreduce(np.full(8, float(comm.rank + 1)))
                return float(out[0])
            assert sub is None
            return None

        results = spmd(4, worker)
        assert results[:2] == [3.0, 3.0] and results[2:] == [None, None]

    def test_parent_remains_usable_and_interleaves_with_children(self):
        n = 32

        def worker(rt):
            comm = Communicator(rt)
            sub = comm.split(comm.rank // 2)
            sub_total = sub.allreduce(rank_vector(comm.rank, n))
            world_total = comm.allreduce(rank_vector(comm.rank, n))
            sub_total2 = sub.allreduce(np.full(4, 1.0))
            return sub_total, world_total, float(sub_total2[0])

        for world_rank, (sub_total, world_total, again) in enumerate(spmd(4, worker)):
            pair = [world_rank & ~1, world_rank | 1]
            assert np.allclose(
                sub_total, np.sum([rank_vector(r, n) for r in pair], axis=0)
            )
            assert np.allclose(world_total, expected_sum(4, n))
            assert again == 2.0

    def test_nested_split(self):
        def worker(rt):
            comm = Communicator(rt)
            half = comm.split(comm.rank // 4)  # two groups of 4
            quarter = half.split(half.rank // 2)  # four groups of 2
            out = quarter.allreduce(np.full(4, float(comm.rank)))
            return quarter.size, float(out[0])

        for world_rank, (size, total) in enumerate(spmd(8, worker)):
            partner = world_rank ^ 1
            assert size == 2
            assert total == float(world_rank + partner)

    def test_sub_communicator_collectives_beyond_allreduce(self):
        def worker(rt):
            comm = Communicator(rt)
            sub = comm.split(comm.rank % 2)
            # bcast from group root (group rank 0)
            buf = np.full(10, 42.0) if sub.rank == 0 else np.zeros(10)
            sub.bcast(buf, root=0)
            # group allgather
            gathered = sub.allgather(np.full(2, float(comm.rank)))
            sub.barrier()
            return buf, gathered

        for world_rank, (buf, gathered) in enumerate(spmd(4, worker)):
            assert np.all(buf == 42.0)
            group = [r for r in range(4) if r % 2 == world_rank % 2]
            assert np.allclose(gathered, np.repeat([float(r) for r in group], 2))

    def test_ssp_allreduce_on_power_of_two_subgroup(self):
        """SSP needs 2^k ranks; a split can carve that out of a 6-rank world."""

        def worker(rt):
            comm = Communicator(rt)
            sub = comm.split(0 if comm.rank < 4 else None)
            if sub is None:
                return None
            result = sub.allreduce_ssp(np.full(8, float(comm.rank + 1)), slack=0)
            sub.barrier()
            sub.close_ssp()
            return float(result.value[0])

        results = run_spmd(6, worker, timeout=60)
        assert results[:4] == [10.0] * 4 and results[4:] == [None, None]

    def test_split_color_validation(self):
        def worker(rt):
            comm = Communicator(rt)
            with pytest.raises(ValueError, match="color"):
                comm.split("red")
            return True

        assert all(spmd(1, worker))


class TestDup:
    def test_dup_preserves_rank_order_and_works(self):
        n = 16

        def worker(rt):
            comm = Communicator(rt)
            other = comm.dup()
            assert (other.rank, other.size) == (comm.rank, comm.size)
            assert other.is_subcommunicator
            a = comm.allreduce(rank_vector(comm.rank, n))
            b = other.allreduce(rank_vector(comm.rank, n))
            return np.allclose(a, b) and np.allclose(a, expected_sum(comm.size, n))

        assert all(spmd(4, worker))


class TestSimulatorBackend:
    def test_split_reductions_on_the_simulator_backend(self):
        """Acceptance criterion: group-local reductions with the schedule
        executor driving the chosen algorithm on a machine model."""
        from repro.simulate import skylake_fdr

        n = 48

        def worker(rt):
            comm = Communicator(rt, machine=skylake_fdr(8))
            sub = comm.split(comm.rank % 2, key=comm.rank)
            total = sub.allreduce(rank_vector(comm.rank, n))
            result = sub.last_result
            assert result.simulated is not None
            # the schedule simulated is the *group's*, not the world's
            assert result.simulated.num_ranks == sub.size == 4
            assert result.simulated_seconds > 0
            return comm.rank, total, result.algorithm, result.simulated_seconds

        results = spmd(8, worker)
        times = set()
        for world_rank, total, algorithm, seconds in results:
            group = [r for r in range(8) if r % 2 == world_rank % 2]
            expected = np.sum([rank_vector(r, n) for r in group], axis=0)
            assert np.allclose(total, expected)
            assert algorithm == "gaspi_allreduce_ssp_hypercube"  # 384 B is small
            times.add(seconds)
        assert len(times) == 1

    def test_simulated_time_tracks_policy(self):
        """A 25% data threshold must show up as a cheaper simulated bcast."""
        from repro.simulate import skylake_fdr

        from repro.core import ConsistencyPolicy

        def worker(rt):
            comm = Communicator(rt, machine=skylake_fdr(4))
            buf = np.ones(100_000) if comm.rank == 0 else np.zeros(100_000)
            comm.bcast(buf, root=0, policy=ConsistencyPolicy.data_threshold(0.25))
            partial = comm.last_result.simulated_seconds
            buf2 = np.ones(100_000) if comm.rank == 0 else np.zeros(100_000)
            comm.bcast(buf2, root=0)
            full = comm.last_result.simulated_seconds
            return partial, full

        for partial, full in spmd(4, worker):
            assert partial < full
