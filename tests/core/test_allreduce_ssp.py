"""Tests of the SSP allreduce (Algorithm 1): exactness at slack 0, staleness
bounds, wait accounting, logical clocks."""

import numpy as np
import pytest

from repro.core import Communicator, SSPAllreduce, ssp_allreduce_once
from repro.gaspi import run_spmd

from tests.helpers import expected_sum, rank_vector, spmd


POW2_SIZES = [1, 2, 4, 8]


class TestSingleShot:
    @pytest.mark.parametrize("num_ranks", POW2_SIZES)
    def test_slack_zero_single_call_is_exact(self, num_ranks):
        n = 65

        def worker(rt):
            return ssp_allreduce_once(rt, rank_vector(rt.rank, n), slack=0)

        results = spmd(num_ranks, worker)
        reference = expected_sum(num_ranks, n)
        for value in results:
            assert np.allclose(value, reference)

    def test_non_power_of_two_rejected(self):
        def worker(rt):
            with pytest.raises(ValueError):
                ssp_allreduce_once(rt, np.ones(8), slack=0)
            return True

        spmd(3, worker)

    def test_negative_slack_rejected(self):
        def worker(rt):
            with pytest.raises(ValueError):
                SSPAllreduce(rt, 8, slack=-1)
            return True

        spmd(1, worker)


class TestIterative:
    def test_slack_zero_lockstep_iterations_are_exact(self):
        """slack = 0 with lockstep iterations degenerates to an exact allreduce."""
        iterations = 5
        n = 32

        def worker(rt):
            coll = SSPAllreduce(rt, n, slack=0)
            outputs = []
            for it in range(iterations):
                contribution = np.full(n, float(rt.rank + 1) * (it + 1))
                result = coll.reduce(contribution)
                outputs.append(result.value.copy())
                rt.barrier()  # lockstep: nobody can run ahead
            rt.barrier()
            coll.close()
            return outputs

        results = spmd(4, worker)
        for it in range(iterations):
            expected = sum(r + 1 for r in range(4)) * (it + 1)
            for rank_outputs in results:
                assert np.allclose(rank_outputs[it], expected)

    def test_slack_allows_proceeding_with_initial_mailbox_state(self):
        """With slack >= 1 the very first iteration may legally use the
        (identity-initialised) mailboxes instead of waiting — that is the
        eventual-consistency trade-off the paper describes."""

        def worker(rt):
            coll = SSPAllreduce(rt, 8, slack=2)
            result = coll.reduce(np.full(8, float(rt.rank + 1)))
            rt.barrier()
            coll.close()
            # The result always contains at least the local contribution and
            # never exceeds the exact sum.
            exact = sum(r + 1 for r in range(rt.size))
            return float(rt.rank + 1) <= result.value[0] <= exact

        assert all(spmd(4, worker))

    def test_staleness_never_exceeds_slack(self):
        slack = 2
        iterations = 25

        def worker(rt):
            comm = Communicator(rt)
            staleness_seen = []
            for _ in range(iterations):
                result = comm.allreduce_ssp(np.ones(16), slack=slack)
                staleness_seen.append(result.stats.staleness)
            comm.barrier()
            comm.close_ssp()
            return staleness_seen

        results = spmd(4, worker)
        for per_rank in results:
            assert all(0 <= s <= slack for s in per_rank)

    def test_clock_advances_every_call(self):
        def worker(rt):
            coll = SSPAllreduce(rt, 8, slack=1)
            clocks = []
            for _ in range(5):
                result = coll.reduce(np.ones(8))
                clocks.append(result.stats.clock)
                rt.barrier()
            rt.barrier()
            coll.close()
            return clocks

        for clocks in spmd(2, worker):
            assert clocks == [1, 2, 3, 4, 5]

    def test_explicit_clock_override(self):
        def worker(rt):
            coll = SSPAllreduce(rt, 4, slack=0)
            result = coll.reduce(np.ones(4), clock=7)
            rt.barrier()
            coll.close()
            return result.stats.clock

        assert spmd(2, worker) == [7, 7]

    def test_totals_accumulate(self):
        def worker(rt):
            coll = SSPAllreduce(rt, 8, slack=1)
            for _ in range(4):
                coll.reduce(np.ones(8))
                rt.barrier()
            totals = coll.totals
            rt.barrier()
            coll.close()
            return totals

        for totals in spmd(2, worker):
            assert totals.calls == 4
            assert len(totals.per_call) == 4
            assert totals.wait_time >= 0.0

    def test_result_clock_lower_bound(self):
        """result.clock >= clock - slack is the SSP guarantee."""
        slack = 3

        def worker(rt):
            comm = Communicator(rt)
            ok = True
            for _ in range(20):
                result = comm.allreduce_ssp(np.ones(8), slack=slack)
                ok = ok and (result.clock >= result.stats.clock - slack)
            comm.barrier()
            comm.close_ssp()
            return ok

        assert all(spmd(8, worker))

    def test_wrong_contribution_size_rejected(self):
        def worker(rt):
            coll = SSPAllreduce(rt, 8, slack=0)
            with pytest.raises(ValueError):
                coll.reduce(np.ones(4))
            rt.barrier()
            coll.close()
            return True

        spmd(2, worker)

    def test_use_after_close_rejected(self):
        def worker(rt):
            coll = SSPAllreduce(rt, 8, slack=0)
            rt.barrier()
            coll.close()
            with pytest.raises(RuntimeError):
                coll.reduce(np.ones(8))
            return True

        spmd(2, worker)


class TestSlackBehaviour:
    def test_larger_slack_waits_less(self):
        """With a straggler, slack > 0 must reduce the fast ranks' wait time."""
        iterations = 12
        import time

        def worker(rt, slack):
            comm = Communicator(rt)
            total_wait = 0.0
            for it in range(iterations):
                if rt.rank == rt.size - 1:
                    time.sleep(0.004)  # the straggler
                result = comm.allreduce_ssp(np.ones(64), slack=slack)
                total_wait += result.stats.wait_time
            comm.barrier()
            comm.close_ssp()
            return total_wait

        wait_sync = sum(run_spmd(4, worker, 0, timeout=120)[:-1])
        wait_ssp = sum(run_spmd(4, worker, 4, timeout=120)[:-1])
        assert wait_ssp < wait_sync

    def test_slack_zero_requires_fresh_data_from_all(self):
        """The result at slack 0 (with lockstep) contains every rank's data."""

        def worker(rt):
            coll = SSPAllreduce(rt, 16, slack=0)
            result = coll.reduce(np.full(16, 10.0 ** rt.rank))
            rt.barrier()
            coll.close()
            return result.value[0]

        values = spmd(4, worker)
        assert all(abs(v - 1111.0) < 1e-9 for v in values)
