"""Unit tests of the virtual topologies (BST, hypercube, ring, k-nomial)."""

import pytest

from repro.core.topology import (
    BinomialTree,
    Hypercube,
    KnomialTree,
    Ring,
    chunk_bounds,
    chunk_sizes,
    dissemination_schedule,
)


class TestBinomialTree:
    def test_paper_example_eight_nodes(self):
        """Figure 3 of the paper: stages double the involved processes."""
        tree = BinomialTree(8)
        assert tree.children(0) == [1, 2, 4]
        assert tree.children(1) == [3, 5]
        assert tree.children(2) == [6]
        assert tree.children(3) == [7]
        assert tree.children(4) == []
        assert tree.parent(0) is None
        assert tree.parent(7) == 3
        assert tree.parent(6) == 2
        assert tree.parent(4) == 0

    def test_stage_structure(self):
        tree = BinomialTree(8)
        assert tree.ranks_by_stage() == {0: [0], 1: [1], 2: [2, 3], 3: [4, 5, 6, 7]}
        assert tree.num_stages() == 3
        assert tree.depth() == 3

    def test_every_rank_reaches_root(self):
        for P in (1, 2, 3, 5, 8, 13, 16, 31, 32):
            tree = BinomialTree(P)
            for r in range(P):
                hops = 0
                node = r
                while tree.parent(node) is not None:
                    node = tree.parent(node)
                    hops += 1
                    assert hops <= P
                assert node == 0

    def test_children_parent_consistency(self):
        for P in (2, 7, 16, 21):
            tree = BinomialTree(P)
            for r in range(P):
                for child in tree.children(r):
                    assert tree.parent(child) == r

    def test_non_zero_root_relabelling(self):
        tree = BinomialTree(8, root=3)
        assert tree.parent(3) is None
        assert 3 not in tree.children(3)
        covered = {3}
        frontier = [3]
        while frontier:
            node = frontier.pop()
            for child in tree.children(node):
                assert child not in covered
                covered.add(child)
                frontier.append(child)
        assert covered == set(range(8))

    def test_leaves_and_descendants(self):
        tree = BinomialTree(8)
        assert set(tree.leaves()) == {4, 5, 6, 7}
        assert tree.descendants(1) == [3, 5, 7]
        assert tree.descendants(0) == list(range(1, 8))

    def test_participating_ranks_drop_deepest_leaves_first(self):
        tree = BinomialTree(8)
        half = tree.participating_ranks(0.5)
        assert len(half) == 4
        assert 0 in half
        # Stage-3 ranks (4..7) are the first to be dropped.
        assert all(r not in half for r in (5, 6, 7))

    def test_participating_ranks_stay_connected(self):
        for P in (8, 16, 32):
            tree = BinomialTree(P)
            for frac in (0.25, 0.4, 0.5, 0.75, 1.0):
                kept = set(tree.participating_ranks(frac))
                assert 0 in kept
                for r in kept - {0}:
                    assert tree.parent(r) in kept

    def test_participating_ranks_threshold_respected(self):
        tree = BinomialTree(32)
        for frac in (0.25, 0.5, 0.75, 1.0):
            kept = tree.participating_ranks(frac)
            assert len(kept) >= int(frac * 32)

    def test_participating_75_and_100_share_depth(self):
        """Paper observation behind Figure 10: 75 % and 100 % perform alike."""
        tree = BinomialTree(32)
        kept75 = tree.participating_ranks(0.75)
        depth75 = max(tree.stage_of(r) for r in kept75)
        assert depth75 == tree.depth()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            BinomialTree(0)
        with pytest.raises(ValueError):
            BinomialTree(4, root=4)
        with pytest.raises(ValueError):
            BinomialTree(4).participating_ranks(0.0)


class TestHypercube:
    def test_partners_pattern_matches_paper_figure2(self):
        cube = Hypercube(8)
        assert cube.partner(0, 0) == 1
        assert cube.partner(0, 1) == 2
        assert cube.partner(0, 2) == 4
        assert cube.partners(5) == [4, 7, 1]

    def test_partner_symmetry(self):
        cube = Hypercube(16)
        for r in range(16):
            for k in range(cube.dimensions):
                assert cube.partner(cube.partner(r, k), k) == r

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            Hypercube(6)

    def test_single_rank(self):
        cube = Hypercube(1)
        assert cube.dimensions == 0
        assert cube.partners(0) == []

    def test_step_out_of_range(self):
        with pytest.raises(ValueError):
            Hypercube(8).partner(0, 3)


class TestRing:
    def test_neighbours(self):
        ring = Ring(4)
        assert ring.next_rank(3) == 0
        assert ring.prev_rank(0) == 3

    def test_scatter_reduce_chunk_indices_match_paper(self):
        """Paper: at step k node i sends chunk i-k and receives chunk i-k-1."""
        ring = Ring(5)
        assert ring.scatter_reduce_send_chunk(2, 0) == 2
        assert ring.scatter_reduce_recv_chunk(2, 0) == 1
        # the received chunk is what the predecessor sent
        for step in range(4):
            for i in range(5):
                assert ring.scatter_reduce_recv_chunk(i, step) == ring.scatter_reduce_send_chunk(
                    ring.prev_rank(i), step
                )

    def test_allgather_chunk_indices_match_paper(self):
        ring = Ring(5)
        for step in range(4):
            for i in range(5):
                assert ring.allgather_recv_chunk(i, step) == ring.allgather_send_chunk(
                    ring.prev_rank(i), step
                )

    def test_scatter_reduce_final_ownership(self):
        """After P-1 steps rank i owns the fully reduced chunk (i+1) mod P."""
        P = 6
        ring = Ring(P)
        for i in range(P):
            last_received = ring.scatter_reduce_recv_chunk(i, P - 2)
            assert last_received == (i + 1) % P


class TestKnomialTree:
    def test_radix_two_matches_binomial_sizes(self):
        tree = KnomialTree(8, radix=2)
        sizes = [len(tree.children(r)) for r in range(8)]
        assert sum(sizes) == 7  # every non-root has exactly one parent

    def test_all_nodes_connected(self):
        for P in (5, 9, 16):
            for radix in (2, 3, 4):
                tree = KnomialTree(P, radix=radix)
                for r in range(P):
                    node, hops = r, 0
                    while tree.parent(node) is not None:
                        node = tree.parent(node)
                        hops += 1
                        assert hops <= P
                    assert node == 0

    def test_higher_radix_is_shallower(self):
        assert KnomialTree(64, radix=8).num_stages() <= KnomialTree(64, radix=2).num_stages()

    def test_invalid_radix(self):
        with pytest.raises(ValueError):
            KnomialTree(4, radix=1)


class TestDissemination:
    def test_number_of_rounds(self):
        assert len(dissemination_schedule(8, 0)) == 3
        assert len(dissemination_schedule(9, 0)) == 4
        assert len(dissemination_schedule(1, 0)) == 0

    def test_send_recv_symmetry(self):
        P = 8
        for k in range(3):
            for r in range(P):
                steps = dissemination_schedule(P, r)
                partner = steps[k].send_to
                partner_steps = dissemination_schedule(P, partner)
                assert partner_steps[k].recv_from == r


class TestChunking:
    def test_chunks_cover_everything_once(self):
        for total in (0, 1, 7, 16, 100):
            for chunks in (1, 3, 7, 16):
                ranges = [chunk_bounds(total, chunks, i) for i in range(chunks)]
                assert ranges[0][0] == 0
                assert ranges[-1][1] == total
                for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
                    assert a1 == b0

    def test_chunk_sizes_balanced(self):
        sizes = chunk_sizes(10, 4)
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_chunk_index(self):
        with pytest.raises(ValueError):
            chunk_bounds(10, 4, 4)
