"""Test package."""
