"""Property-style equivalence: plan-cached and cold paths are bit-identical.

The plan cache is a pure execution optimisation — for every collective,
policy and backend, the compiled plan must deliver exactly the bytes the
cold path delivers, with the same ``last_result`` surface
(``algorithm``, ``missing_ranks``, the per-algorithm status detail).
These tests run each scenario twice per communicator flavour (the second
cached call is the true hot path) and compare everything bitwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator, ConsistencyPolicy, FaultPlan
from repro.simulate import skylake_fdr

from tests.helpers import rank_vector, spmd

#: (collective, algorithm, policy, kwargs) scenarios exercised on both paths.
SCENARIOS = [
    ("bcast", "bst", ConsistencyPolicy.strict(), {}),
    ("bcast", "bst", ConsistencyPolicy.data_threshold(0.25), {}),
    ("bcast", "flat", ConsistencyPolicy.strict(), {}),
    ("bcast", "bst", ConsistencyPolicy.strict(), {"root": 2}),
    ("reduce", "bst", ConsistencyPolicy.strict(), {}),
    ("reduce", "bst", ConsistencyPolicy.data_threshold(0.5), {}),
    ("reduce", "bst", ConsistencyPolicy.process_threshold(0.75), {}),
    ("reduce", "bst", ConsistencyPolicy.strict(), {"op": "max", "root": 1}),
    ("allreduce", "ring", ConsistencyPolicy.strict(), {}),
    ("allreduce", "ring", ConsistencyPolicy.strict(), {"op": "min"}),
    ("allreduce", "hypercube", ConsistencyPolicy.strict(), {}),
]


def _run_scenario(comm, collective, algorithm, policy, kwargs, elements, calls=2):
    """Run the collective ``calls`` times; return per-call observables."""
    rank = comm.rank
    root = kwargs.get("root", 0)
    op = kwargs.get("op", "sum")
    out = []
    for _ in range(calls):
        if collective == "bcast":
            buffer = (
                rank_vector(99, elements)
                if rank == root
                else np.zeros(elements, dtype=np.float64)
            )
            result = comm.bcast(buffer, root=root, policy=policy, algorithm=algorithm)
            payload = buffer
            detail_fields = (result.elements_received, result.stage)
        elif collective == "reduce":
            recvbuf = np.zeros(elements) if rank == root else None
            result = comm.reduce(
                rank_vector(rank, elements),
                recvbuf=recvbuf,
                root=root,
                op=op,
                policy=policy,
                algorithm=algorithm,
            )
            payload = np.zeros(0) if recvbuf is None else recvbuf
            detail_fields = (
                result.participated,
                result.elements_reduced,
                result.contributors,
            )
        else:  # allreduce
            comm.allreduce(
                rank_vector(rank, elements), op=op, policy=policy, algorithm=algorithm
            )
            result = comm.last_result
            payload = result.value
            detail_fields = ()
        out.append(
            {
                "bytes": payload.tobytes(),
                "algorithm": result.algorithm,
                "missing": tuple(result.missing_ranks),
                "detail": detail_fields,
            }
        )
    return out


@pytest.mark.parametrize("ranks", [4, 8])
@pytest.mark.parametrize(
    "collective,algorithm,policy,kwargs",
    SCENARIOS,
    ids=[f"{c}-{a}-{p.describe()}-{sorted(k)}" for c, a, p, k in SCENARIOS],
)
def test_cached_equals_cold_threaded(ranks, collective, algorithm, policy, kwargs):
    elements = 100

    def worker(rt):
        cold = Communicator(rt, plan_cache=0, segment_base=200)
        cached = Communicator(rt, segment_base=10_000)
        cold_calls = _run_scenario(
            cold, collective, algorithm, policy, kwargs, elements
        )
        cached_calls = _run_scenario(
            cached, collective, algorithm, policy, kwargs, elements
        )
        stats = cached.plan_cache_stats()
        cold.close()
        cached.close()
        return cold_calls, cached_calls, (stats.hits, stats.misses)

    for cold_calls, cached_calls, (hits, misses) in spmd(ranks, worker):
        assert misses == 1 and hits == 1  # second call ran on the compiled plan
        for cold_call, cached_call in zip(cold_calls, cached_calls):
            assert cached_call["bytes"] == cold_call["bytes"]  # bit-identical
            assert cached_call["algorithm"] == cold_call["algorithm"]
            assert cached_call["missing"] == cold_call["missing"]
            assert cached_call["detail"] == cold_call["detail"]


@pytest.mark.parametrize(
    "collective,algorithm,policy,kwargs",
    [
        ("bcast", "bst", ConsistencyPolicy.data_threshold(0.25), {}),
        ("reduce", "bst", ConsistencyPolicy.process_threshold(0.75), {}),
        ("allreduce", "ring", ConsistencyPolicy.strict(), {}),
        ("allreduce", "hypercube", ConsistencyPolicy.strict(), {}),
    ],
    ids=["bcast", "reduce", "allreduce-ring", "allreduce-hypercube"],
)
def test_cached_equals_cold_on_the_simulator(collective, algorithm, policy, kwargs):
    """The cached schedule must simulate to the cold path's exact time."""
    elements = 64

    def worker(rt):
        machine = skylake_fdr(rt.size)
        cold = Communicator(rt, plan_cache=0, segment_base=200, machine=machine)
        cached = Communicator(rt, segment_base=10_000, machine=machine)
        _run_scenario(cold, collective, algorithm, policy, kwargs, elements)
        cold_sim = cold.last_result.simulated_seconds
        _run_scenario(cached, collective, algorithm, policy, kwargs, elements)
        cached_sim = cached.last_result.simulated_seconds
        values_equal = (
            cached.last_result.value is None
            or cold.last_result.value is None
            or np.array_equal(
                np.asarray(cached.last_result.value),
                np.asarray(cold.last_result.value),
            )
        )
        cold.close()
        cached.close()
        return cold_sim, cached_sim, values_equal

    for cold_sim, cached_sim, values_equal in spmd(4, worker):
        assert cold_sim is not None and cold_sim > 0
        assert cached_sim == cold_sim
        assert values_equal


def test_degraded_paths_are_identical_with_and_without_plan_cache():
    """Loss-capable fault plans bypass planning — results must not change.

    Runs the same crash scenario on a plan-cache-enabled and a disabled
    communicator: identical degraded values, ``missing_ranks`` and zero
    plan-cache activity on the enabled one.
    """
    crash = 3
    policy = ConsistencyPolicy(threshold=0.5, mode="processes", on_failure="complete")

    def run(plan_cache):
        def worker(rt):
            comm = Communicator(
                rt,
                faults=FaultPlan.single_crash(crash, at_op=0),
                detect_timeout=0.3,
                policy=policy,
                plan_cache=plan_cache,
            )
            if rt.rank == crash:
                with pytest.raises(Exception):
                    comm.allreduce(rank_vector(rt.rank, 50))
                comm.close()
                return None
            value = comm.allreduce(rank_vector(rt.rank, 50))
            missing = tuple(comm.last_result.missing_ranks)
            stats = comm.plan_cache_stats()
            comm.close()
            return value.tobytes(), missing, stats.entries

        return spmd(4, worker)

    with_cache = run(16)
    without_cache = run(0)
    for rank, (a, b) in enumerate(zip(with_cache, without_cache)):
        if rank == crash:
            assert a is None and b is None
            continue
        # The degraded value folds contributions in arrival order, which
        # races between independent runs (cold path included) — compare
        # numerically; the structural outcome must match exactly.
        np.testing.assert_allclose(
            np.frombuffer(a[0]), np.frombuffer(b[0]), rtol=1e-12
        )
        assert a[1] == b[1] == (crash,)
        assert a[2] == 0  # the fault plan kept planning disabled
