"""Cross-backend equivalence: threaded and shm results are bit-identical.

The :class:`~repro.gaspi.shm.ShmRuntime` is a second concrete substrate
under every layer built so far — the registry-routed collectives, the
compiled plans, the pipelined chunked data path and the nonblocking
progress engine.  Correctness must hold *bit-identically* across
backends: every fold order is deterministic by design (child-order folds
in the BST reduce, the ring's fixed chunk rotation), so for each
``collective x {monolithic, pipelined} x {blocking, nonblocking}``
scenario the bytes a rank observes on the shm world must equal the bytes
the same rank observes on the threaded world, at 4 and at 8 ranks, on
both the cold (first call) and the plan-cached (second call) path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator, ConsistencyPolicy, run_backend

from tests.helpers import rank_vector

#: Chunked policy for the pipelined scenarios: 300 float64 elements at
#: 256-byte chunks → ~10 pipeline chunks, so the chunk protocol (and not
#: its single-chunk degenerate form) is what gets compared.
_ELEMENTS = 300
_PIPELINE_POLICY = ConsistencyPolicy(chunk_bytes=256)

#: (collective, algorithm alias, policy) — the acceptance matrix.
SCENARIOS = [
    ("bcast", "bst", None),
    ("bcast", "bst_pipelined", _PIPELINE_POLICY),
    ("reduce", "bst", None),
    ("reduce", "bst_pipelined", _PIPELINE_POLICY),
    ("allreduce", "ring", None),
    ("allreduce", "ring_pipelined", _PIPELINE_POLICY),
    ("allreduce", "hypercube", None),
]


def _observed_bytes(comm, collective, algorithm, policy, nonblocking):
    """One call of the scenario; returns the payload bytes this rank sees."""
    rank = comm.rank
    kwargs = {} if policy is None else {"policy": policy}
    if collective == "bcast":
        buffer = (
            rank_vector(99, _ELEMENTS)
            if rank == 0
            else np.zeros(_ELEMENTS, dtype=np.float64)
        )
        if nonblocking:
            comm.ibcast(buffer, root=0, algorithm=algorithm, **kwargs).wait()
        else:
            comm.bcast(buffer, root=0, algorithm=algorithm, **kwargs)
        return buffer.tobytes()
    if collective == "reduce":
        recvbuf = np.zeros(_ELEMENTS) if rank == 0 else None
        if nonblocking:
            comm.ireduce(
                rank_vector(rank, _ELEMENTS),
                recvbuf=recvbuf,
                root=0,
                algorithm=algorithm,
                **kwargs,
            ).wait()
        else:
            comm.reduce(
                rank_vector(rank, _ELEMENTS),
                recvbuf=recvbuf,
                root=0,
                algorithm=algorithm,
                **kwargs,
            )
        return b"" if recvbuf is None else recvbuf.tobytes()
    # allreduce
    recvbuf = np.zeros(_ELEMENTS)
    if nonblocking:
        comm.iallreduce(
            rank_vector(rank, _ELEMENTS),
            recvbuf=recvbuf,
            algorithm=algorithm,
            **kwargs,
        ).wait()
    else:
        comm.allreduce(
            rank_vector(rank, _ELEMENTS),
            recvbuf=recvbuf,
            algorithm=algorithm,
            **kwargs,
        )
    return recvbuf.tobytes()


def _worker(runtime, collective, algorithm, policy, nonblocking):
    comm = Communicator(runtime)
    try:
        # Two calls: the first compiles the plan (cold), the second runs
        # the true plan-cached hot path; both must agree across backends.
        return [
            _observed_bytes(comm, collective, algorithm, policy, nonblocking)
            for _ in range(2)
        ]
    finally:
        comm.close()


@pytest.mark.parametrize("ranks", [4, 8])
@pytest.mark.parametrize("nonblocking", [False, True], ids=["blocking", "nonblocking"])
@pytest.mark.parametrize(
    "collective,algorithm,policy",
    SCENARIOS,
    ids=[f"{c}-{a}" for c, a, _ in SCENARIOS],
)
def test_threaded_and_shm_bit_identical(ranks, nonblocking, collective, algorithm, policy):
    threaded = run_backend(
        ranks, _worker, collective, algorithm, policy, nonblocking,
        backend="threaded", timeout=90,
    )
    shm = run_backend(
        ranks, _worker, collective, algorithm, policy, nonblocking,
        backend="shm", timeout=90,
    )
    for rank in range(ranks):
        for call in range(2):
            assert shm[rank][call] == threaded[rank][call], (
                f"rank {rank}, call {call}: shm bytes diverge from threaded"
            )
