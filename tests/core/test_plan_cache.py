"""Plan cache behaviour: hits/misses, LRU, pinning, teardown, isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator, ConsistencyPolicy, FaultPlan
from repro.core.plan import PlanCache, PlanKey
from repro.core.registry import REGISTRY

from tests.helpers import rank_vector, spmd


class TestPlanCacheStats:
    def test_zero_dispatch_stats_are_safe(self):
        """Hit-rate reporting must not trip over the zero-dispatch case."""

        def worker(rt):
            comm = Communicator(rt)
            stats = comm.plan_cache_stats()  # before any collective
            snapshot = (
                stats.hits,
                stats.misses,
                stats.dispatches,
                stats.hit_rate,
                stats.describe(),
            )
            comm.close()
            return snapshot

        for hits, misses, dispatches, hit_rate, described in spmd(2, worker):
            assert (hits, misses, dispatches) == (0, 0, 0)
            assert hit_rate == 0.0  # no ZeroDivisionError
            assert "no plannable dispatches" in described

    def test_describe_after_dispatches(self):
        def worker(rt):
            comm = Communicator(rt)
            data = rank_vector(comm.rank, 256)
            for _ in range(3):
                comm.allreduce(data.copy())
            described = comm.plan_cache_stats().describe()
            comm.close()
            return described

        for described in spmd(2, worker):
            assert "2/3 hits" in described and "66.7%" in described

    def test_repeated_allreduce_hits_the_cache(self):
        def worker(rt):
            comm = Communicator(rt)
            x = rank_vector(rt.rank, 256)
            for _ in range(5):
                comm.allreduce(x, algorithm="ring")
            stats = comm.plan_cache_stats()
            comm.close()
            return stats

        for stats in spmd(4, worker):
            assert stats.misses == 1  # first call compiled the plan
            assert stats.hits == 4  # every repeat was served from cache
            assert stats.entries == 1
            assert stats.hit_rate == pytest.approx(0.8)

    def test_distinct_shapes_get_distinct_plans(self):
        def worker(rt):
            comm = Communicator(rt)
            comm.allreduce(rank_vector(rt.rank, 64), algorithm="ring")
            comm.allreduce(rank_vector(rt.rank, 128), algorithm="ring")  # new nbytes
            comm.allreduce(
                rank_vector(rt.rank, 64, np.float32), algorithm="ring"
            )  # new dtype
            comm.allreduce(rank_vector(rt.rank, 64), op="max", algorithm="ring")  # new op
            comm.allreduce(rank_vector(rt.rank, 64), algorithm="ring")  # hit
            stats = comm.plan_cache_stats()
            comm.close()
            return stats

        for stats in spmd(2, worker):
            assert stats.misses == 4
            assert stats.hits == 1
            assert stats.entries == 4

    def test_zero_capacity_disables_planning(self):
        def worker(rt):
            comm = Communicator(rt, plan_cache=0)
            x = rank_vector(rt.rank, 64)
            for _ in range(3):
                comm.allreduce(x, algorithm="ring")
            stats = comm.plan_cache_stats()
            comm.close()
            return stats

        for stats in spmd(2, worker):
            assert stats.hits == 0
            assert stats.misses == 0
            assert stats.entries == 0

    def test_loss_capable_fault_plan_disables_planning(self):
        def worker(rt):
            comm = Communicator(
                rt,
                faults=FaultPlan.single_crash(3, at_op=10_000),
                detect_timeout=0.2,
                policy=ConsistencyPolicy(threshold=0.5, mode="processes",
                                         on_failure="complete"),
            )
            x = rank_vector(rt.rank, 64)
            comm.allreduce(x)
            comm.allreduce(x)
            stats = comm.plan_cache_stats()
            comm.close()
            return stats

        for stats in spmd(4, worker):
            assert stats.entries == 0
            assert stats.hits == 0

    def test_slack_policies_stay_on_the_cold_path(self):
        def worker(rt):
            comm = Communicator(rt)
            x = rank_vector(rt.rank, 32)
            comm.allreduce(x, policy=ConsistencyPolicy.ssp(2), algorithm="hypercube")
            stats = comm.plan_cache_stats()
            comm.close()
            return stats

        for stats in spmd(4, worker):
            assert stats.entries == 0


class TestLruEviction:
    def test_eviction_frees_the_oldest_plan_segment(self):
        def worker(rt):
            comm = Communicator(rt, plan_cache=2)
            for elements in (16, 32, 64):  # three shapes, capacity two
                comm.allreduce(rank_vector(rt.rank, elements), algorithm="ring")
            stats = comm.plan_cache_stats()
            comm.close()
            return stats, len(rt.world._segments[rt.rank])

        for stats, open_segments in spmd(2, worker):
            assert stats.entries == 2
            assert stats.evictions == 1
            # close() freed the cached plans; the evicted one was freed
            # at eviction time — nothing may remain open.
            assert open_segments == 0

    def test_pinned_plans_survive_eviction(self):
        def worker(rt):
            comm = Communicator(rt, plan_cache=2)
            handle = comm.persistent("allreduce", np.empty(16), algorithm="ring")
            for elements in (32, 64, 128):
                comm.allreduce(rank_vector(rt.rank, elements), algorithm="ring")
            # The pinned 16-element plan must still be served from cache.
            before = comm.plan_cache_stats().hits
            result = handle(np.full(16, 1.0))
            after = comm.plan_cache_stats().hits
            handle.close()
            comm.close()
            return before, after, float(result.value[0])

        for before, after, value in spmd(2, worker):
            assert after == before + 1
            assert value == 2.0


class TestPersistentHandles:
    def test_persistent_allreduce_matches_implicit_calls(self):
        def worker(rt):
            comm = Communicator(rt)
            x = rank_vector(rt.rank, 512)
            expected = comm.allreduce(np.array(x), algorithm="ring")
            with comm.persistent("allreduce", np.empty(512), algorithm="ring") as h:
                got = h(np.array(x)).value
                calls = h.calls
            comm.close()
            return expected, got, calls

        for expected, got, calls in spmd(4, worker):
            np.testing.assert_array_equal(expected, got)
            assert calls >= 1

    def test_persistent_bcast_and_reduce(self):
        def worker(rt):
            comm = Communicator(rt)
            hb = comm.persistent("bcast", np.empty(64), root=1, algorithm="bst")
            buf = np.full(64, float(rt.rank))
            hb(buf)
            hr = comm.persistent("reduce", np.empty(64), root=0, op="max",
                                 algorithm="bst")
            out = np.zeros(64) if rt.rank == 0 else None
            hr(np.full(64, float(rt.rank)), recvbuf=out)
            hb.close()
            hr.close()
            comm.close()
            return buf[0], None if out is None else out[0]

        results = spmd(4, worker)
        for rank, (bval, rval) in enumerate(results):
            assert bval == 1.0  # broadcast from root 1
            if rank == 0:
                assert rval == 3.0  # max over ranks 0..3

    def test_mismatched_payload_is_rejected(self):
        def worker(rt):
            comm = Communicator(rt)
            h = comm.persistent("allreduce", np.empty(64), algorithm="ring")
            try:
                with pytest.raises(ValueError, match="does not match"):
                    h(np.empty(128))
            finally:
                # Recover collectively so every rank exits cleanly.
                h(np.full(64, 1.0))
                h.close()
                comm.close()
            return True

        assert all(spmd(2, worker))

    def test_unplannable_algorithm_is_rejected(self):
        def worker(rt):
            comm = Communicator(rt)
            with pytest.raises(ValueError, match="does not support compiled plans"):
                comm.persistent("allgather", np.empty(16))
            comm.close()
            return True

        assert all(spmd(2, worker))

    def test_pins_are_reference_counted_across_same_shape_handles(self):
        # Closing one of two handles over the same shape must not expose
        # the surviving handle's plan to LRU eviction.
        def worker(rt):
            comm = Communicator(rt, plan_cache=2)
            h1 = comm.persistent("allreduce", np.empty(64), algorithm="ring")
            h2 = comm.persistent("allreduce", np.empty(64), algorithm="ring")
            h1.close()
            for elements in (32, 128, 256):  # pressure the 2-entry cache
                comm.allreduce(rank_vector(rt.rank, elements), algorithm="ring")
            result = h2(np.full(64, 1.0))  # must still be served, not torn down
            h2.close()
            comm.close()
            return float(result.value[0])

        assert spmd(2, worker) == [2.0, 2.0]

    def test_closed_handle_refuses_calls(self):
        def worker(rt):
            comm = Communicator(rt)
            h = comm.persistent("allreduce", np.empty(16), algorithm="ring")
            h.close()
            with pytest.raises(ValueError, match="already closed"):
                h(np.empty(16))
            comm.close()
            return True

        assert all(spmd(2, worker))


class TestTeardown:
    def test_close_frees_each_pooled_segment_exactly_once(self):
        def worker(rt):
            comm = Communicator(rt)
            comm.allreduce(rank_vector(rt.rank, 64), algorithm="ring")
            comm.bcast(np.zeros(64), root=0, algorithm="bst")
            open_before = len(rt.world._segments[rt.rank])
            comm.close()
            open_after = len(rt.world._segments[rt.rank])
            comm.close()  # idempotent — must not raise or double-free
            return open_before, open_after

        for open_before, open_after in spmd(4, worker):
            assert open_before == 2  # the two pooled plan workspaces
            assert open_after == 0

    def test_close_survives_a_faulty_runtime_wrapper(self):
        # A benign (timing-only) fault plan keeps planning enabled; close()
        # must free the pooled segments through the FaultyRuntime wrapper.
        def worker(rt):
            comm = Communicator(rt, faults=FaultPlan(delay={0: 0.0}))
            comm.allreduce(rank_vector(rt.rank, 32), algorithm="ring")
            assert comm.plan_cache_stats().entries == 1
            comm.close()
            return len(rt.world._segments[rt.rank])

        assert spmd(2, worker) == [0, 0]


class TestSplitIsolation:
    def test_children_never_share_plans_or_pools_with_the_parent(self):
        def worker(rt):
            comm = Communicator(rt)
            comm.allreduce(rank_vector(rt.rank, 64), algorithm="ring")
            parent_key = next(iter(comm._plans._plans))
            child = comm.split(color=rt.rank % 2)
            child.allreduce(rank_vector(rt.rank, 64), algorithm="ring")
            child_key = next(iter(child._plans._plans))
            child_plan = child._plans._plans[child_key]
            parent_plan = comm._plans._plans[parent_key]
            # Disjoint caches, disjoint pooled segments.
            assert child._plans is not comm._plans
            assert child_plan.segment_id != parent_plan.segment_id
            assert parent_key not in child._plans
            # Parent's cache is untouched by the child's dispatches.
            parent_stats = comm.plan_cache_stats()
            child.close()
            # Closing the child must not free the parent's pooled segment:
            # the parent plan still serves calls.
            comm.allreduce(rank_vector(rt.rank, 64), algorithm="ring")
            comm.close()
            return parent_stats.entries, parent_stats.misses

        for entries, misses in spmd(4, worker):
            assert entries == 1
            assert misses == 1


class TestPlanKeyAndCacheUnits:
    def test_plan_key_ignores_payload_values(self):
        info = REGISTRY.get("gaspi_allreduce_ring")

        class FakeRuntime:
            size = 4

        from repro.core.policy import CollectiveRequest

        a = PlanKey.from_request(
            info, FakeRuntime(), CollectiveRequest("allreduce", sendbuf=np.zeros(8))
        )
        b = PlanKey.from_request(
            info, FakeRuntime(), CollectiveRequest("allreduce", sendbuf=np.ones(8))
        )
        assert a == b
        c = PlanKey.from_request(
            info, FakeRuntime(), CollectiveRequest("allreduce", sendbuf=np.zeros(9))
        )
        assert a != c

    def test_cache_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(-1)

    def test_barrier_has_no_plan(self):
        info = REGISTRY.get("gaspi_barrier_dissemination")

        class FakeRuntime:
            size = 4

        from repro.core.policy import CollectiveRequest

        assert (
            PlanKey.from_request(info, FakeRuntime(), CollectiveRequest("barrier"))
            is None
        )
