"""Tests for the policy-driven, registry-routed Communicator API."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator, ConsistencyPolicy, select_algorithm
from repro.core import REGISTRY, CollectiveRequest, CollectiveResult, coerce_policy
from repro.core.policy import STRICT
from repro.core.reduce import ReduceMode
from repro.core.tuning import ALLREDUCE_SMALL, TuningRule, TuningTable

from tests.helpers import expected_sum, rank_vector, spmd


class TestConsistencyPolicy:
    def test_defaults_are_strict(self):
        policy = ConsistencyPolicy()
        assert policy.threshold == 1.0
        assert policy.mode is ReduceMode.DATA
        assert policy.slack == 0
        assert policy.is_strict

    @pytest.mark.parametrize("threshold", [0.0, -0.5, 1.5])
    def test_invalid_threshold_rejected(self, threshold):
        with pytest.raises(ValueError, match="threshold"):
            ConsistencyPolicy(threshold=threshold)

    def test_invalid_slack_rejected(self):
        with pytest.raises(ValueError, match="slack"):
            ConsistencyPolicy(slack=-1)
        with pytest.raises(ValueError, match="slack"):
            ConsistencyPolicy(slack=1.5)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ConsistencyPolicy(mode="sideways")

    def test_constructors(self):
        assert ConsistencyPolicy.strict().is_strict
        data = ConsistencyPolicy.data_threshold(0.25)
        assert data.threshold == 0.25 and data.mode is ReduceMode.DATA
        procs = ConsistencyPolicy.process_threshold(0.5)
        assert procs.mode is ReduceMode.PROCESSES
        ssp = ConsistencyPolicy.ssp(4)
        assert ssp.slack == 4 and not ssp.is_strict

    def test_mode_accepts_strings(self):
        assert ConsistencyPolicy(mode="processes").mode is ReduceMode.PROCESSES

    def test_describe(self):
        assert ConsistencyPolicy().describe() == "strict"
        assert "25% data" in ConsistencyPolicy.data_threshold(0.25).describe()
        assert "slack=3" in ConsistencyPolicy.ssp(3).describe()

    def test_coerce_rejects_policy_plus_loose_kwargs(self):
        with pytest.raises(ValueError, match="not both"):
            coerce_policy(ConsistencyPolicy(), threshold=0.5)

    def test_coerce_builds_policy_from_loose_kwargs(self):
        policy = coerce_policy(None, threshold=0.5, mode="processes")
        assert policy.threshold == 0.5 and policy.mode is ReduceMode.PROCESSES
        assert coerce_policy(None) is STRICT


class TestRegistryCapabilities:
    def test_gaspi_collectives_are_executable(self):
        for name in REGISTRY.names(family="gaspi"):
            assert REGISTRY.get(name).executable, name

    def test_capability_metadata_exposed(self):
        info = REGISTRY.get("gaspi_allreduce_ssp_hypercube")
        assert info.capabilities.requires_power_of_two
        assert info.capabilities.supports_slack
        info = REGISTRY.get("gaspi_reduce_bst")
        assert info.capabilities.supports_threshold
        assert set(info.capabilities.modes) == {"data", "processes"}

    def test_supports_reports_reason(self):
        info = REGISTRY.get("gaspi_allreduce_ssp_hypercube")
        ok, _ = info.supports(8)
        assert ok
        ok, reason = info.supports(6)
        assert not ok and "power-of-two" in reason

    def test_check_request_error_messages(self):
        ring = REGISTRY.get("gaspi_allreduce_ring")
        with pytest.raises(ValueError, match="threshold"):
            ring.check_request(4, ConsistencyPolicy.data_threshold(0.5))
        with pytest.raises(ValueError, match="slack"):
            ring.check_request(4, ConsistencyPolicy.ssp(2))
        bcast = REGISTRY.get("gaspi_bcast_bst")
        with pytest.raises(ValueError, match="'processes'"):
            bcast.check_request(4, ConsistencyPolicy.process_threshold(0.5))

    def test_schedule_only_entries_refuse_to_run(self):
        info = REGISTRY.get("mpi_allreduce_mpi2_rabenseifner")
        assert not info.executable
        with pytest.raises(ValueError, match="schedule-only"):
            info.run(None, CollectiveRequest(collective="allreduce"))

    def test_executable_filter_in_names(self):
        runnable = REGISTRY.names(collective="allreduce", executable=True)
        assert "gaspi_allreduce_ring" in runnable
        assert "mpi_allreduce_mpi2_rabenseifner" not in runnable

    def test_twosided_baselines_declare_float64(self):
        info = REGISTRY.get("mpi_allreduce_mpi8_ring")
        assert info.capabilities.dtype == "float64"
        ok, reason = info.supports(4, dtype=np.float32)
        assert not ok and "float64" in reason


class TestAutoSelection:
    def test_small_and_large_payloads_pick_different_algorithms(self):
        small = select_algorithm("allreduce", 8, 1024)
        large = select_algorithm("allreduce", 8, 16 << 20)
        assert small.name == "gaspi_allreduce_ssp_hypercube"
        # PR 4: large payloads route to the chunked pipelined ring.
        assert large.name == "gaspi_allreduce_ring_pipelined"
        assert small.name != large.name

    def test_threshold_is_the_documented_crossover(self):
        at = select_algorithm("allreduce", 8, ALLREDUCE_SMALL)
        above = select_algorithm("allreduce", 8, ALLREDUCE_SMALL + 1)
        assert at.name == "gaspi_allreduce_ssp_hypercube"
        assert above.name == "gaspi_allreduce_ring"

    def test_non_power_of_two_world_skips_the_hypercube(self):
        info = select_algorithm("allreduce", 6, 1024)
        assert info.name == "gaspi_allreduce_ring"

    def test_mpi_family_table(self):
        assert (
            select_algorithm("allreduce", 8, 1024, family="mpi").name
            == "mpi_allreduce_mpi1_recursive_doubling"
        )
        assert (
            select_algorithm("allreduce", 8, 16 << 20, family="mpi").name
            == "mpi_allreduce_mpi7_shumilin_ring"
        )

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            select_algorithm("allreduce", 8, 1024, family="nccl")

    def test_empty_table_reports_skipped_candidates(self):
        table = TuningTable(
            "only-hypercube",
            [TuningRule("allreduce", "gaspi_allreduce_ssp_hypercube")],
        )
        with pytest.raises(ValueError, match="power-of-two"):
            table.select("allreduce", 6, 1024)

    def test_communicator_resolve_without_execution(self):
        def worker(rt):
            comm = Communicator(rt)
            small = comm.resolve("allreduce", 1024)
            large = comm.resolve("allreduce", 16 << 20)
            return small.name, large.name

        for small, large in spmd(4, worker):
            assert small == "gaspi_allreduce_ssp_hypercube"
            assert large == "gaspi_allreduce_ring_pipelined"

    def test_live_auto_dispatch_records_selected_algorithm(self):
        n_small = 16  # 128 bytes -> hypercube on 4 ranks
        n_large = (ALLREDUCE_SMALL // 8) + 64  # just past the crossover

        def worker(rt):
            comm = Communicator(rt)
            total_small = comm.allreduce(rank_vector(comm.rank, n_small))
            algo_small = comm.last_result.algorithm
            total_large = comm.allreduce(rank_vector(comm.rank, n_large))
            algo_large = comm.last_result.algorithm
            return total_small, algo_small, total_large, algo_large

        for total_small, algo_small, total_large, algo_large in spmd(4, worker):
            assert algo_small == "gaspi_allreduce_ssp_hypercube"
            assert algo_large == "gaspi_allreduce_ring"
            assert np.allclose(total_small, expected_sum(4, n_small))
            assert np.allclose(total_large, expected_sum(4, n_large))


class TestCommunicatorDispatch:
    def test_unknown_algorithm_lists_registered_names(self):
        def worker(rt):
            comm = Communicator(rt)
            with pytest.raises(ValueError, match="gaspi_allreduce_ring"):
                comm.allreduce(np.ones(4), algorithm="magic")
            return True

        assert all(spmd(1, worker))

    def test_algorithm_collective_mismatch_rejected(self):
        def worker(rt):
            comm = Communicator(rt)
            with pytest.raises(ValueError, match="implements"):
                comm.allreduce(np.ones(4), algorithm="gaspi_bcast_bst")
            return True

        assert all(spmd(1, worker))

    def test_v1_aliases_still_resolve(self):
        def worker(rt):
            comm = Communicator(rt)
            out = comm.allreduce(np.full(8, float(comm.rank + 1)), algorithm="ring")
            assert comm.last_result.algorithm == "gaspi_allreduce_ring"
            comm.allreduce(np.ones(8), algorithm="hypercube")
            assert comm.last_result.algorithm == "gaspi_allreduce_ssp_hypercube"
            return float(out[0])

        assert spmd(4, worker) == [10.0] * 4

    def test_policy_routed_partial_bcast(self):
        n = 100

        def worker(rt):
            comm = Communicator(rt)
            buf = np.linspace(0.0, 1.0, n) if comm.rank == 0 else np.zeros(n)
            result = comm.bcast(
                buf, root=0, policy=ConsistencyPolicy.data_threshold(0.25)
            )
            assert isinstance(result, CollectiveResult)
            assert result.algorithm in ("gaspi_bcast_bst", "gaspi_bcast_flat")
            return comm.rank, result.elements_received, buf

        reference = np.linspace(0.0, 1.0, n)
        for rank, received, buf in spmd(4, worker):
            if rank == 0:
                assert received == n
            else:
                assert received == n // 4
                assert np.allclose(buf[: n // 4], reference[: n // 4])
                assert np.all(buf[n // 4 :] == 0.0)

    def test_unsupported_policy_fails_before_communication(self):
        def worker(rt):
            comm = Communicator(rt)
            with pytest.raises(ValueError, match="threshold"):
                comm.allreduce(
                    np.ones(8),
                    policy=ConsistencyPolicy.data_threshold(0.5),
                    algorithm="ring",
                )
            return True

        assert all(spmd(2, worker))

    def test_communicator_default_policy_applies(self):
        n = 40

        def worker(rt):
            comm = Communicator(rt, policy=ConsistencyPolicy.data_threshold(0.5))
            buf = np.ones(n) if comm.rank == 0 else np.zeros(n)
            result = comm.bcast(buf, root=0)
            return comm.rank, result.elements_received

        for rank, received in spmd(4, worker):
            assert received == (n if rank == 0 else n // 2)

    def test_deprecated_threshold_kwarg_warns_and_works(self):
        def worker(rt):
            comm = Communicator(rt)
            buf = np.ones(16) if comm.rank == 0 else np.zeros(16)
            with pytest.warns(DeprecationWarning):
                result = comm.bcast(buf, root=0, threshold=0.5)
            return result.elements_received if comm.rank else 16

        assert all(r in (8, 16) for r in spmd(2, worker))

    def test_mpi_baseline_executes_through_the_same_dispatch(self):
        n = 96

        def worker(rt):
            comm = Communicator(rt)
            out = comm.allreduce(
                rank_vector(comm.rank, n), algorithm="mpi_allreduce_mpi8_ring"
            )
            assert comm.last_result.algorithm == "mpi_allreduce_mpi8_ring"
            return out

        for out in spmd(4, worker):
            assert np.allclose(out, expected_sum(4, n))

    def test_mpi_baseline_rejects_wrong_dtype(self):
        def worker(rt):
            comm = Communicator(rt)
            with pytest.raises(ValueError, match="float64"):
                comm.allreduce(
                    np.ones(8, dtype=np.float32),
                    algorithm="mpi_allreduce_mpi8_ring",
                )
            return True

        assert all(spmd(2, worker))

    def test_v1_positional_threshold_gets_a_migration_error(self):
        """A bare float in the policy slot must fail with a clear hint,
        not an AttributeError deep inside capability checking."""

        def worker(rt):
            comm = Communicator(rt)
            with pytest.raises(TypeError, match="ConsistencyPolicy"):
                comm.bcast(np.ones(8), 0, 0.25)  # v1: threshold was 3rd arg
            return True

        assert all(spmd(1, worker))

    def test_unknown_family_rejected_at_construction(self):
        def worker(rt):
            with pytest.raises(ValueError, match="family"):
                Communicator(rt, family="nccl")
            return True

        assert all(spmd(1, worker))

    def test_mpi_auto_family_is_executable_end_to_end(self):
        """With family='mpi', auto must fall back to executable entries
        where the Intel-preferred variant is schedule-only."""
        n = (ALLREDUCE_SMALL // 8) + 64  # medium payload: rabenseifner is
        # the simulation pick, but it has no runner

        def worker(rt):
            comm = Communicator(rt, family="mpi")
            out = comm.allreduce(rank_vector(comm.rank, n))
            return out, comm.last_result.algorithm

        for out, algorithm in spmd(4, worker):
            assert algorithm == "mpi_allreduce_mpi8_ring"
            assert np.allclose(out, expected_sum(4, n))

    def test_mpi_alltoall_runner_rejects_alltoallv(self):
        def worker(rt):
            comm = Communicator(rt)
            counts = [2] * comm.size
            with pytest.raises(ValueError, match="uniform blocks"):
                comm.alltoallv(
                    np.ones(2 * comm.size),
                    counts,
                    counts,
                    algorithm="mpi_alltoall_pairwise",
                )
            return True

        assert all(spmd(2, worker))

    def test_simulator_backend_attaches_schedule_times(self):
        from repro.simulate import skylake_fdr

        def worker(rt):
            comm = Communicator(rt, machine=skylake_fdr(4))
            comm.allreduce(np.ones(64))
            first = comm.last_result
            assert first.simulated is not None
            assert first.simulated.num_ranks == comm.size
            assert first.simulated_seconds > 0
            return first.simulated_seconds

        times = spmd(4, worker)
        assert len(set(times)) == 1  # deterministic model, same on every rank
