"""Nonblocking collectives: handles, progress engine, overlap machinery."""

from __future__ import annotations

import numpy as np

from repro import Communicator
from repro.ml.sgd import OverlapAllreduce

from tests.helpers import expected_sum, rank_vector, spmd


class TestHandles:
    def test_ibcast_wait_returns_result(self):
        n = 4096

        def worker(rt):
            comm = Communicator(rt)
            buf = np.full(n, float(rt.rank))
            handle = comm.ibcast(buf, root=0)
            result = handle.wait()
            state = (
                handle.done,
                result.algorithm,
                bool(np.allclose(buf, 0.0)),
                handle.result is result,
            )
            comm.close()
            return state

        for done, algorithm, correct, same in spmd(4, worker):
            assert done and correct and same
            assert algorithm == "gaspi_bcast_bst_pipelined"

    def test_iallreduce_test_polls_to_completion(self):
        n = 2048

        def worker(rt):
            comm = Communicator(rt)
            send = rank_vector(rt.rank, n)
            out = np.empty_like(send)
            handle = comm.iallreduce(send, recvbuf=out)
            spins = 0
            while not handle.test():
                spins += 1
                assert spins < 1_000_000
            comm.close()
            return out

        outs = spmd(4, worker)
        expect = expected_sum(4, n)
        for out in outs:
            assert np.allclose(out, expect)

    def test_ireduce_matches_blocking(self):
        n = 2048

        def worker(rt):
            comm = Communicator(rt)
            send = rank_vector(rt.rank, n)
            nb = np.zeros_like(send)
            comm.ireduce(send, recvbuf=nb, root=0).wait()
            blocking = np.zeros_like(send)
            comm.reduce(send, recvbuf=blocking, root=0, algorithm="bst_pipelined")
            comm.close()
            return nb, blocking

        for nb, blocking in spmd(4, worker):
            assert np.array_equal(nb, blocking)

    def test_non_pipelined_algorithm_completes_synchronously(self):
        n = 1024

        def worker(rt):
            comm = Communicator(rt)
            send = rank_vector(rt.rank, n)
            out = np.empty_like(send)
            handle = comm.iallreduce(send, recvbuf=out, algorithm="hypercube")
            state = handle.done, handle.result.algorithm
            comm.close()
            return state, out

        for (done, algorithm), out in spmd(4, worker):
            assert done
            assert algorithm == "gaspi_allreduce_ssp_hypercube"
            assert np.allclose(out, expected_sum(4, n))


class TestTaggedConcurrency:
    def test_tagged_handles_run_concurrent_plans(self):
        n = 1024
        buckets = 3

        def worker(rt):
            comm = Communicator(rt)
            send = rank_vector(rt.rank, n)
            outs = [np.empty_like(send) for _ in range(buckets)]
            handles = [
                comm.iallreduce(send, recvbuf=out, tag=i)
                for i, out in enumerate(outs)
            ]
            comm.wait_all()
            stats = comm.plan_cache_stats()
            done = all(h.done for h in handles)
            comm.close()
            return outs, stats.entries, done

        for outs, entries, done in spmd(4, worker):
            assert done
            assert entries == buckets  # one compiled plan per tag
            expect = expected_sum(4, n)
            for out in outs:
                assert np.allclose(out, expect)

    def test_same_plan_handles_serialize_in_fifo_order(self):
        n = 1024
        rounds = 3

        def worker(rt):
            comm = Communicator(rt)
            sends = [rank_vector(rt.rank, n) + i for i in range(rounds)]
            outs = [np.empty(n) for _ in range(rounds)]
            handles = [
                comm.iallreduce(sends[i], recvbuf=outs[i]) for i in range(rounds)
            ]
            comm.wait_all()
            entries = comm.plan_cache_stats().entries
            done = all(h.done for h in handles)
            comm.close()
            return outs, entries, done

        for outs, entries, done in spmd(4, worker):
            assert done
            assert entries == 1  # all three shared one plan, serialized
            base = expected_sum(4, n)
            for i, out in enumerate(outs):
                assert np.allclose(out, base + 4 * i)

    def test_blocking_call_drains_in_flight_handle_on_same_plan(self):
        """A blocking collective must not race a live handle on its plan."""
        n = 2048

        def worker(rt):
            comm = Communicator(rt)
            a = rank_vector(rt.rank, n)
            b = rank_vector(rt.rank + 100, n)
            out_a = np.empty(n)
            out_b = np.empty(n)
            handle = comm.iallreduce(a, recvbuf=out_a)
            # Same shape -> same PlanKey: dispatch drains the handle first.
            comm.allreduce(b, recvbuf=out_b, algorithm="ring_pipelined")
            drained_before_blocking = handle.done
            handle.wait()
            comm.close()
            return drained_before_blocking, out_a, out_b

        for drained, out_a, out_b in spmd(4, worker):
            assert drained
            assert np.allclose(out_a, expected_sum(4, n))
            assert np.allclose(
                out_b, np.sum([rank_vector(r + 100, n) for r in range(4)], axis=0)
            )

    def test_close_drains_in_flight_handles(self):
        n = 1024

        def worker(rt):
            comm = Communicator(rt)
            send = rank_vector(rt.rank, n)
            out = np.empty_like(send)
            handle = comm.iallreduce(send, recvbuf=out)
            comm.close()  # must drain, not tear down under the pipeline
            return handle.done, out

        for done, out in spmd(4, worker):
            assert done
            assert np.allclose(out, expected_sum(4, n))


class TestProgressThread:
    def test_background_thread_completes_handles(self):
        n = 4096

        def worker(rt):
            comm = Communicator(rt)
            comm.start_progress_thread()
            send = rank_vector(rt.rank, n)
            outs = [np.empty_like(send) for _ in range(3)]
            handles = [
                comm.iallreduce(send, recvbuf=out, tag=i)
                for i, out in enumerate(outs)
            ]
            for handle in handles:
                handle.wait()
            threaded = comm._progress.threaded
            comm.stop_progress_thread()
            stopped = not comm._progress.threaded
            comm.close()
            return outs, threaded, stopped

        for outs, threaded, stopped in spmd(4, worker):
            assert threaded and stopped
            expect = expected_sum(4, n)
            for out in outs:
                assert np.allclose(out, expect)

    def test_start_stop_are_idempotent(self):
        def worker(rt):
            comm = Communicator(rt)
            comm.start_progress_thread()
            comm.start_progress_thread()
            comm.stop_progress_thread()
            comm.stop_progress_thread()
            comm.close()  # also stops (already stopped) thread
            return True

        assert all(spmd(2, worker))


class TestOverlapAllreduce:
    def test_exchange_matches_blocking_sum(self):
        n = 8 * 512

        def worker(rt):
            comm = Communicator(rt)
            gradient = rank_vector(rt.rank, n)
            exchanger = OverlapAllreduce(comm, n, buckets=8)
            out = exchanger.exchange(gradient).copy()
            again = exchanger.exchange(gradient).copy()
            exchanger.close()
            return out, again

        expect = expected_sum(4, 8 * 512)
        for out, again in spmd(4, worker):
            assert np.allclose(out, expect)
            assert np.array_equal(out, again)

    def test_issue_finish_split(self):
        n = 4 * 256

        def worker(rt):
            comm = Communicator(rt)
            gradient = rank_vector(rt.rank, n)
            exchanger = OverlapAllreduce(comm, n, buckets=4, progress_thread=False)
            for bucket in range(4):
                exchanger.issue(gradient, bucket)
                comm.progress()
            out = exchanger.finish().copy()
            exchanger.close()
            return out

        for out in spmd(4, worker):
            assert np.allclose(out, expected_sum(4, 4 * 256))
