"""Tests of reduction operators and the communication-schedule data model."""

import numpy as np
import pytest

from repro.core.reduction_ops import MAX, MIN, PROD, SUM, ReductionOp, available_ops, get_op, register_op
from repro.core.schedule import (
    CommunicationSchedule,
    LocalCompute,
    Message,
    Protocol,
    Round,
    merge_sequential,
)


class TestReductionOps:
    def test_sum(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0, 4.0])
        assert np.array_equal(SUM(a, b), [4.0, 6.0])

    def test_builtins_resolution(self):
        for name in ("sum", "prod", "min", "max"):
            assert get_op(name).name == name
        assert get_op(SUM) is SUM

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_op("median")

    def test_reduce_into_in_place(self):
        acc = np.array([1.0, 5.0])
        MIN.reduce_into(acc, np.array([3.0, 2.0]))
        assert np.array_equal(acc, [1.0, 2.0])

    def test_identity_like(self):
        arr = np.ones(3)
        assert np.all(SUM.identity_like(arr) == 0.0)
        assert np.all(PROD.identity_like(arr) == 1.0)
        assert np.all(MAX.identity_like(arr) == float("-inf"))

    def test_register_custom_op(self):
        op = ReductionOp("absmax_test", lambda a, b: np.maximum(np.abs(a), np.abs(b)), 0.0)
        register_op(op)
        assert "absmax_test" in available_ops()
        got = get_op("absmax_test")
        assert np.array_equal(got(np.array([-5.0]), np.array([3.0])), [5.0])
        with pytest.raises(ValueError):
            register_op(op)  # duplicate without overwrite


class TestMessageValidation:
    def test_self_message_rejected(self):
        with pytest.raises(ValueError):
            Message(1, 1, 8)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 1, -1)

    def test_zero_byte_message_allowed(self):
        Message(0, 1, 0)  # notifications / acks

    def test_local_compute_validation(self):
        with pytest.raises(ValueError):
            LocalCompute(-1, 8)


class TestCommunicationSchedule:
    def _simple(self):
        sched = CommunicationSchedule("test", 4)
        sched.add_round([Message(0, 1, 100), Message(2, 3, 50, reduce_bytes=50)], label="r0")
        sched.add_round([Message(1, 0, 10, protocol=Protocol.TWOSIDED)], barrier_after=True)
        return sched

    def test_counters(self):
        sched = self._simple()
        assert sched.num_rounds == 2
        assert sched.total_messages() == 3
        assert sched.total_bytes() == 160
        assert sched.bytes_sent_by(0) == 100
        assert sched.bytes_received_by(0) == 10
        assert sched.participants() == {0, 1, 2, 3}
        assert sched.max_rank_used() == 3

    def test_validate_rank_out_of_range(self):
        sched = CommunicationSchedule("bad", 2)
        sched.add_round([Message(0, 5, 8)])
        with pytest.raises(ValueError):
            sched.validate()

    def test_validate_reduce_bytes_exceed_payload(self):
        sched = CommunicationSchedule("bad", 4)
        sched.rounds.append(Round(messages=[Message(0, 1, 8)]))
        # Corrupt the frozen message to simulate a buggy schedule builder.
        object.__setattr__(sched.rounds[0].messages[0], "reduce_bytes", 16)
        with pytest.raises(ValueError):
            sched.validate()

    def test_describe_mentions_rounds(self):
        text = self._simple().describe()
        assert "2 rounds" in text
        assert "barrier" in text

    def test_merge_sequential(self):
        a = CommunicationSchedule("a", 4)
        a.add_round([Message(0, 1, 8)])
        b = CommunicationSchedule("b", 4)
        b.add_round([Message(1, 2, 8)])
        merged = merge_sequential("ab", [a, b], barrier_between=True)
        assert merged.num_rounds == 2
        assert merged.rounds[0].barrier_after is True
        assert merged.num_ranks == 4

    def test_merge_mismatched_worlds_rejected(self):
        a = CommunicationSchedule("a", 4)
        b = CommunicationSchedule("b", 8)
        with pytest.raises(ValueError):
            merge_sequential("ab", [a, b])
