"""Vectorized reduction kernels: in-place folds, views, custom-op fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernels
from repro.core.reduction_ops import MAX, MIN, PROD, SUM, ReductionOp, get_op
from repro.gaspi.segment import Segment


@pytest.mark.parametrize("op", [SUM, PROD, MIN, MAX], ids=lambda o: o.name)
def test_builtin_ops_are_vectorizable(op):
    assert kernels.is_vectorizable(op.func)


@pytest.mark.parametrize("op", [SUM, PROD, MIN, MAX], ids=lambda o: o.name)
@pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64])
def test_reduce_into_matches_functional_result(op, dtype):
    rng = np.random.default_rng(7)
    acc = (rng.uniform(1, 2, 64)).astype(dtype)
    contrib = (rng.uniform(1, 2, 64)).astype(dtype)
    contrib_snapshot = contrib.copy()
    expected = op.func(acc.copy(), contrib)
    out = kernels.reduce_into(op, acc, contrib)
    assert out is acc  # truly in place, no reallocation
    np.testing.assert_array_equal(acc, expected)
    np.testing.assert_array_equal(contrib, contrib_snapshot)  # untouched


def test_reduce_into_does_not_allocate_for_ufuncs():
    acc = np.ones(8)
    buffer_before = acc.__array_interface__["data"][0]
    kernels.reduce_into(SUM, acc, np.full(8, 2.0))
    assert acc.__array_interface__["data"][0] == buffer_before
    np.testing.assert_array_equal(acc, np.full(8, 3.0))


def test_non_ufunc_operator_falls_back_to_generic_path():
    def absmax(a, b):
        return np.where(np.abs(a) >= np.abs(b), a, b)

    op = ReductionOp("absmax", absmax, 0.0)
    assert not kernels.is_vectorizable(op.func)
    acc = np.array([1.0, -5.0, 2.0])
    kernels.reduce_into(op, acc, np.array([-3.0, 4.0, -2.0]))
    np.testing.assert_array_equal(acc, [-3.0, -5.0, 2.0])


def test_reduction_op_reduce_into_delegates_to_kernels():
    acc = np.array([1.0, 2.0])
    get_op("max").reduce_into(acc, np.array([0.0, 5.0]))
    np.testing.assert_array_equal(acc, [1.0, 5.0])


def test_reduce_from_segment_folds_a_view_without_copy():
    class OneSegmentRuntime:
        def __init__(self, segment):
            self._segment = segment

        def segment_view(self, segment_id, dtype, offset=0, count=None):
            return self._segment.view(dtype, offset=offset, count=count)

    seg = Segment(1, 64, owner_rank=0)
    seg.view(np.float64)[:] = np.arange(8, dtype=np.float64)
    acc = np.ones(4)
    kernels.reduce_from_segment(
        SUM, acc, OneSegmentRuntime(seg), 1, offset=16, count=4
    )
    np.testing.assert_array_equal(acc, [3.0, 4.0, 5.0, 6.0])


def test_fold_slots_accumulates_rows():
    acc = np.zeros(3)
    kernels.fold_slots(SUM, acc, np.arange(9, dtype=np.float64).reshape(3, 3))
    np.testing.assert_array_equal(acc, [9.0, 12.0, 15.0])
