"""Structural tests of the GASPI collective schedule builders."""

import pytest

from repro.core import (
    REGISTRY,
    Protocol,
    alltoall_schedule,
    bst_bcast_schedule,
    bst_reduce_schedule,
    dissemination_barrier_schedule,
    hypercube_allreduce_schedule,
    ring_allgather_schedule,
    ring_allreduce_schedule,
)
from repro.core.reduce import ReduceMode


class TestBcastSchedule:
    def test_round_count_is_log_p(self):
        sched = bst_bcast_schedule(32, 8000, include_acks=False)
        assert sched.num_rounds == 5

    def test_every_non_root_receives_once(self):
        sched = bst_bcast_schedule(16, 1000, include_acks=False)
        receivers = [m.dst for m in sched.messages()]
        assert sorted(receivers) == list(range(1, 16))

    def test_threshold_scales_bytes(self):
        full = bst_bcast_schedule(8, 8000, threshold=1.0, include_acks=False)
        quarter = bst_bcast_schedule(8, 8000, threshold=0.25, include_acks=False)
        assert quarter.total_bytes() == pytest.approx(full.total_bytes() * 0.25, rel=0.01)

    def test_ack_round_has_zero_bytes(self):
        sched = bst_bcast_schedule(8, 1000, include_acks=True)
        assert sched.rounds[-1].label == "leaf-acks"
        assert sched.rounds[-1].total_bytes() == 0

    def test_single_rank_schedule_is_empty(self):
        assert bst_bcast_schedule(1, 1000).total_messages() == 0


class TestReduceSchedule:
    def test_data_mode_scales_bytes(self):
        full = bst_reduce_schedule(16, 80_000, threshold=1.0, include_handshake=False)
        quarter = bst_reduce_schedule(16, 80_000, threshold=0.25, include_handshake=False)
        assert quarter.total_bytes() == pytest.approx(full.total_bytes() / 4, rel=0.01)

    def test_every_message_reduced_at_destination(self):
        sched = bst_reduce_schedule(8, 1000, include_handshake=False)
        assert all(m.reduce_bytes == m.nbytes for m in sched.messages())

    def test_process_mode_reduces_message_count_not_size(self):
        full = bst_reduce_schedule(32, 8000, threshold=1.0, mode=ReduceMode.PROCESSES,
                                   include_handshake=False)
        half = bst_reduce_schedule(32, 8000, threshold=0.5, mode=ReduceMode.PROCESSES,
                                   include_handshake=False)
        assert half.total_messages() < full.total_messages()
        assert all(m.nbytes == 8000 for m in half.messages())

    def test_process_mode_participant_metadata(self):
        sched = bst_reduce_schedule(32, 8000, threshold=0.25, mode="processes",
                                    include_handshake=False)
        assert sched.metadata["participants"] >= 8

    def test_handshake_rounds_present(self):
        sched = bst_reduce_schedule(8, 1000, include_handshake=True)
        labels = [r.label for r in sched.rounds]
        assert labels[0] == "ready" and labels[-1] == "ack"


class TestRingSchedules:
    def test_allreduce_round_count(self):
        sched = ring_allreduce_schedule(8, 64_000)
        assert sched.num_rounds == 2 * 7

    def test_allreduce_total_bytes_about_2n_per_rank(self):
        n = 80_000
        P = 10
        sched = ring_allreduce_schedule(P, n)
        # every rank injects ~2 * (P-1)/P * n bytes
        assert sched.bytes_sent_by(0) == pytest.approx(2 * (P - 1) / P * n, rel=0.02)

    def test_phase_barriers_flag(self):
        plain = ring_allreduce_schedule(4, 1000, phase_barriers=False)
        synced = ring_allreduce_schedule(4, 1000, phase_barriers=True)
        assert not any(r.barrier_after for r in plain.rounds)
        assert sum(r.barrier_after for r in synced.rounds) == 2

    def test_scatter_reduce_rounds_have_reduction(self):
        sched = ring_allreduce_schedule(4, 4000)
        first_phase = sched.rounds[: 3]
        second_phase = sched.rounds[3:]
        assert all(m.reduce_bytes > 0 for r in first_phase for m in r.messages)
        assert all(m.reduce_bytes == 0 for r in second_phase for m in r.messages)

    def test_segment_messages_split(self):
        sched = ring_allreduce_schedule(4, 4000, segment_messages=4)
        assert len(sched.rounds[0].messages) >= 4 * 4 - 3

    def test_allgather_schedule(self):
        sched = ring_allgather_schedule(6, 500)
        assert sched.num_rounds == 5
        assert sched.total_messages() == 5 * 6

    def test_single_rank(self):
        assert ring_allreduce_schedule(1, 100).num_rounds == 0


class TestHypercubeAndAlltoAll:
    def test_hypercube_rounds_and_bytes(self):
        sched = hypercube_allreduce_schedule(8, 1000)
        assert sched.num_rounds == 3
        # every rank sends the full vector every round
        assert sched.bytes_sent_by(0) == 3000

    def test_hypercube_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            hypercube_allreduce_schedule(6, 100)

    def test_alltoall_one_round_all_pairs(self):
        sched = alltoall_schedule(8, 4096)
        assert sched.num_rounds == 1
        assert sched.total_messages() == 8 * 7
        assert all(m.protocol is Protocol.ONESIDED for m in sched.messages())

    def test_barrier_schedule_zero_bytes(self):
        sched = dissemination_barrier_schedule(16)
        assert sched.num_rounds == 4
        assert sched.total_bytes() == 0


class TestRegistry:
    def test_core_algorithms_registered(self):
        for name in (
            "gaspi_bcast_bst",
            "gaspi_reduce_bst",
            "gaspi_allreduce_ring",
            "gaspi_alltoall",
            "gaspi_allreduce_ssp_hypercube",
        ):
            assert name in REGISTRY

    def test_mpi_algorithms_registered_via_import(self):
        import repro.mpi  # noqa: F401

        assert len(REGISTRY.names(family="mpi")) >= 16
        assert "mpi_allreduce_mpi7_shumilin_ring" in REGISTRY

    def test_build_by_name(self):
        sched = REGISTRY.build("gaspi_bcast_bst", 8, 800, threshold=0.5)
        assert sched.num_ranks == 8
        assert sched.metadata["threshold"] == 0.5

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            REGISTRY.get("no_such_algorithm")

    def test_duplicate_registration_rejected(self):
        from repro.core.registry import AlgorithmRegistry

        reg = AlgorithmRegistry()
        reg.register("x", "bcast", "gaspi", lambda p, n: None)
        with pytest.raises(ValueError):
            reg.register("x", "bcast", "gaspi", lambda p, n: None)
        reg.register("x", "bcast", "gaspi", lambda p, n: None, overwrite=True)

    def test_names_filtering(self):
        bcast_names = REGISTRY.names(collective="bcast")
        assert all("bcast" in n for n in bcast_names)
        gaspi_names = REGISTRY.names(family="gaspi")
        assert all(n.startswith("gaspi") for n in gaspi_names)


class TestCompression:
    def test_threshold_compressor_drops_small_values(self):
        import numpy as np

        from repro.core import ThresholdCompressor, compression_error

        vec = np.array([0.01, -5.0, 0.001, 3.0, -0.02])
        comp = ThresholdCompressor(0.1).compress(vec)
        assert comp.nnz == 2
        dense = comp.decompress()
        assert dense[1] == -5.0 and dense[3] == 3.0 and dense[0] == 0.0
        assert 0.0 < compression_error(vec, comp) < 0.02

    def test_topk_keeps_largest(self):
        import numpy as np

        from repro.core import TopKCompressor

        vec = np.array([1.0, -9.0, 3.0, 0.5, 7.0])
        comp = TopKCompressor(2).compress(vec)
        assert set(comp.indices.tolist()) == {1, 4}
        assert comp.compression_ratio > 1.0

    def test_topk_with_k_larger_than_vector(self):
        import numpy as np

        from repro.core import TopKCompressor

        comp = TopKCompressor(10).compress(np.arange(4.0))
        assert comp.nnz == 4
        assert comp.decompress().tolist() == [0.0, 1.0, 2.0, 3.0]
