"""Centralised notification-id budgeting (:mod:`repro.core.notifmap`)."""

from __future__ import annotations

import pytest

from repro.core.allreduce_ring import ring_notification_layout
from repro.core.notifmap import NotificationLayout, NotifRange


class TestNotificationLayout:
    def test_ranges_are_contiguous_and_disjoint(self):
        layout = NotificationLayout()
        ready = layout.add("ready", 64)
        data = layout.add("data", 128)
        ack = layout.add("ack", 1)
        assert (ready.base, ready.end) == (0, 64)
        assert (data.base, data.end) == (64, 192)
        assert (ack.base, ack.end) == (192, 193)
        assert layout.used == 193
        assert layout["data"] is data

    def test_id_resolves_and_bounds_checks(self):
        rng = NotifRange("data", base=10, count=4)
        assert rng.id() == 10
        assert rng.id(3) == 13
        with pytest.raises(ValueError):
            rng.id(4)
        with pytest.raises(ValueError):
            rng.id(-1)

    def test_budget_exhaustion_raises_at_layout_time(self):
        layout = NotificationLayout(budget=100)
        layout.add("a", 90)
        with pytest.raises(ValueError, match="budget exhausted"):
            layout.add("b", 11)
        # a fitting range still works
        assert layout.add("c", 10).base == 90

    def test_duplicate_names_rejected(self):
        layout = NotificationLayout()
        layout.add("data", 1)
        with pytest.raises(ValueError, match="already allocated"):
            layout.add("data", 1)

    def test_deterministic_across_instances(self):
        a = NotificationLayout()
        b = NotificationLayout()
        for name, count in (("ready", 8), ("data", 32)):
            assert a.add(name, count) == b.add(name, count)


class TestSharedModuleLayouts:
    def test_bcast_layout_matches_historical_ids(self):
        from repro.core import bcast

        assert bcast._NOTIF_DATA == 0
        assert bcast._NOTIF_ACK_BASE == 1

    def test_reduce_layout_matches_historical_ids(self):
        from repro.core import reduce

        assert reduce._NOTIF_READY_BASE == 0
        assert reduce._NOTIF_DATA_BASE == 64
        assert reduce._NOTIF_ACK == 128

    def test_ring_layout_is_the_step_index(self):
        steps = ring_notification_layout(6)
        assert steps.base == 0
        assert [steps.id(i) for i in range(6)] == list(range(6))
