"""Shared pytest fixtures for the test suite.

Plain helper functions live in :mod:`tests.helpers` (re-exported here for
backwards compatibility); conftest keeps only fixtures.
"""

from __future__ import annotations

import pytest

from repro.gaspi import ThreadedWorld, WorldConfig
from repro.simulate import skylake_fdr

from tests.helpers import expected_sum, rank_vector, spmd  # noqa: F401


@pytest.fixture
def world4():
    """A 4-rank threaded world, closed after the test."""
    world = ThreadedWorld(4)
    yield world
    world.close()


@pytest.fixture
def world2():
    """A 2-rank threaded world, closed after the test."""
    world = ThreadedWorld(2)
    yield world
    world.close()


@pytest.fixture
def async_world4():
    """A 4-rank world with asynchronous request delivery (real overlap)."""
    world = ThreadedWorld(4, WorldConfig(delivery="async", delivery_delay=0.0005))
    yield world
    world.close()


@pytest.fixture
def machine32():
    """The 32-node SkyLake machine model used by most figures."""
    return skylake_fdr(32)


