"""Shared pytest fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaspi import ThreadedWorld, WorldConfig, run_spmd
from repro.simulate import skylake_fdr


@pytest.fixture
def world4():
    """A 4-rank threaded world, closed after the test."""
    world = ThreadedWorld(4)
    yield world
    world.close()


@pytest.fixture
def world2():
    """A 2-rank threaded world, closed after the test."""
    world = ThreadedWorld(2)
    yield world
    world.close()


@pytest.fixture
def async_world4():
    """A 4-rank world with asynchronous request delivery (real overlap)."""
    world = ThreadedWorld(4, WorldConfig(delivery="async", delivery_delay=0.0005))
    yield world
    world.close()


@pytest.fixture
def machine32():
    """The 32-node SkyLake machine model used by most figures."""
    return skylake_fdr(32)


def spmd(num_ranks, fn, *args, **kwargs):
    """Run an SPMD region with a CI-friendly timeout."""
    kwargs.setdefault("timeout", 60.0)
    return run_spmd(num_ranks, fn, *args, **kwargs)


def rank_vector(rank: int, n: int, dtype=np.float64) -> np.ndarray:
    """Deterministic per-rank test vector."""
    rng = np.random.default_rng(1000 + rank)
    return rng.standard_normal(n).astype(dtype)


def expected_sum(num_ranks: int, n: int, dtype=np.float64) -> np.ndarray:
    """Exact elementwise sum of every rank's :func:`rank_vector`."""
    total = np.zeros(n, dtype=np.float64)
    for r in range(num_ranks):
        total += rank_vector(r, n, dtype)
    return total.astype(dtype)
