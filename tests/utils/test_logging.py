"""Tests for :mod:`repro.utils.logging` — namespacing and handler hygiene."""

from __future__ import annotations

import logging

from repro.utils.logging import enable_debug_logging, get_logger


def _stream_handlers():
    return [
        h
        for h in logging.getLogger("repro").handlers
        if isinstance(h, logging.StreamHandler)
        and not isinstance(h, logging.NullHandler)
    ]


def teardown_function(_fn):
    # Undo whatever enable_debug_logging attached so tests stay isolated.
    base = logging.getLogger("repro")
    for handler in _stream_handlers():
        base.removeHandler(handler)
    base.setLevel(logging.NOTSET)


def test_get_logger_namespaces_under_repro():
    assert get_logger("core.api").name == "repro.core.api"
    assert get_logger("faults.recovery").name == "repro.faults.recovery"


def test_get_logger_keeps_already_namespaced_names():
    assert get_logger("repro.core.api").name == "repro.core.api"
    assert get_logger("repro").name == "repro"


def test_base_logger_has_null_handler_only_by_default():
    base = logging.getLogger("repro")
    assert any(isinstance(h, logging.NullHandler) for h in base.handlers)
    assert not _stream_handlers()


def test_library_loggers_propagate_to_repro_base():
    records = []

    class Capture(logging.Handler):
        def emit(self, record):
            records.append(record)

    base = logging.getLogger("repro")
    handler = Capture(level=logging.DEBUG)
    base.addHandler(handler)
    base.setLevel(logging.DEBUG)
    try:
        get_logger("core.pipeline").debug("hello from %s", "test")
    finally:
        base.removeHandler(handler)
        base.setLevel(logging.NOTSET)
    assert [r.getMessage() for r in records] == ["hello from test"]
    assert records[0].name == "repro.core.pipeline"


def test_enable_debug_logging_is_idempotent():
    enable_debug_logging()
    first = _stream_handlers()
    assert len(first) == 1
    enable_debug_logging()
    enable_debug_logging(logging.INFO)
    assert _stream_handlers() == first  # no duplicate handlers
    assert logging.getLogger("repro").level == logging.INFO
