"""Bounded exponential backoff with deterministic jitter."""

from __future__ import annotations

import pytest

from repro.utils.backoff import DEFAULT_BACKOFF, Backoff, BackoffPolicy


class FakeClock:
    """Deterministic clock + sleep pair for budget tests."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class TestBackoffPolicy:
    def test_pause_is_deterministic_in_seed_and_attempt(self):
        policy = BackoffPolicy(initial=0.01, factor=2.0, max_pause=1.0)
        for attempt in range(6):
            assert policy.pause(attempt, seed=3) == policy.pause(attempt, seed=3)
        assert policy.pause(2, seed=1) != policy.pause(2, seed=2)

    def test_growth_and_cap(self):
        policy = BackoffPolicy(initial=0.01, factor=2.0, max_pause=0.05, jitter=0.0)
        assert [policy.pause(a) for a in range(5)] == [
            0.01, 0.02, 0.04, 0.05, 0.05
        ]

    def test_jitter_only_shrinks(self):
        policy = BackoffPolicy(initial=0.01, factor=2.0, max_pause=1.0, jitter=0.5)
        for attempt in range(8):
            for seed in range(8):
                pause = policy.pause(attempt, seed=seed)
                base = min(0.01 * 2.0 ** attempt, 1.0)
                assert base * 0.5 <= pause <= base

    def test_validation(self):
        with pytest.raises(Exception):
            BackoffPolicy(initial=0.0)
        with pytest.raises(Exception):
            BackoffPolicy(factor=0.5)
        with pytest.raises(Exception):
            BackoffPolicy(initial=0.2, max_pause=0.1)
        with pytest.raises(Exception):
            BackoffPolicy(jitter=1.5)


class TestBackoff:
    def test_sleep_counts_attempts_and_grows(self):
        fake = FakeClock()
        policy = BackoffPolicy(initial=0.01, factor=2.0, max_pause=1.0, jitter=0.0)
        backoff = Backoff(policy, sleep=fake.sleep, clock=fake.clock)
        assert backoff.sleep() and backoff.sleep()
        assert backoff.attempts == 2
        assert fake.sleeps == [0.01, 0.02]

    def test_timeout_budget_never_oversleeps(self):
        fake = FakeClock()
        policy = BackoffPolicy(initial=0.4, factor=2.0, max_pause=5.0, jitter=0.0)
        backoff = Backoff(
            policy, timeout=1.0, sleep=fake.sleep, clock=fake.clock
        )
        while backoff.sleep():
            pass
        assert fake.now <= 1.0 + 1e-9
        assert backoff.expired

    def test_max_attempts_budget(self):
        fake = FakeClock()
        backoff = Backoff(
            DEFAULT_BACKOFF, max_attempts=2, sleep=fake.sleep, clock=fake.clock
        )
        assert backoff.sleep()
        assert not backoff.sleep()  # second pause exhausts the budget
        assert not backoff.sleep()
        assert backoff.attempts == 2

    def test_timeout_and_deadline_are_exclusive(self):
        with pytest.raises(Exception):
            Backoff(DEFAULT_BACKOFF, timeout=1.0, deadline=2.0)

    def test_remaining_and_reset(self):
        fake = FakeClock()
        policy = BackoffPolicy(initial=0.1, factor=2.0, max_pause=1.0, jitter=0.0)
        backoff = Backoff(policy, timeout=10.0, sleep=fake.sleep, clock=fake.clock)
        assert backoff.remaining() == pytest.approx(10.0)
        backoff.sleep()
        backoff.sleep()
        assert backoff.next_pause() == pytest.approx(0.4)
        backoff.reset()
        assert backoff.next_pause() == pytest.approx(0.1)
        assert backoff.remaining() == pytest.approx(10.0 - 0.1 - 0.2)

    def test_unbounded_backoff_never_expires(self):
        fake = FakeClock()
        backoff = Backoff(DEFAULT_BACKOFF, sleep=fake.sleep, clock=fake.clock)
        assert backoff.remaining() == float("inf")
        for _ in range(50):
            assert backoff.sleep()
