"""Integration tests: GASPI collectives vs MPI baselines vs NumPy references.

The GASPI collectives and the functional MPI baselines are independent
implementations running on the same runtime; agreeing with each other and
with a direct NumPy reduction is strong evidence both are correct.
"""

import numpy as np
import pytest

from repro.core import Communicator, ring_allreduce, ssp_allreduce_once
from repro.mpi import TwoSidedLayer
from repro.mpi.allreduce_variants import recursive_doubling_allreduce, ring_allreduce_twosided

from tests.helpers import expected_sum, rank_vector, spmd


class TestAllreduceAgreement:
    @pytest.mark.parametrize("num_ranks", [2, 4, 8])
    def test_three_allreduce_implementations_agree(self, num_ranks):
        n = 97

        def worker(rt):
            data = rank_vector(rt.rank, n)
            gaspi_ring = np.zeros(n)
            ring_allreduce(rt, data, gaspi_ring)
            gaspi_ssp = ssp_allreduce_once(rt, data, slack=0)
            with TwoSidedLayer(rt, max_elements=n) as layer:
                mpi_rd = recursive_doubling_allreduce(layer, data)
            return gaspi_ring, gaspi_ssp, mpi_rd

        results = spmd(num_ranks, worker)
        reference = expected_sum(num_ranks, n)
        for gaspi_ring, gaspi_ssp, mpi_rd in results:
            assert np.allclose(gaspi_ring, reference)
            assert np.allclose(gaspi_ssp, reference)
            assert np.allclose(mpi_rd, reference)
            assert np.allclose(gaspi_ring, mpi_rd)

    @pytest.mark.parametrize("num_ranks", [3, 5])
    def test_gaspi_ring_matches_mpi_ring_non_power_of_two(self, num_ranks):
        n = 64

        def worker(rt):
            data = rank_vector(rt.rank, n)
            out = np.zeros(n)
            ring_allreduce(rt, data, out)
            with TwoSidedLayer(rt, max_elements=n) as layer:
                mpi_ring = ring_allreduce_twosided(layer, data)
            return out, mpi_ring

        for out, mpi_ring in spmd(num_ranks, worker):
            assert np.allclose(out, mpi_ring)


class TestCollectiveComposition:
    def test_reduce_then_bcast_equals_allreduce(self):
        """Composing the paper's Reduce and Broadcast reproduces Allreduce."""
        n = 80

        def worker(rt):
            comm = Communicator(rt)
            data = rank_vector(rt.rank, n)
            reduced = np.zeros(n)
            comm.reduce(data, reduced, root=0)
            comm.bcast(reduced, root=0)
            allreduced = comm.allreduce(data, algorithm="ring")
            return reduced, allreduced

        for reduced, allreduced in spmd(4, worker):
            assert np.allclose(reduced, allreduced)

    def test_alltoall_transpose_roundtrip(self):
        """Two alltoall transposes restore the original block layout."""

        def worker(rt):
            comm = Communicator(rt)
            block = 4
            send = np.arange(comm.size * block, dtype=np.float64) + 100 * comm.rank
            once = comm.alltoall(send)
            twice = comm.alltoall(once)
            return np.array_equal(twice, send)

        assert all(spmd(4, worker))

    def test_allgather_consistent_with_alltoall_of_replicas(self):
        def worker(rt):
            comm = Communicator(rt)
            block = np.full(3, float(comm.rank))
            gathered = comm.allgather(block)
            replicated = np.tile(block, comm.size)
            via_alltoall = comm.alltoall(replicated)
            return np.array_equal(gathered, via_alltoall)

        assert all(spmd(4, worker))

    def test_mixed_collectives_in_one_program(self):
        """A longer SPMD program exercising most of the API in sequence."""

        def worker(rt):
            comm = Communicator(rt)
            model = np.zeros(50)
            if comm.rank == 0:
                model = np.linspace(0.0, 1.0, 50)
            comm.bcast(model, root=0)
            for it in range(3):
                grad = rank_vector(comm.rank, 50) * (it + 1)
                total = comm.allreduce(grad, algorithm="ring")
                model = model - 0.1 * total / comm.size
            ssp = comm.allreduce_ssp(model, slack=1)
            comm.barrier()
            comm.close_ssp()
            stats = comm.reduce(model, np.zeros(50), root=0)
            comm.barrier()
            return model, ssp.value

        results = spmd(4, worker)
        models = [m for m, _ in results]
        for m in models[1:]:
            assert np.allclose(m, models[0])
