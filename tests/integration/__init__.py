"""Test package."""
