"""Shape checks against the paper's headline claims (EXPERIMENTS.md evidence).

These tests assert the *qualitative* results of Section V on the timing
simulator and the threaded SSP runtime: who wins, in which regime, and
roughly by how much.  Absolute numbers are not compared to the paper.
"""

import pytest

from repro.bench.harness import TimingExperiment, crossover_point, run_node_sweep, run_size_sweep, time_algorithm
from repro.simulate import galileo, skylake_fdr

DOUBLE = 8


class TestFig8BcastClaims:
    def test_quarter_threshold_is_about_3x_faster(self):
        machine = skylake_fdr(32)
        full = time_algorithm("gaspi_bcast_bst", 32, 1_000_000 * DOUBLE, machine, threshold=1.0)
        quarter = time_algorithm("gaspi_bcast_bst", 32, 1_000_000 * DOUBLE, machine, threshold=0.25)
        ratio = full / quarter
        assert 2.5 <= ratio <= 5.0  # paper: 3.25x - 3.58x

    def test_mpi_wins_small_payloads(self):
        machine = skylake_fdr(8)
        gaspi = time_algorithm("gaspi_bcast_bst", 8, 1_000 * DOUBLE, machine, threshold=1.0)
        mpi = time_algorithm("mpi_bcast_default", 8, 1_000 * DOUBLE, machine)
        assert mpi < gaspi

    def test_gaspi_beats_mpi_binomial_large_payloads(self):
        machine = skylake_fdr(32)
        gaspi = time_algorithm("gaspi_bcast_bst", 32, 1_000_000 * DOUBLE, machine, threshold=1.0)
        mpi_bin = time_algorithm("mpi_bcast_binomial", 32, 1_000_000 * DOUBLE, machine)
        assert gaspi < mpi_bin


class TestFig9And10ReduceClaims:
    def test_threshold_gap_grows_with_message_size(self):
        machine = skylake_fdr(32)
        gap_small = time_algorithm(
            "gaspi_reduce_bst", 32, 10_000 * DOUBLE, machine, threshold=1.0
        ) / time_algorithm("gaspi_reduce_bst", 32, 10_000 * DOUBLE, machine, threshold=0.25)
        gap_large = time_algorithm(
            "gaspi_reduce_bst", 32, 1_000_000 * DOUBLE, machine, threshold=1.0
        ) / time_algorithm("gaspi_reduce_bst", 32, 1_000_000 * DOUBLE, machine, threshold=0.25)
        assert gap_large > gap_small
        assert gap_large > 2.5  # paper reports ~5x at 8 MB

    def test_mpi_default_still_faster_at_full_data(self):
        machine = skylake_fdr(32)
        gaspi = time_algorithm("gaspi_reduce_bst", 32, 1_000_000 * DOUBLE, machine, threshold=1.0)
        mpi_def = time_algorithm("mpi_reduce_default", 32, 1_000_000 * DOUBLE, machine)
        assert mpi_def < gaspi  # paper: MPI default ~1.96x faster

    def test_gaspi_beats_mpi_binomial_at_large_sizes(self):
        machine = skylake_fdr(32)
        gaspi = time_algorithm("gaspi_reduce_bst", 32, 1_000_000 * DOUBLE, machine, threshold=1.0)
        mpi_bin = time_algorithm("mpi_reduce_binomial", 32, 1_000_000 * DOUBLE, machine)
        assert gaspi < mpi_bin  # paper: ~38% faster

    def test_process_threshold_75_and_100_nearly_identical(self):
        machine = skylake_fdr(32)
        t75 = time_algorithm(
            "gaspi_reduce_bst", 32, 1_000_000 * DOUBLE, machine, threshold=0.75, mode="processes"
        )
        t100 = time_algorithm(
            "gaspi_reduce_bst", 32, 1_000_000 * DOUBLE, machine, threshold=1.0, mode="processes"
        )
        assert t75 <= t100
        assert t75 / t100 > 0.8  # the lines nearly coincide (paper Figure 10)

    def test_process_threshold_slower_than_data_threshold(self):
        machine = skylake_fdr(32)
        data25 = time_algorithm(
            "gaspi_reduce_bst", 32, 1_000_000 * DOUBLE, machine, threshold=0.25, mode="data"
        )
        procs25 = time_algorithm(
            "gaspi_reduce_bst", 32, 1_000_000 * DOUBLE, machine, threshold=0.25, mode="processes"
        )
        assert procs25 > data25


class TestFig11And12AllreduceClaims:
    def test_mpi_wins_small_vectors(self):
        machine = skylake_fdr(32)
        gaspi = time_algorithm("gaspi_allreduce_ring", 32, 10_000 * DOUBLE, machine)
        best_mpi = min(
            time_algorithm(f"mpi_allreduce_{v}", 32, 10_000 * DOUBLE, machine)
            for v in ("mpi1_recursive_doubling", "mpi2_rabenseifner")
        )
        assert best_mpi < gaspi

    def test_gaspi_ring_wins_large_vectors_by_1_5x_to_2_5x(self):
        machine = skylake_fdr(32)
        n = 8_388_608 * DOUBLE
        gaspi = time_algorithm("gaspi_allreduce_ring", 32, n, machine)
        shumilin = time_algorithm("mpi_allreduce_mpi7_shumilin_ring", 32, n, machine)
        ring = time_algorithm("mpi_allreduce_mpi8_ring", 32, n, machine)
        assert 1.3 <= shumilin / gaspi <= 2.8  # paper: 1.78x / 2.13x
        assert 1.3 <= ring / gaspi <= 2.8  # paper: 2.26x / 2.07x
        assert ring >= shumilin  # Shumilin is Intel's better ring

    def test_gaspi_beats_every_mpi_variant_at_1m_doubles(self):
        from repro.core import REGISTRY

        machine = skylake_fdr(32)
        n = 1_000_000 * DOUBLE
        gaspi = time_algorithm("gaspi_allreduce_ring", 32, n, machine)
        for name in REGISTRY.names(collective="allreduce", family="mpi"):
            assert gaspi < time_algorithm(name, 32, n, machine), name

    def test_crossover_in_the_hundreds_of_kilobytes(self):
        experiment = TimingExperiment(
            name="fig12",
            machine=skylake_fdr(32),
            algorithms={"gaspi": "gaspi_allreduce_ring", "mpi": "mpi_allreduce_default"},
        )
        sizes = [2**k * DOUBLE for k in range(10, 24, 2)]
        series = run_size_sweep(experiment, sizes, 32)
        crossover = crossover_point(series["gaspi"], series["mpi"])
        assert crossover is not None
        # paper: MPI faster until ~1 MB, GASPI wins from ~2 MB.
        assert 32 * 1024 <= crossover <= 4 * 1024 * 1024

    def test_hypercube_ssp_collective_slower_than_ring(self):
        machine = skylake_fdr(32)
        n = 1_000_000 * DOUBLE
        ssp = time_algorithm("gaspi_allreduce_ssp_hypercube", 32, n, machine)
        ring = time_algorithm("gaspi_allreduce_ring", 32, n, machine)
        assert ssp > ring * 1.3  # paper: ~58% slower even at the best slack


class TestFig13AlltoallClaims:
    @pytest.mark.parametrize("nodes,expected_min_ratio", [(4, 1.5), (8, 2.0), (16, 2.0)])
    def test_gaspi_alltoall_wins_at_32kb(self, nodes, expected_min_ratio):
        machine = galileo(nodes)
        num_ranks = nodes * 4
        gaspi = time_algorithm("gaspi_alltoall", num_ranks, 32 * 1024, machine)
        mpi = time_algorithm("mpi_alltoall_default", num_ranks, 32 * 1024, machine)
        assert mpi / gaspi >= expected_min_ratio  # paper: 2.85x / 5.14x / 5.07x

    def test_comparable_below_one_kilobyte(self):
        machine = galileo(4)
        gaspi = time_algorithm("gaspi_alltoall", 16, 256, machine)
        mpi = time_algorithm("mpi_alltoall_default", 16, 256, machine)
        assert mpi <= gaspi * 1.5  # MPI at least competitive for tiny blocks

    def test_crossover_near_two_kilobytes(self):
        experiment = TimingExperiment(
            name="fig13",
            machine=galileo(8),
            algorithms={"gaspi": "gaspi_alltoall", "mpi": "mpi_alltoall_default"},
        )
        sizes = [2**k for k in range(6, 17)]
        series = run_size_sweep(experiment, sizes, 8, ranks_per_node=4)
        crossover = crossover_point(series["gaspi"], series["mpi"])
        assert crossover is not None
        assert 512 <= crossover <= 8192  # paper: "from a message size of 2,048 bytes"

    def test_fft_miniapp_messages_fall_in_winning_region(self):
        from repro.apps import paper_message_range

        machine = galileo(4)
        for grid in paper_message_range(16):
            block = 16 * (grid // 16) ** 2
            gaspi = time_algorithm("gaspi_alltoall", 16, block, machine)
            mpi = time_algorithm("mpi_alltoall_default", 16, block, machine)
            assert gaspi < mpi


class TestFig6And7SSPClaims:
    def test_slack_improves_iteration_rate_and_reduces_wait(self):
        from repro.ml import DistributedSGDConfig, movielens_like, run_slack_sweep

        dataset = movielens_like("small", seed=0)
        config = DistributedSGDConfig(
            num_workers=4,
            iterations=20,
            base_compute_time=0.002,
            perturbation="linear:2.0",
            seed=0,
        )
        sweep = run_slack_sweep(dataset, [0, 4], config)
        assert sweep[4].mean_iterations_per_second > sweep[0].mean_iterations_per_second
        assert (
            sweep[4].mean_wait_time_per_iteration
            < sweep[0].mean_wait_time_per_iteration
        )

    def test_ssp_reaches_reference_error(self):
        from repro.ml import DistributedSGDConfig, movielens_like, run_slack_sweep

        dataset = movielens_like("small", seed=0)
        config = DistributedSGDConfig(
            num_workers=4,
            iterations=25,
            base_compute_time=0.001,
            perturbation="linear:1.6",
            seed=0,
        )
        sweep = run_slack_sweep(dataset, [0, 2], config)
        assert sweep[2].final_rmse <= sweep[0].final_rmse * 1.2
