"""ElasticShmWorld: individually spawned, observed and replaced ranks."""

from __future__ import annotations

import os

import pytest

from repro.elastic import ElasticShmWorld
from repro.gaspi.errors import GaspiInvalidArgumentError


def _identity(runtime):
    return (runtime.rank, runtime.size)


def _die_hard(runtime):
    os._exit(3)


def _reborn(runtime):
    return f"reborn-{runtime.rank}"


def _sleepy(runtime):
    import time

    time.sleep(20.0)
    return "done"


class TestLifecycle:
    def test_spawn_all_collects_every_rank(self):
        with ElasticShmWorld(3) as world:
            world.spawn_all(_identity)
            results = world.wait(timeout=60.0)
            assert {r: res.value for r, res in results.items()} == {
                0: (0, 3), 1: (1, 3), 2: (2, 3),
            }
            assert all(res.ok for res in results.values())
            assert world.incarnations == {0: 0, 1: 0, 2: 0}
            assert world.close() == []  # nothing leaked

    def test_hard_death_is_detected_and_rank_respawnable(self):
        with ElasticShmWorld(2) as world:
            world.spawn(0, _identity)
            world.spawn(1, _die_hard)
            dead = world.wait([1], timeout=30.0)
            assert dead[1].status == "dead"
            assert not dead[1].ok
            world.spawn(1, _reborn)
            assert world.incarnations[1] == 1
            results = world.wait(timeout=30.0)
            assert results[0].value == (0, 2)
            assert results[1].value == "reborn-1"
            assert world.close() == []

    def test_worker_exception_is_reported_not_dead(self):
        def boom(runtime):
            raise RuntimeError("kaboom")

        with ElasticShmWorld(1) as world:
            world.spawn(0, boom)
            res = world.wait(timeout=30.0)[0]
            assert res.status == "error"
            assert "kaboom" in str(res.error)
            assert "RuntimeError" in res.traceback


class TestValidation:
    def test_spawn_rejects_out_of_range_and_live_ranks(self):
        with ElasticShmWorld(2) as world:
            with pytest.raises(GaspiInvalidArgumentError, match="outside"):
                world.spawn(2, _identity)
            world.spawn(0, _sleepy)
            with pytest.raises(RuntimeError, match="still running"):
                world.spawn(0, _identity)
            # close() terminates the straggler; its blocks were never
            # created, so nothing leaks.
            world.close()

    def test_wait_rejects_unspawned_rank(self):
        with ElasticShmWorld(2) as world:
            with pytest.raises(GaspiInvalidArgumentError, match="never spawned"):
                world.wait([0])

    def test_closed_world_rejects_spawn_and_close_is_idempotent(self):
        world = ElasticShmWorld(1)
        assert world.close() == []
        assert world.close() == []
        with pytest.raises(RuntimeError, match="closed"):
            world.spawn(0, _identity)

    def test_timeout_leaves_rank_running(self):
        with ElasticShmWorld(1) as world:
            world.spawn(0, _sleepy)
            res = world.wait(timeout=0.2)[0]
            assert res.status == "running"
            world.close()  # terminates it
