"""Respawn machinery: segment adoption, stale sweeps, rejoin."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator
from repro.elastic import rejoin, sweep_stale_segments
from repro.elastic.__main__ import run_respawn_demo
from repro.gaspi import ThreadedWorld
from repro.gaspi.errors import GaspiResourceError, GaspiSegmentError
from repro.gaspi.shm import ShmWorld


def _orphan(runtime, segment_id):
    """Drop a segment's mapping without unlinking — a hard-dead owner."""
    block = runtime._local.pop(segment_id)
    block.release()


class TestAdoptSegment:
    def test_adopts_leftover_block_and_drains_notifications(self):
        world = ShmWorld(2)
        try:
            rt0 = world.runtime(0)
            rt1 = world.runtime(1)
            rt0.segment_create(5, 64)
            rt1.notify(0, 5, 3, 7)  # stale by the time the successor looks
            _orphan(rt0, 5)
            assert world.stale_segments(0) == [5]

            successor = world.runtime(0)
            drained = successor.adopt_segment(5)
            assert drained == {3: 7}
            assert successor.segment_size(5) == 64
            assert successor.notify_peek(5, 3) == 0  # board wiped clean
            # Adopted means owned: delete unlinks it for good.
            successor.segment_delete(5)
            assert world.stale_segments(0) == []
            successor.close()
            rt1.close()
            rt0.close()
        finally:
            world.sweep()
            world.close()

    def test_adopt_requires_a_leftover_block(self):
        world = ShmWorld(1)
        try:
            rt = world.runtime(0)
            with pytest.raises(GaspiSegmentError, match="adopt"):
                rt.adopt_segment(9)
            rt.segment_create(2, 32)
            with pytest.raises(GaspiResourceError, match="exists"):
                rt.adopt_segment(2)
            rt.close()
        finally:
            world.sweep()
            world.close()


class TestSweepStaleSegments:
    def test_sweeps_all_but_kept_and_owned(self):
        world = ShmWorld(1)
        try:
            rt = world.runtime(0)
            for sid in (1, 2, 3):
                rt.segment_create(sid, 32)
                _orphan(rt, sid)
            successor = world.runtime(0)
            successor.adopt_segment(2)
            swept = sweep_stale_segments(successor, keep=[3])
            assert swept == [1]
            # Kept and owned blocks are still there, the rest is gone.
            assert world.stale_segments(0) == [2, 3]
            assert world.unlink_segment(0, 3)
            successor.close()
            rt.close()
        finally:
            world.sweep()
            world.close()

    def test_noop_on_non_shm_runtimes(self):
        world = ThreadedWorld(1)
        try:
            assert sweep_stale_segments(world.runtime(0)) == []
        finally:
            world.close()


class TestRejoinValidation:
    def test_rejoin_needs_a_dispatched_collective_or_advance(self):
        world = ThreadedWorld(2)
        comm = Communicator(world.runtime(0))
        try:
            with pytest.raises(ValueError, match="advance"):
                rejoin(comm, np.zeros(4))
        finally:
            comm.close()
            world.close()


class TestRespawnDemo:
    """crash_then_respawn end to end: exact re-convergence on every rank."""

    def test_threaded_in_place_recovery(self):
        report = run_respawn_demo("threaded", 8, elements=256)
        assert report["failures"] == []
        assert report["ok"]

    def test_shm_process_respawn(self):
        report = run_respawn_demo("shm", 4, elements=256)
        assert report["failures"] == []
        assert report["ok"]
