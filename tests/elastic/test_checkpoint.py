"""Checkpoint/restore: snapshot schema, round trips, validation."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import Communicator
from repro.core.plan import PlanKey, policy_fingerprint
from repro.core.policy import STRICT
from repro.elastic import CKPT_SCHEMA, MANIFEST_NAME, CommSnapshot, restore
from repro.elastic.__main__ import run_checkpoint_demo
from repro.gaspi import ThreadedWorld

from tests.helpers import spmd


def _snapshot_worker(rt, n):
    comm = Communicator(rt)
    try:
        comm.allreduce(np.arange(n, dtype=np.float64) + rt.rank)
        return comm.checkpoint().to_dict()
    finally:
        comm.close()


class TestSnapshotSerialization:
    def test_plan_key_dict_round_trip(self):
        key = PlanKey(
            collective="allreduce", algorithm="gaspi_allreduce_ring", size=4,
            root=0, nbytes=256, dtype="<f8", op="sum",
            policy=policy_fingerprint(STRICT), tag=2,
        )
        back = PlanKey.from_dict(key.to_dict())
        assert back == key
        assert hash(back) == hash(key)
        assert json.loads(json.dumps(key.to_dict())) == key.to_dict()

    def test_snapshot_dict_round_trip_carries_plans(self):
        snap_dict = spmd(2, _snapshot_worker, 64)[1]
        snap = CommSnapshot.from_dict(snap_dict)
        assert snap.schema == CKPT_SCHEMA
        assert snap.rank == 1 and snap.size == 2
        assert snap.collective_seq == 1
        assert len(snap.plans) == 1
        assert snap.plans[0].calls == 1
        assert CommSnapshot.from_dict(snap.to_dict()) == snap

    def test_save_load_round_trip_and_manifest(self, tmp_path):
        for snap_dict in spmd(2, _snapshot_worker, 32):
            CommSnapshot.from_dict(snap_dict).save(tmp_path)
        assert sorted(os.listdir(tmp_path)) == [
            MANIFEST_NAME, "rank-00000.json", "rank-00001.json",
        ]
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest == {"schema": CKPT_SCHEMA, "size": 2}
        for rank in range(2):
            loaded = CommSnapshot.load(tmp_path, rank)
            assert loaded.rank == rank
            assert loaded == CommSnapshot.from_dict(
                CommSnapshot.from_dict(loaded.to_dict()).to_dict()
            )

    def test_load_rejects_identity_mismatch(self, tmp_path):
        snap = CommSnapshot.from_dict(spmd(2, _snapshot_worker, 32)[0])
        snap.save(tmp_path)
        # Rank 0's snapshot masquerading under rank 1's file name.
        (tmp_path / "rank-00001.json").write_text(
            (tmp_path / "rank-00000.json").read_text()
        )
        with pytest.raises(ValueError, match="rank"):
            CommSnapshot.load(tmp_path, 1)

    def test_from_dict_rejects_unknown_schema(self):
        bad = spmd(2, _snapshot_worker, 32)[0]
        bad["schema"] = "repro-ckpt/v999"
        with pytest.raises(ValueError, match="schema"):
            CommSnapshot.from_dict(bad)


class TestRestoreValidation:
    def test_restore_rejects_mismatched_world(self):
        snap = CommSnapshot.from_dict(spmd(2, _snapshot_worker, 32)[0])
        world = ThreadedWorld(3)
        try:
            with pytest.raises(ValueError, match="world"):
                restore(world.runtime(0), snap)
        finally:
            world.close()

    def test_restore_rejects_wrong_rank(self):
        snap = CommSnapshot.from_dict(spmd(2, _snapshot_worker, 32)[0])
        world = ThreadedWorld(2)
        try:
            with pytest.raises(ValueError, match="rank"):
                restore(world.runtime(1), snap)
        finally:
            world.close()

    def test_restore_without_barrier_needs_plan_free_snapshot(self):
        snap = CommSnapshot.from_dict(spmd(2, _snapshot_worker, 32)[0])
        assert snap.plans  # the interesting case: plans would recompile
        world = ThreadedWorld(2)
        try:
            with pytest.raises(ValueError, match="barrier"):
                restore(world.runtime(0), snap, barrier=False)
        finally:
            world.close()


class TestCheckpointRoundTrip:
    """The acceptance matrix: backends x algorithms x world sizes.

    Each demo run covers both the monolithic and the pipelined ring and
    asserts bit-identical replay plus a miss-free restored plan cache.
    """

    @pytest.mark.parametrize("backend", ["threaded", "shm"])
    @pytest.mark.parametrize("ranks", [4, 8])
    def test_replay_is_bit_identical(self, backend, ranks):
        report = run_checkpoint_demo(
            backend, ranks, elements=512, steps_before=2, steps_after=2
        )
        assert report["failures"] == []
        assert report["ok"]
