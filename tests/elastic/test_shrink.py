"""Communicator.shrink() and suspicion propagation to split children."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator
from repro.core.policy import ConsistencyPolicy
from repro.elastic.__main__ import run_shrink_demo
from repro.faults.injection import RankCrashedError
from repro.faults.scenarios import get_scenario
from repro.gaspi import ThreadedWorld

from tests.helpers import spmd

DEGRADED = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")


def _shrink_worker(rt, n):
    faults = get_scenario("crash_then_shrink").plan(n)
    comm = Communicator(rt, faults=faults, detect_timeout=1.0)
    victim = n - 1
    if comm.rank == victim:
        with pytest.raises(RankCrashedError):
            comm.allreduce(np.ones(16), policy=DEGRADED)
        comm.close()
        return None
    try:
        comm.allreduce(np.ones(16), policy=DEGRADED)
        shrunk = comm.shrink()
        try:
            total = shrunk.allreduce(np.full(16, 2.0))
            return {
                "rank": shrunk.rank,
                "size": shrunk.size,
                "total": float(total[0]),
                "parent_suspects": sorted(comm.suspected_ranks),
                "child_suspects": sorted(shrunk.suspected_ranks),
                "parent_base": comm._segment_base,
                "child_base": shrunk._segment_base,
                "child_span": shrunk._segment_span,
            }
        finally:
            shrunk.close()
    finally:
        comm.close()


class TestShrinkSemantics:
    def test_survivors_renumber_and_run_full_strength(self):
        n = 4
        results = spmd(n, _shrink_worker, n)
        assert results[n - 1] is None
        for rank in range(n - 1):
            res = results[rank]
            assert res["rank"] == rank and res["size"] == n - 1
            assert res["total"] == 2.0 * (n - 1)  # strict, all survivors
            assert res["parent_suspects"] == [n - 1]
            assert res["child_suspects"] == []
            # Disjoint segment-id slice carved out of the parent's range.
            assert res["child_base"] != res["parent_base"]
            assert res["child_span"] >= 1

    def test_shrink_validates_removal_set(self):
        world = ThreadedWorld(2)
        comm = Communicator(world.runtime(0))
        try:
            with pytest.raises(ValueError, match="shrink itself"):
                comm.shrink(failed=[0])
            with pytest.raises(ValueError, match="outside world"):
                comm.shrink(failed=[9])
        finally:
            comm.close()
            world.close()


def _reinstate_worker(rt):
    comm = Communicator(rt)
    try:
        # Suspicion exists *before* the split, so the children inherit it.
        comm._suspected = {3}
        child = comm.split(0, key=comm.rank)  # every rank, same order
        grandchild = child.dup()
        inherited = (sorted(child.suspected_ranks), sorted(grandchild.suspected_ranks))
        comm.reinstate(3)
        cleared = (
            sorted(comm.suspected_ranks),
            sorted(child.suspected_ranks),
            sorted(grandchild.suspected_ranks),
        )
        grandchild.close()
        child.close()
        return inherited, cleared
    finally:
        comm.close()


class TestReinstatePropagation:
    def test_reinstate_clears_split_children_recursively(self):
        for inherited, cleared in spmd(4, _reinstate_worker):
            assert inherited == ([3], [3])
            assert cleared == ([], [], [])


class TestShrinkDemo:
    """crash_then_shrink end to end, bit-identical to a native small run."""

    def test_threaded_eight_ranks(self):
        report = run_shrink_demo("threaded", 8, elements=256, steps=2)
        assert report["failures"] == []
        assert report["ok"]

    def test_shm_four_ranks(self):
        report = run_shrink_demo("shm", 4, elements=256, steps=2)
        assert report["failures"] == []
        assert report["ok"]
