"""Test package."""
