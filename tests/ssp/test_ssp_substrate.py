"""Tests of the SSP substrate: clocks, staleness, perturbation, parameter store."""

import threading

import numpy as np
import pytest

from repro.ssp import (
    ClockedValue,
    ComputePerturbation,
    LogicalClock,
    SSPConfig,
    SSPParameterStore,
    StalenessTracker,
    StalenessViolation,
    StragglerProfile,
    UniformJitter,
    combine_clocks,
)
from repro.ssp.perturbation import NoPerturbation, perturbation_from_spec


class TestLogicalClock:
    def test_tick(self):
        clock = LogicalClock()
        assert clock.tick() == 1
        assert clock.tick() == 2
        assert int(clock) == 2

    def test_advance_to(self):
        clock = LogicalClock(3)
        assert clock.advance_to(7) == 7
        with pytest.raises(ValueError):
            clock.advance_to(5)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            LogicalClock(-1)

    def test_combine_clocks_is_min(self):
        assert combine_clocks([5, 2, 9]) == 2
        with pytest.raises(ValueError):
            combine_clocks([])


class TestClockedValue:
    def test_staleness_and_admissibility(self):
        cv = ClockedValue(np.ones(3), clock=4)
        assert cv.staleness(6) == 2
        assert cv.is_fresh_enough(6, slack=2)
        assert not cv.is_fresh_enough(6, slack=1)

    def test_combine_takes_min_clock(self):
        a = ClockedValue(np.array([1.0]), 3)
        b = ClockedValue(np.array([2.0]), 5)
        c = a.combine(b)
        assert c.clock == 3
        assert np.array_equal(c.value, [3.0])


class TestSSPConfig:
    def test_admissibility_window(self):
        cfg = SSPConfig(slack=2)
        assert cfg.min_clock_accepted(10) == 8
        assert cfg.admissible(8, 10)
        assert not cfg.admissible(7, 10)

    def test_check_raises_on_violation(self):
        cfg = SSPConfig(slack=1)
        cfg.check(9, 10)
        with pytest.raises(StalenessViolation):
            cfg.check(8, 10)

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            SSPConfig(slack=-1)


class TestStalenessTracker:
    def test_records_and_aggregates(self):
        t = StalenessTracker(slack=2)
        t.record_iteration(0, 0.0, waited=False)
        t.record_iteration(2, 0.5, waited=True)
        t.record_iteration(1, 0.1, waited=True)
        assert t.iterations == 3
        assert t.waits == 2
        assert t.total_wait_time == pytest.approx(0.6)
        assert t.mean_wait_time == pytest.approx(0.2)
        assert t.wait_fraction == pytest.approx(2 / 3)
        assert t.max_staleness == 2
        assert t.mean_staleness() == pytest.approx(1.0)

    def test_merge(self):
        a, b = StalenessTracker(slack=1), StalenessTracker(slack=3)
        a.record_iteration(1, 0.2, True)
        b.record_iteration(0, 0.0, False)
        merged = a.merge(b)
        assert merged.iterations == 2
        assert merged.slack == 3
        assert merged.staleness_histogram == {1: 1, 0: 1}

    def test_negative_values_rejected(self):
        t = StalenessTracker()
        with pytest.raises(ValueError):
            t.record_iteration(-1, 0.0, False)


class TestPerturbation:
    def test_no_perturbation(self):
        p = NoPerturbation()
        assert p.delay(0, 0, 1.0) == 0.0
        assert p.total_time(0, 0, 1.0) == 1.0

    def test_straggler_profile(self):
        p = StragglerProfile.single_straggler(2, factor=3.0)
        assert p.delay(2, 0, 0.01) == pytest.approx(0.02)
        assert p.delay(0, 0, 0.01) == 0.0

    def test_linear_profile_spreads(self):
        p = StragglerProfile.linear(4, max_factor=2.0)
        delays = [p.delay(r, 0, 1.0) for r in range(4)]
        assert delays[0] == 0.0
        assert delays[-1] == pytest.approx(1.0)
        assert delays == sorted(delays)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            StragglerProfile({0: 0.5})

    def test_uniform_jitter_deterministic(self):
        p = UniformJitter(amplitude=0.5, seed=7)
        assert p.delay(1, 3, 1.0) == p.delay(1, 3, 1.0)
        assert p.delay(1, 3, 1.0) != p.delay(1, 4, 1.0)
        assert 0.0 <= p.delay(2, 2, 1.0) <= 0.5

    @pytest.mark.parametrize(
        "spec,expected_type",
        [
            ("none", NoPerturbation),
            ("straggler:1:2.0", StragglerProfile),
            ("linear:1.5", StragglerProfile),
            ("jitter:0.3", UniformJitter),
        ],
    )
    def test_spec_parser(self, spec, expected_type):
        p = perturbation_from_spec(spec, num_ranks=4)
        assert isinstance(p, expected_type)
        assert isinstance(p, ComputePerturbation)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            perturbation_from_spec("chaos", 4)


class TestSSPParameterStore:
    def test_push_and_read_complete_clock(self):
        store = SSPParameterStore(2, SSPConfig(slack=0))
        store.push("w", 0, 1, np.array([1.0, 2.0]))
        store.push("w", 1, 1, np.array([3.0, 4.0]))
        read = store.read("w", reader_clock=1, timeout=1.0)
        assert read.clock == 1
        assert np.array_equal(read.value, [4.0, 6.0])

    def test_read_blocks_until_complete(self):
        store = SSPParameterStore(2, SSPConfig(slack=0))
        store.push("w", 0, 1, np.array([1.0]))

        def late_push():
            import time

            time.sleep(0.05)
            store.push("w", 1, 1, np.array([2.0]))

        t = threading.Thread(target=late_push)
        t.start()
        read = store.read("w", reader_clock=1, timeout=5.0)
        t.join()
        assert read.waited
        assert np.array_equal(read.value, [3.0])

    def test_slack_permits_older_aggregate(self):
        store = SSPParameterStore(2, SSPConfig(slack=2))
        store.push("w", 0, 1, np.array([1.0]))
        store.push("w", 1, 1, np.array([1.0]))
        # reader at clock 3 accepts the clock-1 aggregate because slack = 2
        read = store.read("w", reader_clock=3, timeout=1.0)
        assert read.clock == 1 and not read.waited

    def test_timeout_raises(self):
        store = SSPParameterStore(2, SSPConfig(slack=0))
        store.push("w", 0, 1, np.array([1.0]))
        with pytest.raises(TimeoutError):
            store.read("w", reader_clock=1, timeout=0.05)

    def test_completed_clock_and_gc(self):
        store = SSPParameterStore(1, SSPConfig(slack=0))
        for clock in (1, 2, 3):
            store.push("w", 0, clock, np.array([float(clock)]))
        assert store.completed_clock("w") == 3
        dropped = store.garbage_collect("w", keep_from_clock=3)
        assert dropped == 2

    def test_invalid_worker_rejected(self):
        store = SSPParameterStore(2, SSPConfig())
        with pytest.raises(ValueError):
            store.push("w", 5, 1, np.array([1.0]))
