"""Unit tests of communication queues and groups."""

import pytest

from repro.gaspi.errors import GaspiInvalidArgumentError, GaspiQueueFullError, GaspiTimeoutError
from repro.gaspi.group import Group
from repro.gaspi.queue import CommunicationQueue


class TestCommunicationQueue:
    def test_post_complete_cycle(self):
        q = CommunicationQueue(0, depth=4)
        q.post()
        assert q.outstanding == 1
        q.complete()
        assert q.outstanding == 0
        assert q.posted_total == 1

    def test_wait_returns_when_empty(self):
        q = CommunicationQueue(0)
        q.wait(timeout=0.01)  # nothing outstanding → immediate return

    def test_wait_timeout_raises(self):
        q = CommunicationQueue(0)
        q.post()
        with pytest.raises(GaspiTimeoutError):
            q.wait(timeout=0.02)

    def test_depth_limit_enforced(self):
        q = CommunicationQueue(0, depth=2)
        q.post()
        q.post()
        with pytest.raises(GaspiQueueFullError):
            q.post()

    def test_complete_without_post_is_an_error(self):
        q = CommunicationQueue(0)
        with pytest.raises(RuntimeError):
            q.complete()


class TestGroup:
    def test_world_group(self):
        g = Group.world(4)
        assert list(g) == [0, 1, 2, 3]
        assert g.size == 4
        assert 2 in g

    def test_index_of(self):
        g = Group([5, 1, 3])
        assert g.index_of(3) == 1  # groups are stored sorted
        with pytest.raises(GaspiInvalidArgumentError):
            g.index_of(2)

    def test_equality_and_hash(self):
        assert Group([0, 1]) == Group([1, 0])
        assert hash(Group([0, 1])) == hash(Group([1, 0]))
        assert Group([0, 1]) != Group([0, 2])

    def test_empty_group_rejected(self):
        with pytest.raises(GaspiInvalidArgumentError):
            Group([])

    def test_duplicates_rejected(self):
        with pytest.raises(GaspiInvalidArgumentError):
            Group([1, 1])

    def test_negative_rank_rejected(self):
        with pytest.raises(GaspiInvalidArgumentError):
            Group([-1, 0])

    def test_contains_method(self):
        g = Group([0, 2, 4])
        assert g.contains(4)
        assert not g.contains(3)
