"""Unit tests of GASPI memory segments."""

import numpy as np
import pytest

from repro.gaspi.errors import GaspiInvalidArgumentError, GaspiSegmentError
from repro.gaspi.segment import Segment


class TestConstruction:
    def test_buffer_zero_initialised(self):
        seg = Segment(1, 64, owner_rank=0)
        assert seg.size == 64
        assert np.all(seg.buffer == 0)

    def test_invalid_size_rejected(self):
        with pytest.raises(GaspiInvalidArgumentError):
            Segment(1, 0, owner_rank=0)

    def test_negative_id_rejected(self):
        with pytest.raises(GaspiInvalidArgumentError):
            Segment(-1, 8, owner_rank=0)


class TestTypedViews:
    def test_view_shares_memory(self):
        seg = Segment(0, 80, owner_rank=0)
        view = seg.view(np.float64)
        view[:] = np.arange(10)
        again = seg.view(np.float64)
        assert np.array_equal(again, np.arange(10, dtype=np.float64))

    def test_view_with_offset_and_count(self):
        seg = Segment(0, 80, owner_rank=0)
        seg.view(np.float64)[:] = np.arange(10)
        part = seg.view(np.float64, offset=16, count=3)
        assert np.array_equal(part, [2.0, 3.0, 4.0])

    def test_view_out_of_bounds(self):
        seg = Segment(0, 16, owner_rank=0)
        with pytest.raises(GaspiSegmentError):
            seg.view(np.float64, offset=8, count=2)
        with pytest.raises(GaspiSegmentError):
            seg.view(np.float64, offset=32)

    def test_view_other_dtypes(self):
        seg = Segment(0, 16, owner_rank=0)
        ints = seg.view(np.int32)
        assert ints.size == 4
        ints[:] = [1, 2, 3, 4]
        assert np.array_equal(seg.view(np.int32), [1, 2, 3, 4])

    def test_fill(self):
        seg = Segment(0, 64, owner_rank=0)
        seg.fill(2.5)
        assert np.all(seg.view(np.float64) == 2.5)


class TestRawAccess:
    def test_write_then_read_bytes(self):
        seg = Segment(0, 32, owner_rank=1)
        data = np.arange(8, dtype=np.uint8)
        seg.write_bytes(4, data)
        out = seg.read_bytes(4, 8)
        assert np.array_equal(out, data)
        assert seg.bytes_written == 8

    def test_read_is_a_copy(self):
        seg = Segment(0, 16, owner_rank=0)
        seg.write_bytes(0, np.ones(4, dtype=np.uint8))
        out = seg.read_bytes(0, 4)
        out[:] = 9
        assert np.all(seg.read_bytes(0, 4) == 1)

    def test_out_of_range_write_rejected(self):
        seg = Segment(0, 8, owner_rank=0)
        with pytest.raises(GaspiSegmentError):
            seg.write_bytes(4, np.zeros(8, dtype=np.uint8))

    def test_out_of_range_read_rejected(self):
        seg = Segment(0, 8, owner_rank=0)
        with pytest.raises(GaspiSegmentError):
            seg.read_bytes(6, 4)

    def test_notifications_attached(self):
        seg = Segment(0, 8, owner_rank=0, num_notifications=32)
        assert seg.notifications.num_slots == 32
