"""Tests of the SPMD launcher."""

import numpy as np
import pytest

from repro.gaspi import run_spmd
from repro.gaspi.spmd import SpmdError, run_spmd_on_world
from repro.gaspi.threaded import ThreadedWorld


class TestRunSpmd:
    def test_returns_per_rank_results_in_rank_order(self):
        results = run_spmd(4, lambda rt: rt.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_passes_extra_arguments(self):
        results = run_spmd(2, lambda rt, a, b=0: rt.rank + a + b, 5, b=2)
        assert results == [7, 8]

    def test_single_rank(self):
        assert run_spmd(1, lambda rt: rt.size) == [1]

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda rt: None)

    def test_exception_in_one_rank_is_reported_with_rank(self):
        def worker(rt):
            if rt.rank == 2:
                raise ValueError("boom on 2")
            return rt.rank

        with pytest.raises(SpmdError) as excinfo:
            run_spmd(4, worker)
        assert "rank 2" in str(excinfo.value)
        assert "boom on 2" in str(excinfo.value)
        assert len(excinfo.value.failures) == 1

    def test_deadlock_reported_as_timeout(self):
        def worker(rt):
            # Rank 0 waits for a notification nobody sends.
            rt.segment_create(1, 8)
            if rt.rank == 0:
                rt.notify_waitsome(1, 0, 1, timeout=30.0)
            return True

        with pytest.raises(SpmdError) as excinfo:
            run_spmd(2, worker, timeout=0.5)
        assert any(isinstance(exc, TimeoutError) for _r, exc, _tb in excinfo.value.failures)

    def test_ranks_can_communicate(self):
        def worker(rt):
            rt.segment_create(1, 64)
            rt.barrier()
            target = (rt.rank + 1) % rt.size
            rt.segment_view(1)[0] = float(rt.rank)
            rt.write_notify(1, 0, target, 1, 8, 8, notification_id=0)
            rt.wait(0)
            assert rt.notify_waitsome(1, 0, 1, timeout=10.0) == 0
            rt.notify_reset(1, 0)
            return float(rt.segment_view(1)[1])

        results = run_spmd(4, worker)
        assert results == [3.0, 0.0, 1.0, 2.0]


class TestRunSpmdOnWorld:
    def test_reuses_existing_world_and_keeps_it_open(self):
        world = ThreadedWorld(3)
        try:
            results = run_spmd_on_world(world, lambda rt: rt.rank + 1)
            assert results == [1, 2, 3]
            # The world is still usable afterwards.
            assert world.runtime(0).size == 3
        finally:
            world.close()

    def test_stats_observable_after_region(self):
        world = ThreadedWorld(2)
        try:

            def worker(rt):
                rt.segment_create(1, 16)
                rt.barrier()
                if rt.rank == 0:
                    rt.write(1, 0, 1, 1, 0, 16)
                    rt.wait(0)
                rt.barrier()

            run_spmd_on_world(world, worker)
            assert world.stats[0].bytes_sent == 16
            assert world.stats[1].bytes_sent == 0
        finally:
            world.close()
