"""Tests of the threaded GASPI runtime: write/notify semantics, queues, atomics."""

import threading

import numpy as np
import pytest

from repro.gaspi import (
    GaspiInvalidArgumentError,
    GaspiResourceError,
    GaspiSegmentError,
    ThreadedWorld,
    WorldConfig,
)
from repro.gaspi.constants import GASPI_BLOCK


class TestSegmentManagement:
    def test_create_view_delete(self, world2):
        rt = world2.runtime(0)
        rt.segment_create(1, 64)
        assert rt.segment_size(1) == 64
        assert rt.segment_exists(1)
        rt.segment_view(1)[:] = 1.5
        rt.segment_delete(1)
        assert not rt.segment_exists(1)

    def test_duplicate_segment_rejected(self, world2):
        rt = world2.runtime(0)
        rt.segment_create(1, 8)
        with pytest.raises(GaspiResourceError):
            rt.segment_create(1, 8)

    def test_delete_unknown_segment_rejected(self, world2):
        with pytest.raises(GaspiSegmentError):
            world2.runtime(0).segment_delete(42)

    def test_segments_are_per_rank(self, world2):
        world2.runtime(0).segment_create(1, 8)
        assert not world2.runtime(1).segment_exists(1)

    def test_segment_limit(self):
        world = ThreadedWorld(1, WorldConfig(max_segments=2))
        try:
            rt = world.runtime(0)
            rt.segment_create(0, 8)
            rt.segment_create(1, 8)
            with pytest.raises(GaspiResourceError):
                rt.segment_create(2, 8)
        finally:
            world.close()


class TestWriteNotify:
    def _setup(self, world, size=64):
        for r in range(world.size):
            world.runtime(r).segment_create(1, size)

    def test_write_moves_data(self, world2):
        self._setup(world2)
        src, dst = world2.runtime(0), world2.runtime(1)
        src.segment_view(1)[:4] = [1.0, 2.0, 3.0, 4.0]
        src.write(1, 0, 1, 1, 0, 32)
        src.wait(0)
        assert np.array_equal(dst.segment_view(1)[:4], [1.0, 2.0, 3.0, 4.0])

    def test_write_with_offsets(self, world2):
        self._setup(world2)
        src, dst = world2.runtime(0), world2.runtime(1)
        src.segment_view(1)[:2] = [7.0, 8.0]
        src.write(1, 0, 1, 1, 16, 16)
        src.wait(0)
        assert np.array_equal(dst.segment_view(1)[2:4], [7.0, 8.0])

    def test_write_notify_data_visible_before_notification(self, async_world4):
        """The core GASPI guarantee: notification implies data visibility."""
        for r in range(async_world4.size):
            async_world4.runtime(r).segment_create(1, 64)
        src, dst = async_world4.runtime(0), async_world4.runtime(1)
        src.segment_view(1)[:4] = [4.0, 3.0, 2.0, 1.0]
        src.write_notify(1, 0, 1, 1, 0, 32, notification_id=5, notification_value=9)
        got = dst.notify_waitsome(1, 0, 16, timeout=5.0)
        assert got == 5
        assert dst.notify_reset(1, 5) == 9
        # Data must already be there because the notification was visible.
        assert np.array_equal(dst.segment_view(1)[:4], [4.0, 3.0, 2.0, 1.0])

    def test_pure_notify(self, world2):
        self._setup(world2)
        world2.runtime(0).notify(1, 1, 3, 2)
        world2.runtime(0).wait(0)
        assert world2.runtime(1).notify_peek(1, 3) == 2

    def test_notify_reset_via_runtime(self, world2):
        self._setup(world2)
        world2.runtime(0).notify(1, 1, 3, 2)
        world2.runtime(0).wait(0)
        assert world2.runtime(1).notify_reset(1, 3) == 2
        assert world2.runtime(1).notify_reset(1, 3) == 0

    def test_notify_waitsome_timeout(self, world2):
        self._setup(world2)
        assert world2.runtime(0).notify_waitsome(1, 0, 4, timeout=0.01) is None

    def test_invalid_target_rank(self, world2):
        self._setup(world2)
        with pytest.raises(GaspiInvalidArgumentError):
            world2.runtime(0).write(1, 0, 7, 1, 0, 8)

    def test_write_to_missing_remote_segment(self, world2):
        world2.runtime(0).segment_create(1, 8)
        with pytest.raises(GaspiSegmentError):
            world2.runtime(0).write(1, 0, 1, 1, 0, 8)

    def test_stats_collected(self, world2):
        self._setup(world2)
        rt = world2.runtime(0)
        rt.write_notify(1, 0, 1, 1, 0, 16, notification_id=0)
        rt.wait(0)
        assert world2.stats[0].messages_sent == 1
        assert world2.stats[0].bytes_sent == 16
        assert world2.stats[0].notifications_sent == 1
        assert world2.stats[0].by_peer[1] == 16


class TestSegmentRead:
    def test_segment_read_returns_copy(self, world2):
        world2.runtime(0).segment_create(1, 32)
        view = world2.runtime(0).segment_view(1)
        view[:] = [1.0, 2.0, 3.0, 4.0]
        snap = world2.runtime(0).segment_read(1)
        view[:] = 0.0
        assert np.array_equal(snap, [1.0, 2.0, 3.0, 4.0])

    def test_segment_read_offset_count(self, world2):
        world2.runtime(0).segment_create(1, 64)
        world2.runtime(0).segment_view(1)[:] = np.arange(8.0)
        snap = world2.runtime(0).segment_read(1, offset=16, count=3)
        assert np.array_equal(snap, [2.0, 3.0, 4.0])


class TestBarrierAndAtomics:
    def test_barrier_synchronises_all_ranks(self, world4):
        order = []
        lock = threading.Lock()

        def worker(rank):
            rt = world4.runtime(rank)
            with lock:
                order.append(("before", rank))
            rt.barrier()
            with lock:
                order.append(("after", rank))

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        befores = [i for i, (phase, _r) in enumerate(order) if phase == "before"]
        afters = [i for i, (phase, _r) in enumerate(order) if phase == "after"]
        assert max(befores) < min(afters)

    def test_barrier_on_foreign_group_rejected(self, world4):
        from repro.gaspi import Group

        with pytest.raises(GaspiInvalidArgumentError):
            world4.runtime(3).barrier(Group([0, 1]))

    def test_atomic_fetch_add(self, world2):
        world2.runtime(1).segment_create(2, 16)
        rt = world2.runtime(0)
        old = rt.atomic_fetch_add(2, 0, 1, 5)
        assert old == 0
        old = rt.atomic_fetch_add(2, 0, 1, 3)
        assert old == 5
        assert int(world2.runtime(1).segment_view(2, np.int64, count=1)[0]) == 8

    def test_queue_wait_after_async_delivery(self, async_world4):
        for r in range(async_world4.size):
            async_world4.runtime(r).segment_create(1, 64)
        rt = async_world4.runtime(0)
        for i in range(8):
            rt.write_notify(1, 0, 1, 1, 0, 8, notification_id=i)
        rt.wait(0, timeout=GASPI_BLOCK)
        assert async_world4.queue_of(0, 0).outstanding == 0


class TestWorldConfig:
    def test_invalid_delivery_mode(self):
        with pytest.raises(GaspiInvalidArgumentError):
            WorldConfig(delivery="bogus")

    def test_invalid_world_size(self):
        with pytest.raises(GaspiInvalidArgumentError):
            ThreadedWorld(0)

    def test_context_manager_closes(self):
        with ThreadedWorld(2) as world:
            assert world.size == 2
        # close() is idempotent
        world.close()
