"""Test package."""
