"""Unit tests of the notification board (GASPI weak synchronisation)."""

import threading
import time

import pytest

from repro.gaspi.errors import GaspiInvalidArgumentError, GaspiTimeoutError
from repro.gaspi.notifications import NotificationBoard


class TestBasics:
    def test_initially_empty(self):
        board = NotificationBoard(16)
        assert board.pending_ids() == []
        assert board.peek(3) == 0

    def test_post_and_peek(self):
        board = NotificationBoard(16)
        board.post(5, 7)
        assert board.peek(5) == 7
        assert board.pending_ids() == [5]

    def test_reset_returns_old_value_and_clears(self):
        board = NotificationBoard(16)
        board.post(2, 9)
        assert board.reset(2) == 9
        assert board.reset(2) == 0
        assert board.peek(2) == 0

    def test_post_overwrites_value(self):
        board = NotificationBoard(8)
        board.post(1, 3)
        board.post(1, 4)
        assert board.reset(1) == 4

    def test_posted_count_increments(self):
        board = NotificationBoard(8)
        board.post(0)
        board.post(1)
        assert board.posted_count == 2


class TestValidation:
    def test_zero_slots_rejected(self):
        with pytest.raises(GaspiInvalidArgumentError):
            NotificationBoard(0)

    def test_out_of_range_id_rejected(self):
        board = NotificationBoard(4)
        with pytest.raises(GaspiInvalidArgumentError):
            board.post(4)
        with pytest.raises(GaspiInvalidArgumentError):
            board.peek(-1)

    def test_non_positive_value_rejected(self):
        board = NotificationBoard(4)
        with pytest.raises(GaspiInvalidArgumentError):
            board.post(0, 0)

    def test_wait_some_bad_count(self):
        board = NotificationBoard(4)
        with pytest.raises(GaspiInvalidArgumentError):
            board.wait_some(0, 0)


class TestWaitSome:
    def test_returns_pending_id_immediately(self):
        board = NotificationBoard(8)
        board.post(3)
        assert board.wait_some(0, 8, timeout=0.0) == 3

    def test_timeout_returns_none(self):
        board = NotificationBoard(8)
        assert board.wait_some(0, 8, timeout=0.01) is None

    def test_range_restriction(self):
        board = NotificationBoard(8)
        board.post(6)
        # Waiting on [0, 4) must not see slot 6.
        assert board.wait_some(0, 4, timeout=0.01) is None
        assert board.wait_some(4, 4, timeout=0.01) == 6

    def test_wakes_up_when_posted_from_other_thread(self):
        board = NotificationBoard(8)

        def poster():
            time.sleep(0.05)
            board.post(2, 11)

        t = threading.Thread(target=poster)
        t.start()
        got = board.wait_some(0, 8, timeout=5.0)
        t.join()
        assert got == 2
        assert board.reset(2) == 11

    def test_returns_lowest_pending_in_range(self):
        board = NotificationBoard(8)
        board.post(5)
        board.post(1)
        assert board.wait_some(0, 8, timeout=0.0) == 1


class TestWaitAll:
    def test_wait_all_satisfied(self):
        board = NotificationBoard(8)
        for nid in (1, 2, 3):
            board.post(nid)
        board.wait_all([1, 2, 3], timeout=0.1)  # must not raise

    def test_wait_all_timeout_raises(self):
        board = NotificationBoard(8)
        board.post(1)
        with pytest.raises(GaspiTimeoutError):
            board.wait_all([1, 2], timeout=0.02)

    def test_wait_all_wakes_on_last_post(self):
        board = NotificationBoard(8)
        board.post(0)

        def poster():
            time.sleep(0.03)
            board.post(1)

        t = threading.Thread(target=poster)
        t.start()
        board.wait_all([0, 1], timeout=5.0)
        t.join()


class TestConcurrency:
    def test_concurrent_posters_all_seen(self):
        board = NotificationBoard(128)

        def poster(base):
            for i in range(16):
                board.post(base + i)

        threads = [threading.Thread(target=poster, args=(b,)) for b in (0, 16, 32, 48)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(board.pending_ids()) == 64

    def test_single_consumption_under_racing_resets(self):
        board = NotificationBoard(4)
        board.post(0, 5)
        results = []

        def consumer():
            results.append(board.reset(0))

        threads = [threading.Thread(target=consumer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exactly one consumer observed the value; everyone else got 0.
        assert sorted(results) == [0, 0, 0, 5]
