"""Shared-memory runtime (:mod:`repro.gaspi.shm`): semantics, harness, cleanup."""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro import (
    Communicator,
    ConsistencyPolicy,
    FaultPlan,
    run_backend,
    run_shm,
)
from repro.gaspi import (
    GaspiInvalidArgumentError,
    GaspiSegmentError,
    GaspiTimeoutError,
    Group,
    SpmdError,
)
from repro.gaspi.shm import ShmConfig, ShmWorld

from tests.helpers import expected_sum, rank_vector


def _shm_entries(uid: str):
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return [n for n in os.listdir(shm_dir) if n.startswith(uid)]


def _run_clean(num_ranks, fn, **kwargs):
    """run_shm asserting that no shared-memory block had to be swept."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        results = run_shm(num_ranks, fn, **kwargs)
    leaks = [w for w in caught if issubclass(w.category, ResourceWarning)]
    assert not leaks, [str(w.message) for w in leaks]
    return results


# --------------------------------------------------------------------------- #
# GASPI semantics across processes
# --------------------------------------------------------------------------- #
class TestShmSemantics:
    def test_write_notify_data_visible_before_notification(self):
        def worker(rt):
            rt.segment_create(7, 256)
            rt.barrier()
            if rt.rank == 0:
                staged = rt.segment_view(7, np.float64, count=4)
                staged[:] = [1.0, 2.0, 3.0, 4.0]
                for target in range(1, rt.size):
                    rt.write_notify(7, 0, target, 7, 64, 32, notification_id=5,
                                    notification_value=9)
                rt.wait()
                rt.barrier()
                return None
            nid = rt.notify_waitsome(7, 5, 1, timeout=30.0)
            assert nid == 5
            # GASPI guarantee: the data is already visible at this point.
            got = rt.segment_view(7, np.float64, offset=64, count=4).copy()
            value = rt.notify_reset(7, 5)
            rt.barrier()
            return got.tolist(), value

        results = _run_clean(3, worker, timeout=60)
        for out in results[1:]:
            assert out == ([1.0, 2.0, 3.0, 4.0], 9)

    def test_notify_wait_probe_peek_drain(self):
        def worker(rt):
            rt.segment_create(3, 64, num_notifications=32)
            rt.barrier()
            if rt.rank == 0:
                rt.notify(1, 3, 4, notification_value=2)
                rt.notify(1, 3, 9, notification_value=7)
                rt.barrier()
                return None
            out = {}
            assert rt.notify_waitsome(3, 0, 32, timeout=30.0) is not None
            out["peek"] = rt.notify_peek(3, 4)
            out["probe_hit"] = rt.notify_probe(3, 4, 1)
            out["probe_miss"] = rt.notify_probe(3, 20, 5)
            out["timeout"] = rt.notify_waitsome(3, 20, 5, timeout=0.05)
            # Wait until both posts are visible, then drain atomically.
            assert rt.notify_waitsome(3, 9, 1, timeout=30.0) == 9
            out["drain"] = rt.notify_drain(3)
            out["after"] = rt.notify_probe(3, 0, 32)
            rt.barrier()
            return out

        out = _run_clean(2, worker, timeout=60)[1]
        assert out["peek"] == 2
        assert out["probe_hit"] is True and out["probe_miss"] is False
        assert out["timeout"] is None
        assert out["drain"] == {4: 2, 9: 7}
        assert out["after"] is False

    def test_atomic_fetch_add_across_processes(self):
        def worker(rt):
            rt.segment_create(2, 64)
            rt.barrier()
            old = [rt.atomic_fetch_add(2, 0, 0, 1) for _ in range(5)]
            rt.barrier()
            counter = int(rt.segment_view(2, np.int64, count=1)[0]) if rt.rank == 0 else None
            rt.barrier()
            return old, counter

        results = _run_clean(4, worker, timeout=60)
        assert results[0][1] == 20  # every increment landed exactly once
        seen = sorted(v for olds, _ in results for v in olds)
        assert seen == list(range(20))  # each fetch saw a unique old value

    def test_group_barrier_and_broken_barrier_recovers(self):
        def worker(rt):
            import time

            evens = Group([0, 2])
            out = {}
            if rt.rank % 2 == 0:
                rt.barrier(evens)  # subgroup barrier must not involve odds
            rt.barrier()
            if rt.rank == 3:
                # Play dead for this round: the others' finite timeout
                # breaks the barrier instead of hanging on us...
                time.sleep(1.2)
            else:
                try:
                    rt.barrier(timeout=0.3)
                    out["broke"] = False
                except GaspiTimeoutError:
                    out["broke"] = True
            # ...and once the broken round drained, a full-world barrier
            # (the "recovered" rank included) works again.
            rt.barrier(timeout=30.0)
            out["recovered"] = True
            return out

        results = _run_clean(4, worker, timeout=60)
        assert all(r["recovered"] for r in results)
        assert all(results[r]["broke"] for r in range(3))

    def test_segment_errors_match_threaded_semantics(self):
        def worker(rt):
            rt.segment_create(1, 128)
            with pytest.raises(Exception):  # duplicate id
                rt.segment_create(1, 128)
            with pytest.raises(GaspiSegmentError):
                rt.segment_view(99)
            with pytest.raises(GaspiSegmentError):
                rt.segment_delete(99)
            with pytest.raises(GaspiInvalidArgumentError):
                rt.write(1, 0, 99, 1, 0, 8)  # target outside the world
            with pytest.raises(GaspiInvalidArgumentError):
                rt.wait(queue=10_000)
            rt.barrier()
            with pytest.raises(GaspiSegmentError):
                # Peer never created segment 55: fail fast, like threaded.
                rt.write(1, 0, (rt.rank + 1) % rt.size, 55, 0, 8)
            with pytest.raises(GaspiSegmentError):
                rt.write(1, 0, (rt.rank + 1) % rt.size, 1, 120, 64)  # OOB
            assert rt.supports_bind is False
            rt.barrier()
            rt.segment_delete(1)
            return True

        assert _run_clean(2, worker, timeout=60) == [True, True]

    def test_segment_delete_invalidates_remote_attachments(self):
        def worker(rt):
            rt.segment_create(4, 64)
            rt.barrier()
            peer = (rt.rank + 1) % rt.size
            rt.write(4, 0, peer, 4, 0, 8)  # caches the remote attachment
            rt.barrier()
            rt.segment_delete(4)
            rt.segment_create(4, 64)  # same id, fresh block
            rt.barrier()
            staged = rt.segment_view(4, np.float64, count=1)
            staged[0] = float(rt.rank) + 0.5
            rt.write_notify(4, 0, peer, 4, 8, 8, notification_id=1)
            assert rt.notify_waitsome(4, 1, 1, timeout=30.0) == 1
            got = float(rt.segment_view(4, np.float64, offset=8, count=1)[0])
            rt.barrier()
            return got

        results = _run_clean(2, worker, timeout=60)
        # The write landed in the *new* block, not the stale mapping.
        assert results == [1.5, 0.5]


# --------------------------------------------------------------------------- #
# the run_shm harness
# --------------------------------------------------------------------------- #
class TestRunShm:
    def test_exceptions_propagate_with_rank(self):
        def worker(rt):
            if rt.rank == 2:
                raise ValueError("boom on rank 2")
            rt.barrier(timeout=1.0)
            return rt.rank

        with pytest.raises(SpmdError) as excinfo:
            run_shm(4, worker, timeout=60)
        assert any(rank == 2 and "boom" in str(exc)
                   for rank, exc, _ in excinfo.value.failures)

    def test_stuck_rank_is_terminated_and_reported(self):
        def worker(rt):
            if rt.rank == 1:
                import time

                time.sleep(60.0)
            return rt.rank

        with pytest.raises(SpmdError) as excinfo:
            run_shm(2, worker, timeout=1.5)
        assert any(isinstance(exc, TimeoutError) and rank == 1
                   for rank, exc, _ in excinfo.value.failures)

    def test_leaked_segments_are_swept_and_warned(self):
        def worker(rt):
            rt.segment_create(11, 256)  # never deleted by the worker...
            rt.barrier()
            return True

        # ...but ShmRuntime.close() in the harness still unlinks owned
        # segments, so a *forgotten delete* is not a leak.
        _run_clean(2, worker, timeout=60)

        def leaky(rt):
            rt.segment_create(12, 256)
            rt.barrier()
            # Simulate a rank losing track of its mapping entirely.
            rt._local.clear()
            return True

        with pytest.warns(ResourceWarning, match="swept"):
            run_shm(2, leaky, timeout=60)

    def test_nothing_left_in_dev_shm_after_close(self):
        world = ShmWorld(2, ShmConfig())
        uid = world.uid
        assert _shm_entries(uid)  # the control block exists while open
        world.close()
        assert _shm_entries(uid) == []

    def test_run_backend_dispatches_and_validates(self):
        def worker(rt):
            return type(rt).__name__

        assert run_backend(2, worker, backend="threaded", timeout=60) == [
            "ThreadedRuntime",
            "ThreadedRuntime",
        ]
        assert run_backend(2, worker, backend="shm", timeout=60) == [
            "ShmRuntime",
            "ShmRuntime",
        ]
        with pytest.raises(GaspiInvalidArgumentError, match="unknown backend"):
            run_backend(2, worker, backend="quantum")


# --------------------------------------------------------------------------- #
# the stack above the runtime, cross-process
# --------------------------------------------------------------------------- #
class TestShmStack:
    def test_communicator_run_selects_backend(self):
        def worker(comm):
            value = comm.allreduce(np.full(64, float(comm.rank) + 1.0))
            return float(value[0]), type(comm.runtime).__name__

        shm = Communicator.run(4, worker, backend="shm", timeout=90)
        threaded = Communicator.run(4, worker, backend="threaded", timeout=90)
        assert [v for v, _ in shm] == [10.0] * 4 == [v for v, _ in threaded]
        assert {name for _, name in shm} == {"ShmRuntime"}
        assert {name for _, name in threaded} == {"ThreadedRuntime"}

    def test_communicator_split_runs_cross_process(self):
        def worker(rt):
            comm = Communicator(rt)
            half = comm.split(rt.rank % 2)
            total = half.allreduce(np.full(32, float(rt.rank)))
            half.close()
            comm.close()
            return float(total[0])

        results = _run_clean(4, worker, timeout=90)
        assert results == [2.0, 4.0, 2.0, 4.0]  # 0+2 and 1+3

    def test_fault_injection_delay_and_drop_cross_process(self):
        """Pure-delay plans perturb timing only; results stay exact."""

        def worker(rt):
            comm = Communicator(
                rt, faults=FaultPlan(delay={0: 0.002}, jitter=0.001)
            )
            value = comm.allreduce(rank_vector(rt.rank, 64))
            comm.close()
            return value.tobytes()

        results = _run_clean(4, worker, timeout=90)
        assert all(r == results[0] for r in results)  # ranks agree bitwise
        np.testing.assert_allclose(
            np.frombuffer(results[0]), expected_sum(4, 64), rtol=1e-12
        )

    def test_degraded_completion_after_cross_process_crash(self):
        """A crashed rank process: survivors complete at the process
        threshold, report the missing rank, and nothing leaks."""
        crash = 3
        policy = ConsistencyPolicy(
            threshold=0.5, mode="processes", on_failure="complete"
        )

        def worker(rt):
            comm = Communicator(
                rt,
                faults=FaultPlan.single_crash(crash, at_op=0),
                detect_timeout=1.0,
                policy=policy,
            )
            if rt.rank == crash:
                with pytest.raises(Exception):
                    comm.allreduce(rank_vector(rt.rank, 50))
                comm.close()
                return None
            value = comm.allreduce(rank_vector(rt.rank, 50))
            missing = tuple(comm.last_result.missing_ranks)
            comm.close()
            return value.tobytes(), missing

        results = _run_clean(4, worker, timeout=90)
        assert results[crash] is None
        survivors = np.zeros(50)
        for rank in range(4):
            if rank != crash:
                survivors += rank_vector(rank, 50)
        for rank, out in enumerate(results):
            if rank == crash:
                continue
            value, missing = out
            assert missing == (crash,)
            np.testing.assert_allclose(
                np.frombuffer(value), survivors, rtol=1e-12
            )
