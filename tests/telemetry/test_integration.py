"""Live telemetry: instrumented communicators, traces, identical numerics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator
from repro.telemetry import Telemetry, chrome_trace, merge_snapshots, validate_snapshot
from tests.helpers import expected_sum, rank_vector, spmd

RANKS = 4
N = 4096  # large enough for several pipeline chunks with chunk_bytes below


def _allreduce_cell(runtime, iters=3, algorithm="ring_pipelined"):
    from repro.core.policy import ConsistencyPolicy

    tel = Telemetry(rank=runtime.rank)
    comm = Communicator(
        runtime,
        telemetry=tel,
        policy=ConsistencyPolicy(chunk_bytes=4096),
    )
    out = None
    for _ in range(iters):
        out = comm.allreduce(rank_vector(runtime.rank, N), algorithm=algorithm)
    comm.close()
    return out, tel.snapshot(events=True)


class TestInstrumentedRun:
    @pytest.fixture(scope="class")
    def cell(self):
        results = spmd(RANKS, _allreduce_cell)
        return [r[0] for r in results], [r[1] for r in results]

    def test_results_identical_to_uninstrumented_run(self, cell):
        values, _ = cell
        bare = spmd(
            RANKS,
            lambda rt: Communicator(rt).allreduce(
                rank_vector(rt.rank, N), algorithm="ring_pipelined"
            ),
        )
        expected = expected_sum(RANKS, N)
        for instrumented, plain in zip(values, bare):
            np.testing.assert_allclose(instrumented, expected, rtol=1e-12)
            np.testing.assert_array_equal(instrumented, plain)

    def test_snapshot_counts_dispatches_and_cache_outcomes(self, cell):
        _, snapshots = cell
        merged = merge_snapshots(snapshots)
        validate_snapshot(merged)
        assert merged["counters"]["collective.calls"] == 3 * RANKS
        assert merged["counters"]["plan_cache.misses"] == RANKS
        assert merged["counters"]["plan_cache.hits"] == 2 * RANKS
        assert merged["counters"]["runtime.writes"] > 0
        assert merged["counters"]["runtime.bytes_written"] > 0
        assert (
            merged["counters"]["runtime.notifications_posted"]
            >= merged["counters"]["runtime.notifications_consumed"] > 0
        )

    def test_dispatch_spans_carry_algorithm_and_outcome(self, cell):
        _, snapshots = cell
        for snap in snapshots:
            spans = [e for e in snap["events"] if e["cat"] == "collective"]
            assert len(spans) == 3
            for span in spans:
                assert span["name"] == "allreduce"
                assert span["args"]["outcome"] == "ok"
                assert span["args"]["algorithm"] == "gaspi_allreduce_ring_pipelined"
                assert span["args"]["plan_cache"] in ("hit", "miss")

    def test_chrome_trace_has_rank_rows_with_nested_chunks(self, cell):
        _, snapshots = cell
        trace = chrome_trace(snapshots)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in events} == set(range(RANKS))
        collectives = [e for e in events if e["cat"] == "collective"]
        chunks = [e for e in events if e["cat"] == "chunk"]
        assert chunks, "pipelined run must surface chunk spans"
        for chunk in chunks:
            assert any(
                parent["tid"] == chunk["tid"]
                and parent["ts"] <= chunk["ts"]
                and chunk["ts"] + chunk["dur"] <= parent["ts"] + parent["dur"] + 1.0
                for parent in collectives
            ), "every chunk span nests inside a collective span"
        names = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert names == [f"rank {r}" for r in range(RANKS)]

    def test_wait_histogram_has_samples(self, cell):
        _, snapshots = cell
        merged = merge_snapshots(snapshots)
        chunk_wait = merged["histograms"]["pipeline.chunk_wait_s"]
        latency = merged["histograms"]["collective.latency_s"]
        assert latency["count"] == 3 * RANKS
        assert latency["p50"] <= latency["p99"] <= latency["max"]
        # Chunk waits happen whenever a rank blocks on a peer; with 4 ranks
        # and several chunks per call at least some ranks block.
        assert chunk_wait["count"] == merged["counters"]["pipeline.chunks"]


class TestDisabledPathEquivalence:
    def test_uninstrumented_communicator_uses_null_registry(self):
        def worker(runtime):
            comm = Communicator(runtime)
            assert not comm.telemetry.enabled
            out = comm.allreduce(rank_vector(runtime.rank, 128))
            snap = comm.telemetry.snapshot()
            comm.close()
            return out, snap

        results = spmd(2, worker)
        for out, snap in results:
            np.testing.assert_allclose(out, expected_sum(2, 128), rtol=1e-12)
            assert snap["counters"] == {}
            assert snap["events_recorded"] == 0


class TestSplitSharesRegistry:
    def test_child_communicator_counts_traffic_once(self):
        def worker(runtime):
            tel = Telemetry(rank=runtime.rank)
            comm = Communicator(runtime, telemetry=tel)
            child = comm.split(runtime.rank % 2)
            child.allreduce(rank_vector(runtime.rank, 64))
            child.close()
            comm.close()
            return tel.snapshot()

        snapshots = spmd(RANKS, worker)
        merged = merge_snapshots(snapshots)
        # The child dispatch span/counters land in the shared parent
        # registry; split's own allgather plus the child allreduce are
        # counted, and no metric is doubled by re-wrapping.
        assert merged["counters"]["collective.calls"] == RANKS
        writes = merged["counters"]["runtime.writes"]
        assert 0 < writes < 10 * RANKS * RANKS


class TestFaultyRunTelemetry:
    def test_degraded_dispatch_records_outcome_and_suspicions(self):
        from repro.core.policy import ConsistencyPolicy
        from repro.faults import FaultPlan

        plan = FaultPlan.single_crash(2, at_op=0)
        # Tolerant policy: survivors complete degraded instead of aborting,
        # so the dispatch span records outcome="degraded" + missing_ranks.
        tolerant = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")

        def worker(runtime):
            tel = Telemetry(rank=runtime.rank)
            comm = Communicator(
                runtime, faults=plan, detect_timeout=0.4, telemetry=tel
            )
            try:
                comm.allreduce(np.ones(64), policy=tolerant)
            except Exception:
                pass
            snap = tel.snapshot(events=True)
            comm.close()
            return runtime.rank, snap

        results = dict(spmd(RANKS, worker, timeout=90.0))
        survivors = [r for r in range(RANKS) if r != 2]
        merged = merge_snapshots([results[r] for r in survivors])
        assert merged["counters"]["faults.suspicions"] >= len(survivors)
        assert merged["histograms"]["faults.suspicion_latency_s"]["count"] >= 1
        degraded = [
            e
            for r in survivors
            for e in results[r]["events"]
            if e["args"].get("outcome") == "degraded"
        ]
        assert degraded
        assert all(e["args"]["missing_ranks"] == [2] for e in degraded)
