"""Unit tests of the telemetry instrumentation core."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    SNAPSHOT_SCHEMA,
    Histogram,
    NullTelemetry,
    Telemetry,
    merge_snapshots,
    validate_snapshot,
)


class TestInstruments:
    def test_counter_accumulates(self):
        tel = Telemetry()
        c = tel.counter("x")
        c.add()
        c.add(41)
        assert tel.snapshot()["counters"]["x"] == 42

    def test_counter_is_get_or_create(self):
        tel = Telemetry()
        assert tel.counter("x") is tel.counter("x")
        assert tel.histogram("h") is tel.histogram("h")
        assert tel.gauge("g") is tel.gauge("g")

    def test_gauge_tracks_last_max_updates(self):
        tel = Telemetry()
        g = tel.gauge("depth")
        g.set(3)
        g.set(7)
        g.set(2)
        snap = tel.snapshot()["gauges"]["depth"]
        assert snap == {"last": 2, "max": 7, "updates": 3}

    def test_histogram_percentiles_cover_observations(self):
        h = Histogram("lat")
        for value in (1e-5, 2e-5, 1e-4, 1e-3, 1e-2):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == pytest.approx(1e-5)
        assert snap["max"] == pytest.approx(1e-2)
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]

    def test_histogram_empty_snapshot_is_zeros(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0
        assert snap["buckets"] == []

    def test_histogram_overflow_attributed_to_maximum(self):
        h = Histogram("lat", bounds=(1e-6, 2e-6))
        h.observe(5.0)  # beyond the last bound
        snap = h.snapshot()
        assert snap["overflow"] == 1
        assert snap["p99"] == pytest.approx(5.0)


class TestTelemetryRegistry:
    def test_span_context_manager_records_event(self):
        tel = Telemetry(rank=3)
        with tel.span("allreduce", nbytes=64) as span:
            span.set(outcome="ok")
        snap = tel.snapshot(events=True)
        (event,) = snap["events"]
        assert event["name"] == "allreduce"
        assert event["dur"] >= 0.0
        assert event["args"]["nbytes"] == 64
        assert event["args"]["outcome"] == "ok"

    def test_event_cap_counts_drops_instead_of_growing(self):
        tel = Telemetry(max_events=2)
        for _ in range(5):
            tel.record_span("s", "c", 0.0, 1.0)
        snap = tel.snapshot(events=True)
        assert snap["events_recorded"] == 2
        assert snap["events_dropped"] == 3
        assert len(snap["events"]) == 2

    def test_snapshot_is_json_serialisable_and_valid(self):
        tel = Telemetry(rank=1)
        tel.counter("a").add(2)
        tel.gauge("b").set(1.5)
        tel.histogram("c").observe(0.001)
        snap = tel.snapshot(events=True)
        validate_snapshot(snap)
        assert json.loads(json.dumps(snap)) == snap


class TestDisabledPath:
    def test_null_registry_is_disabled_and_shared(self):
        assert not NULL_TELEMETRY.enabled
        assert isinstance(NULL_TELEMETRY, NullTelemetry)

    def test_null_instruments_have_zero_side_effects(self):
        before = NULL_TELEMETRY.snapshot(events=True)
        NULL_TELEMETRY.counter("x").add(10)
        NULL_TELEMETRY.gauge("g").set(5)
        NULL_TELEMETRY.histogram("h").observe(1.0)
        NULL_TELEMETRY.record_span("s", "c", 0.0, 1.0)
        with NULL_TELEMETRY.span("collective") as span:
            span.set(outcome="ok")
        after = NULL_TELEMETRY.snapshot(events=True)
        assert after == before
        assert after["counters"] == {}
        assert after["events"] == []

    def test_null_snapshot_matches_schema(self):
        snap = NULL_TELEMETRY.snapshot()
        validate_snapshot(snap)
        assert snap["schema"] == SNAPSHOT_SCHEMA


class TestMerge:
    def _rank_snapshot(self, rank: int) -> dict:
        tel = Telemetry(rank=rank)
        tel.counter("runtime.writes").add(10 * (rank + 1))
        tel.gauge("progress.queue_depth").set(rank)
        tel.histogram("runtime.wait_s").observe(0.001 * (rank + 1))
        tel.record_span("allreduce", "collective", 1.0 + rank, 2.0 + rank)
        return tel.snapshot(events=True)

    def test_merge_sums_counters_and_keeps_per_rank(self):
        merged = merge_snapshots([self._rank_snapshot(r) for r in range(3)])
        validate_snapshot(merged)
        assert merged["ranks"] == [0, 1, 2]
        assert merged["counters"]["runtime.writes"] == 60
        assert merged["per_rank"]["1"]["counters"]["runtime.writes"] == 20

    def test_merge_max_merges_gauges_and_merges_histograms(self):
        merged = merge_snapshots([self._rank_snapshot(r) for r in range(3)])
        assert merged["gauges"]["progress.queue_depth"]["max"] == 2
        hist = merged["histograms"]["runtime.wait_s"]
        assert hist["count"] == 3
        assert hist["min"] == pytest.approx(0.001)
        assert hist["max"] == pytest.approx(0.003)
        assert hist["min"] <= hist["p50"] <= hist["p99"] <= hist["max"]

    def test_merge_tags_events_with_rank_and_sorts_by_time(self):
        merged = merge_snapshots([self._rank_snapshot(r) for r in (2, 0, 1)])
        events = merged["events"]
        assert [e["rank"] for e in events] == [0, 1, 2]
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
