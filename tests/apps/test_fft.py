"""Tests of the distributed FFT mini-app (the AlltoAll workload)."""

import numpy as np
import pytest

from repro.apps import DistributedFFT, paper_message_range, run_distributed_fft
from repro.core import Communicator
from repro.gaspi import run_spmd


class TestDistributedFFT:
    @pytest.mark.parametrize("num_ranks,grid", [(1, 8), (2, 8), (4, 16), (4, 32)])
    def test_matches_numpy_fft2(self, num_ranks, grid):
        stats = run_distributed_fft(num_ranks, grid, seed=3)
        assert len(stats) == num_ranks
        for s in stats:
            assert s.max_error < 1e-10
            assert s.alltoall_calls == 2

    def test_grid_not_divisible_rejected(self):
        def worker(rt):
            comm = Communicator(rt)
            with pytest.raises(ValueError):
                DistributedFFT(comm, 10)
            return True

        assert all(run_spmd(4, worker, timeout=30))

    def test_transpose_is_involution(self):
        def worker(rt):
            comm = Communicator(rt)
            fft = DistributedFFT(comm, 16)
            rng = np.random.default_rng(comm.rank)
            slab = rng.standard_normal((fft.rows_per_rank, 16)) + 0j
            back = fft.transpose(fft.transpose(slab))
            return np.allclose(back, slab)

        assert all(run_spmd(4, worker, timeout=60))

    def test_block_bytes_formula(self):
        def worker(rt):
            comm = Communicator(rt)
            fft = DistributedFFT(comm, 32)
            return fft.block_bytes

        sizes = run_spmd(4, worker, timeout=30)
        assert all(b == 16 * 8 * 8 for b in sizes)

    def test_paper_message_range_targets_6_to_24_kb(self):
        for P in (4, 8, 16):
            for n in paper_message_range(P):
                block = 16 * (n // P) ** 2
                assert 3 * 1024 <= block <= 48 * 1024
                assert n % P == 0

    def test_stats_flag_for_paper_range(self):
        # 16 ranks, grid chosen from the paper range → flag should be set
        n = paper_message_range(4)[1]
        stats = run_distributed_fft(4, n, seed=0)
        assert all(s.message_size_in_paper_range for s in stats)
