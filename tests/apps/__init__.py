"""Test package."""
