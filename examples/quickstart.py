#!/usr/bin/env python
"""Quickstart: the policy-driven collective library in ~70 lines.

Runs an 8-rank in-process GASPI world and exercises the paper's
collectives through the v2 API: registry-routed dispatch with
``algorithm="auto"``, first-class :class:`ConsistencyPolicy` objects for
the eventually consistent modes, sub-communicators via ``split()``, and
the SSP Allreduce.

Run with:  python examples/quickstart.py [num_ranks]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Communicator, ConsistencyPolicy, run_spmd


def worker(runtime):
    comm = Communicator(runtime)
    rank, size = comm.rank, comm.size

    # --- consistent Allreduce: "auto" picks the algorithm by payload ------- #
    # (latency-optimal hypercube for small vectors, the paper's segmented
    # pipelined ring (§IV-A) for large ones — check comm.last_result).
    gradient = np.full(100_000, float(rank + 1))
    total = comm.allreduce(gradient, op="sum")
    allreduce_algo = comm.last_result.algorithm
    assert np.allclose(total, size * (size + 1) / 2)

    # --- eventually consistent Broadcast (25 % of the data, paper §III-B) -- #
    model = np.linspace(0.0, 1.0, 10_000) if rank == 0 else np.zeros(10_000)
    bcast_status = comm.bcast(
        model, root=0, policy=ConsistencyPolicy.data_threshold(0.25)
    )

    # --- eventually consistent Reduce (half of the processes, Figure 10) --- #
    result = np.zeros(10_000)
    reduce_status = comm.reduce(
        np.full(10_000, 1.0),
        result,
        root=0,
        policy=ConsistencyPolicy.process_threshold(0.5),
    )

    # --- AlltoAll (paper §IV-B, the Quantum-Espresso FFT pattern) ---------- #
    blocks = np.arange(size * 16, dtype=np.float64) + 1000.0 * rank
    exchanged = comm.alltoall(blocks)

    # --- sub-communicators: collectives over a rank subset ----------------- #
    half = comm.split(rank % 2, key=rank)
    half_total = half.allreduce(np.full(10, float(rank + 1)))

    # --- SSP Allreduce (Algorithm 1) with a slack of 2 --------------------- #
    ssp = comm.allreduce_ssp(gradient, policy=ConsistencyPolicy.ssp(2))
    comm.barrier()
    comm.close_ssp()

    return {
        "rank": rank,
        "allreduce[0]": float(total[0]),
        "allreduce_algorithm": allreduce_algo,
        "bcast_elements_received": bcast_status.elements_received,
        "reduce_participated": reduce_status.participated,
        "alltoall_first_block_from_last_rank": float(exchanged[-16]),
        "half_group_sum": float(half_total[0]),
        "ssp_result_clock": ssp.clock,
        "ssp_staleness": ssp.stats.staleness,
    }


def main() -> None:
    num_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    results = run_spmd(num_ranks, worker)
    print(f"ran {num_ranks} ranks in one process (threaded GASPI runtime)\n")
    for row in results:
        print(
            f"rank {row['rank']}: allreduce={row['allreduce[0]']:.0f} "
            f"(via {row['allreduce_algorithm']}), "
            f"bcast received {row['bcast_elements_received']} elems, "
            f"reduce participated={row['reduce_participated']}, "
            f"half-group sum={row['half_group_sum']:.0f}, "
            f"ssp clock={row['ssp_result_clock']} (staleness {row['ssp_staleness']})"
        )


if __name__ == "__main__":
    main()
