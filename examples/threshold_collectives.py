#!/usr/bin/env python
"""Eventually consistent Broadcast/Reduce in action (paper §III-B).

Shows, on real data, what the threshold parameter does: how much of the
payload arrives, how far off the partially-reduced result is, and how much
communication it saves — the trade-off Figures 8-10 quantify in time.

Run with:  python examples/threshold_collectives.py [--ranks 8] [--elements 100000]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import Communicator, run_spmd
from repro.bench.report import format_kv_table
from repro.core import ThresholdCompressor, threshold_elements


def worker(runtime, elements, thresholds):
    comm = Communicator(runtime)
    rng = np.random.default_rng(comm.rank)
    contribution = rng.standard_normal(elements)

    exact = comm.allreduce(contribution.copy(), algorithm="ring")
    rows = []
    for threshold in thresholds:
        recv = np.zeros(elements)
        comm.reduce(contribution.copy(), recv, root=0, threshold=threshold, mode="data")
        if comm.rank == 0:
            k = threshold_elements(elements, threshold)
            err = np.linalg.norm(recv[:k] - exact[:k]) / (np.linalg.norm(exact[:k]) + 1e-30)
            coverage = k / elements
            rows.append(
                {
                    "threshold": f"{int(threshold * 100)}%",
                    "elements reduced": k,
                    "coverage": round(coverage, 3),
                    "relative error (reduced prefix)": f"{err:.1e}",
                    "bytes shipped per child": k * 8,
                }
            )
        comm.barrier()
    return rows if comm.rank == 0 else None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--elements", type=int, default=100_000)
    args = parser.parse_args()

    thresholds = (0.25, 0.5, 0.75, 1.0)
    results = run_spmd(args.ranks, worker, args.elements, thresholds)
    print(format_kv_table(results[0], title="eventually consistent Reduce: data thresholds"))

    # The compression extension (paper §IV-A "future work"): drop small values
    # instead of a prefix.
    rng = np.random.default_rng(0)
    gradient = rng.standard_normal(args.elements) * np.exp(-np.arange(args.elements) / 1e4)
    rows = []
    for cutoff in (0.0, 0.01, 0.1, 0.5):
        comp = ThresholdCompressor(cutoff).compress(gradient)
        err = np.linalg.norm(gradient - comp.decompress()) / np.linalg.norm(gradient)
        rows.append(
            {
                "magnitude cutoff": cutoff,
                "kept elements": comp.nnz,
                "compression ratio": round(comp.compression_ratio, 2),
                "relative error": f"{err:.2e}",
            }
        )
    print()
    print(format_kv_table(rows, title="threshold compression of a decaying gradient"))


if __name__ == "__main__":
    main()
