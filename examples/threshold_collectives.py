#!/usr/bin/env python
"""Consistency policies in action: the paper's threshold collectives (§III-B).

The v2 API expresses the paper's consistency dial as one value object,
:class:`repro.ConsistencyPolicy`, instead of loose per-call kwargs:

* ``ConsistencyPolicy.strict()``            — all data, all processes;
* ``ConsistencyPolicy.data_threshold(f)``   — ship the leading fraction
  ``f`` of every vector (Figures 8 & 9);
* ``ConsistencyPolicy.process_threshold(f)``— full vectors, but only a
  fraction ``f`` of the processes contribute (Figure 10);
* ``ConsistencyPolicy.ssp(slack)``          — bounded-stale contributions
  (Algorithm 1).

This example shows, on real data, what each dial position buys: how much
of the payload arrives, how far off the partially-reduced result is, and
how much communication it saves — the trade-off Figures 8-10 quantify in
time.  Every collective routes through the algorithm registry; the policy
travels with the call and is recorded on the result.

Run with:  python examples/threshold_collectives.py [--ranks 8] [--elements 100000]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import Communicator, ConsistencyPolicy, run_spmd
from repro.bench.report import format_kv_table
from repro.core import ThresholdCompressor, threshold_elements


def worker(runtime, elements, fractions):
    comm = Communicator(runtime)
    rng = np.random.default_rng(comm.rank)
    contribution = rng.standard_normal(elements)

    exact = comm.allreduce(contribution.copy(), algorithm="ring")
    rows = []
    for fraction in fractions:
        policy = (
            ConsistencyPolicy.strict()
            if fraction == 1.0
            else ConsistencyPolicy.data_threshold(fraction)
        )
        recv = np.zeros(elements)
        result = comm.reduce(contribution.copy(), recv, root=0, policy=policy)
        if comm.rank == 0:
            k = threshold_elements(elements, fraction)
            err = np.linalg.norm(recv[:k] - exact[:k]) / (np.linalg.norm(exact[:k]) + 1e-30)
            rows.append(
                {
                    "policy": policy.describe(),
                    "algorithm": result.algorithm,
                    "elements reduced": k,
                    "coverage": round(k / elements, 3),
                    "relative error (reduced prefix)": f"{err:.1e}",
                    "bytes shipped per child": k * 8,
                }
            )
        comm.barrier()

    # Process thresholds: full vectors, but the ranks farthest from the
    # root stay silent (Figure 10).
    proc_rows = []
    for fraction in fractions:
        result = comm.reduce(
            contribution.copy(),
            np.zeros(elements),
            root=0,
            policy=ConsistencyPolicy.process_threshold(fraction),
        )
        participated = comm.allreduce(
            np.array([1.0 if result.participated else 0.0]), algorithm="ring"
        )
        if comm.rank == 0:
            proc_rows.append(
                {
                    "policy": f"{int(fraction * 100)}% processes",
                    "contributing ranks": int(participated[0]),
                    "of": comm.size,
                }
            )
        comm.barrier()
    return (rows, proc_rows) if comm.rank == 0 else None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--elements", type=int, default=100_000)
    args = parser.parse_args()

    fractions = (0.25, 0.5, 0.75, 1.0)
    results = run_spmd(args.ranks, worker, args.elements, fractions)
    data_rows, proc_rows = results[0]
    print(format_kv_table(data_rows, title="eventually consistent Reduce: data-threshold policies"))
    print()
    print(format_kv_table(proc_rows, title="eventually consistent Reduce: process-threshold policies"))

    # The compression extension (paper §IV-A "future work"): drop small values
    # instead of a prefix.
    rng = np.random.default_rng(0)
    gradient = rng.standard_normal(args.elements) * np.exp(-np.arange(args.elements) / 1e4)
    rows = []
    for cutoff in (0.0, 0.01, 0.1, 0.5):
        comp = ThresholdCompressor(cutoff).compress(gradient)
        err = np.linalg.norm(gradient - comp.decompress()) / np.linalg.norm(gradient)
        rows.append(
            {
                "magnitude cutoff": cutoff,
                "kept elements": comp.nnz,
                "compression ratio": round(comp.compression_ratio, 2),
                "relative error": f"{err:.2e}",
            }
        )
    print()
    print(format_kv_table(rows, title="threshold compression of a decaying gradient"))


if __name__ == "__main__":
    main()
