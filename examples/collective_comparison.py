#!/usr/bin/env python
"""Regenerate the paper's timing figures from the command line.

Thin CLI over repro.bench.experiments: pick a figure (8-13), a scale, and
get the same rows the paper plots, rendered as text tables.

Run with:  python examples/collective_comparison.py --figure fig12 --scale small
           python examples/collective_comparison.py --all
"""

from __future__ import annotations

import argparse

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.report import format_series_table

SIMULATED_FIGURES = ("fig08", "fig09", "fig10", "fig11", "fig12", "fig13")


def render(figure: str, scale: str) -> None:
    experiment = ALL_EXPERIMENTS[figure]
    result = experiment(scale)
    print(f"=== {result['figure']}: {result['title']} ===")
    if figure == "fig13":
        for nodes, entry in result["series"].items():
            print(format_series_table(entry["series"], "block bytes", "us",
                                      f"{nodes} nodes (4 processes per node)"))
            print(f"  GASPI overtakes MPI at {entry['crossover_bytes']} bytes")
    else:
        print(format_series_table(result["series"], "nodes/bytes", "us"))
        if "crossover_bytes" in result:
            print("crossovers vs each MPI variant (bytes):", result["crossover_bytes"])
    print("paper expectation:", result["paper_expectation"])
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=SIMULATED_FIGURES, default="fig12")
    parser.add_argument("--scale", choices=("small", "paper"), default="small")
    parser.add_argument("--all", action="store_true", help="render every simulated figure")
    args = parser.parse_args()

    figures = SIMULATED_FIGURES if args.all else (args.figure,)
    for figure in figures:
        render(figure, args.scale)


if __name__ == "__main__":
    main()
