#!/usr/bin/env python
"""Regenerate the paper's timing figures from the command line.

Thin CLI over repro.bench.experiments: pick a figure (8-13), a scale, and
get the same rows the paper plots, rendered as text tables.

Run with:  python examples/collective_comparison.py --figure fig12 --scale small
           python examples/collective_comparison.py --all
"""

from __future__ import annotations

import argparse

from repro import select_algorithm
from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.report import format_series_table

SIMULATED_FIGURES = ("fig08", "fig09", "fig10", "fig11", "fig12", "fig13")


def render_auto_selection(num_ranks: int = 32) -> None:
    """What ``algorithm="auto"`` dispatches at each payload size.

    ``executable=True`` applies the same filter a live Communicator does,
    so the rows here are exactly the algorithms a live run would execute
    (the simulator-side pick can differ where the Intel-preferred variant
    is schedule-only).
    """
    print(f"=== algorithm='auto' selection on {num_ranks} ranks ===")
    header = f"{'collective':<12} {'payload':>10}   {'gaspi pick':<32} {'mpi pick':<32}"
    print(header)
    for collective in ("allreduce", "bcast", "reduce", "alltoall"):
        for nbytes in (1 << 10, 64 << 10, 16 << 20):
            picks = []
            for family in ("gaspi", "mpi"):
                try:
                    picks.append(
                        select_algorithm(
                            collective, num_ranks, nbytes, family=family, executable=True
                        ).name
                    )
                except ValueError:
                    picks.append("<none>")
            label = f"{nbytes // 1024} KiB" if nbytes < (1 << 20) else f"{nbytes >> 20} MiB"
            print(f"{collective:<12} {label:>10}   {picks[0]:<32} {picks[1]:<32}")
    print()


def render(figure: str, scale: str) -> None:
    experiment = ALL_EXPERIMENTS[figure]
    result = experiment(scale)
    print(f"=== {result['figure']}: {result['title']} ===")
    if figure == "fig13":
        for nodes, entry in result["series"].items():
            print(format_series_table(entry["series"], "block bytes", "us",
                                      f"{nodes} nodes (4 processes per node)"))
            print(f"  GASPI overtakes MPI at {entry['crossover_bytes']} bytes")
    else:
        print(format_series_table(result["series"], "nodes/bytes", "us"))
        if "crossover_bytes" in result:
            print("crossovers vs each MPI variant (bytes):", result["crossover_bytes"])
    print("paper expectation:", result["paper_expectation"])
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=SIMULATED_FIGURES, default="fig12")
    parser.add_argument("--scale", choices=("small", "paper"), default="small")
    parser.add_argument("--all", action="store_true", help="render every simulated figure")
    args = parser.parse_args()

    render_auto_selection()
    figures = SIMULATED_FIGURES if args.all else (args.figure,)
    for figure in figures:
        render(figure, args.scale)


if __name__ == "__main__":
    main()
