#!/usr/bin/env python
"""The paper's ML experiment: MF-SGD with allreduce_SSP (Figures 6-7).

Trains a Matrix Factorization model with distributed SGD on a synthetic
MovieLens-like dataset, once per slack value, and prints the quantities
the paper plots: iterations per second, time waiting for fresh updates and
time to reach the reference error.

Run with:  python examples/ssp_matrix_factorization.py [--workers 4] [--iterations 60]
           [--slacks 0,2,8] [--parameter-server]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import ConsistencyPolicy
from repro.bench.report import format_kv_table
from repro.ml import DistributedSGDConfig, movielens_like, run_slack_sweep
from repro.ssp import SSPConfig, SSPParameterStore


def run_collective_mode(args) -> None:
    dataset = movielens_like("small" if args.workers <= 4 else "medium", seed=args.seed)
    config = DistributedSGDConfig(
        num_workers=args.workers,
        iterations=args.iterations,
        base_compute_time=args.compute_time,
        perturbation=f"linear:{args.straggler_factor}",
        seed=args.seed,
    )
    slacks = [int(s) for s in args.slacks.split(",")]
    sweep = run_slack_sweep(dataset, slacks, config)

    rows = []
    baseline_time = sweep[slacks[0]].time_to_target
    for slack in slacks:
        entry = sweep[slack]
        rows.append(
            {
                # ConsistencyPolicy.ssp(slack) is the policy a Communicator
                # would carry for the same semantics (comm.allreduce_ssp).
                "policy": ConsistencyPolicy.ssp(slack).describe(),
                "iters/s": round(entry.mean_iterations_per_second, 1),
                "wait/iter [ms]": round(entry.mean_wait_time_per_iteration * 1e3, 3),
                "final rmse": round(entry.final_rmse, 4),
                "time-to-target [s]": (
                    round(entry.time_to_target, 3) if entry.time_to_target else None
                ),
                "speed-up": (
                    round(baseline_time / entry.time_to_target, 2)
                    if baseline_time and entry.time_to_target
                    else None
                ),
            }
        )
    print(format_kv_table(rows, title="MF-SGD with allreduce_SSP (paper Figure 6)"))
    print(
        "\npaper: slack 2/32/64 needed a few more iterations but reached the same "
        "error 6%/12.3%/19% faster than slack 0 on 32 MareNostrum4 nodes."
    )


def run_parameter_server_mode(args) -> None:
    """The Parameter-Server variant the paper's conclusions point to."""
    import threading

    dataset = movielens_like("small", seed=args.seed)
    from repro.ml import MatrixFactorizationModel

    workers = args.workers
    store = SSPParameterStore(workers, SSPConfig(slack=2))
    errors = [None] * workers

    def worker(w: int) -> None:
        model = MatrixFactorizationModel.initialize(
            dataset.num_users, dataset.num_items, 8, seed=args.seed
        )
        shard = dataset.shard(workers, w)
        for it in range(1, args.iterations + 1):
            grad = model.gradient_flat(shard)
            store.push("grad", w, it, grad)
            read = store.read("grad", reader_clock=it)
            if read.value.size:
                model.apply_update(read.value / workers, 10.0)
        errors[w] = model.rmse(dataset)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    print(f"parameter-server SSP training: per-worker rmse = {[round(e, 4) for e in errors]}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=60)
    parser.add_argument("--slacks", type=str, default="0,2,8")
    parser.add_argument("--compute-time", type=float, default=0.002)
    parser.add_argument("--straggler-factor", type=float, default=1.8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--parameter-server", action="store_true",
                        help="use the SSP parameter store instead of allreduce_ssp")
    args = parser.parse_args()
    if args.parameter_server:
        run_parameter_server_mode(args)
    else:
        run_collective_mode(args)


if __name__ == "__main__":
    main()
