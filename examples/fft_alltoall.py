#!/usr/bin/env python
"""The HPC workload behind Figure 13: a distributed FFT whose transpose is
an AlltoAll (the Quantum-Espresso pattern, 6-24 KB per-pair messages).

Runs the slab-decomposed 2-D FFT mini-app on an in-process GASPI world,
verifies it against numpy.fft.fft2, and then simulates the AlltoAll cost
of its message sizes on the Galileo machine model for GASPI vs MPI.

Run with:  python examples/fft_alltoall.py [--ranks 8] [--grid 64]
"""

from __future__ import annotations

import argparse

from repro.apps import paper_message_range, run_distributed_fft
from repro.bench.harness import time_auto
from repro.bench.report import format_kv_table
from repro.simulate import galileo


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--grid", type=int, default=64)
    args = parser.parse_args()

    stats = run_distributed_fft(args.ranks, args.grid)
    print(
        f"distributed {args.grid}x{args.grid} FFT over {args.ranks} ranks: "
        f"max relative error vs numpy.fft.fft2 = {max(s.max_error for s in stats):.2e}, "
        f"{stats[0].alltoall_calls} AlltoAll calls, "
        f"{stats[0].alltoall_block_bytes} bytes per pair"
    )

    # Simulate the AlltoAll in the message range the paper quotes (6-24 KB).
    # Each family's tuning table picks its algorithm from the block size,
    # exactly as the Communicator's algorithm="auto" does.
    nodes = max(args.ranks // 4, 1)
    machine = galileo(nodes)
    rows = []
    for grid in paper_message_range(args.ranks):
        block = 16 * (grid // args.ranks) ** 2
        gaspi_name, gaspi = time_auto("alltoall", args.ranks, block, machine, family="gaspi")
        mpi_name, mpi = time_auto("alltoall", args.ranks, block, machine, family="mpi")
        rows.append(
            {
                "grid": grid,
                "block [bytes]": block,
                f"{gaspi_name} [us]": round(gaspi * 1e6, 1),
                f"{mpi_name} [us]": round(mpi * 1e6, 1),
                "speed-up": round(mpi / gaspi, 2),
            }
        )
    print()
    print(format_kv_table(rows, title="simulated AlltoAll in the paper's 6-24 KB message window"))
    print(
        "\npaper: MPI_Alltoall takes 20-40% of the FFT runtime; the GASPI AlltoAll "
        "wins 2.85x-5.14x in exactly this message-size window (Figure 13)."
    )


if __name__ == "__main__":
    main()
