#!/usr/bin/env python
"""Fault-tolerant allreduce: crash a rank, complete degraded, correct.

The eventually consistent collectives promise completion *without*
waiting for every rank.  This example makes one rank actually die
mid-allreduce and shows the three acts of the degraded-mode story:

1. **Detect & complete** — under a fault plan, ``algorithm="auto"``
   routes to ``gaspi_allreduce_tolerant``; survivors detect the missing
   contribution through a notification timeout, complete at the
   ``process_threshold(0.75)`` policy, and report the crashed rank in
   ``CollectiveResult.missing_ranks``.
2. **Recover** — the crashed rank comes back
   (``FaultyRuntime.recover()``) and pushes its contribution into the
   same exchange (``send_late_contribution``), like a checkpoint-restored
   process would.
3. **Correct** — every survivor runs the Küttler-style correction pass
   (``result.detail.correct()``), folding the late contribution into the
   already-published buffer: the exact full-participation result, without
   a second collective.

Run with:  python examples/fault_tolerant_allreduce.py [--ranks 8] [--elements 4096]
"""

from __future__ import annotations

import argparse
import threading

import numpy as np

from repro import Communicator, ConsistencyPolicy, FaultPlan, RankCrashedError, run_spmd
from repro.faults import send_late_contribution


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--elements", type=int, default=4096)
    args = parser.parse_args()

    crashed_rank = args.ranks - 1
    plan_template = {"rank": crashed_rank, "at_op": 0}
    exact = np.zeros(args.elements)
    for r in range(args.ranks):
        exact += np.full(args.elements, float(r + 1))

    # The crashed rank must not re-send before every survivor has recorded
    # the degraded completion, or the "late" contribution would arrive
    # inside the detection window.
    survivors_done = threading.Barrier(args.ranks - 1)
    resend = threading.Event()

    def worker(runtime):
        plan = FaultPlan.single_crash(**plan_template)
        comm = Communicator(runtime, faults=plan, detect_timeout=0.3)
        data = np.full(args.elements, float(comm.rank + 1))
        try:
            comm.allreduce(
                data, policy=ConsistencyPolicy.process_threshold(0.75)
            )
        except RankCrashedError:
            # Act 2: the dead rank recovers and contributes late.
            resend.wait(30.0)
            comm.runtime.recover()
            send_late_contribution(comm.runtime, data, comm.last_segment_id)
            return None
        result = comm.last_result
        degraded = result.value.copy()
        missing = result.missing_ranks
        survivors_done.wait(30.0)
        resend.set()
        # Act 3: fold the late contribution into the published buffer.
        corrected = result.detail.correct(timeout=10.0)
        comm.reinstate(*missing)
        return comm.rank, result.algorithm, missing, degraded, corrected.copy()

    outcomes = [o for o in run_spmd(args.ranks, worker, timeout=60.0) if o is not None]

    rank, algorithm, missing, degraded, corrected = outcomes[0]
    print(f"world size            : {args.ranks} (rank {crashed_rank} crashes at op 0)")
    print(f"dispatched algorithm  : {algorithm}")
    print(f"missing_ranks         : {list(missing)}")
    print(f"degraded result[0]    : {degraded[0]:.1f}  (exact would be {exact[0]:.1f})")
    print(f"corrected result[0]   : {corrected[0]:.1f}")
    for rank, _, missing, degraded, corrected in outcomes:
        assert missing == (crashed_rank,), f"rank {rank} missed {missing}"
        assert np.allclose(corrected, exact), f"rank {rank} did not re-converge"
    print(f"all {len(outcomes)} survivors re-converged on the exact result ✓")


if __name__ == "__main__":
    main()
