"""Fault experiments — crash count and arrival skew vs. completion/error."""

import pytest

from repro.bench.faults import crash_sweep, skew_sweep

from .conftest import run_once


def test_crash_sweep(benchmark):
    result = run_once(
        benchmark, crash_sweep, num_ranks=8, crash_counts=(0, 1, 2), elements=1024
    )

    print()
    print(result["title"])
    print(result["table"])

    rows = {r["crashes"]: r for r in result["rows"]}
    # Degraded completion never waits for the dead: fewer contributors,
    # strictly less simulated exchange time.
    assert rows[2]["simulated_us"] < rows[1]["simulated_us"] < rows[0]["simulated_us"]
    # The degraded error grows with the crash count; the correction pass
    # restores the exact result once the crashed ranks re-contribute.
    assert rows[0]["degraded_error"] < 1e-12
    assert rows[1]["degraded_error"] > 0.01
    assert rows[2]["degraded_error"] > rows[1]["degraded_error"]
    for row in rows.values():
        assert row["corrected_error"] < 1e-12


@pytest.mark.parametrize("scenario", ["sorted_arrival", "random_arrival"])
def test_skew_sweep(benchmark, scenario):
    result = run_once(
        benchmark,
        skew_sweep,
        num_ranks=8,
        skews_us=(0.0, 100.0, 1000.0),
        scenario=scenario,
    )

    print()
    print(result["title"])
    print(result["table"])

    times = [r["simulated_us"] for r in result["rows"]]
    # A strict exchange is gated by the latest arrival: completion time is
    # monotone in the skew amplitude and eventually dominated by it.
    assert times == sorted(times)
    assert times[-1] > times[0] + 500.0
