"""Figure 12 — Allreduce message-size sweep on 32 SkyLake nodes."""

from repro.bench.experiments import fig12_allreduce_sizes
from repro.bench.report import format_series_table

from .conftest import run_once


def test_fig12_allreduce_sizes(benchmark, scale):
    result = run_once(benchmark, fig12_allreduce_sizes, scale)

    print()
    print(format_series_table(result["series"], "bytes", "us", result["title"]))
    print("crossover (bytes) where gaspi overtakes each MPI variant:")
    for label, crossover in sorted(result["crossover_bytes"].items()):
        print(f"  {label:>8}: {crossover}")
    print("paper expectation:", result["paper_expectation"])

    series = result["series"]
    small = min(p.parameter for p in series["gaspi"])
    large = max(p.parameter for p in series["gaspi"])
    at = lambda label, param: next(p.seconds for p in series[label] if p.parameter == param)
    # MPI (best variant) wins at the smallest size; gaspi wins at the largest.
    best_mpi_small = min(at(l, small) for l in series if l != "gaspi")
    best_mpi_large = min(at(l, large) for l in series if l != "gaspi")
    assert best_mpi_small < at("gaspi", small)
    assert at("gaspi", large) < best_mpi_large
