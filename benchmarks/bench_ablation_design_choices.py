"""Ablation benchmarks for the design choices called out in DESIGN.md.

These do not correspond to a paper figure; they quantify the impact of the
mechanisms the paper credits for its results:

* removing the phase barriers from the ring Allreduce (GASPI weak
  synchronisation vs MPI-style phase synchronisation);
* one-sided notification completion vs two-sided matching for the same
  ring schedule;
* the eventually consistent data threshold across its whole range;
* gradient compression (the paper's stated future-work extension).
"""

import numpy as np
import pytest

from repro.core import REGISTRY, TopKCompressor
from repro.core.allreduce_ring import ring_allreduce_schedule
from repro.core.schedule import Protocol
from repro.simulate import simulate_schedule, skylake_fdr

from .conftest import run_once

MACHINE = skylake_fdr(32)
NBYTES = 1_000_000 * 8


def test_ablation_phase_barriers(benchmark):
    """Phase barriers (the thing GASPI removes) must cost measurable time."""

    def run():
        no_barrier = ring_allreduce_schedule(32, NBYTES, phase_barriers=False)
        with_barrier = ring_allreduce_schedule(32, NBYTES, phase_barriers=True)
        return (
            simulate_schedule(no_barrier, MACHINE).total_time,
            simulate_schedule(with_barrier, MACHINE).total_time,
        )

    no_sync, with_sync = run_once(benchmark, run)
    print(f"\nring allreduce 1M doubles: no barriers {no_sync*1e6:.1f} us, "
          f"with phase barriers {with_sync*1e6:.1f} us")
    assert with_sync > no_sync


def test_ablation_onesided_vs_twosided_same_schedule(benchmark):
    """Same ring schedule, only the transport protocol changes."""

    def run():
        onesided = ring_allreduce_schedule(32, NBYTES, protocol=Protocol.ONESIDED)
        twosided = ring_allreduce_schedule(32, NBYTES, protocol=Protocol.TWOSIDED)
        return (
            simulate_schedule(onesided, MACHINE).total_time,
            simulate_schedule(twosided, MACHINE).total_time,
        )

    one, two = run_once(benchmark, run)
    print(f"\nring allreduce 1M doubles: one-sided {one*1e6:.1f} us, two-sided {two*1e6:.1f} us "
          f"({two/one:.2f}x)")
    assert two > one


@pytest.mark.parametrize("collective,algorithm", [("bcast", "gaspi_bcast_bst"), ("reduce", "gaspi_reduce_bst")])
def test_ablation_threshold_sweep(benchmark, collective, algorithm):
    """Figure 8/9 mechanism isolated: time should fall with the threshold."""

    def run():
        return {
            th: simulate_schedule(
                REGISTRY.build(algorithm, 32, NBYTES, threshold=th), MACHINE
            ).total_time
            for th in (0.125, 0.25, 0.5, 0.75, 1.0)
        }

    times = run_once(benchmark, run)
    print(f"\n{algorithm} threshold sweep (us): "
          + ", ".join(f"{int(t*100)}%={v*1e6:.1f}" for t, v in times.items()))
    values = list(times.values())
    assert values == sorted(values)


def test_ablation_topk_compression(benchmark):
    """The foreseen compression extension: bytes drop, error stays bounded."""

    rng = np.random.default_rng(0)
    gradient = rng.standard_normal(100_000)

    def run():
        out = {}
        for k in (1_000, 10_000, 50_000):
            comp = TopKCompressor(k).compress(gradient)
            error = np.linalg.norm(gradient - comp.decompress()) / np.linalg.norm(gradient)
            out[k] = (comp.compression_ratio, error)
        return out

    results = run_once(benchmark, run)
    print("\ntop-k compression of a 100k gradient:")
    for k, (ratio, error) in results.items():
        print(f"  k={k:6d}: ratio {ratio:6.2f}x, relative L2 error {error:.3f}")
    ratios = [r for r, _ in results.values()]
    errors = [e for _, e in results.values()]
    assert ratios == sorted(ratios, reverse=True)
    assert errors == sorted(errors, reverse=True)
