"""Wall-clock microbenchmarks of the threaded (functional) collectives.

Not a paper figure: these measure the in-process runtime itself so
regressions in the substrate (locking, copies) are visible.  They use
pytest-benchmark's statistics (the paper-style mean ± CI of repeated runs).
"""

import numpy as np
import pytest

from repro.core import Communicator
from repro.gaspi import run_spmd


def _allreduce_job(num_ranks, elements):
    def worker(rt):
        comm = Communicator(rt)
        data = np.full(elements, float(comm.rank + 1))
        out = comm.allreduce(data, algorithm="ring")
        return float(out[0])

    return run_spmd(num_ranks, worker, timeout=60)


def _ssp_job(num_ranks, elements, slack, iterations=5):
    def worker(rt):
        comm = Communicator(rt)
        for _ in range(iterations):
            comm.allreduce_ssp(np.ones(elements), slack=slack)
        comm.barrier()
        comm.close_ssp()
        return True

    return run_spmd(num_ranks, worker, timeout=60)


@pytest.mark.parametrize("elements", [1_000, 100_000])
def test_threaded_ring_allreduce(benchmark, elements):
    results = benchmark.pedantic(
        _allreduce_job, args=(4, elements), rounds=3, iterations=1
    )
    assert results == [sum(range(1, 5))] * 4


@pytest.mark.parametrize("slack", [0, 2])
def test_threaded_ssp_allreduce(benchmark, slack):
    results = benchmark.pedantic(_ssp_job, args=(4, 4_096, slack), rounds=3, iterations=1)
    assert all(results)


def test_threaded_alltoall(benchmark):
    def job():
        def worker(rt):
            comm = Communicator(rt)
            send = np.arange(comm.size * 512, dtype=np.float64)
            return comm.alltoall(send).sum()

        return run_spmd(4, worker, timeout=60)

    totals = benchmark.pedantic(job, rounds=3, iterations=1)
    assert len(totals) == 4
