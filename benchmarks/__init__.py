"""Figure-regeneration benchmarks (pytest-benchmark based).

A package so the benchmark modules can import the shared helpers with
``from .conftest import run_once`` under pytest's default import mode.
Run with ``pytest benchmarks/ -s`` (optionally ``--json PATH`` for a
machine-readable report).
"""
