"""Figure 13 — GASPI AlltoAll vs MPI AlltoAll on Galileo (4 processes/node)."""

from repro.bench.experiments import fig13_alltoall
from repro.bench.report import format_series_table

from .conftest import run_once


def test_fig13_alltoall(benchmark, scale):
    result = run_once(benchmark, fig13_alltoall, scale)

    print()
    for nodes, entry in result["series"].items():
        print(format_series_table(entry["series"], "block bytes", "us",
                                  f"{result['title']} — {nodes} nodes"))
        print(f"  crossover where GASPI overtakes MPI: {entry['crossover_bytes']} bytes")
    print("paper expectation:", result["paper_expectation"])

    for nodes, entry in result["series"].items():
        series = entry["series"]
        gaspi_label = f"gaspi{nodes}"
        mpi_label = f"mpi{nodes}"
        at = lambda label, b: next(p.seconds for p in series[label] if p.parameter == b)
        big = max(p.parameter for p in series[gaspi_label])
        # GASPI wins for large blocks (paper: 2.85x-5.14x around 32 KiB).
        assert at(mpi_label, big) / at(gaspi_label, big) > 1.5
        # and the crossover exists somewhere in the low-kilobyte range.
        assert entry["crossover_bytes"] is not None
        assert entry["crossover_bytes"] <= 16 * 1024
