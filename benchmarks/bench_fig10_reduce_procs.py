"""Figure 10 — Reduce with the full data but a fraction of the processes."""

from repro.bench.experiments import fig10_reduce_processes
from repro.bench.report import format_series_table

from .conftest import run_once


def test_fig10_reduce_processes(benchmark, scale):
    result = run_once(benchmark, fig10_reduce_processes, scale)

    print()
    print(format_series_table(result["series"], "nodes", "us", result["title"]))
    print("paper expectation:", result["paper_expectation"])

    series = result["series"]
    last = lambda label: series[label][-1].seconds
    # Engaging fewer processes helps, but 75% and 100% nearly coincide
    # because half of all processes only join in the last BST stage.
    assert last("25% procs gaspi") < last("100% procs gaspi")
    assert last("75% procs gaspi") / last("100% procs gaspi") > 0.8
    # Still better than the MPI binomial variant.
    assert last("100% procs gaspi") < last("100% mpi-bin")
