"""Figure 7 — allreduce_SSP collective execution time and waiting time.

Left panel: simulated execution time of the SSP hypercube collective vs
the GASPI ring and MPI default Allreduce.  Right panel: measured time per
iteration spent waiting for fresh updates as slack grows.
"""

from repro.bench.experiments import fig07_ssp_collective
from repro.bench.report import format_kv_table

from .conftest import run_once


def test_fig07_ssp_collective(benchmark, scale):
    result = run_once(benchmark, fig07_ssp_collective, scale)

    collective = result["series"]["collective_time"]
    waits = result["series"]["wait_time_by_slack"]

    print()
    print(result["title"])
    print(format_kv_table(
        [{"algorithm": k, "time_us": v * 1e6} for k, v in collective.items()],
        title="collective execution time (simulated)",
    ))
    print(format_kv_table(
        [{"slack": s, "wait_per_iter_s": w} for s, w in sorted(waits.items())],
        title="time waiting for fresh updates (threaded runtime)",
    ))
    print("paper expectation:", result["paper_expectation"])

    # Shape checks from the paper.
    assert collective["allreduce_ssp (hypercube)"] > collective["gaspi_allreduce_ring"]
    slacks = sorted(waits)
    assert waits[slacks[-1]] <= waits[slacks[0]]
