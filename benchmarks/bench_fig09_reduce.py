"""Figure 9 — eventually consistent Reduce (data thresholds) vs MPI."""

import pytest

from repro.bench.experiments import fig09_reduce
from repro.bench.report import format_series_table

from .conftest import run_once


@pytest.mark.parametrize("elements", [10_000, 1_000_000])
def test_fig09_reduce(benchmark, scale, elements):
    result = run_once(benchmark, fig09_reduce, scale, elements)

    print()
    print(format_series_table(result["series"], "nodes", "us", result["title"]))
    print("paper expectation:", result["paper_expectation"])

    series = result["series"]
    last = lambda label: series[label][-1].seconds
    # The 25% vs 100% gap exists and grows with the payload.
    assert last("100% gaspi") / last("25% gaspi") > 1.5
    if elements >= 1_000_000:
        # MPI default (reduce-scatter based) is still faster at full data,
        # but gaspi_reduce beats the MPI binomial variant (paper claims).
        assert last("100% mpi-def") < last("100% gaspi")
        assert last("100% gaspi") < last("100% mpi-bin")
