"""Figure 8 — eventually consistent Broadcast (data thresholds) vs MPI.

Two panels: 10,000 and 1,000,000 double-precision elements, swept over the
node count on the SkyLake/FDR machine model.
"""

import pytest

from repro.bench.experiments import fig08_bcast
from repro.bench.report import format_series_table

from .conftest import run_once


@pytest.mark.parametrize("elements", [10_000, 1_000_000])
def test_fig08_bcast(benchmark, scale, elements):
    result = run_once(benchmark, fig08_bcast, scale, elements)

    print()
    print(format_series_table(result["series"], "nodes", "us", result["title"]))
    print("paper expectation:", result["paper_expectation"])

    series = result["series"]
    last = lambda label: series[label][-1].seconds  # largest node count
    # 25% threshold is substantially cheaper than shipping everything.
    assert last("100% gaspi") / last("25% gaspi") > 1.5
    # The GASPI BST beats the MPI binomial for the 1M-element panel.
    if elements >= 1_000_000:
        assert last("100% gaspi") < last("100% mpi-bin")
