"""Figure 11 — gaspi_allreduce_ring vs the twelve MPI_Allreduce variants."""

import pytest

from repro.bench.experiments import fig11_allreduce_nodes
from repro.bench.report import format_comparison, format_series_table

from .conftest import run_once


@pytest.mark.parametrize("elements", [10_000, 1_000_000])
def test_fig11_allreduce_nodes(benchmark, scale, elements):
    result = run_once(benchmark, fig11_allreduce_nodes, scale, elements)

    print()
    print(format_series_table(result["series"], "nodes", "us", result["title"]))
    print(format_comparison(result["series"], "gaspi"))
    print("paper expectation:", result["paper_expectation"])

    series = result["series"]
    last = lambda label: series[label][-1].seconds
    if elements <= 10_000:
        # Small vectors: at least one MPI variant beats the GASPI ring.
        assert min(last(l) for l in series if l != "gaspi") < last("gaspi")
    else:
        # Large vectors: the GASPI ring beats the ring-based MPI variants
        # (paper: 1.78x vs Shumilin's ring, 2.26x vs ring).
        assert last("mpi7") / last("gaspi") > 1.3
        assert last("mpi8") / last("gaspi") > 1.3
