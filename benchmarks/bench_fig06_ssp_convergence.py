"""Figure 6 — allreduce_SSP impact on MF-SGD convergence (slack sweep).

Regenerates the two panels of Figure 6: error vs wall-clock time (left)
and iterations vs wall-clock time (right) for several slack values, on the
threaded runtime with a straggler profile standing in for the paper's
32 MareNostrum4 nodes.
"""

from repro.bench.experiments import fig06_ssp_convergence
from repro.bench.report import format_kv_table

from .conftest import run_once


def test_fig06_ssp_convergence(benchmark, scale):
    result = run_once(benchmark, fig06_ssp_convergence, scale)

    rows = []
    baseline = result["series"][0]["time_to_target"]
    for slack in result["slacks"]:
        entry = result["series"][slack]
        speedup = (
            baseline / entry["time_to_target"]
            if baseline and entry["time_to_target"]
            else None
        )
        rows.append(
            {
                "slack": slack,
                "iters_per_sec": entry["iterations_per_second"],
                "wait_per_iter_s": entry["wait_time_per_iteration"],
                "final_rmse": entry["final_rmse"],
                "time_to_target_s": entry["time_to_target"],
                "speedup_vs_slack0": speedup,
            }
        )
    print()
    print(format_kv_table(rows, title=result["title"]))
    print("paper expectation:", result["paper_expectation"])

    # Shape check: slack speeds up iterations and the model still converges
    # (it may need more iterations to reach the same error — that is exactly
    # the trade-off the paper discusses, so the bound here is loose).
    slacks = result["slacks"]
    ips = [result["series"][s]["iterations_per_second"] for s in slacks]
    assert ips[-1] > ips[0]
    assert result["series"][slacks[-1]]["final_rmse"] <= result["series"][0]["final_rmse"] * 1.6
    assert result["series"][slacks[-1]]["final_rmse"] < 2.0  # far below the untrained model
