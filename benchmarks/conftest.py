"""Shared helpers for the figure benchmarks.

Every module in this directory regenerates the data behind one figure of
the paper (see DESIGN.md §4 for the figure → module mapping).  Benchmarks
run the experiment once under ``benchmark.pedantic`` (the experiment
itself is the measured unit) and print the same rows/series the paper
plots, so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
figure-regeneration harness.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def scale() -> str:
    """Experiment scale for benchmark runs.

    ``small`` keeps the suite fast; switch to ``paper`` by editing this
    fixture (or calling the experiment functions directly) to reproduce the
    exact node counts and message sizes of the paper for the simulated
    figures.
    """
    return "small"
