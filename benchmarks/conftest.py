"""Shared helpers for the figure benchmarks.

Every module in this directory regenerates the data behind one figure of
the paper (see DESIGN.md §4 for the figure → module mapping).  Benchmarks
run the experiment once under ``benchmark.pedantic`` (the experiment
itself is the measured unit) and print the same rows/series the paper
plots, so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
figure-regeneration harness.

Passing ``--json PATH`` additionally writes a machine-readable report in
the same :data:`repro.bench.harness.BENCH_SCHEMA` format as
``BENCH_pr3.json`` (one ``wall_seconds`` record per benchmark, with the
sweep rows attached when the experiment returned a series), so any figure
benchmark can feed the accumulated perf trajectory.
"""

from __future__ import annotations

import time
from typing import List

import pytest

from repro.bench.harness import BenchRecord, SweepPoint, write_json_report
from repro.bench.report import series_to_rows

#: Records accumulated by :func:`run_once` over one pytest session.
_RECORDS: List[BenchRecord] = []


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="write a repro-bench/v1 JSON report of the benchmark run",
    )


def _extract_series(result):
    """Pull the ``{label: [SweepPoint, ...]}`` series out of a result.

    The experiment functions either return the series directly or wrap it
    in a dict under a ``"series"`` key; anything else has no rows.
    """
    candidates = [result]
    if isinstance(result, dict) and "series" in result:
        candidates.append(result["series"])
    for candidate in candidates:
        if isinstance(candidate, dict) and candidate and all(
            isinstance(points, (list, tuple))
            and all(isinstance(p, SweepPoint) for p in points)
            for points in candidate.values()
        ):
            return candidate
    return None


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    extra = {}
    series = _extract_series(result)
    if series is not None:
        extra["rows"] = series_to_rows(series)
    _RECORDS.append(
        BenchRecord(
            benchmark=getattr(benchmark, "name", None) or fn.__name__,
            metric="wall_seconds",
            value=elapsed,
            extra=extra,
        )
    )
    return result


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--json", default=None)
    if path and _RECORDS:
        write_json_report(
            path,
            _RECORDS,
            benchmark="figures",
            meta={"exit_status": int(exitstatus), "benchmarks": len(_RECORDS)},
        )


@pytest.fixture
def scale() -> str:
    """Experiment scale for benchmark runs.

    ``small`` keeps the suite fast; switch to ``paper`` by editing this
    fixture (or calling the experiment functions directly) to reproduce the
    exact node counts and message sizes of the paper for the simulated
    figures.
    """
    return "small"
