"""Setuptools shim.

The execution environment for this reproduction is offline and ships an
older setuptools without the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .`` via ``bdist_wheel``) are unavailable.  This
``setup.py`` lets pip fall back to the legacy ``setup.py develop`` code
path; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
