"""Fault injection, failure scenarios and degraded-mode collectives.

This package turns the repository's eventual-consistency story from a
timing optimisation into a tested resilience property:

* :mod:`repro.faults.injection` — :class:`FaultPlan` (crashes, message
  delay/drop, arrival skew) and :class:`FaultyRuntime`, a decorator that
  perturbs any GASPI runtime according to the plan; plus
  :func:`degrade_schedule` to replay the same plan on the simulator.
* :mod:`repro.faults.scenarios` — a catalog of named scenarios
  (single/double/late crash, rolling stragglers, Proficz sorted/random
  arrival patterns, partition-then-heal, message loss) shared by tests,
  benchmarks and the simulator backend.
* :mod:`repro.faults.recovery` — degraded-mode broadcast / reduce /
  allreduce: detect non-contributing ranks via notification timeouts,
  complete at the policy's process threshold recording
  ``missing_ranks``, and re-converge survivors through a Küttler-style
  correction pass once late contributions arrive.

Importing this package registers the ``gaspi_*_tolerant`` algorithms in
the global registry (with the ``fault_tolerant`` capability flag);
``Communicator(..., faults=plan)`` routes to them automatically.
"""

from .injection import FaultPlan, FaultyRuntime, RankCrashedError, degrade_schedule
from .recovery import (
    DEFAULT_CORRECTION_TIMEOUT,
    DEFAULT_DETECT_TIMEOUT,
    FAULT_SEGMENT_ID,
    DegradedCollectiveError,
    DegradedResult,
    send_late_contribution,
    tolerant_allreduce,
    tolerant_allreduce_schedule,
    tolerant_bcast,
    tolerant_bcast_schedule,
    tolerant_reduce,
    tolerant_reduce_schedule,
)
from .scenarios import SCENARIOS, FaultScenario, get_scenario, scenario_names

__all__ = [
    "FaultPlan",
    "FaultyRuntime",
    "RankCrashedError",
    "degrade_schedule",
    "DegradedCollectiveError",
    "DegradedResult",
    "DEFAULT_DETECT_TIMEOUT",
    "DEFAULT_CORRECTION_TIMEOUT",
    "FAULT_SEGMENT_ID",
    "send_late_contribution",
    "tolerant_allreduce",
    "tolerant_allreduce_schedule",
    "tolerant_bcast",
    "tolerant_bcast_schedule",
    "tolerant_reduce",
    "tolerant_reduce_schedule",
    "FaultScenario",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
]
