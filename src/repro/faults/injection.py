"""Deterministic fault injection for the GASPI substrate.

The paper's consistency dials (data/process thresholds, SSP slack) promise
that collectives complete *without* waiting for every rank — but that
promise is only testable if ranks can actually be late, lossy or dead.
This module makes them so, deterministically:

* :class:`FaultPlan` — a declarative description of what goes wrong:
  per-rank crash-at-operation, per-rank send delays (fixed and seeded
  jitter, in the style of :mod:`repro.ssp.perturbation`), probabilistic or
  link-targeted message drops with an optional op-index window
  (partition-then-heal), and per-rank arrival skew applied at collective
  entry (Proficz-style process-arrival patterns).
* :class:`FaultyRuntime` — a decorator around any
  :class:`~repro.gaspi.runtime.GaspiRuntime` (threaded or group-scoped)
  that perturbs the data-plane operations (``write``, ``notify``,
  ``write_notify``) according to the plan.  A crashed rank raises
  :class:`RankCrashedError` from every subsequent operation until
  :meth:`FaultyRuntime.recover` is called — a recovered rank models the
  "failed process re-contributes late" regime of Küttler-style corrected
  collectives.
* :func:`degrade_schedule` — applies the same plan to a
  :class:`~repro.core.schedule.CommunicationSchedule`, so the simulator
  backend replays the identical failure scenario on a machine model.

All randomness (jitter, probabilistic drops) is a pure function of
``(seed, rank(s), operation index)``, so repeated runs are identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..gaspi.constants import (
    DEFAULT_NOTIFICATION_COUNT,
    DEFAULT_NOTIFICATION_VALUE,
    GASPI_BLOCK,
)
from ..gaspi.errors import GaspiError
from ..gaspi.group import Group
from ..gaspi.runtime import GaspiRuntime
from ..utils.logging import get_logger
from ..utils.validation import require

logger = get_logger("faults.injection")

# Salt values keeping the drop / jitter RNG streams independent.
_DROP_SALT = 7919
_JITTER_SALT = 104729


class RankCrashedError(GaspiError):
    """Raised by a :class:`FaultyRuntime` whose rank has crashed.

    Attributes
    ----------
    rank:
        The crashed rank (in the wrapped runtime's numbering).
    step:
        Index of the data-plane operation at which the crash fired.
    """

    def __init__(self, rank: int, step: int) -> None:
        self.rank = int(rank)
        self.step = int(step)
        super().__init__(
            f"rank {rank} crashed at data-plane operation {step} "
            f"(injected by the fault plan)"
        )


@dataclass
class FaultPlan:
    """Declarative description of injected faults for one world.

    Attributes
    ----------
    crash_at:
        ``rank -> op index``: the rank raises :class:`RankCrashedError`
        when it is about to issue its ``op index``-th data-plane operation
        (``0`` = before the first write/notify, i.e. the rank contributes
        nothing).
    delay:
        ``rank -> seconds``: fixed extra latency added before every
        data-plane operation of that rank (a persistent straggler).
    jitter:
        Amplitude in seconds of seeded per-operation uniform jitter added
        on top of ``delay`` (OS-noise model).
    drop_probability:
        Probability in ``[0, 1]`` that any individual message is silently
        dropped (seeded, per ``(src, dst, op)``).
    drop_links:
        Set of ``(src, dst)`` pairs whose messages are always dropped
        while inside :attr:`drop_window` — the substrate of network
        partitions.
    drop_window:
        ``(start_op, end_op)`` half-open window of *sender* op indices in
        which :attr:`drop_links` applies; ``end_op=None`` means forever,
        ``None`` means the whole run.  A finite window models
        partition-then-heal.
    skew:
        ``rank -> seconds`` slept at collective entry (a process-arrival
        pattern offset); applied by the Communicator, not per operation.
    skew_fn:
        Optional ``(rank, collective_index) -> seconds`` callable for
        skews that change over time (rolling stragglers).
    seed:
        Seed of the drop/jitter RNG streams.
    """

    crash_at: Dict[int, int] = field(default_factory=dict)
    delay: Dict[int, float] = field(default_factory=dict)
    jitter: float = 0.0
    drop_probability: float = 0.0
    drop_links: FrozenSet[Tuple[int, int]] = frozenset()
    drop_window: Optional[Tuple[int, Optional[int]]] = None
    skew: Dict[int, float] = field(default_factory=dict)
    skew_fn: Optional[Callable[[int, int], float]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        for rank, step in self.crash_at.items():
            require(rank >= 0 and step >= 0, "crash_at wants rank >= 0, step >= 0")
        for rank, seconds in self.delay.items():
            require(rank >= 0 and seconds >= 0.0, "delays must be non-negative")
        require(self.jitter >= 0.0, "jitter amplitude must be non-negative")
        require(
            0.0 <= self.drop_probability <= 1.0,
            f"drop_probability must be in [0, 1], got {self.drop_probability}",
        )
        for rank, seconds in self.skew.items():
            require(rank >= 0 and seconds >= 0.0, "skews must be non-negative")
        self.drop_links = frozenset(
            (int(s), int(d)) for s, d in self.drop_links
        )

    # ------------------------------------------------------------------ #
    # constructors for the common shapes
    # ------------------------------------------------------------------ #
    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """A benign plan (control runs)."""
        return cls(seed=seed)

    @classmethod
    def single_crash(cls, rank: int, at_op: int = 0, seed: int = 0) -> "FaultPlan":
        """One rank dies at its ``at_op``-th data-plane operation."""
        return cls(crash_at={int(rank): int(at_op)}, seed=seed)

    @classmethod
    def crashes(cls, ranks, at_op: int = 0, seed: int = 0) -> "FaultPlan":
        """Several ranks die at the same operation index."""
        return cls(crash_at={int(r): int(at_op) for r in ranks}, seed=seed)

    @classmethod
    def partition(
        cls,
        group_a,
        group_b,
        heal_at_op: Optional[int] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Drop every message between two rank groups, healing at an op index."""
        links = frozenset(
            link
            for a in group_a
            for b in group_b
            for link in ((int(a), int(b)), (int(b), int(a)))
        )
        window = (0, int(heal_at_op)) if heal_at_op is not None else None
        return cls(drop_links=links, drop_window=window, seed=seed)

    # ------------------------------------------------------------------ #
    # queries (the FaultyRuntime / simulator contract)
    # ------------------------------------------------------------------ #
    @property
    def is_benign(self) -> bool:
        """True when the plan perturbs nothing at all."""
        return (
            not self.crash_at
            and not self.delay
            and self.jitter == 0.0
            and self.drop_probability == 0.0
            and not self.drop_links
            and not self.skew
            and self.skew_fn is None
        )

    @property
    def can_lose_contributions(self) -> bool:
        """True when the plan can make a contribution never arrive.

        Crashes and message drops lose data and therefore need the
        fault-tolerant collectives; pure timing perturbations (delay,
        jitter, arrival skew) only make ranks late, so the tuned regular
        algorithms remain the right ``auto`` choice under them.
        """
        return bool(
            self.crash_at or self.drop_probability > 0.0 or self.drop_links
        )

    def crash_step(self, rank: int) -> Optional[int]:
        """Op index at which ``rank`` crashes, or ``None``."""
        return self.crash_at.get(int(rank))

    def recover(self, rank: int) -> None:
        """Forget a rank's crash so it may contribute late (Küttler-style)."""
        self.crash_at.pop(int(rank), None)

    def _in_drop_window(self, op_index: int) -> bool:
        if self.drop_window is None:
            return True
        start, end = self.drop_window
        return op_index >= start and (end is None or op_index < end)

    def should_drop(self, src: int, dst: int, op_index: int) -> bool:
        """Whether the sender's ``op_index``-th message to ``dst`` is lost."""
        if (int(src), int(dst)) in self.drop_links and self._in_drop_window(op_index):
            return True
        if self.drop_probability > 0.0:
            rng = np.random.default_rng((self.seed, _DROP_SALT, src, dst, op_index))
            return bool(rng.random() < self.drop_probability)
        return False

    def send_delay(self, rank: int, op_index: int) -> float:
        """Seconds of extra latency before the rank's ``op_index``-th op."""
        extra = self.delay.get(int(rank), 0.0)
        if self.jitter > 0.0:
            rng = np.random.default_rng((self.seed, _JITTER_SALT, rank, op_index))
            extra += float(rng.uniform(0.0, self.jitter))
        return extra

    def arrival_skew(self, rank: int, collective_index: int = 0) -> float:
        """Seconds the rank arrives late to its ``collective_index``-th call."""
        base = self.skew.get(int(rank), 0.0)
        if self.skew_fn is not None:
            base += float(self.skew_fn(int(rank), int(collective_index)))
        return base

    def arrival_offsets(self, num_ranks: int, collective_index: int = 0) -> List[float]:
        """Per-rank arrival offsets, in the simulator's ``rank_offsets`` form."""
        return [self.arrival_skew(r, collective_index) for r in range(num_ranks)]

    def describe(self) -> str:
        """Short human-readable form for reports and schedule metadata."""
        parts = []
        if self.crash_at:
            parts.append(f"crash={dict(sorted(self.crash_at.items()))}")
        if self.delay:
            parts.append(f"delay={dict(sorted(self.delay.items()))}")
        if self.jitter:
            parts.append(f"jitter={self.jitter:g}s")
        if self.drop_probability:
            parts.append(f"drop_p={self.drop_probability:g}")
        if self.drop_links:
            parts.append(f"links_cut={len(self.drop_links)}")
            if self.drop_window is not None:
                parts.append(f"window={self.drop_window}")
        if self.skew or self.skew_fn is not None:
            parts.append("skewed-arrival")
        return ", ".join(parts) or "benign"


class FaultyRuntime(GaspiRuntime):
    """A fault-injecting decorator around any GASPI runtime.

    Data-plane operations (``write``, ``notify``, ``write_notify``) are
    counted per rank; before each one the plan is consulted for a crash,
    a delay and a drop.  Control-plane operations (barriers, waits,
    notification waits, segment creation) only check liveness: a crashed
    rank can no longer take part in synchronisation, but purely local
    reads stay available so a post-mortem inspection of its state is
    possible.

    Wrapping composes with :class:`~repro.gaspi.subruntime.GroupRuntime`
    in either order; ranks and targets are interpreted in the wrapped
    runtime's numbering.
    """

    def __init__(self, base: GaspiRuntime, plan: FaultPlan) -> None:
        self._base = base
        self._plan = plan
        self._ops = 0
        self._crashed = False

    # -- identity / introspection ---------------------------------------- #
    @property
    def rank(self) -> int:
        return self._base.rank

    @property
    def size(self) -> int:
        return self._base.size

    @property
    def base(self) -> GaspiRuntime:
        """The wrapped runtime."""
        return self._base

    @property
    def plan(self) -> FaultPlan:
        """The fault plan driving this wrapper."""
        return self._plan

    @property
    def fault_injected(self) -> bool:
        # Advertised only for plans that can actually lose contributions:
        # auto-selection should not pay the flat tolerant algorithms' cost
        # to guard against a plan that merely delays ranks.
        return self._plan.can_lose_contributions

    @property
    def ops_performed(self) -> int:
        """Number of data-plane operations attempted so far by this rank."""
        return self._ops

    @property
    def is_crashed(self) -> bool:
        """True once the plan's crash for this rank has fired."""
        return self._crashed

    def recover(self) -> None:
        """Bring a crashed rank back (it may now contribute late)."""
        self._crashed = False
        self._plan.recover(self.rank)

    # -- fault machinery -------------------------------------------------- #
    def _check_alive(self) -> None:
        if self._crashed:
            raise RankCrashedError(self.rank, self._ops)

    def _data_plane_op(self, target_rank: int) -> bool:
        """Account one op; returns False when the message must be dropped."""
        self._check_alive()
        step = self._ops
        self._ops += 1
        crash = self._plan.crash_step(self.rank)
        if crash is not None and step >= crash:
            self._crashed = True
            logger.debug(
                "rank %d: injected crash at data-plane op %d", self.rank, step
            )
            raise RankCrashedError(self.rank, step)
        pause = self._plan.send_delay(self.rank, step)
        if pause > 0.0:
            time.sleep(pause)
        if self._plan.should_drop(self.rank, target_rank, step):
            logger.debug(
                "rank %d: injected drop of op %d toward rank %d",
                self.rank, step, target_rank,
            )
            return False
        return True

    # -- segments --------------------------------------------------------- #
    def segment_create(
        self,
        segment_id: int,
        size: int,
        num_notifications: int = DEFAULT_NOTIFICATION_COUNT,
    ) -> None:
        self._check_alive()
        self._base.segment_create(segment_id, size, num_notifications)

    def segment_delete(self, segment_id: int) -> None:
        self._base.segment_delete(segment_id)

    def segment_bind(self, segment_id: int, array: np.ndarray) -> None:
        self._check_alive()
        self._base.segment_bind(segment_id, array)

    @property
    def supports_bind(self) -> bool:
        return self._base.supports_bind

    def segment_view(
        self, segment_id: int, dtype=np.float64, offset: int = 0, count=None
    ) -> np.ndarray:
        return self._base.segment_view(
            segment_id, dtype=dtype, offset=offset, count=count
        )

    def segment_size(self, segment_id: int) -> int:
        return self._base.segment_size(segment_id)

    def segment_read(
        self, segment_id: int, dtype=np.float64, offset: int = 0, count=None
    ) -> np.ndarray:
        return self._base.segment_read(
            segment_id, dtype=dtype, offset=offset, count=count
        )

    # -- one-sided communication (perturbed) ------------------------------ #
    def write(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        queue: int = 0,
    ) -> None:
        if self._data_plane_op(target_rank):
            self._base.write(
                segment_id_local,
                offset_local,
                target_rank,
                segment_id_remote,
                offset_remote,
                size,
                queue=queue,
            )

    def notify(
        self,
        target_rank: int,
        segment_id_remote: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        if self._data_plane_op(target_rank):
            self._base.notify(
                target_rank,
                segment_id_remote,
                notification_id,
                notification_value,
                queue=queue,
            )

    def write_notify(
        self,
        segment_id_local: int,
        offset_local: int,
        target_rank: int,
        segment_id_remote: int,
        offset_remote: int,
        size: int,
        notification_id: int,
        notification_value: int = DEFAULT_NOTIFICATION_VALUE,
        queue: int = 0,
    ) -> None:
        if self._data_plane_op(target_rank):
            self._base.write_notify(
                segment_id_local,
                offset_local,
                target_rank,
                segment_id_remote,
                offset_remote,
                size,
                notification_id,
                notification_value,
                queue=queue,
            )

    # -- weak synchronisation (liveness-checked) -------------------------- #
    def notify_waitsome(
        self,
        segment_id_local: int,
        notification_begin: int = 0,
        notification_count=None,
        timeout: float = GASPI_BLOCK,
    ):
        self._check_alive()
        return self._base.notify_waitsome(
            segment_id_local, notification_begin, notification_count, timeout
        )

    def notify_reset(self, segment_id_local: int, notification_id: int) -> int:
        return self._base.notify_reset(segment_id_local, notification_id)

    def notify_peek(self, segment_id_local: int, notification_id: int) -> int:
        return self._base.notify_peek(segment_id_local, notification_id)

    # -- queues / barriers / atomics -------------------------------------- #
    def wait(self, queue: int = 0, timeout: float = GASPI_BLOCK) -> None:
        self._check_alive()
        self._base.wait(queue, timeout)

    def barrier(self, group: Optional[Group] = None, timeout: float = GASPI_BLOCK) -> None:
        self._check_alive()
        self._base.barrier(group, timeout=timeout)

    def atomic_fetch_add(
        self, segment_id: int, offset: int, target_rank: int, value: int
    ) -> int:
        self._check_alive()
        return self._base.atomic_fetch_add(segment_id, offset, target_rank, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self._crashed else f"ops={self._ops}"
        return f"FaultyRuntime(rank={self.rank}, {state}, plan=[{self._plan.describe()}])"


def degrade_schedule(schedule, plan: FaultPlan):
    """Apply a fault plan to a communication schedule (simulator replay).

    Messages from a crashed sender (its per-schedule op index having
    reached the crash step), messages *to* a crashed rank (they land in
    the void — nobody processes them, so no live rank's completion may be
    gated by them) and dropped messages are removed; everything else —
    round structure, local compute, barriers — is preserved.  Op indices
    are counted per sender *within this schedule*, so a scenario replays
    identically no matter what ran before it.

    Note the deliberate divergence from the threaded substrate implied by
    that choice: a :class:`FaultyRuntime` counts data-plane operations
    cumulatively across a rank's whole run, while the replay restarts at
    zero for every schedule.  Plans with op-indexed faults (``late_crash``,
    ``partition_heal``) therefore re-apply their window to each simulated
    collective rather than to the position the run had actually reached —
    replay a multi-collective run collective-by-collective with adjusted
    op indices if threaded/simulated agreement matters beyond ``at_op=0``.
    """
    from ..core.schedule import CommunicationSchedule

    ops: Dict[int, int] = {}
    dropped = 0
    out = CommunicationSchedule(
        name=f"{schedule.name}[{plan.describe()}]",
        num_ranks=schedule.num_ranks,
        metadata={
            **schedule.metadata,
            "fault_plan": plan.describe(),
        },
    )
    for rnd in schedule.rounds:
        kept = []
        for message in rnd.messages:
            op = ops.get(message.src, 0)
            ops[message.src] = op + 1
            crash = plan.crash_step(message.src)
            if crash is not None and op >= crash:
                dropped += 1
                continue
            if plan.crash_step(message.dst) is not None:
                dropped += 1
                continue
            if plan.should_drop(message.src, message.dst, op):
                dropped += 1
                continue
            kept.append(message)
        if kept or rnd.local_compute or rnd.barrier_after:
            out.add_round(
                kept,
                local_compute=rnd.local_compute,
                barrier_after=rnd.barrier_after,
                label=rnd.label,
            )
    out.metadata["dropped_messages"] = dropped
    return out
