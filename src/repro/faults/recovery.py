"""Degraded-mode collectives: detect missing ranks, complete, correct.

The paper's eventually consistent collectives complete once a threshold of
the data or the processes has arrived; this module closes the loop for the
*failure* regimes: thresholded broadcast / reduce / allreduce variants
that

1. **detect** non-contributing ranks through notification timeouts instead
   of blocking forever,
2. **complete** at the consistency policy's process threshold, recording
   exactly who was missing (:attr:`DegradedResult.missing_ranks`), and
3. **correct**: a Küttler-style correction pass
   (:meth:`DegradedResult.correct`) folds contributions that arrive late
   (a recovered crash, a healed partition, an extreme straggler) into the
   already-published result, re-converging the survivors onto the exact
   full-participation value.

All three collectives use flat, rank-indexed exchanges — contribution of
rank ``r`` lands in slot ``r`` and posts notification ``r`` — because the
slot/notification identity is what lets a late contribution be attributed
and folded in after the collective formally completed.  They never take a
full-world barrier after the entry handshake: a dead rank must not be able
to hang a survivor.

The variants are registered in the algorithm registry as
``gaspi_{bcast,reduce,allreduce}_tolerant`` with the ``fault_tolerant``
capability flag, so ``Communicator(..., faults=plan)`` auto-routes to them.
"""

from __future__ import annotations

import math
import time
from typing import Iterable, Optional, Sequence, Set, Tuple

import numpy as np

from ..core import kernels
from ..core.bcast import threshold_elements
from ..core.policy import CollectiveRequest, CollectiveResult
from ..core.reduce import ReduceMode
from ..core.reduction_ops import ReductionOp, get_op
from ..core.registry import REGISTRY, AlgorithmCapabilities
from ..core.schedule import CommunicationSchedule, Message, Protocol
from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.errors import GaspiError, GaspiSegmentError
from ..gaspi.group import Group
from ..gaspi.runtime import GaspiRuntime
from ..telemetry.core import CLOCK
from ..utils.backoff import Backoff, BackoffPolicy
from ..utils.logging import get_logger
from ..utils.validation import check_fraction, require

logger = get_logger("faults.recovery")

#: Default segment id of the standalone (non-Communicator) entry points.
FAULT_SEGMENT_ID = 140

#: How long a collective waits for missing contributions before declaring
#: them absent.  Deliberately short: detection is supposed to be cheaper
#: than waiting a failed rank out.
DEFAULT_DETECT_TIMEOUT = 0.5

#: Default budget of one :meth:`DegradedResult.correct` pass.
DEFAULT_CORRECTION_TIMEOUT = 2.0

#: Entry-handshake retry shape: the detection timeout is spent in a few
#: barrier slices with jittered pauses between them, so a straggler can
#: still synchronize mid-window instead of missing one full-budget try.
_HANDSHAKE_BACKOFF = BackoffPolicy(
    initial=0.005, factor=2.0, max_pause=0.05, jitter=0.5
)

#: Accepted ``on_failure`` policy values (see ConsistencyPolicy).
ON_FAILURE_MODES = ("abort", "complete")


class DegradedCollectiveError(GaspiError):
    """A degraded collective fell below its process threshold.

    Raised only under ``on_failure="abort"``.  Carries the
    :class:`DegradedResult` (as :attr:`detail`) so the caller can inspect
    the missing ranks and still run a correction pass.
    """

    def __init__(self, detail: "DegradedResult") -> None:
        self.detail = detail
        super().__init__(
            f"{detail.collective}: only {detail.contributors}/{detail.required} "
            f"required contributors arrived (missing ranks: "
            f"{list(detail.missing_ranks)}); pass on_failure='complete' to "
            f"accept degraded results"
        )


class DegradedResult:
    """Status and correction handle of one degraded-mode collective call.

    Plays the role of the paper's *status* output parameter, extended for
    faults: which ranks never contributed, whether the process threshold
    was met, and — while the workspace segment is kept alive — a
    :meth:`correct` pass that folds late contributions in.

    Call :meth:`close` (or let a successful :meth:`correct` do it) once no
    late contribution is expected anymore; it releases the workspace
    segment.  Results without missing ranks need no closing.
    """

    def __init__(
        self,
        collective: str,
        rank: int,
        root: Optional[int],
        threshold: float,
        contributors: int,
        required: int,
        missing_ranks: Iterable[int],
        value: Optional[np.ndarray],
        *,
        runtime: Optional[GaspiRuntime] = None,
        segment_id: Optional[int] = None,
        operator: Optional[ReductionOp] = None,
        elements: int = 0,
        slot_bytes: int = 0,
        data_notification: Optional[int] = None,
        queue: int = 0,
    ) -> None:
        self.collective = collective
        self.rank = int(rank)
        self.root = root
        self.threshold = float(threshold)
        self.contributors = int(contributors)
        self.required = int(required)
        self.missing_ranks: Tuple[int, ...] = tuple(sorted(int(r) for r in missing_ranks))
        self.corrected_ranks: Tuple[int, ...] = ()
        self.value = value
        self._runtime = runtime
        self._segment_id = segment_id
        self._operator = operator
        self._elements = int(elements)
        self._slot_bytes = int(slot_bytes)
        self._data_notification = data_notification
        self._queue = int(queue)
        self._closed = runtime is None

    # ------------------------------------------------------------------ #
    @property
    def complete(self) -> bool:
        """True when every rank's contribution has been folded in."""
        return not self.missing_ranks

    @property
    def met_threshold(self) -> bool:
        """True when enough contributors arrived for the policy."""
        return self.contributors >= self.required

    @property
    def correctable(self) -> bool:
        """True while the workspace is alive and contributions are missing."""
        return bool(self.missing_ranks) and not self._closed

    # ------------------------------------------------------------------ #
    def correct(self, timeout: float = DEFAULT_CORRECTION_TIMEOUT):
        """Küttler-style correction pass: fold in late contributions.

        Waits up to ``timeout`` seconds for contributions of the ranks in
        :attr:`missing_ranks`; each one that arrives is reduced into (or,
        for a broadcast receiver, copied into) the already-returned buffer
        in place, so every holder of the result re-converges without a new
        collective.  Returns the (possibly updated) value; when nothing is
        missing anymore the workspace segment is released.
        """
        if self._closed or not self.missing_ranks:
            return self.value
        rt = self._runtime
        sid = self._segment_id
        deadline = time.monotonic() + float(timeout)
        missing: Set[int] = set(self.missing_ranks)
        corrected = set(self.corrected_ranks)

        if self.collective == "bcast" and self.rank != self.root:
            # Receiver that never got the payload: wait for the late root.
            remaining = deadline - time.monotonic()
            got = rt.notify_waitsome(
                sid, self._data_notification, 1, timeout=max(remaining, 0.0)
            )
            if got is not None and rt.notify_reset(sid, got) > 0:
                self.value[: self._elements] = rt.segment_read(
                    sid, dtype=self.value.dtype, offset=0, count=self._elements
                )
                try:
                    rt.notify(self.root, sid, self.rank, queue=self._queue)
                    rt.wait(self._queue)
                except GaspiError:
                    pass  # the root may have released its workspace already
                missing.discard(self.root)
                corrected.add(self.root)
                self.contributors += 1
        else:
            # Gather-style correction (allreduce everywhere, reduce at the
            # root, broadcast-root ack collection): same collect loop as
            # the main detection phase, over the still-missing ranks.
            remaining = deadline - time.monotonic()
            arrived = _gather_contributions(
                rt,
                sid,
                self.value,
                self._operator,
                self._elements,
                self._slot_bytes,
                set(missing),
                max(remaining, 0.0),
                already_counted=set(range(rt.size)) - set(missing),
            )
            missing -= arrived
            corrected |= arrived
            self.contributors += len(arrived)

        newly = corrected - set(self.corrected_ranks)
        if newly:
            logger.info(
                "rank %d: correction folded late contribution(s) from "
                "ranks %s into %s result%s",
                self.rank, sorted(newly), self.collective,
                "" if missing else " (now complete)",
            )
            tel = getattr(rt, "telemetry", None)
            if tel is not None and tel.enabled:
                tel.counter("faults.corrections").add(len(newly))
        self.missing_ranks = tuple(sorted(missing))
        self.corrected_ranks = tuple(sorted(corrected))
        if not missing:
            self.close()
        return self.value

    def close(self) -> None:
        """Release the workspace segment kept alive for correction."""
        if self._closed:
            return
        self._closed = True
        try:
            self._runtime.segment_delete(self._segment_id)
        except GaspiError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "complete" if self.complete else f"missing={list(self.missing_ranks)}"
        return (
            f"DegradedResult({self.collective}, rank={self.rank}, "
            f"{self.contributors}/{self.required} contributors, {state})"
        )


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #
def _required_contributors(size: int, threshold: float) -> int:
    """Minimum contributor count for a process threshold over ``size`` ranks."""
    return max(1, math.ceil(threshold * size - 1e-9))


def _alive_ranks(size: int, rank: int, known_failed) -> list:
    known = {int(r) for r in known_failed}
    require(
        rank not in known,
        f"rank {rank} cannot run a collective it is itself suspected dead in",
    )
    return [r for r in range(size) if r not in known]


def _entry_handshake(
    runtime: GaspiRuntime, alive: Sequence[int], timeout: float
) -> None:
    """Bounded readiness handshake over the believed-live ranks.

    A plain group barrier would deadlock whenever the participants'
    ``known_failed`` views diverge (e.g. a rank crashed *mid*-send, so
    some survivors received its contribution and some did not): mismatched
    groups wait on mismatched barriers forever.  Instead the barrier is
    retried in jittered-backoff slices of the detection timeout
    (:class:`~repro.utils.backoff.Backoff`) and a final miss is tolerated
    — a straggler that arrives mid-window still synchronizes on a later
    slice, every rank that entered the collective has already created its
    workspace, and a write to a rank that never entered surfaces as a
    segment error the senders catch (:func:`_safe_write_notify`), turning
    disagreement into a detection latency cost rather than a hang.
    """
    if len(alive) <= 1:
        return
    group = Group(alive)
    backoff = Backoff(
        _HANDSHAKE_BACKOFF, timeout=timeout, seed=runtime.rank
    )
    while True:
        slice_timeout = max(timeout / 4.0, backoff.remaining() / 2.0)
        try:
            runtime.barrier(group, timeout=min(slice_timeout, backoff.remaining()))
            return
        except GaspiError:
            if not backoff.sleep():
                return


def _safe_write_notify(runtime: GaspiRuntime, **kwargs) -> bool:
    """Post a write_notify, tolerating an unreachable target.

    Returns False when the target rank never created the workspace (it is
    dead, or suspects a different rank set) — RDMA into nothing; the
    sender simply moves on and the target shows up as missing.  Injected
    crashes (:class:`~repro.faults.injection.RankCrashedError`) still
    propagate: the *sender* dying is not an unreachable target.
    """
    try:
        runtime.write_notify(**kwargs)
        return True
    except GaspiSegmentError:
        return False


def _gather_contributions(
    runtime: GaspiRuntime,
    segment_id: int,
    accumulator: np.ndarray,
    operator: Optional[ReductionOp],
    elements: int,
    slot_bytes: int,
    expected: Set[int],
    detect_timeout: float,
    already_counted: Set[int],
) -> Set[int]:
    """Collect slot-indexed contributions until all arrived or the timeout.

    Returns the set of ranks whose contribution was folded into
    ``accumulator`` (``operator=None`` collects pure notifications, e.g.
    broadcast acks).  Only the ranks in ``expected`` are *waited* for, but
    any arriving contribution not in ``already_counted`` is folded — a
    rank wrongly suspected dead (it merely straggled past an earlier
    detection window) must not have its notification consumed and its
    data discarded.  Ends with a non-blocking drain so an arrival racing
    the deadline is not misclassified as missing.
    """
    size = runtime.size
    received: Set[int] = set()
    t_detect = CLOCK()

    def fold(nid: int) -> None:
        if operator is not None:
            # The slot must be copied out (unlike the fault-free folds): a
            # recovered rank may re-send its late contribution into the same
            # slot while we reduce, and a torn read here would corrupt the
            # accumulator.  The fold itself still runs the vectorized kernel.
            slot = runtime.segment_read(
                segment_id,
                dtype=accumulator.dtype,
                offset=nid * slot_bytes,
                count=elements,
            )
            kernels.reduce_into(operator, accumulator, slot)
        received.add(nid)

    deadline = time.monotonic() + float(detect_timeout)
    while expected - received:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        nid = runtime.notify_waitsome(segment_id, 0, size, timeout=remaining)
        if nid is None:
            break
        if runtime.notify_reset(segment_id, nid) == 0:
            continue
        if nid not in received and nid not in already_counted:
            fold(nid)
    for nid, value in runtime.notify_drain(segment_id, 0, size).items():
        if value > 0 and nid not in received and nid not in already_counted:
            fold(nid)
    absent = expected - received
    if absent:
        # Suspicion latency: how long the detection window actually ran
        # before these ranks were declared missing (≤ detect_timeout).
        elapsed = CLOCK() - t_detect
        logger.info(
            "rank %d: declaring ranks %s missing after %.3fs detection window",
            runtime.rank, sorted(absent), elapsed,
        )
        tel = getattr(runtime, "telemetry", None)
        if tel is not None and tel.enabled:
            tel.counter("faults.suspicions").add(len(absent))
            tel.histogram("faults.suspicion_latency_s").observe(elapsed)
    return received


def _resolve_on_failure(on_failure: str) -> str:
    require(
        on_failure in ON_FAILURE_MODES,
        f"on_failure must be one of {ON_FAILURE_MODES}, got {on_failure!r}",
    )
    return on_failure


def _finish(detail: DegradedResult, on_failure: str) -> DegradedResult:
    """Apply the threshold verdict and decide the workspace's fate.

    The segment is released immediately only when nothing is missing;
    otherwise it stays alive so :meth:`DegradedResult.correct` can absorb
    late contributions (and a late writer never hits a deleted segment).
    """
    if detail.missing_ranks:
        logger.info(
            "rank %d: %s completed degraded, missing_ranks=%s "
            "(%d/%d contributors, threshold %s)",
            detail.rank, detail.collective, list(detail.missing_ranks),
            detail.contributors, detail.required,
            "met" if detail.met_threshold else "NOT met",
        )
    if detail.complete:
        detail.close()
    if not detail.met_threshold and on_failure == "abort":
        raise DegradedCollectiveError(detail)
    return detail


# --------------------------------------------------------------------------- #
# allreduce
# --------------------------------------------------------------------------- #
def tolerant_allreduce(
    runtime: GaspiRuntime,
    sendbuf: np.ndarray,
    recvbuf: Optional[np.ndarray] = None,
    op: str | ReductionOp = "sum",
    threshold: float = 1.0,
    on_failure: str = "abort",
    detect_timeout: float = DEFAULT_DETECT_TIMEOUT,
    known_failed: Iterable[int] = (),
    segment_id: int = FAULT_SEGMENT_ID,
    queue: int = 0,
) -> DegradedResult:
    """Fault-tolerant flat-exchange allreduce with degraded completion.

    Every live rank pushes its contribution into slot ``rank`` of every
    peer and collects peer slots until all arrived or ``detect_timeout``
    expired.  Completion requires ``ceil(threshold * size)`` contributors
    (the process-threshold semantics of the paper's Figure 10); the
    returned :class:`DegradedResult` records who was missing and supports
    a correction pass.  Ranks in ``known_failed`` are skipped outright —
    they are neither written to nor waited for.
    """
    sendbuf = np.ascontiguousarray(sendbuf)
    require(sendbuf.ndim == 1 and sendbuf.size > 0, "sendbuf must be a non-empty vector")
    check_fraction(threshold, "threshold")
    on_failure = _resolve_on_failure(on_failure)
    operator = get_op(op)
    rank, size = runtime.rank, runtime.size
    alive = _alive_ranks(size, rank, known_failed)
    elements = sendbuf.size
    slot_bytes = sendbuf.nbytes

    runtime.segment_create(segment_id, max(size * slot_bytes, 8))
    _entry_handshake(runtime, alive, detect_timeout)

    if recvbuf is not None:
        out = np.asarray(recvbuf)
        require(out.size == elements, "recvbuf must match sendbuf's length")
        out[:] = sendbuf
    else:
        out = sendbuf.copy()

    # Send phase: an injected crash propagates as RankCrashedError from
    # here; the rank's segment stays behind for the survivors.
    staged = runtime.segment_view(
        segment_id, dtype=sendbuf.dtype, offset=rank * slot_bytes, count=elements
    )
    staged[:] = sendbuf
    for peer in alive:
        if peer == rank:
            continue
        _safe_write_notify(
            runtime,
            segment_id_local=segment_id,
            offset_local=rank * slot_bytes,
            target_rank=peer,
            segment_id_remote=segment_id,
            offset_remote=rank * slot_bytes,
            size=slot_bytes,
            notification_id=rank,
            queue=queue,
        )
    runtime.wait(queue)

    expected = set(alive) - {rank}
    received = _gather_contributions(
        runtime, segment_id, out, operator, elements, slot_bytes, expected,
        detect_timeout, already_counted={rank},
    )
    contributed = received | {rank}
    detail = DegradedResult(
        collective="allreduce",
        rank=rank,
        root=None,
        threshold=threshold,
        contributors=len(contributed),
        required=_required_contributors(size, threshold),
        missing_ranks=set(range(size)) - contributed,
        value=out,
        runtime=runtime,
        segment_id=segment_id,
        operator=operator,
        elements=elements,
        slot_bytes=slot_bytes,
        queue=queue,
    )
    return _finish(detail, on_failure)


def send_late_contribution(
    runtime: GaspiRuntime,
    sendbuf: np.ndarray,
    segment_id: int,
    targets: Optional[Iterable[int]] = None,
    queue: int = 0,
) -> list:
    """Push this rank's contribution into an earlier degraded exchange.

    The late half of the correction protocol: a recovered rank (see
    :meth:`~repro.faults.injection.FaultyRuntime.recover`) re-sends its
    slot-indexed contribution to the survivors, whose
    :meth:`DegradedResult.correct` passes fold it in.  ``segment_id`` must
    be the segment of the degraded collective (for Communicator dispatch:
    :attr:`~repro.core.api.Communicator.last_segment_id`).

    Peers that have already released their workspace — every peer of a
    completed exchange, the non-root children of a reduce — are skipped
    silently, so the default ``targets`` (everyone) is always safe; after
    a degraded *reduce* only the root holds a workspace, so
    ``targets=[root]`` merely avoids the wasted attempts.

    Returns the sorted list of peer ranks actually reached (their
    workspace accepted the write).  A caller racing the survivors'
    workspace creation — the elastic rejoin path — retries the remainder;
    the survivors' dedup of already-counted slots makes duplicate sends
    idempotent.
    """
    sendbuf = np.ascontiguousarray(sendbuf)
    rank = runtime.rank
    slot_bytes = sendbuf.nbytes
    peers = range(runtime.size) if targets is None else targets
    staged = runtime.segment_view(
        segment_id, dtype=sendbuf.dtype, offset=rank * slot_bytes, count=sendbuf.size
    )
    staged[:] = sendbuf
    reached = []
    for peer in peers:
        if int(peer) == rank:
            continue
        if _safe_write_notify(
            runtime,
            segment_id_local=segment_id,
            offset_local=rank * slot_bytes,
            target_rank=int(peer),
            segment_id_remote=segment_id,
            offset_remote=rank * slot_bytes,
            size=slot_bytes,
            notification_id=rank,
            queue=queue,
        ):
            reached.append(int(peer))
    runtime.wait(queue)
    return sorted(reached)


# --------------------------------------------------------------------------- #
# reduce
# --------------------------------------------------------------------------- #
def tolerant_reduce(
    runtime: GaspiRuntime,
    sendbuf: np.ndarray,
    recvbuf: Optional[np.ndarray] = None,
    root: int = 0,
    op: str | ReductionOp = "sum",
    threshold: float = 1.0,
    on_failure: str = "abort",
    detect_timeout: float = DEFAULT_DETECT_TIMEOUT,
    known_failed: Iterable[int] = (),
    segment_id: int = FAULT_SEGMENT_ID,
    queue: int = 0,
) -> DegradedResult:
    """Fault-tolerant flat-gather reduce onto ``root``.

    Children write their full vector into slot ``rank`` of the root; the
    root folds contributions until all live children arrived or the
    timeout expired, then applies the process-threshold verdict.  Only the
    root learns who was missing (and owns the correction handle); children
    complete as soon as their send is flushed, so a dead root cannot hang
    them.
    """
    sendbuf = np.ascontiguousarray(sendbuf)
    require(sendbuf.ndim == 1 and sendbuf.size > 0, "sendbuf must be a non-empty vector")
    require(0 <= root < runtime.size, f"root {root} outside world of {runtime.size}")
    check_fraction(threshold, "threshold")
    on_failure = _resolve_on_failure(on_failure)
    require(
        int(root) not in {int(r) for r in known_failed},
        f"root {root} is in known_failed; pick a live root",
    )
    operator = get_op(op)
    rank, size = runtime.rank, runtime.size
    alive = _alive_ranks(size, rank, known_failed)
    elements = sendbuf.size
    slot_bytes = sendbuf.nbytes

    runtime.segment_create(segment_id, max(size * slot_bytes, 8))
    _entry_handshake(runtime, alive, detect_timeout)

    if rank != root:
        staged = runtime.segment_view(
            segment_id, dtype=sendbuf.dtype, offset=rank * slot_bytes, count=elements
        )
        staged[:] = sendbuf
        _safe_write_notify(
            runtime,
            segment_id_local=segment_id,
            offset_local=rank * slot_bytes,
            target_rank=root,
            segment_id_remote=segment_id,
            offset_remote=rank * slot_bytes,
            size=slot_bytes,
            notification_id=rank,
            queue=queue,
        )
        runtime.wait(queue)
        # Nothing is ever written into a child's workspace: release it now.
        runtime.segment_delete(segment_id)
        return DegradedResult(
            collective="reduce",
            rank=rank,
            root=root,
            threshold=threshold,
            contributors=1,
            required=1,
            missing_ranks=(),
            value=None,
        )

    if recvbuf is not None:
        out = np.asarray(recvbuf)
        require(out.size == elements, "recvbuf must match sendbuf's length")
        out[:] = sendbuf
    else:
        out = sendbuf.copy()
    expected = set(alive) - {root}
    received = _gather_contributions(
        runtime, segment_id, out, operator, elements, slot_bytes, expected,
        detect_timeout, already_counted={root},
    )
    contributed = received | {root}
    detail = DegradedResult(
        collective="reduce",
        rank=rank,
        root=root,
        threshold=threshold,
        contributors=len(contributed),
        required=_required_contributors(size, threshold),
        missing_ranks=set(range(size)) - contributed,
        value=out,
        runtime=runtime,
        segment_id=segment_id,
        operator=operator,
        elements=elements,
        slot_bytes=slot_bytes,
        queue=queue,
    )
    return _finish(detail, on_failure)


# --------------------------------------------------------------------------- #
# bcast
# --------------------------------------------------------------------------- #
def tolerant_bcast(
    runtime: GaspiRuntime,
    buffer: np.ndarray,
    root: int = 0,
    threshold: float = 1.0,
    mode: ReduceMode | str = ReduceMode.DATA,
    on_failure: str = "abort",
    detect_timeout: float = DEFAULT_DETECT_TIMEOUT,
    known_failed: Iterable[int] = (),
    segment_id: int = FAULT_SEGMENT_ID,
    queue: int = 0,
) -> DegradedResult:
    """Fault-tolerant flat broadcast with acknowledgement timeouts.

    The root pushes the payload (the leading ``threshold`` fraction in
    DATA mode, all of it in PROCESSES mode) to every live rank and
    collects per-rank acknowledgements until the timeout; receivers that
    see no payload within the timeout complete degraded with the root
    recorded missing (their buffer is left untouched until a correction
    pass delivers the late payload).
    """
    buffer = np.ascontiguousarray(buffer)
    require(buffer.ndim == 1 and buffer.size > 0, "buffer must be a non-empty vector")
    require(0 <= root < runtime.size, f"root {root} outside world of {runtime.size}")
    check_fraction(threshold, "threshold")
    mode = ReduceMode(mode)
    on_failure = _resolve_on_failure(on_failure)
    require(
        int(root) not in {int(r) for r in known_failed},
        f"root {root} is in known_failed; pick a live root",
    )
    rank, size = runtime.rank, runtime.size
    alive = _alive_ranks(size, rank, known_failed)
    if mode is ReduceMode.DATA:
        elements = threshold_elements(buffer.size, threshold)
        required = size
    else:
        elements = buffer.size
        required = _required_contributors(size, threshold)
    payload_bytes = elements * buffer.itemsize
    data_notification = size  # beyond the rank-indexed ack ids

    runtime.segment_create(segment_id, max(payload_bytes, 8))
    _entry_handshake(runtime, alive, detect_timeout)

    if rank == root:
        staged = runtime.segment_view(segment_id, dtype=buffer.dtype, count=elements)
        staged[:] = buffer[:elements]
        for peer in alive:
            if peer == root:
                continue
            _safe_write_notify(
                runtime,
                segment_id_local=segment_id,
                offset_local=0,
                target_rank=peer,
                segment_id_remote=segment_id,
                offset_remote=0,
                size=payload_bytes,
                notification_id=data_notification,
                queue=queue,
            )
        runtime.wait(queue)
        expected = set(alive) - {root}
        acked = _gather_contributions(
            runtime, segment_id, buffer, None, elements, payload_bytes, expected,
            detect_timeout, already_counted={root},
        )
        contributed = acked | {root}
        detail = DegradedResult(
            collective="bcast",
            rank=rank,
            root=root,
            threshold=threshold,
            contributors=len(contributed),
            required=required,
            missing_ranks=set(range(size)) - contributed,
            value=buffer,
            runtime=runtime,
            segment_id=segment_id,
            operator=None,
            elements=elements,
            slot_bytes=payload_bytes,
            queue=queue,
        )
        return _finish(detail, on_failure)

    got = runtime.notify_waitsome(segment_id, data_notification, 1, timeout=detect_timeout)
    if got is not None and runtime.notify_reset(segment_id, got) > 0:
        buffer[:elements] = runtime.segment_read(
            segment_id, dtype=buffer.dtype, offset=0, count=elements
        )
        runtime.notify(root, segment_id, rank, queue=queue)
        runtime.wait(queue)
        detail = DegradedResult(
            collective="bcast",
            rank=rank,
            root=root,
            threshold=threshold,
            contributors=2,  # the root's payload and this rank
            required=2,
            missing_ranks=(),
            value=buffer,
            runtime=runtime,
            segment_id=segment_id,
            operator=None,
            elements=elements,
            slot_bytes=payload_bytes,
            data_notification=data_notification,
            queue=queue,
        )
        return _finish(detail, on_failure)

    detail = DegradedResult(
        collective="bcast",
        rank=rank,
        root=root,
        threshold=threshold,
        contributors=1,
        required=2,
        missing_ranks=(root,),
        value=buffer,
        runtime=runtime,
        segment_id=segment_id,
        operator=None,
        elements=elements,
        slot_bytes=payload_bytes,
        data_notification=data_notification,
        queue=queue,
    )
    return _finish(detail, on_failure)


# --------------------------------------------------------------------------- #
# schedule builders (simulator replay of the degraded patterns)
# --------------------------------------------------------------------------- #
def tolerant_allreduce_schedule(
    num_ranks: int,
    nbytes: int,
    threshold: float = 1.0,
    failed: Iterable[int] = (),
    name: Optional[str] = None,
) -> CommunicationSchedule:
    """Flat all-pairs exchange among the live ranks (one round)."""
    failed_set = {int(r) for r in failed}
    alive = [r for r in range(num_ranks) if r not in failed_set]
    sched = CommunicationSchedule(
        name=name or f"gaspi_allreduce_tolerant[{len(alive)}/{num_ranks}]",
        num_ranks=num_ranks,
        metadata={
            "threshold": threshold,
            "failed": sorted(failed_set),
            "participants": len(alive),
            "algorithm": "tolerant_flat_exchange",
        },
    )
    messages = [
        Message(
            src=s,
            dst=d,
            nbytes=nbytes,
            protocol=Protocol.ONESIDED,
            reduce_bytes=nbytes,
            tag="exchange",
        )
        for s in alive
        for d in alive
        if s != d
    ]
    if messages:
        sched.add_round(messages, label="exchange")
    sched.validate()
    return sched


def tolerant_reduce_schedule(
    num_ranks: int,
    nbytes: int,
    threshold: float = 1.0,
    root: int = 0,
    failed: Iterable[int] = (),
    name: Optional[str] = None,
) -> CommunicationSchedule:
    """Flat gather of the live children onto the root (one round)."""
    failed_set = {int(r) for r in failed}
    alive = [r for r in range(num_ranks) if r not in failed_set]
    sched = CommunicationSchedule(
        name=name or f"gaspi_reduce_tolerant[{len(alive)}/{num_ranks}]",
        num_ranks=num_ranks,
        metadata={
            "threshold": threshold,
            "failed": sorted(failed_set),
            "participants": len(alive),
            "algorithm": "tolerant_flat_gather",
        },
    )
    messages = [
        Message(
            src=r,
            dst=root,
            nbytes=nbytes,
            protocol=Protocol.ONESIDED,
            reduce_bytes=nbytes,
            tag="gather",
        )
        for r in alive
        if r != root
    ]
    if messages:
        sched.add_round(messages, label="gather")
    sched.validate()
    return sched


def tolerant_bcast_schedule(
    num_ranks: int,
    nbytes: int,
    threshold: float = 1.0,
    mode: ReduceMode | str = ReduceMode.DATA,
    root: int = 0,
    failed: Iterable[int] = (),
    name: Optional[str] = None,
) -> CommunicationSchedule:
    """Flat fan-out of the (possibly partial) payload plus an ack round."""
    mode = ReduceMode(mode)
    failed_set = {int(r) for r in failed}
    alive = [r for r in range(num_ranks) if r not in failed_set]
    send_bytes = (
        max(1, int(nbytes * threshold)) if (mode is ReduceMode.DATA and nbytes) else nbytes
    )
    sched = CommunicationSchedule(
        name=name or f"gaspi_bcast_tolerant[{len(alive)}/{num_ranks}]",
        num_ranks=num_ranks,
        metadata={
            "threshold": threshold,
            "mode": mode.value,
            "failed": sorted(failed_set),
            "participants": len(alive),
            "shipped_bytes": send_bytes,
            "algorithm": "tolerant_flat_fanout",
        },
    )
    data = [
        Message(src=root, dst=r, nbytes=send_bytes, protocol=Protocol.ONESIDED, tag="payload")
        for r in alive
        if r != root
    ]
    if data:
        sched.add_round(data, label="payload")
        acks = [
            Message(src=r, dst=root, nbytes=0, protocol=Protocol.ONESIDED, tag="ack")
            for r in alive
            if r != root
        ]
        sched.add_round(acks, label="ack")
    sched.validate()
    return sched


# --------------------------------------------------------------------------- #
# registry integration
# --------------------------------------------------------------------------- #
def _detect_timeout_for(request: CollectiveRequest) -> float:
    override = request.metadata.get("detect_timeout")
    if override is not None:
        return float(override)
    if request.timeout != GASPI_BLOCK:
        return float(request.timeout)
    return DEFAULT_DETECT_TIMEOUT


def _run_allreduce_tolerant(runtime, request: CollectiveRequest) -> CollectiveResult:
    detail = tolerant_allreduce(
        runtime,
        request.sendbuf,
        recvbuf=request.recvbuf,
        op=request.op,
        threshold=request.policy.threshold,
        on_failure=request.policy.on_failure,
        detect_timeout=_detect_timeout_for(request),
        known_failed=request.metadata.get("known_failed", ()),
        segment_id=request.segment_id,
        queue=request.queue,
    )
    return CollectiveResult(
        value=detail.value, detail=detail, missing_ranks=detail.missing_ranks
    )


def _run_reduce_tolerant(runtime, request: CollectiveRequest) -> CollectiveResult:
    detail = tolerant_reduce(
        runtime,
        request.sendbuf,
        recvbuf=request.recvbuf,
        root=request.root,
        op=request.op,
        threshold=request.policy.threshold,
        on_failure=request.policy.on_failure,
        detect_timeout=_detect_timeout_for(request),
        known_failed=request.metadata.get("known_failed", ()),
        segment_id=request.segment_id,
        queue=request.queue,
    )
    return CollectiveResult(
        value=detail.value, detail=detail, missing_ranks=detail.missing_ranks
    )


def _run_bcast_tolerant(runtime, request: CollectiveRequest) -> CollectiveResult:
    detail = tolerant_bcast(
        runtime,
        request.sendbuf,
        root=request.root,
        threshold=request.policy.threshold,
        mode=request.policy.mode,
        on_failure=request.policy.on_failure,
        detect_timeout=_detect_timeout_for(request),
        known_failed=request.metadata.get("known_failed", ()),
        segment_id=request.segment_id,
        queue=request.queue,
    )
    return CollectiveResult(
        value=request.sendbuf, detail=detail, missing_ranks=detail.missing_ranks
    )


def _register_fault_tolerant_algorithms() -> None:
    if "gaspi_allreduce_tolerant" in REGISTRY:
        return
    REGISTRY.register(
        "gaspi_allreduce_tolerant",
        collective="allreduce",
        family="gaspi",
        builder=tolerant_allreduce_schedule,
        runner=_run_allreduce_tolerant,
        capabilities=AlgorithmCapabilities(
            supports_threshold=True,
            modes=("processes",),
            supports_op=True,
            fault_tolerant=True,
        ),
        description=(
            "Flat-exchange allreduce with failure detection, degraded "
            "completion at the process threshold, and correction"
        ),
    )
    REGISTRY.register(
        "gaspi_reduce_tolerant",
        collective="reduce",
        family="gaspi",
        builder=tolerant_reduce_schedule,
        runner=_run_reduce_tolerant,
        capabilities=AlgorithmCapabilities(
            supports_threshold=True,
            modes=("processes",),
            supports_op=True,
            fault_tolerant=True,
        ),
        description=(
            "Flat-gather reduce with failure detection at the root and "
            "Küttler-style correction of late contributions"
        ),
    )
    REGISTRY.register(
        "gaspi_bcast_tolerant",
        collective="bcast",
        family="gaspi",
        builder=tolerant_bcast_schedule,
        runner=_run_bcast_tolerant,
        capabilities=AlgorithmCapabilities(
            supports_threshold=True,
            modes=("data", "processes"),
            fault_tolerant=True,
        ),
        description=(
            "Flat broadcast with acknowledgement timeouts and late-payload "
            "correction on receivers"
        ),
    )


_register_fault_tolerant_algorithms()
