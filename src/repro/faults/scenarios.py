"""Named fault scenarios usable from tests, benchmarks and the simulator.

Each scenario is a recipe turning ``(num_ranks, seed)`` into a
:class:`~repro.faults.injection.FaultPlan`.  The catalog covers the two
failure regimes named by the related work — crashed ranks (Küttler &
Härtig's correction-based fault-tolerant collectives) and skewed process
arrival patterns (Proficz's imbalanced-PAP allreduce) — plus message-level
degradations (loss, partitions) that exercise the notification timeouts of
the degraded-mode collectives.

Catalog
-------
``single_crash``
    The last rank dies before contributing anything.
``double_crash``
    The two last ranks die before contributing.
``late_crash``
    One rank dies mid-collective, after a few sends are already out.
``rolling_stragglers``
    A different rank is slow in every collective (round-robin skew).
``sorted_arrival``
    Proficz's *sorted* process-arrival pattern: arrival offsets grow
    linearly with the rank id.
``random_arrival``
    Proficz's *random* PAP: seeded uniform arrival offsets.
``partition_heal``
    The world splits in two halves whose cross-links drop messages until
    the partition heals at a fixed operation index.
``message_loss``
    Every message is dropped with a small seeded probability.
``crash_then_shrink``
    The last rank dies before contributing; the survivors are expected
    to ``shrink()`` to a full-strength smaller world.
``crash_then_respawn``
    The last rank dies mid-collective (some sends already out); a
    recovered or respawned incarnation rejoins and re-converges.
``flapping_rank``
    The last rank's outbound messages black-hole for a window (a
    heartbeat detector suspects, maybe confirms, then reinstates when
    the beats resume) before it finally crashes for good — the flap
    discrimination case for :mod:`repro.health`.
``supervised_crash``
    The last rank dies silently at the entry of a later collective (no
    survivor holds its contribution), the cleanest trigger for the
    detect → checkpoint → shrink escalation of
    :class:`~repro.health.supervisor.RecoverySupervisor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..utils.validation import require
from .injection import FaultPlan

#: Default arrival-skew amplitude (seconds) for the PAP scenarios; small
#: enough to keep test runs fast, large enough to dominate thread jitter.
DEFAULT_SKEW = 0.05

#: Default per-message loss probability of the ``message_loss`` scenario.
DEFAULT_LOSS = 0.05


@dataclass(frozen=True)
class FaultScenario:
    """A named recipe producing a :class:`FaultPlan` for a world size."""

    name: str
    description: str
    factory: Callable[[int, int], FaultPlan]

    def plan(self, num_ranks: int, seed: int = 0) -> FaultPlan:
        """Materialise the scenario for ``num_ranks`` ranks."""
        require(num_ranks >= 1, "num_ranks must be >= 1")
        return self.factory(num_ranks, seed)

    def arrival_offsets(
        self, num_ranks: int, seed: int = 0, collective_index: int = 0
    ) -> List[float]:
        """Per-rank arrival offsets for the simulator's ``rank_offsets``."""
        return self.plan(num_ranks, seed).arrival_offsets(num_ranks, collective_index)


# --------------------------------------------------------------------------- #
# scenario factories
# --------------------------------------------------------------------------- #
def _single_crash(num_ranks: int, seed: int) -> FaultPlan:
    return FaultPlan.single_crash(num_ranks - 1, at_op=0, seed=seed)


def _double_crash(num_ranks: int, seed: int) -> FaultPlan:
    ranks = [num_ranks - 1] if num_ranks < 3 else [num_ranks - 1, num_ranks - 2]
    return FaultPlan.crashes(ranks, at_op=0, seed=seed)


def _late_crash(num_ranks: int, seed: int) -> FaultPlan:
    # Dies after (roughly) half of its peer writes went out, so some
    # survivors already hold its contribution — the forwarding/correction
    # regime of Küttler-style recovery.
    return FaultPlan.single_crash(num_ranks - 1, at_op=max(1, (num_ranks - 1) // 2), seed=seed)


def _rolling_stragglers(num_ranks: int, seed: int) -> FaultPlan:
    def skew_fn(rank: int, collective_index: int) -> float:
        return DEFAULT_SKEW if rank == collective_index % num_ranks else 0.0

    return FaultPlan(skew_fn=skew_fn, seed=seed)


def _sorted_arrival(num_ranks: int, seed: int) -> FaultPlan:
    if num_ranks == 1:
        return FaultPlan(seed=seed)
    return FaultPlan(
        skew={r: DEFAULT_SKEW * r / (num_ranks - 1) for r in range(num_ranks)},
        seed=seed,
    )


def _random_arrival(num_ranks: int, seed: int) -> FaultPlan:
    rng = np.random.default_rng((seed, num_ranks))
    return FaultPlan(
        skew={r: float(rng.uniform(0.0, DEFAULT_SKEW)) for r in range(num_ranks)},
        seed=seed,
    )


def _partition_heal(num_ranks: int, seed: int) -> FaultPlan:
    half = max(1, num_ranks // 2)
    return FaultPlan.partition(
        range(half), range(half, num_ranks), heal_at_op=num_ranks, seed=seed
    )


def _message_loss(num_ranks: int, seed: int) -> FaultPlan:
    return FaultPlan(drop_probability=DEFAULT_LOSS, seed=seed)


def _crash_then_shrink(num_ranks: int, seed: int) -> FaultPlan:
    # Dies before contributing anything: the cleanest shrink case — the
    # survivors detect the absence, agree on the removal and renumber.
    return FaultPlan.single_crash(num_ranks - 1, at_op=0, seed=seed)


def _crash_then_respawn(num_ranks: int, seed: int) -> FaultPlan:
    # Dies mid-collective (same shape as late_crash): some survivors hold
    # its contribution, some do not, so the respawned incarnation must
    # re-drive its slot and the survivors' correction passes re-converge.
    return FaultPlan.single_crash(
        num_ranks - 1, at_op=max(1, (num_ranks - 1) // 2), seed=seed
    )


#: Op window in which the ``flapping_rank`` victim's messages black-hole
#: (long enough for a 20 ms-period detector to suspect, short enough for
#: the reinstate to land well before the final crash).
FLAP_WINDOW = (8, 24)

#: Op index at which the ``flapping_rank`` victim dies for good.
FLAP_FINAL_CRASH = 64


def _flapping_rank(num_ranks: int, seed: int) -> FaultPlan:
    # One victim's outbound links black-hole inside FLAP_WINDOW — to a
    # heartbeat detector that is silence (suspect, maybe confirm), then a
    # resumption (reinstate + flap count) — before a real crash later.
    victim = num_ranks - 1
    return FaultPlan(
        crash_at={victim: FLAP_FINAL_CRASH},
        drop_links=frozenset(
            (victim, peer) for peer in range(num_ranks) if peer != victim
        ),
        drop_window=FLAP_WINDOW,
        seed=seed,
    )


def _supervised_crash(num_ranks: int, seed: int) -> FaultPlan:
    # Dies at the entry of its second tolerant collective (each costs the
    # flat degraded exchange num_ranks - 1 data-plane ops), so *no*
    # survivor holds the contribution and every one of them observes the
    # loss at the same collective boundary — the consistent trigger the
    # supervised shrink escalation wants.
    return FaultPlan.single_crash(
        num_ranks - 1, at_op=max(1, num_ranks - 1), seed=seed
    )


#: The scenario catalog, keyed by name.
SCENARIOS: Dict[str, FaultScenario] = {
    s.name: s
    for s in (
        FaultScenario(
            "single_crash",
            "last rank dies before contributing anything",
            _single_crash,
        ),
        FaultScenario(
            "double_crash",
            "two last ranks die before contributing",
            _double_crash,
        ),
        FaultScenario(
            "late_crash",
            "one rank dies mid-collective, after some sends are out",
            _late_crash,
        ),
        FaultScenario(
            "rolling_stragglers",
            "a different rank is slow in every collective (round-robin)",
            _rolling_stragglers,
        ),
        FaultScenario(
            "sorted_arrival",
            "Proficz sorted PAP: arrival offset grows linearly with rank",
            _sorted_arrival,
        ),
        FaultScenario(
            "random_arrival",
            "Proficz random PAP: seeded uniform arrival offsets",
            _random_arrival,
        ),
        FaultScenario(
            "partition_heal",
            "two halves cut off from each other until the partition heals",
            _partition_heal,
        ),
        FaultScenario(
            "message_loss",
            f"every message dropped with probability {DEFAULT_LOSS}",
            _message_loss,
        ),
        FaultScenario(
            "crash_then_shrink",
            "last rank dies silently; survivors shrink() to a smaller world",
            _crash_then_shrink,
        ),
        FaultScenario(
            "crash_then_respawn",
            "last rank dies mid-collective; a respawn rejoins and re-converges",
            _crash_then_respawn,
        ),
        FaultScenario(
            "flapping_rank",
            "one rank goes silent for a window, recovers, then dies for good",
            _flapping_rank,
        ),
        FaultScenario(
            "supervised_crash",
            "last rank dies at a later collective's entry; the supervisor "
            "detects, checkpoints and shrinks with no operator calls",
            _supervised_crash,
        ),
    )
}


def scenario_names() -> List[str]:
    """Sorted names of the catalogued scenarios."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> FaultScenario:
    """Look up a scenario by name, with a helpful error."""
    try:
        return SCENARIOS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown fault scenario {name!r}; available: {', '.join(scenario_names())}"
        ) from exc
