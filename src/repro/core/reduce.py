"""Eventually consistent Reduce (paper Section III-B, Figures 9 & 10).

The paper builds Reduce as the inverse of the BST broadcast and proposes
two eventually consistent strategies:

* **data threshold** (:data:`ReduceMode.DATA`, Figure 9) — every child
  contributes only the first ``threshold`` fraction of its vector, so the
  root obtains an exact reduction of a prefix of the data;
* **process threshold** (:data:`ReduceMode.PROCESSES`, Figure 10) — the
  full vector is reduced, but only (at least) a ``threshold`` fraction of
  the processes participate; the leaves farthest from the root stay silent.

The handshake follows the paper and Figure 1: a parent first notifies each
child that its receive slot is valid, the child then ``write_notify``-s its
(partial) contribution into a dedicated slot of the parent's segment, and
the parent acknowledges the completed write so the child may reuse its
buffer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import check_fraction, require
from . import kernels
from .bcast import threshold_elements
from .notifmap import NotificationLayout
from .plan import CollectivePlan
from .reduction_ops import ReductionOp, get_op
from .schedule import CommunicationSchedule, Message, Protocol
from .topology import BinomialTree

#: Default segment id used by the reduce collectives.
REDUCE_SEGMENT_ID = 110

# Notification layout inside the reduce segment (per rank):
#   ready + i   : parent -> i-th child           "your slot is writable"
#   data  + i   : i-th child -> parent           "contribution written"
#   ack         : parent -> child                "write consumed"
# The 64-slot ready/data ranges bound the per-node fan-out (a binomial
# tree over 2**64 ranks — effectively unbounded).
REDUCE_LAYOUT = NotificationLayout()
_NOTIF_READY_BASE = REDUCE_LAYOUT.add("ready", 64).base
_NOTIF_DATA_BASE = REDUCE_LAYOUT.add("data", 64).base
_NOTIF_ACK = REDUCE_LAYOUT.add("ack", 1).id()


class ReduceMode(enum.Enum):
    """Which eventual-consistency strategy a threshold applies to."""

    DATA = "data"
    PROCESSES = "processes"


@dataclass
class ReduceResult:
    """Per-rank status of a reduce call."""

    rank: int
    root: int
    mode: ReduceMode
    threshold: float
    participated: bool
    elements_reduced: int
    contributors: int

    @property
    def is_root(self) -> bool:
        return self.rank == self.root


# --------------------------------------------------------------------------- #
# functional implementation
# --------------------------------------------------------------------------- #
def bst_reduce(
    runtime: GaspiRuntime,
    sendbuf: np.ndarray,
    recvbuf: Optional[np.ndarray] = None,
    root: int = 0,
    op: str | ReductionOp = "sum",
    threshold: float = 1.0,
    mode: ReduceMode | str = ReduceMode.DATA,
    segment_id: int = REDUCE_SEGMENT_ID,
    queue: int = 0,
    timeout: float = GASPI_BLOCK,
    manage_segment: bool = True,
) -> ReduceResult:
    """Binomial-spanning-tree reduction of ``sendbuf`` onto ``root``.

    Parameters
    ----------
    sendbuf:
        This rank's contribution (1-D, same length/dtype everywhere).
    recvbuf:
        On the root, receives the reduction result (only the reduced prefix
        is written in DATA mode).  Ignored on other ranks; may be ``None``.
    op:
        Reduction operator name or :class:`ReductionOp`.
    threshold:
        Fraction in (0, 1]; interpreted according to ``mode``.
    mode:
        ``ReduceMode.DATA`` — reduce only a prefix of the vector;
        ``ReduceMode.PROCESSES`` — reduce the whole vector over a subset of
        processes (paper Figure 10).

    Returns
    -------
    ReduceResult
        Including whether this rank participated and how many contributors
        reached the root.
    """
    sendbuf = np.ascontiguousarray(sendbuf)
    require(sendbuf.ndim == 1 and sendbuf.size > 0, "sendbuf must be a non-empty vector")
    require(0 <= root < runtime.size, f"root {root} outside world of {runtime.size}")
    mode = ReduceMode(mode)
    check_fraction(threshold, "threshold")
    operator = get_op(op)

    tree = BinomialTree(runtime.size, root)
    rank = runtime.rank
    size = runtime.size

    if mode is ReduceMode.DATA:
        reduce_elems = threshold_elements(sendbuf.size, threshold)
        participants = list(range(size))
    else:
        reduce_elems = sendbuf.size
        participants = tree.participating_ranks(threshold)
    reduce_bytes = reduce_elems * sendbuf.itemsize
    participating = rank in participants

    children_all = tree.children(rank)
    children = [c for c in children_all if c in participants]
    parent = tree.parent(rank)

    # Segment layout: slot i (i-th child) at offset i * reduce_bytes.
    slot_count = max(1, len(children_all))
    if manage_segment:
        runtime.segment_create(segment_id, max(slot_count * sendbuf.nbytes, 8))
        runtime.barrier()

    contributors = 1 if participating else 0
    try:
        if participating:
            accumulator = sendbuf[:reduce_elems].astype(sendbuf.dtype, copy=True)

            # Tell every participating child its slot may be overwritten; the
            # child waits on READY at its own segment before pushing data up.
            for child in children:
                runtime.notify(child, segment_id, _NOTIF_READY_BASE, queue=queue)
            if children:
                runtime.wait(queue)

            # Collect contributions from participating children.
            for child in children:
                child_index = children_all.index(child)
                notif = _NOTIF_DATA_BASE + child_index
                got = runtime.notify_waitsome(segment_id, notif, 1, timeout=timeout)
                if got is None:
                    raise TimeoutError(
                        f"rank {rank}: contribution of child {child} never arrived"
                    )
                value = runtime.notify_reset(segment_id, notif)
                contributors += max(1, value) if value else 1
                # Zero-copy fold: the notification guarantees the child's
                # write landed, and each child writes its slot exactly once
                # per call, so reducing straight from the segment is safe.
                kernels.reduce_from_segment(
                    operator,
                    accumulator,
                    runtime,
                    segment_id,
                    offset=child_index * reduce_bytes,
                    count=reduce_elems,
                )
                # Acknowledge so the child can reuse its buffer (Figure 1).
                runtime.notify(child, segment_id, _NOTIF_ACK, queue=queue)
            if children:
                runtime.wait(queue)

            if rank == root:
                if recvbuf is not None:
                    recvbuf = np.asarray(recvbuf)
                    require(
                        recvbuf.size >= reduce_elems,
                        "recvbuf too small for the reduced prefix",
                    )
                    recvbuf[:reduce_elems] = accumulator
            else:
                # Wait until the parent declared our slot writable, then push
                # the partial reduction up and wait for the acknowledgement.
                got = runtime.notify_waitsome(
                    segment_id, _NOTIF_READY_BASE, 1, timeout=timeout
                )
                if got is None:
                    raise TimeoutError(f"rank {rank}: parent {parent} never got ready")
                runtime.notify_reset(segment_id, _NOTIF_READY_BASE)

                my_index = tree.children(parent).index(rank)
                staging = runtime.segment_view(
                    segment_id, dtype=sendbuf.dtype, count=reduce_elems
                )
                staging[:] = accumulator
                runtime.write_notify(
                    segment_id_local=segment_id,
                    offset_local=0,
                    target_rank=parent,
                    segment_id_remote=segment_id,
                    offset_remote=my_index * reduce_bytes,
                    size=reduce_bytes,
                    notification_id=_NOTIF_DATA_BASE + my_index,
                    notification_value=max(1, contributors),
                    queue=queue,
                )
                runtime.wait(queue)
                got = runtime.notify_waitsome(segment_id, _NOTIF_ACK, 1, timeout=timeout)
                if got is None:
                    raise TimeoutError(f"rank {rank}: parent {parent} never acknowledged")
                runtime.notify_reset(segment_id, _NOTIF_ACK)
    finally:
        if manage_segment:
            runtime.barrier()
            runtime.segment_delete(segment_id)

    return ReduceResult(
        rank=rank,
        root=root,
        mode=mode,
        threshold=threshold,
        participated=participating,
        elements_reduced=reduce_elems if participating else 0,
        contributors=contributors if rank == root else 0,
    )


# --------------------------------------------------------------------------- #
# compiled plan (persistent workspace, zero per-call setup)
# --------------------------------------------------------------------------- #
class BstReducePlan(CollectivePlan):
    """Compiled BST reduce: frozen tree/participants, pooled child slots.

    The cold protocol's ready/data/ack handshake is already
    self-synchronising across calls: a child pushes call ``k+1`` data only
    after its parent's ``k+1`` READY, which the parent sends only after it
    consumed *all* of its call-``k`` child slots; and a parent overwrites
    nothing at the child (READY and ACK are pure notifications).  So the
    planned executor runs the identical handshake — it merely skips the
    per-call segment registration, the two barriers around it, and all
    topology/threshold recomputation.
    """

    def __init__(self, runtime, key, segment_id: int, policy) -> None:
        super().__init__(runtime, key, segment_id)
        self.dtype = np.dtype(key.dtype)
        self.elements = key.nbytes // self.dtype.itemsize
        self.mode = ReduceMode(policy.mode)
        self.tree = BinomialTree(runtime.size, key.root)
        rank = runtime.rank
        if self.mode is ReduceMode.DATA:
            self.reduce_elems = threshold_elements(self.elements, policy.threshold)
            participants = list(range(runtime.size))
        else:
            self.reduce_elems = self.elements
            participants = self.tree.participating_ranks(policy.threshold)
        self.reduce_bytes = self.reduce_elems * self.dtype.itemsize
        self.participants = participants
        self.participating = rank in participants
        self.children_all = self.tree.children(rank)
        self.children = [c for c in self.children_all if c in participants]
        self.child_indices = [self.children_all.index(c) for c in self.children]
        self.parent = self.tree.parent(rank)
        self.my_index = (
            None
            if self.parent is None
            else self.tree.children(self.parent).index(rank)
        )
        slot_count = max(1, len(self.children_all))
        self._create_workspace(slot_count * key.nbytes)
        # Frozen zero-copy views: one staging slot for the push-up, one
        # receive slot per child for the folds.
        self._staging = runtime.segment_view(
            segment_id, dtype=self.dtype, count=self.reduce_elems
        )
        self._child_slots = [
            runtime.segment_view(
                segment_id,
                dtype=self.dtype,
                offset=index * self.reduce_bytes,
                count=self.reduce_elems,
            )
            for index in self.child_indices
        ]

    def execute(self, request) -> "CollectiveResult":
        from .policy import CollectiveResult

        sendbuf = self._check_payload(np.asarray(request.sendbuf), "reduce sendbuf")
        require(
            sendbuf.ndim == 1 and sendbuf.flags["C_CONTIGUOUS"],
            "reduce sendbuf must be a contiguous vector",
        )
        operator = get_op(request.op)
        rt = self.runtime
        rank = rt.rank
        root = self.key.root
        sid = self.segment_id
        queue = request.queue
        timeout = request.timeout
        reduce_elems = self.reduce_elems
        recvbuf = request.recvbuf

        contributors = 1 if self.participating else 0
        if self.participating:
            accumulator = sendbuf[:reduce_elems].astype(self.dtype, copy=True)

            for child in self.children:
                rt.notify(child, sid, _NOTIF_READY_BASE, queue=queue)
            if self.children:
                rt.wait(queue)

            for child, child_index, slot in zip(
                self.children, self.child_indices, self._child_slots
            ):
                notif = _NOTIF_DATA_BASE + child_index
                got = rt.notify_waitsome(sid, notif, 1, timeout=timeout)
                if got is None:
                    raise TimeoutError(
                        f"rank {rank}: contribution of child {child} never arrived"
                    )
                value = rt.notify_reset(sid, notif)
                contributors += max(1, value) if value else 1
                kernels.reduce_into(operator, accumulator, slot)
                rt.notify(child, sid, _NOTIF_ACK, queue=queue)
            if self.children:
                rt.wait(queue)

            if rank == root:
                if recvbuf is not None:
                    recvbuf = np.asarray(recvbuf)
                    require(
                        recvbuf.size >= reduce_elems,
                        "recvbuf too small for the reduced prefix",
                    )
                    recvbuf[:reduce_elems] = accumulator
            else:
                got = rt.notify_waitsome(sid, _NOTIF_READY_BASE, 1, timeout=timeout)
                if got is None:
                    raise TimeoutError(
                        f"rank {rank}: parent {self.parent} never got ready"
                    )
                rt.notify_reset(sid, _NOTIF_READY_BASE)
                self._staging[:] = accumulator
                rt.write_notify(
                    segment_id_local=sid,
                    offset_local=0,
                    target_rank=self.parent,
                    segment_id_remote=sid,
                    offset_remote=self.my_index * self.reduce_bytes,
                    size=self.reduce_bytes,
                    notification_id=_NOTIF_DATA_BASE + self.my_index,
                    notification_value=max(1, contributors),
                    queue=queue,
                )
                rt.wait(queue)
                got = rt.notify_waitsome(sid, _NOTIF_ACK, 1, timeout=timeout)
                if got is None:
                    raise TimeoutError(
                        f"rank {rank}: parent {self.parent} never acknowledged"
                    )
                rt.notify_reset(sid, _NOTIF_ACK)

        self.calls += 1
        detail = ReduceResult(
            rank=rank,
            root=root,
            mode=self.mode,
            threshold=self.key.policy[0],
            participated=self.participating,
            elements_reduced=reduce_elems if self.participating else 0,
            contributors=contributors if rank == root else 0,
        )
        return CollectiveResult(value=request.recvbuf, detail=detail)


# --------------------------------------------------------------------------- #
# schedule builders (Figures 9 and 10)
# --------------------------------------------------------------------------- #
def bst_reduce_schedule(
    num_ranks: int,
    nbytes: int,
    threshold: float = 1.0,
    mode: ReduceMode | str = ReduceMode.DATA,
    root: int = 0,
    protocol: Protocol = Protocol.ONESIDED,
    include_handshake: bool = True,
    name: str | None = None,
) -> CommunicationSchedule:
    """Schedule of the BST reduce for the timing simulator.

    Children from the deepest stage send first; a parent that itself joins
    at stage ``s`` forwards its partial result in the round of stage ``s``.
    The zero-byte ready/ack handshake is modelled by one extra round before
    and after the data movement when ``include_handshake`` is true.
    """
    mode = ReduceMode(mode)
    check_fraction(threshold, "threshold")
    require(nbytes >= 0, "nbytes must be non-negative")
    tree = BinomialTree(num_ranks, root)

    if mode is ReduceMode.DATA:
        send_bytes = max(1, int(nbytes * threshold)) if nbytes else 0
        participants = set(range(num_ranks))
        label = f"gaspi_reduce_bst[data {int(threshold * 100)}%]"
    else:
        send_bytes = nbytes
        participants = set(tree.participating_ranks(threshold))
        label = f"gaspi_reduce_bst[procs {int(threshold * 100)}%]"

    sched = CommunicationSchedule(
        name=name or label,
        num_ranks=num_ranks,
        metadata={
            "threshold": threshold,
            "mode": mode.value,
            "payload_bytes": nbytes,
            "shipped_bytes": send_bytes,
            "participants": len(participants),
            "algorithm": "binomial_spanning_tree",
        },
    )

    if include_handshake and num_ranks > 1:
        ready = [
            Message(src=tree.parent(child), dst=child, nbytes=0, protocol=protocol, tag="ready")
            for child in range(num_ranks)
            if child in participants
            and tree.parent(child) is not None
            and tree.parent(child) in participants
        ]
        if ready:
            sched.add_round(ready, label="ready")

    stages = tree.ranks_by_stage()
    for stage in sorted((s for s in stages if s > 0), reverse=True):
        messages: List[Message] = []
        for child in stages[stage]:
            parent = tree.parent(child)
            if child in participants and parent in participants:
                messages.append(
                    Message(
                        src=child,
                        dst=parent,
                        nbytes=send_bytes,
                        protocol=protocol,
                        reduce_bytes=send_bytes,
                        tag=f"reduce-stage-{stage}",
                    )
                )
        if messages:
            sched.add_round(messages, label=f"stage-{stage}")

    if include_handshake and num_ranks > 1:
        acks = [
            Message(src=tree.parent(child), dst=child, nbytes=0, protocol=protocol, tag="ack")
            for child in range(num_ranks)
            if child in participants
            and tree.parent(child) is not None
            and tree.parent(child) in participants
        ]
        if acks:
            sched.add_round(acks, label="ack")

    sched.validate()
    return sched
