"""High-level user-facing API: the policy-driven :class:`Communicator`.

A :class:`Communicator` wraps one rank's GASPI runtime and exposes the
paper's collectives with an mpi4py-flavoured interface.  Three ideas make
up the v2 API:

1. **Consistency policies.**  The paper's consistency dial — data
   thresholds, process thresholds, SSP slack — is a first-class value
   object, :class:`~repro.core.policy.ConsistencyPolicy`, accepted by
   every collective (and settable as the communicator default) instead of
   loose per-call kwargs::

       from repro import run_spmd, Communicator, ConsistencyPolicy

       def worker(runtime):
           comm = Communicator(runtime)
           data = np.full(1_000, comm.rank, dtype=np.float64)
           total = comm.allreduce(data, op="sum")              # strict
           comm.bcast(data, root=0,
                      policy=ConsistencyPolicy.data_threshold(0.25))
           return total

       results = run_spmd(8, worker)

2. **Registry-routed execution.**  Every collective resolves its
   algorithm through :data:`~repro.core.registry.REGISTRY`; the default
   ``algorithm="auto"`` consults a tuning table
   (:mod:`repro.core.tuning`) that picks latency-optimal algorithms for
   small payloads and bandwidth-optimal ones for large payloads, exactly
   as Intel MPI's ``I_MPI_ADJUST_*`` tables do.  The resolved name is
   recorded on the returned :class:`~repro.core.policy.CollectiveResult`
   and on :attr:`Communicator.last_result`.

3. **Sub-communicators.**  :meth:`Communicator.split` and
   :meth:`Communicator.dup` carve rank subsets out of a communicator
   (built on group-scoped runtimes with disjoint segment-id ranges), so
   workloads can run collectives on rank subsets — and, when a machine
   model is attached (``machine=``), every collective additionally
   replays its registered schedule on the simulator
   (:mod:`repro.simulate.executor`) and reports the simulated time.

The legacy loose kwargs (``threshold=``, ``mode=``, ``slack=``) are still
accepted as thin deprecation shims and fold into a policy object.
"""

from __future__ import annotations

import time
import warnings
import weakref
from dataclasses import replace as dataclass_replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.errors import GaspiError
from ..gaspi.group import Group
from ..gaspi.runtime import GaspiRuntime
from ..gaspi.subruntime import GroupRuntime
from ..telemetry.core import CLOCK, NULL_TELEMETRY, Telemetry
from ..utils.logging import get_logger
from ..utils.validation import require
from .allgather import ring_allgather
from .allreduce_ssp import SSPAllreduce, SSPAllreduceResult
from .pipeline import CollectiveHandle, ProgressEngine
from .plan import CollectivePlan, PlanCache, PlanCacheStats, PlanKey
from .policy import (
    STRICT,
    CollectiveRequest,
    CollectiveResult,
    ConsistencyPolicy,
    check_policy,
    coerce_policy,
)
from .reduce import ReduceMode
from .reduction_ops import ReductionOp
from .registry import REGISTRY, AlgorithmInfo, AlgorithmRegistry
from .tuning import DEFAULT_TABLES, TuningTable

#: First segment id handed out by a communicator with ``segment_base=0``.
_SEGMENT_BASE_DEFAULT = 200

#: Width of the segment-id range a default communicator owns.  The lower
#: half serves this communicator's own collectives; the upper half is
#: partitioned among its sub-communicators.
_SEGMENT_SPAN_DEFAULT = 1 << 30

#: Maximum number of ``split()``/``dup()`` calls per communicator: each
#: consumes one child slice of the upper half of the segment-id range.
_MAX_CHILD_SPLITS = 16

#: Degraded-collective workspaces kept open for correction; older handles
#: are closed so a persistent failure cannot grow memory without bound.
_MAX_OPEN_DEGRADED = 8

#: Compiled collective plans kept in the LRU cache; like the degraded
#: workspace cap, this bounds the pooled segments a communicator can hold
#: open — a workload that never repeats a shape evicts (and frees) the
#: oldest plan instead of growing without limit.
_MAX_CACHED_PLANS = 16

logger = get_logger("core.api")

#: Shorthand algorithm aliases kept from the v1 API, per collective.
_ALGORITHM_ALIASES: Dict[str, Dict[str, str]] = {
    "allreduce": {
        "ring": "gaspi_allreduce_ring",
        "hypercube": "gaspi_allreduce_ssp_hypercube",
        "ssp_hypercube": "gaspi_allreduce_ssp_hypercube",
        "tolerant": "gaspi_allreduce_tolerant",
    },
    "bcast": {
        "bst": "gaspi_bcast_bst",
        "flat": "gaspi_bcast_flat",
        "tolerant": "gaspi_bcast_tolerant",
    },
    "reduce": {"bst": "gaspi_reduce_bst", "tolerant": "gaspi_reduce_tolerant"},
    "alltoall": {"direct": "gaspi_alltoall"},
    "allgather": {"ring": "gaspi_allgather_ring"},
    "barrier": {"dissemination": "gaspi_barrier_dissemination"},
}


def _deprecated_kwarg(name: str, replacement: str) -> None:
    warnings.warn(
        f"the {name}= kwarg is deprecated; pass {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class Communicator:
    """Per-rank facade over the collective library.

    Parameters
    ----------
    runtime:
        The rank's :class:`~repro.gaspi.runtime.GaspiRuntime` (or a
        :class:`~repro.gaspi.subruntime.GroupRuntime` view of one).
    segment_base:
        First segment id this communicator may use.  Two communicators
        living on the same world must use disjoint ranges; every rank must
        construct its communicators in the same order with the same bases.
    policy:
        Default :class:`ConsistencyPolicy` for collectives called without
        an explicit one (strict by default).
    tuning:
        :class:`~repro.core.tuning.TuningTable` backing
        ``algorithm="auto"`` (the family default table when ``None``).
    machine:
        Optional :class:`~repro.simulate.machine.MachineModel`.  When set,
        every dispatched collective also replays its registered schedule
        on the simulator and attaches the
        :class:`~repro.simulate.executor.SimulationResult` to the result
        (the "simulator backend": one dispatch path serves correctness
        runs and figure regeneration).
    family:
        Algorithm family ``auto`` selects from (``"gaspi"`` by default).
    registry:
        Algorithm registry to dispatch through (the global one by default).
    faults:
        Optional :class:`~repro.faults.injection.FaultPlan`.  The runtime
        is wrapped in a fault-injecting
        :class:`~repro.faults.injection.FaultyRuntime`, the plan's arrival
        skew is applied at every collective entry, ``algorithm="auto"``
        prefers registered ``fault_tolerant`` algorithms, ranks reported
        missing are remembered (:attr:`suspected_ranks`) and skipped by
        subsequent fault-tolerant collectives, and the simulator backend
        replays the degraded schedule with the plan's arrival offsets.
    detect_timeout:
        Failure-detection window (seconds) handed to fault-tolerant
        collectives (their module default when ``None``).
    plan_cache:
        Capacity of the compiled-plan LRU cache (``0`` disables planning
        entirely, forcing every call down the cold path).  Repeated calls
        with the same shape — ``(collective, algorithm, size, root,
        nbytes, dtype, op, policy)`` — are served by a compiled
        :class:`~repro.core.plan.CollectivePlan`: frozen topology and
        notification layout, a pooled workspace segment and a cached
        simulator schedule, so the steady-state cost is the data movement
        and the reduction kernels only.  Observe it through
        :meth:`plan_cache_stats`; pin plans explicitly with
        :meth:`persistent`.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` registry.  The
        runtime is wrapped in a
        :class:`~repro.telemetry.TelemetryRuntime` (outermost, outside
        any fault layer) and every dispatch records a span plus latency,
        plan-cache, and traffic metrics into the registry.  Off by
        default: without a registry the instrumentation points hit shared
        no-op instruments.  See the README's "Observability" section.
    """

    def __init__(
        self,
        runtime: GaspiRuntime,
        segment_base: int = _SEGMENT_BASE_DEFAULT,
        *,
        policy: Optional[ConsistencyPolicy] = None,
        tuning: Optional[TuningTable] = None,
        machine=None,
        family: str = "gaspi",
        registry: Optional[AlgorithmRegistry] = None,
        segment_span: int = _SEGMENT_SPAN_DEFAULT,
        faults=None,
        detect_timeout: Optional[float] = None,
        plan_cache: int = _MAX_CACHED_PLANS,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if faults is not None:
            from ..faults.injection import FaultyRuntime

            runtime = FaultyRuntime(runtime, faults)
        if telemetry is not None and getattr(runtime, "telemetry", None) is not telemetry:
            # Telemetry wraps outermost (outside any fault layer) so posts
            # a fault plan swallows still count as attempted.  A runtime
            # already carrying this registry — a GroupRuntime over an
            # instrumented parent — is left alone so child collectives are
            # not counted twice.
            runtime = runtime.instrumented(telemetry)
        require(
            detect_timeout is None or detect_timeout > 0,
            f"detect_timeout must be positive, got {detect_timeout!r}",
        )
        self.runtime = runtime
        self._segment_base = int(segment_base)
        self._segment_span = int(segment_span)
        self._next_segment = int(segment_base)
        self._policy = policy or STRICT
        check_policy(self._policy)
        require(
            tuning is not None or family in DEFAULT_TABLES,
            f"unknown tuning family {family!r} (available: "
            f"{sorted(DEFAULT_TABLES)}); pass an explicit tuning= table to "
            f"use a custom family",
        )
        self._family = family
        self._registry = registry if registry is not None else REGISTRY
        self._tuning = tuning or DEFAULT_TABLES[family]
        self._machine = machine
        self._faults = faults
        self._detect_timeout = detect_timeout
        self._suspected: Set[int] = set()
        self._open_degraded: List = []
        self._collective_seq = 0
        self._ssp_instances: Dict[int, SSPAllreduce] = {}
        self._split_count = 0
        #: Live child communicators from split()/dup(), as (weakref, members)
        #: pairs, so reinstate() can propagate into their suspicion maps.
        self._children: List[tuple] = []
        #: For a shrink() child: child rank -> parent-communicator rank.
        #: None for a world that was not born from a shrink.
        self._parent_ranks: Optional[Tuple[int, ...]] = None
        #: Observers fired after every completed blocking collective — the
        #: "consistent boundary" hook the recovery supervisor drives its
        #: checkpoint/shrink escalation from.
        self._boundary_hooks: List[Callable[["Communicator"], None]] = []
        self._in_boundary_hook = False
        self._last_result: Optional[CollectiveResult] = None
        self._last_segment_id: Optional[int] = None
        self._plans = PlanCache(plan_cache)
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._telemetry = tel
        # Instrument handles resolved once; with telemetry disabled these
        # are shared no-ops, so the hot path pays one method call each.
        self._c_calls = tel.counter("collective.calls")
        self._c_errors = tel.counter("collective.errors")
        self._c_degraded = tel.counter("collective.degraded")
        self._c_nonblocking = tel.counter("collective.nonblocking")
        self._h_latency = tel.histogram("collective.latency_s")
        self._c_cache_hits = tel.counter("plan_cache.hits")
        self._c_cache_misses = tel.counter("plan_cache.misses")
        self._c_cache_evictions = tel.counter("plan_cache.evictions")
        self._progress = ProgressEngine(self.runtime, telemetry=tel)
        self._resolve_cache: Dict[tuple, AlgorithmInfo] = {}

    # ------------------------------------------------------------------ #
    # backend-selected launching
    # ------------------------------------------------------------------ #
    @classmethod
    def run(
        cls,
        num_ranks: int,
        worker,
        *,
        backend: str = "threaded",
        timeout: Optional[float] = 120.0,
        **comm_kwargs,
    ) -> list:
        """Launch a rank world on ``backend`` and run ``worker(comm)`` per rank.

        The one-call form of backend selection: picks the substrate
        (``"threaded"`` — thread-per-rank, or ``"shm"`` — process-per-rank
        over POSIX shared memory, true parallelism), builds one
        communicator per rank with ``comm_kwargs`` (``policy=``,
        ``faults=``, ``plan_cache=``, ...), and closes it after the
        worker returns.  Returns the per-rank results, indexed by rank::

            totals = Communicator.run(8, lambda comm:
                comm.allreduce(np.ones(1 << 20)), backend="shm")
        """
        from ..gaspi.launch import run_backend

        def entry(runtime):
            comm = cls(runtime, **comm_kwargs)
            try:
                return worker(comm)
            finally:
                comm.close()

        return run_backend(num_ranks, entry, backend=backend, timeout=timeout)

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self.runtime.rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.runtime.size

    @property
    def policy(self) -> ConsistencyPolicy:
        """The default consistency policy of this communicator."""
        return self._policy

    @property
    def tuning(self) -> TuningTable:
        """The tuning table backing ``algorithm="auto"``."""
        return self._tuning

    @property
    def machine(self):
        """The attached machine model (``None`` on pure threaded runs)."""
        return self._machine

    @property
    def last_result(self) -> Optional[CollectiveResult]:
        """Full result of the most recent dispatched collective."""
        return self._last_result

    @property
    def last_segment_id(self) -> Optional[int]:
        """Workspace segment id of the most recent dispatched collective.

        A recovered rank needs it to push a late contribution into the
        degraded exchange it crashed out of
        (:func:`~repro.faults.recovery.send_late_contribution`): segment
        ids are allocated in SPMD lock-step, so every rank — including one
        whose dispatch raised mid-collective — observes the same id here.
        """
        return self._last_segment_id

    @property
    def faults(self):
        """The attached fault plan (``None`` on unperturbed runs)."""
        return self._faults

    @property
    def telemetry(self) -> Telemetry:
        """The attached telemetry registry (a shared no-op when disabled)."""
        return self._telemetry

    @property
    def suspected_ranks(self) -> frozenset:
        """Ranks a fault-tolerant collective has reported missing.

        Subsequent fault-tolerant collectives neither write to nor wait
        for them; :meth:`reinstate` clears entries once a rank recovered.
        """
        return frozenset(self._suspected)

    @property
    def parent_ranks(self) -> Optional[Tuple[int, ...]]:
        """For a :meth:`shrink` child: child rank -> parent rank, in order.

        The agreement round may remove *more* ranks than the caller's
        ``failed`` set (absent voters join the removal), so this is the
        authoritative survivor mapping.  ``None`` for a communicator not
        born from a shrink.
        """
        return self._parent_ranks

    def suspect(self, *ranks: int) -> None:
        """Start suspecting ranks before any collective timed them out.

        The entry point for an external failure detector
        (:class:`repro.health.HeartbeatDetector`): a suspected rank is
        neither written to nor waited for by the fault-tolerant
        collectives, so suspicion fed in here removes the per-call
        detection-timeout wait entirely.  Propagates into child
        communicators like the collective-driven suspicion does;
        :meth:`reinstate` clears it again.
        """
        added: List[int] = []
        for rank in ranks:
            rank = int(rank)
            if rank == self.rank or not (0 <= rank < self.size):
                continue
            if rank not in self._suspected:
                logger.info("rank %d: suspecting rank %d", self.rank, rank)
                self._suspected.add(rank)
                added.append(rank)
        if added and self._children:
            live: List[tuple] = []
            for ref, members in self._children:
                child = ref()
                if child is None:
                    continue
                live.append((ref, members))
                translated = [members.index(r) for r in added if r in members]
                if translated:
                    child.suspect(*translated)
            self._children = live

    def add_boundary_hook(
        self, hook: Callable[["Communicator"], None]
    ) -> Callable[["Communicator"], None]:
        """Fire ``hook(self)`` after every completed blocking collective.

        Collective boundaries are the only points where every rank's
        state is mutually consistent (Xu & Cooperman's collective-clock
        argument), which makes them the safe trigger for checkpoint and
        shrink decisions.  Hooks run on the dispatching thread, after the
        result is published to :attr:`last_result`; a hook that itself
        dispatches collectives (a recovery action) is not re-entered.
        Returns the hook so callers can :meth:`remove_boundary_hook` it.
        """
        self._boundary_hooks.append(hook)
        return hook

    def remove_boundary_hook(
        self, hook: Callable[["Communicator"], None]
    ) -> None:
        """Detach a boundary hook (no-op when absent)."""
        try:
            self._boundary_hooks.remove(hook)
        except ValueError:
            pass

    def _fire_boundary_hooks(self) -> None:
        if not self._boundary_hooks or self._in_boundary_hook:
            return
        self._in_boundary_hook = True
        try:
            for hook in list(self._boundary_hooks):
                hook(self)
        finally:
            self._in_boundary_hook = False

    def reinstate(self, *ranks: int) -> None:
        """Stop suspecting ranks (collective hygiene, call it on all ranks).

        Use after a crashed rank recovered and its late contribution was
        folded in, so the next collectives include it again.  Propagates
        into the suspicion maps of child communicators created by
        :meth:`split`/:meth:`dup` before the reinstate — a recovered rank
        must not stay excluded from sub-communicator collectives.
        """
        cleared: List[int] = []
        for rank in ranks:
            rank = int(rank)
            if rank in self._suspected:
                logger.info("rank %d: reinstating rank %d", self.rank, rank)
            self._suspected.discard(rank)
            cleared.append(rank)
        if cleared and self._children:
            self._propagate_reinstate(cleared)

    def _propagate_reinstate(self, ranks: Iterable[int]) -> None:
        """Clear reinstated ranks from live children (in child numbering).

        Children track their own children, so the clear recurses through
        the whole sub-communicator tree; dead weakrefs are pruned along
        the way.
        """
        live: List[tuple] = []
        for ref, members in self._children:
            child = ref()
            if child is None:
                continue
            live.append((ref, members))
            translated = [
                members.index(r) for r in ranks if r in members
            ]
            if translated:
                child.reinstate(*translated)
        self._children = live

    @property
    def is_subcommunicator(self) -> bool:
        """True when this communicator covers a strict rank subset."""
        return isinstance(self.runtime, GroupRuntime)

    def _allocate_segment_id(self) -> int:
        """Next unused segment id.

        All ranks allocate in lock-step because they execute the same
        sequence of collective calls (the usual SPMD contract).
        """
        sid = self._next_segment
        require(
            sid < self._segment_base + self._segment_span // 2,
            f"communicator exhausted its segment-id range "
            f"[{self._segment_base}, {self._segment_base + self._segment_span // 2})",
        )
        self._next_segment += 1
        return sid

    # ------------------------------------------------------------------ #
    # algorithm resolution and dispatch
    # ------------------------------------------------------------------ #
    def resolve(
        self,
        collective: str,
        nbytes: int = 0,
        algorithm: str = "auto",
        policy: Optional[ConsistencyPolicy] = None,
    ) -> AlgorithmInfo:
        """Resolve which registered algorithm a call would execute.

        ``algorithm="auto"`` consults the tuning table with this
        communicator's size; explicit names accept full registry names
        ("gaspi_allreduce_ring") or the short v1 aliases ("ring").
        Raises :class:`ValueError` for unknown or mismatched names.

        Resolution is memoized per (collective, algorithm, size, policy,
        fault state): selection re-runs the tuning-table scan with its
        capability checks on every dispatch otherwise, which is pure
        overhead at plan-cached call rates.  The fault-state component
        keeps the cache exact — suspicion or injected faults reroute to
        tolerant algorithms, so those states key separately.
        """
        policy = policy or self._policy
        memo_key = (
            collective,
            algorithm,
            int(nbytes),
            policy,
            bool(self._suspected),
            self.runtime.fault_injected,
            self._faults is not None and self._faults.can_lose_contributions,
        )
        cached = self._resolve_cache.get(memo_key)
        if cached is not None:
            return cached
        info = self._resolve_uncached(collective, nbytes, algorithm, policy)
        self._resolve_cache[memo_key] = info
        return info

    def _resolve_uncached(
        self,
        collective: str,
        nbytes: int,
        algorithm: str,
        policy: ConsistencyPolicy,
    ) -> AlgorithmInfo:
        if algorithm in (None, "auto"):
            if (
                (self._faults is not None and self._faults.can_lose_contributions)
                or self.runtime.fault_injected
                or policy.on_failure != "abort"
            ):
                info = self._fault_tolerant_candidate(collective, policy)
                if info is not None:
                    return info
            return self._tuning.select(
                collective,
                self.size,
                nbytes,
                policy=policy,
                registry=self._registry,
                executable=True,
            )
        name = str(algorithm)
        candidates = [
            name,
            _ALGORITHM_ALIASES.get(collective, {}).get(name, ""),
            f"{self._family}_{collective}_{name}",
        ]
        for candidate in candidates:
            if candidate and candidate in self._registry:
                info = self._registry.get(candidate)
                require(
                    info.collective == collective,
                    f"algorithm {candidate!r} implements {info.collective!r}, "
                    f"not {collective!r}",
                )
                return info
        known = self._registry.names(collective=collective)
        raise ValueError(
            f"unknown {collective} algorithm {algorithm!r}; registered: "
            f"{', '.join(known) or '<none>'} (or 'auto')"
        )

    def _fault_tolerant_candidate(
        self, collective: str, policy: ConsistencyPolicy
    ) -> Optional[AlgorithmInfo]:
        """First registered fault-tolerant algorithm serving this request.

        Consulted by ``algorithm="auto"`` when a fault plan is attached or
        the policy asks for degraded completion; ``None`` (fall back to
        the tuning table) when no tolerant implementation fits.
        """
        for name in self._registry.names(collective=collective, executable=True):
            info = self._registry.get(name)
            if not info.capabilities.fault_tolerant:
                continue
            supported, _ = info.supports(self.size, policy)
            if supported:
                return info
        return None

    def _track_degraded(self, detail) -> None:
        """Remember a correction-capable workspace for eventual cleanup.

        A persistent failure would otherwise grow one workspace segment
        per degraded collective; the oldest handles are closed beyond a
        small window — correcting a long-superseded collective is not a
        supported pattern, re-running it is.
        """
        if not getattr(detail, "correctable", False):
            return
        self._open_degraded.append(detail)
        while len(self._open_degraded) > _MAX_OPEN_DEGRADED:
            self._open_degraded.pop(0).close()

    def _schedule_nbytes(self, collective: str, request: CollectiveRequest) -> int:
        """Payload size the schedule builders expect for this collective."""
        if collective == "alltoall":
            return request.nbytes // max(self.size, 1)
        return request.nbytes

    # ------------------------------------------------------------------ #
    # compiled plans
    # ------------------------------------------------------------------ #
    def _plan_for(
        self, info: AlgorithmInfo, request: CollectiveRequest
    ) -> Optional[CollectivePlan]:
        """Cached (or freshly compiled) plan serving this request, or ``None``.

        ``None`` routes the call down the cold path: planning disabled
        (capacity 0), an unplannable algorithm, a loss-capable fault plan
        (degraded completions must keep their per-call correction
        workspaces), suspected ranks in play, or SSP slack (whose
        cross-call staleness semantics belong to the explicit
        :meth:`allreduce_ssp` state, not a transparent cache).

        Cache state evolves in SPMD lock-step — every rank dispatches the
        same sequence with the same keys — so hits, builds and evictions
        agree on all ranks and the collective plan construction pairs up.
        """
        if self._plans.capacity == 0 or not info.plannable:
            return None
        if request.policy.slack > 0:
            return None
        if request.metadata.get("known_failed"):
            return None
        if self.runtime.fault_injected:
            # A loss-capable fault plan is attached somewhere in the runtime
            # stack (the wrapper advertises exactly can_lose_contributions).
            return None
        key = PlanKey.from_request(info, self.runtime, request)
        if key is None:
            return None
        plan = self._plans.get(key)
        if plan is None:
            self._c_cache_misses.add()
            plan = info.plan(
                self.runtime, key, self._allocate_segment_id(), request.policy
            )
            evicted = self._plans.put(key, plan)
            if evicted:
                self._c_cache_evictions.add(len(evicted))
                logger.debug(
                    "rank %d: plan cache evicted %d plan(s) compiling "
                    "%s/%s (capacity %d)",
                    self.rank, len(evicted), info.collective, info.name,
                    self._plans.capacity,
                )
                # Deferred-consumption notifications of an evicted plan (the
                # bcast consume-acks) may still be in flight from a rank
                # that is a step behind; evictions happen at the same
                # dispatch on every rank, so one barrier drains them before
                # the pooled segments are freed.
                self._quiesce_plans()
                for old in evicted:
                    old.close()
        else:
            self._c_cache_hits.add()
        return plan

    def _quiesce_plans(
        self, group: Optional[Group] = None, timeout: float = GASPI_BLOCK
    ) -> None:
        """Synchronise ranks before freeing pooled plan segments.

        Best effort: a runtime that can no longer synchronise (a fault
        plan crashed this rank, a peer died mid-run) must not turn
        teardown into a hang — the subsequent segment deletes tolerate
        whatever the missing synchronisation leaves behind.  ``group``
        restricts the barrier to a survivor subset (elastic shrink), and
        a finite ``timeout`` bounds the wait when some of them may be
        gone too.
        """
        try:
            self.runtime.barrier(group, timeout=timeout)
        except GaspiError:
            pass

    def plan_cache_stats(self) -> PlanCacheStats:
        """Hit/miss/eviction counters of the compiled-plan cache."""
        return self._plans.stats()

    def _dispatch(
        self, collective: str, algorithm: str, request: CollectiveRequest
    ) -> CollectiveResult:
        """Route one collective through the registry (and the simulator).

        With telemetry attached, the dispatch is recorded as one span per
        call (algorithm, payload bytes, plan-cache outcome, degraded
        outcome with ``missing_ranks``) plus a latency histogram sample;
        without it, one attribute check routes straight to the
        uninstrumented implementation.
        """
        tel = self._telemetry
        if not tel.enabled:
            result = self._dispatch_impl(collective, algorithm, request)
            self._fire_boundary_hooks()
            return result
        self._c_calls.add()
        hits0 = self._plans._hits
        misses0 = self._plans._misses
        t0 = CLOCK()
        with tel.span(collective, cat="collective", nbytes=request.nbytes) as span:
            try:
                result = self._dispatch_impl(collective, algorithm, request)
            except Exception as exc:
                self._c_errors.add()
                span.set(outcome="error", error=type(exc).__name__)
                raise
            if self._plans._hits > hits0:
                cache = "hit"
            elif self._plans._misses > misses0:
                cache = "miss"
            else:
                cache = "bypass"
            span.set(algorithm=result.algorithm, plan_cache=cache)
            if result.missing_ranks:
                self._c_degraded.add()
                span.set(
                    outcome="degraded",
                    missing_ranks=sorted(result.missing_ranks),
                )
            else:
                span.set(outcome="ok")
        self._h_latency.observe(CLOCK() - t0)
        self._fire_boundary_hooks()
        return result

    def _dispatch_impl(
        self, collective: str, algorithm: str, request: CollectiveRequest
    ) -> CollectiveResult:
        check_policy(request.policy)
        seq = self._collective_seq
        self._collective_seq += 1
        if self._faults is not None:
            # Arrival skew: the rank enters the collective late, which is
            # the process-arrival-pattern regime of the fault scenarios.
            pause = self._faults.arrival_skew(self.rank, seq)
            if pause > 0.0:
                time.sleep(pause)
        if self._suspected:
            request.metadata.setdefault("known_failed", frozenset(self._suspected))
        if self._detect_timeout is not None:
            request.metadata.setdefault("detect_timeout", self._detect_timeout)
        nbytes = self._schedule_nbytes(collective, request)
        info = self.resolve(collective, nbytes, algorithm, request.policy)
        plan = self._plan_for(info, request)
        if plan is not None:
            if self._progress.active:
                # A nonblocking handle may still be driving this plan; a
                # blocking call must not race it on the plan's workspace
                # and notification ids (both would consume the other's
                # arrivals and deadlock).
                self._progress.wait_plan(plan, request.timeout)
            request.segment_id = plan.segment_id
        else:
            request.segment_id = self._allocate_segment_id()
        self._last_segment_id = request.segment_id
        try:
            result = info.run(self.runtime, request, plan=plan)
        except Exception as exc:
            # A below-threshold abort still leaves a correction-capable
            # workspace behind; track it so close() can release it even if
            # the caller never touches exc.detail.
            self._track_degraded(getattr(exc, "detail", None))
            raise
        if result.missing_ranks:
            newly = set(result.missing_ranks) - self._suspected
            if newly:
                logger.info(
                    "rank %d: %s completed degraded, now suspecting ranks %s",
                    self.rank, collective, sorted(newly),
                )
            self._suspected.update(result.missing_ranks)
            self._track_degraded(result.detail)
        if self._machine is not None:
            from ..simulate.executor import simulate_schedule

            if plan is not None and self._faults is None:
                # Compiled fast path: the schedule is built once per plan.
                schedule = plan.schedule(info)
            else:
                builder_kwargs = info.schedule_kwargs(request.policy)
                if info.capabilities.fault_tolerant and request.metadata.get(
                    "known_failed"
                ):
                    builder_kwargs["failed"] = sorted(request.metadata["known_failed"])
                schedule = info.builder(self.size, nbytes, **builder_kwargs)
            rank_offsets = None
            if self._faults is not None:
                from ..faults.injection import degrade_schedule

                schedule = degrade_schedule(schedule, self._faults)
                rank_offsets = self._faults.arrival_offsets(self.size, seq)
            result.simulated = simulate_schedule(
                schedule,
                self._machine.with_ranks(self.size),
                rank_offsets=rank_offsets,
            )
        self._last_result = result
        return result

    # ------------------------------------------------------------------ #
    # synchronisation
    # ------------------------------------------------------------------ #
    def barrier(self, algorithm: Optional[str] = None) -> None:
        """Barrier over the communicator's ranks.

        The default uses the runtime's native group barrier; passing
        ``algorithm`` (e.g. ``"auto"`` or ``"dissemination"``) routes
        through the registered notification barrier instead.
        """
        if algorithm is None:
            self.runtime.barrier()
            return
        self._dispatch("barrier", algorithm, CollectiveRequest(collective="barrier"))

    # ------------------------------------------------------------------ #
    # broadcast / reduce (eventually consistent)
    # ------------------------------------------------------------------ #
    def bcast(
        self,
        buffer: np.ndarray,
        root: int = 0,
        policy: Optional[ConsistencyPolicy] = None,
        algorithm: str = "auto",
        threshold: Optional[float] = None,
    ) -> CollectiveResult:
        """Broadcast ``buffer`` from ``root`` (in place on non-root ranks).

        A policy with ``threshold < 1`` ships only the leading fraction of
        the payload — the eventually consistent mode of the paper.
        """
        if threshold is not None:
            _deprecated_kwarg("threshold", "policy=ConsistencyPolicy.data_threshold(...)")
        effective = coerce_policy(policy, threshold=threshold) if (
            policy is not None or threshold is not None
        ) else self._policy
        request = CollectiveRequest(
            collective="bcast", sendbuf=buffer, root=root, policy=effective
        )
        return self._dispatch("bcast", algorithm, request)

    def reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
        root: int = 0,
        op: str | ReductionOp = "sum",
        policy: Optional[ConsistencyPolicy] = None,
        algorithm: str = "auto",
        threshold: Optional[float] = None,
        mode: Optional[ReduceMode | str] = None,
    ) -> CollectiveResult:
        """Reduce ``sendbuf`` onto ``root`` under a consistency policy.

        ``ConsistencyPolicy.data_threshold(f)`` reduces only the leading
        ``f`` fraction of the vector; ``process_threshold(f)`` reduces the
        full vector over a fraction of the processes (Figures 9 and 10).
        """
        if threshold is not None or mode is not None:
            _deprecated_kwarg("threshold/mode", "policy=ConsistencyPolicy(...)")
        effective = coerce_policy(policy, threshold=threshold, mode=mode) if (
            policy is not None or threshold is not None or mode is not None
        ) else self._policy
        request = CollectiveRequest(
            collective="reduce",
            sendbuf=sendbuf,
            recvbuf=recvbuf,
            root=root,
            op=op,
            policy=effective,
        )
        return self._dispatch("reduce", algorithm, request)

    # ------------------------------------------------------------------ #
    # allreduce
    # ------------------------------------------------------------------ #
    def allreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
        op: str | ReductionOp = "sum",
        policy: Optional[ConsistencyPolicy] = None,
        algorithm: str = "auto",
    ) -> np.ndarray:
        """Consistent allreduce; returns the reduced vector.

        ``algorithm="auto"`` picks the latency-optimal hypercube for small
        payloads and the paper's segmented pipelined ring for large ones;
        explicit choices ("ring", "hypercube", or any registry name) are
        honoured after a capability check.  The dispatched algorithm and
        status live on :attr:`last_result`.
        """
        request = CollectiveRequest(
            collective="allreduce",
            sendbuf=sendbuf,
            recvbuf=recvbuf,
            op=op,
            policy=policy or self._policy,
        )
        return self._dispatch("allreduce", algorithm, request).value

    # ------------------------------------------------------------------ #
    # nonblocking collectives (pipelined progress engine)
    # ------------------------------------------------------------------ #
    def ibcast(
        self,
        buffer: np.ndarray,
        root: int = 0,
        policy: Optional[ConsistencyPolicy] = None,
        algorithm: str = "auto",
        tag: int = 0,
    ) -> CollectiveHandle:
        """Nonblocking broadcast; returns a :class:`CollectiveHandle`.

        The transfer advances chunk by chunk whenever the handle (or
        :meth:`progress`) is pumped, and completes in :meth:`CollectiveHandle.wait`
        — so the caller can overlap compute with the payload movement::

            h = comm.ibcast(weights, root=0)
            loss = expensive_forward_pass(batch)   # overlaps the bcast
            h.wait()
        """
        request = CollectiveRequest(
            collective="bcast",
            sendbuf=buffer,
            root=root,
            policy=policy or self._policy,
            tag=tag,
        )
        return self._dispatch_nonblocking("bcast", algorithm, request)

    def ireduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
        root: int = 0,
        op: str | ReductionOp = "sum",
        policy: Optional[ConsistencyPolicy] = None,
        algorithm: str = "auto",
        tag: int = 0,
    ) -> CollectiveHandle:
        """Nonblocking reduce onto ``root``; returns a handle.

        ``tag`` keys the compiled plan instance: concurrent same-shape
        requests with distinct tags advance independently.
        """
        request = CollectiveRequest(
            collective="reduce",
            sendbuf=sendbuf,
            recvbuf=recvbuf,
            root=root,
            op=op,
            policy=policy or self._policy,
            tag=tag,
        )
        return self._dispatch_nonblocking("reduce", algorithm, request)

    def iallreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
        op: str | ReductionOp = "sum",
        policy: Optional[ConsistencyPolicy] = None,
        algorithm: str = "auto",
        tag: int = 0,
    ) -> CollectiveHandle:
        """Nonblocking allreduce; returns a handle (``MPI_Iallreduce``).

        The gradient-overlap idiom of the ML layer: issue one handle per
        bucket as its gradient becomes ready (a distinct ``tag`` per
        bucket gives each its own concurrent pipeline), keep computing,
        then drain::

            handles = [comm.iallreduce(g, recvbuf=o, tag=i)
                       for i, (g, o) in enumerate(buckets)]
            more_compute()
            comm.wait_all()
        """
        request = CollectiveRequest(
            collective="allreduce",
            sendbuf=sendbuf,
            recvbuf=recvbuf,
            op=op,
            policy=policy or self._policy,
            tag=tag,
        )
        return self._dispatch_nonblocking("allreduce", algorithm, request)

    def progress(self) -> int:
        """Advance every in-flight nonblocking collective without blocking.

        Returns the number of handles still in flight.  Call this between
        compute steps to keep pipelines moving (core-direct GASPI style) —
        or enable :meth:`start_progress_thread` for asynchronous progress.
        """
        return self._progress.progress()

    def wait_all(self, timeout: float = GASPI_BLOCK) -> None:
        """Complete every in-flight nonblocking collective (``MPI_Waitall``)."""
        self._progress.wait_all(timeout)

    def start_progress_thread(self, interval: float = 2e-4) -> None:
        """Enable asynchronous progress (GPI-2 progress-thread analogue).

        A daemon thread pumps in-flight nonblocking pipelines whenever the
        application thread is busy or idle — required for real overlap
        when compute does not call :meth:`progress` (e.g. accelerator
        offload).  Idempotent; stopped by :meth:`stop_progress_thread` or
        :meth:`close`.
        """
        self._progress.start_thread(interval)

    def stop_progress_thread(self) -> None:
        """Stop the asynchronous progress thread (idempotent)."""
        self._progress.stop_thread()

    def _resolve_nonblocking(
        self, collective: str, nbytes: int, algorithm: str, policy: ConsistencyPolicy
    ) -> AlgorithmInfo:
        """Resolution for the nonblocking path: prefer pipelined entries.

        ``algorithm="auto"`` picks a pipelined implementation for *any*
        payload size (not just beyond the large-message threshold): only
        pipelined plans expose the incremental executor that makes a
        handle actually nonblocking, and overlap is usually worth more
        than the last microsecond of blocking latency.  Explicit algorithm
        names are honoured verbatim; non-pipelined ones complete
        synchronously (the handle is born done).
        """
        if algorithm in (None, "auto") and not (
            (self._faults is not None and self._faults.can_lose_contributions)
            or self.runtime.fault_injected
            or policy.on_failure != "abort"
        ):
            for name in self._registry.names(collective=collective, executable=True):
                info = self._registry.get(name)
                if not (info.capabilities.pipelined and info.plannable):
                    continue
                supported, _ = info.supports(self.size, policy)
                if supported:
                    return info
        return self.resolve(collective, nbytes, algorithm, policy)

    def _dispatch_nonblocking(
        self, collective: str, algorithm: str, request: CollectiveRequest
    ) -> CollectiveHandle:
        """Start one collective; return a handle advancing it incrementally.

        Falls back to synchronous execution (returning an already-complete
        handle) whenever no pipelined plan can serve the request — fault
        plans, suspected ranks, slack policies, planning disabled, or a
        non-pipelined algorithm choice — so ``i*`` calls are always safe,
        merely not overlapped, in those regimes.
        """
        check_policy(request.policy)
        nbytes = self._schedule_nbytes(collective, request)
        info = self._resolve_nonblocking(collective, nbytes, algorithm, request.policy)
        plan = None
        if info.capabilities.pipelined:
            plan = self._plan_for(info, request)
        if plan is None or not hasattr(plan, "begin"):
            result = self._dispatch(collective, info.name, request)
            return CollectiveHandle(
                self._progress, self.runtime, None, None, result=result
            )
        # Mirror the blocking dispatch bookkeeping (sequence number,
        # arrival skew does not apply: loss-capable fault plans never get
        # here and pure-delay plans perturb the data plane directly).
        self._collective_seq += 1
        dtype = None if request.sendbuf is None else np.asarray(request.sendbuf).dtype
        info.check_request(self.size, request.policy, dtype)
        request.segment_id = plan.segment_id
        self._last_segment_id = plan.segment_id
        self._c_nonblocking.add()
        tel = self._telemetry
        issue_t = CLOCK() if tel.enabled else 0.0
        span_nbytes = request.nbytes

        def on_complete(result: CollectiveResult) -> None:
            result.algorithm = info.name
            result.policy = request.policy
            if tel.enabled:
                # Issue→completion window of the overlapped collective; the
                # progress engine drives it, so this is recorded here rather
                # than with a context-managed span.
                tel.record_span(
                    f"i{collective}", "collective", issue_t, CLOCK(),
                    {"algorithm": info.name, "nbytes": span_nbytes,
                     "outcome": "ok", "nonblocking": True},
                )
            if self._machine is not None:
                from ..simulate.executor import simulate_schedule

                result.simulated = simulate_schedule(
                    plan.schedule(info), self._machine.with_ranks(self.size)
                )
            self._last_result = result

        handle = CollectiveHandle(
            self._progress,
            self.runtime,
            plan,
            plan.begin(request),
            on_complete=on_complete,
        )
        self._progress.register(handle)
        return handle

    def allreduce_ssp(
        self,
        contribution: np.ndarray,
        slack: Optional[int] = None,
        op: str | ReductionOp = "sum",
        key: int = 0,
        clock: Optional[int] = None,
        policy: Optional[ConsistencyPolicy] = None,
    ) -> SSPAllreduceResult:
        """Eventually consistent allreduce following the SSP model.

        The first call with a given ``key`` creates the persistent mailbox
        state (sized for ``contribution``); subsequent calls with the same
        ``key`` advance the logical clock and reuse it.  The slack comes
        from ``policy.slack`` (or the legacy ``slack=`` argument).  Use
        :meth:`close_ssp` when the iterative phase ends.
        """
        if policy is not None:
            require(slack is None, "pass either policy= or slack=, not both")
            effective_slack = policy.slack
        elif slack is not None:
            effective_slack = int(slack)
        else:
            effective_slack = self._policy.slack
        contribution = np.ascontiguousarray(contribution)
        inst = self._ssp_instances.get(key)
        if inst is None:
            # The persistent SSP collective cannot be re-dispatched per call
            # (it keeps mailbox state), but its registry entry still vets the
            # request — power-of-two world, slack support — so misuse fails
            # with the same error messages as the one-shot path.
            info = self._registry.get("gaspi_allreduce_ssp_hypercube")
            info.check_request(
                self.size, ConsistencyPolicy.ssp(effective_slack), contribution.dtype
            )
            inst = SSPAllreduce(
                self.runtime,
                contribution.size,
                slack=effective_slack,
                op=op,
                dtype=contribution.dtype,
                segment_id=self._allocate_segment_id(),
            )
            self._ssp_instances[key] = inst
        return inst.reduce(contribution, clock=clock)

    def ssp_state(self, key: int = 0) -> Optional[SSPAllreduce]:
        """The persistent SSP collective for ``key`` (``None`` if not created)."""
        return self._ssp_instances.get(key)

    def close_ssp(self, key: int = 0) -> None:
        """Tear down the persistent SSP state for ``key`` (collective call)."""
        inst = self._ssp_instances.pop(key, None)
        if inst is not None:
            inst.close()

    # ------------------------------------------------------------------ #
    # persistent (initialised) collectives
    # ------------------------------------------------------------------ #
    def persistent(
        self,
        collective: str,
        template: np.ndarray,
        *,
        root: int = 0,
        op: str | ReductionOp = "sum",
        algorithm: str = "auto",
        policy: Optional[ConsistencyPolicy] = None,
    ) -> "PersistentCollective":
        """Compile a reusable handle for one collective shape (MPI-style).

        The explicit counterpart of the transparent plan cache, mirroring
        MPI persistent collectives (``MPI_Bcast_init`` & friends): the
        topology, notification layout, workspace segment and simulator
        schedule are compiled once, here, against ``template`` (only its
        shape/dtype matter — e.g. ``np.empty(4096)``), and every
        subsequent ``handle(buf)`` is pure data movement::

            h = comm.persistent("allreduce", np.empty(4096))
            for step in range(iters):
                grads = h(grads).value

        Collective: every rank must create (and close) the handle at the
        same point.  The compiled plan is pinned in the plan cache — LRU
        eviction skips it — until :meth:`PersistentCollective.close`.
        """
        policy = policy or self._policy
        check_policy(policy)
        template = np.ascontiguousarray(template)
        probe = CollectiveRequest(
            collective=collective,
            sendbuf=template,
            root=root,
            op=op,
            policy=policy,
        )
        nbytes = self._schedule_nbytes(collective, probe)
        info = self.resolve(collective, nbytes, algorithm, policy)
        require(
            info.plannable,
            f"algorithm {info.name!r} does not support compiled plans; "
            f"plannable {collective} algorithms: "
            f"{[n for n in self._registry.names(collective=collective) if self._registry.get(n).plannable] or '<none>'}",
        )
        plan = self._plan_for(info, probe)
        require(
            plan is not None,
            "persistent collectives need the plan cache (plan_cache > 0) and "
            "no loss-capable fault plan on the communicator",
        )
        self._plans.pin(plan.key)
        return PersistentCollective(self, info, plan, root=root, op=op, policy=policy)

    # ------------------------------------------------------------------ #
    # allgather / alltoall
    # ------------------------------------------------------------------ #
    def allgather(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
        algorithm: str = "auto",
    ) -> np.ndarray:
        """Gather equal-sized blocks from all ranks onto all ranks."""
        request = CollectiveRequest(
            collective="allgather", sendbuf=sendbuf, recvbuf=recvbuf, policy=self._policy
        )
        return self._dispatch("allgather", algorithm, request).value

    def alltoall(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
        algorithm: str = "auto",
    ) -> np.ndarray:
        """Exchange equal-sized blocks between every pair of ranks."""
        request = CollectiveRequest(
            collective="alltoall", sendbuf=sendbuf, recvbuf=recvbuf, policy=self._policy
        )
        return self._dispatch("alltoall", algorithm, request).value

    def alltoallv(
        self,
        sendbuf: np.ndarray,
        send_counts: Sequence[int],
        recv_counts: Sequence[int],
        recvbuf: Optional[np.ndarray] = None,
        algorithm: str = "auto",
    ) -> np.ndarray:
        """Variable-size AlltoAll (``MPI_Alltoallv`` equivalent)."""
        request = CollectiveRequest(
            collective="alltoall",
            sendbuf=sendbuf,
            recvbuf=recvbuf,
            send_counts=send_counts,
            recv_counts=recv_counts,
            policy=self._policy,
        )
        return self._dispatch("alltoall", algorithm, request).value

    # ------------------------------------------------------------------ #
    # sub-communicators
    # ------------------------------------------------------------------ #
    def _child_segment_range(self, split_seq: int) -> tuple[int, int]:
        """Disjoint segment-id slice for the ``split_seq``-th child.

        Children live in the upper half of this communicator's range, so
        parent and child collectives can interleave freely; the same slice
        is reused across the colors of one split because the color groups
        are disjoint rank sets that never address each other's segments.
        """
        require(
            split_seq < _MAX_CHILD_SPLITS,
            f"communicator supports at most {_MAX_CHILD_SPLITS} split()/dup() calls",
        )
        child_span = self._segment_span // (2 * _MAX_CHILD_SPLITS)
        base = self._segment_base + self._segment_span // 2 + split_seq * child_span
        return base, child_span

    def split(self, color: Optional[int], key: int = 0) -> Optional["Communicator"]:
        """Partition the communicator into disjoint sub-communicators.

        Collective over **all** ranks of this communicator (like
        ``MPI_Comm_split``): every rank passes a ``color``; ranks sharing
        a color form a new communicator whose ranks are ordered by
        ``(key, old rank)``.  Ranks passing ``color=None`` opt out and
        receive ``None``.

        The sub-communicator inherits this communicator's default policy,
        tuning table and machine model, and owns a disjoint segment-id
        range, so parent and child collectives never collide.
        """
        require(
            color is None or isinstance(color, (int, np.integer)),
            f"color must be an int or None, got {color!r}",
        )
        # Exchange (participates, color, key) over the current group.
        mine = np.array(
            [0 if color is None else 1, 0 if color is None else int(color), int(key)],
            dtype=np.int64,
        )
        gathered = ring_allgather(
            self.runtime, mine, segment_id=self._allocate_segment_id()
        ).reshape(self.size, 3)
        split_seq = self._split_count
        self._split_count += 1
        if color is None:
            return None
        members = [
            r
            for r in range(self.size)
            if gathered[r, 0] and gathered[r, 1] == int(color)
        ]
        members.sort(key=lambda r: (int(gathered[r, 2]), r))
        child_base, child_span = self._child_segment_range(split_seq)
        child = Communicator(
            GroupRuntime(self.runtime, members),
            segment_base=child_base,
            segment_span=child_span,
            policy=self._policy,
            tuning=self._tuning,
            machine=self._machine,
            family=self._family,
            registry=self._registry,
            detect_timeout=self._detect_timeout,
            plan_cache=self._plans.capacity,
            # The child shares the parent's registry: the GroupRuntime
            # forwards it, so the double-wrap guard keeps traffic counted
            # once while the child still records its own dispatch spans.
            telemetry=self._telemetry if self._telemetry.enabled else None,
        )
        # Fault injection stays attached through the wrapped runtime (its
        # `fault_injected` flag keeps auto-selection on the tolerant
        # algorithms); per-collective arrival skew is world-scoped and not
        # re-applied at the child level.  Suspected ranks carry over in the
        # child's numbering.
        child._suspected = {
            members.index(r) for r in self._suspected if r in members
        }
        # Weakly tracked so reinstate() can propagate into the child's
        # suspicion map without keeping a closed child alive.
        self._children.append((weakref.ref(child), tuple(members)))
        return child

    def dup(self) -> "Communicator":
        """Duplicate the communicator (same ranks, fresh segment range).

        Collective over all ranks.  Useful to give a library layer its own
        communication context, as ``MPI_Comm_dup`` does.
        """
        dup = self.split(0, key=0)
        assert dup is not None  # every rank participates with the same color
        return dup

    # ------------------------------------------------------------------ #
    # elasticity
    # ------------------------------------------------------------------ #
    def checkpoint(
        self,
        *,
        group: Optional[Group] = None,
        timeout: float = GASPI_BLOCK,
    ):
        """Snapshot this rank's communicator state at a collective boundary.

        Collective: call it on every rank at the same point.  Returns a
        :class:`~repro.elastic.checkpoint.CommSnapshot` that serializes
        to JSON (``snapshot.save(dir)``) and restores into a fresh world
        via :func:`repro.elastic.restore`.  See :mod:`repro.elastic`.
        ``group``/``timeout`` bound the quiesce barrier when some ranks
        are already dead (supervisor checkpoints over the survivors).
        """
        from ..elastic.checkpoint import checkpoint

        return checkpoint(self, group=group, timeout=timeout)

    def shrink(
        self,
        failed: Optional[Iterable[int]] = None,
        *,
        detect_timeout: Optional[float] = None,
        agreement_segment_id: Optional[int] = None,
        remove_missing_voters: bool = True,
        vote_resends: int = 0,
    ) -> "Communicator":
        """Renumber the survivors into a fresh full-strength communicator.

        Collective over the *survivors* (every live rank must call it at
        the same point; crashed ranks obviously do not).  The removal set
        is ``failed`` if given, else the current :attr:`suspected_ranks`.
        The survivors agree on it through one tolerant max-allreduce over
        removal masks — so a rank whose detection window missed a death
        still learns it here — then quiesce this communicator's in-flight
        state and build a new one on a :class:`GroupRuntime` over the
        survivor subset with a disjoint segment-id slice.

        The shrunk communicator runs *non-degraded* collectives: its
        policy resets ``on_failure`` to ``"abort"`` (no dead weight left
        to tolerate), its plan cache starts empty and recompiles for the
        new size, and suspicion not covered by the removal carries over
        in survivor numbering.  The parent communicator remains usable
        only for teardown (``close()``); run collectives on the returned
        child.

        ``agreement_segment_id`` pins the agreement's workspace segment
        to a fixed id outside the pooled lock-step slice.  Supervised
        recovery (:mod:`repro.health`) uses this so survivors reaching
        the heal point a collective apart fold into the same agreement
        instead of colliding with each other's ordinary traffic.

        ``remove_missing_voters`` controls what happens to a survivor
        whose agreement vote never arrives.  The default (``True``)
        folds it into the removal set — safe when every live rank is
        known to reach the agreement.  Supervised recovery passes
        ``False``: its votes are already gated on detector confirmation,
        and a vote lost to a transient link fault must not evict a live
        rank from half the world (split-brain).  A rank that truly died
        mid-heal then survives into the child, where the detector
        re-confirms it and the next boundary heals again — eventual
        consistency instead of divergence.

        ``vote_resends`` re-broadcasts this rank's vote that many times
        (spaced ~50 ms apart) after its own agreement completes.  A vote
        swallowed by a transient link fault (a flap window) gets through
        on a re-send — the fault window has moved on — so peers waiting
        on it complete in milliseconds instead of stalling out their
        whole detection window.
        """
        removing: Set[int] = (
            {int(r) for r in failed} if failed is not None else set(self._suspected)
        )
        for r in removing:
            require(
                0 <= r < self.size,
                f"cannot shrink away rank {r} outside world of size {self.size}",
            )
        require(
            self.rank not in removing,
            f"rank {self.rank} cannot shrink itself away",
        )
        from ..faults.recovery import (
            DEFAULT_DETECT_TIMEOUT,
            send_late_contribution,
            tolerant_allreduce,
        )

        timeout = (
            detect_timeout
            if detect_timeout is not None
            else (self._detect_timeout or DEFAULT_DETECT_TIMEOUT)
        )
        tel = self._telemetry
        t0 = CLOCK() if tel.enabled else 0.0

        # Agreement round: every survivor contributes its removal mask;
        # the max-combine unions the views, and ranks that fail to show
        # up for the agreement itself join the removal set.
        mask = np.zeros(self.size, dtype=np.int64)
        if removing:
            mask[sorted(removing)] = 1
        if agreement_segment_id is None:
            # Lock-step allocation: every survivor calls shrink() at the
            # same collective sequence point, so the pooled id matches.
            self._collective_seq += 1
            agreement_segment_id = self._allocate_segment_id()
        verdict = tolerant_allreduce(
            self.runtime,
            mask,
            op="max",
            threshold=1.0 / self.size,
            on_failure="complete",
            detect_timeout=timeout,
            known_failed=removing,
            segment_id=agreement_segment_id,
        )
        if vote_resends > 0:
            # Re-broadcast our vote while peers may still be gathering:
            # a first send lost to a transient link fault arrives here
            # (the fault window is indexed by send count and has moved
            # on), unblocking the peer well before its detection window.
            peers = [
                r for r in range(self.size)
                if r != self.rank and r not in removing
            ]
            for i in range(vote_resends):
                time.sleep(0.05 * (i + 1))
                send_late_contribution(
                    self.runtime, mask, agreement_segment_id, targets=peers,
                )
        agreed = {r for r in range(self.size) if verdict.value[r] > 0}
        if remove_missing_voters:
            agreed |= set(verdict.missing_ranks)
        verdict.close()
        require(
            self.rank not in agreed,
            f"rank {self.rank} was voted dead by the survivors and cannot "
            f"shrink (checkpoint/respawn instead)",
        )
        survivors = [r for r in range(self.size) if r not in agreed]
        require(
            len(survivors) >= 1 and agreed,
            f"shrink needs at least one removed rank and one survivor "
            f"(removed: {sorted(agreed)})",
        )

        # Quiesce: drain in-flight state so the parent's pooled segments
        # can be freed without racing a survivor still driving them.
        if self._progress.active:
            try:
                self._progress.wait_all(timeout)
            except (GaspiError, TimeoutError):
                pass
        self._progress.stop_thread()
        for key in list(self._ssp_instances):
            inst = self._ssp_instances.pop(key)
            try:
                inst.close()
            except GaspiError:  # pragma: no cover - dead peer mid-close
                pass
        for detail in self._open_degraded:
            detail.close()
        self._open_degraded.clear()
        if len(self._plans):
            self._quiesce_plans(Group(survivors), timeout=timeout)
        self._plans.close_all()

        # Unwrap instrumentation and fault layers: the child re-wraps
        # telemetry itself, and injected faults died with the removed
        # ranks (a shrunk world is a fresh, full-strength one).  The
        # structural GroupRuntime layers stay — survivors are expressed
        # in this communicator's numbering.
        base = self.runtime
        while True:
            inner = getattr(base, "inner", None)
            if inner is not None and not isinstance(base, GroupRuntime):
                base = inner
                continue
            faulty_base = getattr(base, "base", None)
            if faulty_base is not None and not isinstance(base, GroupRuntime):
                base = faulty_base
                continue
            break

        split_seq = self._split_count
        self._split_count += 1
        child_base, child_span = self._child_segment_range(split_seq)
        policy = self._policy
        if policy.on_failure != "abort":
            policy = dataclass_replace(policy, on_failure="abort")
        shrunk = Communicator(
            GroupRuntime(base, survivors),
            segment_base=child_base,
            segment_span=child_span,
            policy=policy,
            tuning=self._tuning,
            machine=self._machine,
            family=self._family,
            registry=self._registry,
            detect_timeout=self._detect_timeout,
            plan_cache=self._plans.capacity,
            telemetry=tel if tel.enabled else None,
        )
        shrunk._suspected = {
            survivors.index(r) for r in self._suspected if r in survivors
        }
        shrunk._parent_ranks = tuple(survivors)
        self._suspected.update(agreed)
        self._children.append((weakref.ref(shrunk), tuple(survivors)))
        logger.info(
            "rank %d: shrink removed ranks %s, continuing as rank %d/%d",
            self.rank, sorted(agreed), shrunk.rank, shrunk.size,
        )
        if tel.enabled:
            t1 = CLOCK()
            tel.counter("elastic.shrinks").add()
            tel.histogram("elastic.shrink_s").observe(t1 - t0)
            tel.record_span(
                "shrink", "elastic", t0, t1,
                {"removed": sorted(agreed), "survivors": len(survivors)},
            )
        return shrunk

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release all persistent collective state: SSP mailboxes, degraded
        workspaces held open for correction, and every pooled plan segment.

        Plan closes are idempotent (each pooled segment is freed exactly
        once, whether the plan is dropped here, by LRU eviction, or via a
        persistent handle) and tolerate a runtime that can no longer
        perform segment operations — e.g. a fault plan wrapped the runtime
        and this rank crashed — so teardown never raises after a failure.
        """
        if self._progress.active:
            # Drain in-flight nonblocking collectives before any pooled
            # segment can be freed under an active pipeline.
            try:
                self._progress.wait_all()
            except (GaspiError, TimeoutError):  # pragma: no cover - dead peer
                pass
        self._progress.stop_thread()
        for key in list(self._ssp_instances):
            self.close_ssp(key)
        for detail in self._open_degraded:
            detail.close()
        self._open_degraded.clear()
        if len(self._plans):
            # Like close_ssp, plan teardown is collective: one barrier
            # drains any deferred consume-acks still travelling toward a
            # pooled segment, then each plan is freed exactly once.
            self._quiesce_plans()
        self._plans.close_all()

    def __enter__(self) -> "Communicator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "subcommunicator" if self.is_subcommunicator else "world"
        return f"Communicator(rank={self.rank}, size={self.size}, {kind})"


class PersistentCollective:
    """Handle over one compiled collective plan (MPI persistent style).

    Created by :meth:`Communicator.persistent`; calling the handle runs
    the planned collective through the communicator's normal dispatch (so
    ``last_result``, the simulator backend and the cache statistics all
    behave exactly as for implicit calls) with the plan guaranteed cached
    and pinned.  Payloads must match the compiled shape — a mismatch is a
    usage error, reported eagerly instead of silently recompiling.
    """

    def __init__(
        self,
        comm: Communicator,
        info: AlgorithmInfo,
        plan: CollectivePlan,
        root: int,
        op: str | ReductionOp,
        policy: ConsistencyPolicy,
    ) -> None:
        self._comm = comm
        self._info = info
        self._plan = plan
        self._root = int(root)
        self._op = op
        self._policy = policy
        self._closed = False

    @property
    def collective(self) -> str:
        return self._info.collective

    @property
    def algorithm(self) -> str:
        """Registry name of the compiled algorithm."""
        return self._info.name

    @property
    def key(self) -> PlanKey:
        """The plan key this handle was compiled for."""
        return self._plan.key

    @property
    def calls(self) -> int:
        """Number of planned executions served so far."""
        return self._plan.calls

    def __call__(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
    ) -> CollectiveResult:
        """Run one planned call; returns the full :class:`CollectiveResult`."""
        require(not self._closed, "persistent collective handle already closed")
        require(not self._plan.closed, "the compiled plan was torn down")
        sendbuf = np.asarray(sendbuf)
        require(
            sendbuf.nbytes == self._plan.key.nbytes
            and sendbuf.dtype.str == self._plan.key.dtype,
            f"payload ({sendbuf.nbytes} bytes, {sendbuf.dtype}) does not match "
            f"the persistent plan compiled for {self._plan.key.nbytes} bytes "
            f"of {np.dtype(self._plan.key.dtype)}",
        )
        request = CollectiveRequest(
            collective=self._info.collective,
            sendbuf=sendbuf,
            recvbuf=recvbuf,
            root=self._root,
            op=self._op,
            policy=self._policy,
        )
        return self._comm._dispatch(self._info.collective, self._info.name, request)

    def close(self) -> None:
        """Unpin the plan (collective hygiene: close on every rank).

        The plan stays cached for transparent reuse; its pooled segment is
        freed by LRU eviction or ``Communicator.close()``, exactly once.
        """
        if self._closed:
            return
        self._closed = True
        self._comm._plans.unpin(self._plan.key)

    def __enter__(self) -> "PersistentCollective":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PersistentCollective({self._info.name}, "
            f"{self._plan.key.nbytes}B, calls={self._plan.calls})"
        )
