"""High-level user-facing API: the :class:`Communicator`.

A :class:`Communicator` wraps one rank's GASPI runtime and exposes the
paper's collectives with an mpi4py-flavoured interface::

    from repro import run_spmd, Communicator

    def worker(runtime):
        comm = Communicator(runtime)
        data = np.full(1_000, comm.rank, dtype=np.float64)
        total = comm.allreduce(data, op="sum", algorithm="ring")
        comm.bcast(data, root=0, threshold=0.25)     # eventually consistent
        return total

    results = run_spmd(8, worker)

The communicator hands out non-overlapping segment ids to the collectives
it invokes and keeps persistent state (the SSP mailboxes) alive across
iterations.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import require
from .allgather import ring_allgather
from .allreduce_ring import ring_allreduce
from .allreduce_ssp import SSPAllreduce, SSPAllreduceResult, ssp_allreduce_once
from .alltoall import alltoall as _alltoall
from .alltoall import alltoallv as _alltoallv
from .bcast import BroadcastResult, bst_bcast, flat_bcast
from .reduce import ReduceMode, ReduceResult, bst_reduce
from .reduction_ops import ReductionOp

#: First segment id handed out by a communicator with ``segment_base=0``.
_SEGMENT_BASE_DEFAULT = 200


class Communicator:
    """Per-rank facade over the collective library.

    Parameters
    ----------
    runtime:
        The rank's :class:`~repro.gaspi.runtime.GaspiRuntime`.
    segment_base:
        First segment id this communicator may use.  Two communicators
        living on the same world must use disjoint ranges; every rank must
        construct its communicators in the same order with the same bases.
    """

    def __init__(self, runtime: GaspiRuntime, segment_base: int = _SEGMENT_BASE_DEFAULT) -> None:
        self.runtime = runtime
        self._segment_base = int(segment_base)
        self._next_segment = int(segment_base)
        self._ssp_instances: Dict[int, SSPAllreduce] = {}

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    def rank(self) -> int:
        """This process's rank."""
        return self.runtime.rank

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.runtime.size

    def _allocate_segment_id(self) -> int:
        """Next unused segment id.

        All ranks allocate in lock-step because they execute the same
        sequence of collective calls (the usual SPMD contract).
        """
        sid = self._next_segment
        self._next_segment += 1
        return sid

    # ------------------------------------------------------------------ #
    # synchronisation
    # ------------------------------------------------------------------ #
    def barrier(self) -> None:
        """Global barrier over all ranks."""
        self.runtime.barrier()

    # ------------------------------------------------------------------ #
    # broadcast / reduce (eventually consistent)
    # ------------------------------------------------------------------ #
    def bcast(
        self,
        buffer: np.ndarray,
        root: int = 0,
        threshold: float = 1.0,
        algorithm: str = "bst",
    ) -> BroadcastResult:
        """Broadcast ``buffer`` from ``root`` (in place on non-root ranks).

        ``threshold < 1`` ships only the leading fraction of the payload —
        the eventually consistent mode of the paper.
        """
        impl = {"bst": bst_bcast, "flat": flat_bcast}.get(algorithm)
        require(impl is not None, f"unknown bcast algorithm {algorithm!r}")
        return impl(
            self.runtime,
            buffer,
            root=root,
            threshold=threshold,
            segment_id=self._allocate_segment_id(),
        )

    def reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
        root: int = 0,
        op: str | ReductionOp = "sum",
        threshold: float = 1.0,
        mode: ReduceMode | str = ReduceMode.DATA,
    ) -> ReduceResult:
        """Reduce ``sendbuf`` onto ``root`` with an optional threshold.

        ``mode="data"`` reduces only the leading ``threshold`` fraction of
        the vector; ``mode="processes"`` reduces the full vector over a
        ``threshold`` fraction of the processes (paper Figures 9 and 10).
        """
        return bst_reduce(
            self.runtime,
            sendbuf,
            recvbuf=recvbuf,
            root=root,
            op=op,
            threshold=threshold,
            mode=mode,
            segment_id=self._allocate_segment_id(),
        )

    # ------------------------------------------------------------------ #
    # allreduce
    # ------------------------------------------------------------------ #
    def allreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
        op: str | ReductionOp = "sum",
        algorithm: str = "ring",
    ) -> np.ndarray:
        """Consistent allreduce.

        ``algorithm="ring"`` is the paper's segmented pipelined ring (best
        for large vectors); ``algorithm="hypercube"`` is the synchronous
        hypercube (small vectors / reference).
        """
        require(
            algorithm in ("ring", "hypercube"),
            f"unknown allreduce algorithm {algorithm!r}",
        )
        if algorithm == "ring":
            if recvbuf is None:
                recvbuf = np.array(sendbuf, copy=True)
            ring_allreduce(
                self.runtime,
                np.ascontiguousarray(sendbuf),
                recvbuf,
                op=op,
                segment_id=self._allocate_segment_id(),
            )
            return recvbuf
        result = ssp_allreduce_once(
            self.runtime,
            np.ascontiguousarray(sendbuf),
            slack=0,
            op=op,
            segment_id=self._allocate_segment_id(),
        )
        if recvbuf is not None:
            recvbuf[:] = result
            return recvbuf
        return result

    def allreduce_ssp(
        self,
        contribution: np.ndarray,
        slack: int,
        op: str | ReductionOp = "sum",
        key: int = 0,
        clock: Optional[int] = None,
    ) -> SSPAllreduceResult:
        """Eventually consistent allreduce following the SSP model.

        The first call with a given ``key`` creates the persistent mailbox
        state (sized for ``contribution``); subsequent calls with the same
        ``key`` advance the logical clock and reuse it.  Use
        :meth:`close_ssp` when the iterative phase ends.
        """
        contribution = np.ascontiguousarray(contribution)
        inst = self._ssp_instances.get(key)
        if inst is None:
            inst = SSPAllreduce(
                self.runtime,
                contribution.size,
                slack=slack,
                op=op,
                dtype=contribution.dtype,
                segment_id=self._allocate_segment_id(),
            )
            self._ssp_instances[key] = inst
        return inst.reduce(contribution, clock=clock)

    def ssp_state(self, key: int = 0) -> Optional[SSPAllreduce]:
        """The persistent SSP collective for ``key`` (``None`` if not created)."""
        return self._ssp_instances.get(key)

    def close_ssp(self, key: int = 0) -> None:
        """Tear down the persistent SSP state for ``key`` (collective call)."""
        inst = self._ssp_instances.pop(key, None)
        if inst is not None:
            inst.close()

    # ------------------------------------------------------------------ #
    # allgather / alltoall
    # ------------------------------------------------------------------ #
    def allgather(
        self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gather equal-sized blocks from all ranks onto all ranks."""
        return ring_allgather(
            self.runtime, sendbuf, recvbuf, segment_id=self._allocate_segment_id()
        )

    def alltoall(
        self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Exchange equal-sized blocks between every pair of ranks."""
        return _alltoall(
            self.runtime, sendbuf, recvbuf, segment_id=self._allocate_segment_id()
        )

    def alltoallv(
        self,
        sendbuf: np.ndarray,
        send_counts: Sequence[int],
        recv_counts: Sequence[int],
        recvbuf: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Variable-size AlltoAll (``MPI_Alltoallv`` equivalent)."""
        return _alltoallv(
            self.runtime,
            sendbuf,
            send_counts,
            recv_counts,
            recvbuf,
            segment_id=self._allocate_segment_id(),
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release all persistent collective state (SSP mailboxes)."""
        for key in list(self._ssp_instances):
            self.close_ssp(key)

    def __enter__(self) -> "Communicator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(rank={self.rank}, size={self.size})"
