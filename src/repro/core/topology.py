"""Virtual communication topologies used by the collectives.

The paper's collectives are built on three logical structures:

* the **binomial spanning tree** (BST) used by Broadcast/Reduce
  (Figure 3): rank 0 is the root and the children of rank ``p0`` are
  ``p0 + 2**i`` for all ``i`` with ``2**i > p0`` — i.e. the tree grows by
  doubling the number of involved processes at every stage;
* the **hypercube** used by ``allreduce_ssp`` (Figure 2): at step ``k``
  rank ``r`` exchanges a partial reduction with ``r XOR 2**k``;
* the **ring** used by the segmented pipelined Allreduce (Figures 4–5)
  and the Allgather stage.

This module also provides the k-nomial tree and the dissemination pattern
needed by the MPI baseline variants and by the notification barrier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..utils.validation import ceil_log2, check_power_of_two, require


# --------------------------------------------------------------------------- #
# Binomial spanning tree (paper Figure 3)
# --------------------------------------------------------------------------- #
class BinomialTree:
    """Binomial spanning tree rooted at rank 0 over ``num_ranks`` processes.

    The construction follows the paper exactly: the children of rank ``p0``
    are ``p0 + 2**i`` for every ``i`` such that ``2**i > p0`` and the child id
    is below ``num_ranks``.  Stage ``s`` (1-based) adds the ranks in
    ``[2**(s-1), 2**s)``, so each stage doubles the number of involved
    processes; rank 0 is stage 0.

    A non-zero ``root`` is supported by relabelling: virtual rank
    ``v = (r - root) mod P``.
    """

    def __init__(self, num_ranks: int, root: int = 0) -> None:
        require(num_ranks >= 1, f"num_ranks must be >= 1, got {num_ranks}")
        require(0 <= root < num_ranks, f"root {root} outside [0, {num_ranks})")
        self.num_ranks = int(num_ranks)
        self.root = int(root)

    # -- virtual <-> real rank mapping ---------------------------------- #
    def to_virtual(self, rank: int) -> int:
        """Map a real rank to its virtual id (root becomes 0)."""
        self._check_rank(rank)
        return (rank - self.root) % self.num_ranks

    def to_real(self, virtual_rank: int) -> int:
        """Map a virtual id back to the real rank."""
        require(
            0 <= virtual_rank < self.num_ranks,
            f"virtual rank {virtual_rank} outside [0, {self.num_ranks})",
        )
        return (virtual_rank + self.root) % self.num_ranks

    # -- structure -------------------------------------------------------- #
    def parent(self, rank: int) -> int | None:
        """Parent of ``rank`` in the tree, or ``None`` for the root.

        In virtual numbering the parent of ``v`` is ``v`` with its highest
        set bit cleared, which is exactly the inverse of the paper's child
        rule.
        """
        v = self.to_virtual(rank)
        if v == 0:
            return None
        parent_v = v & ~(1 << (v.bit_length() - 1))
        return self.to_real(parent_v)

    def children(self, rank: int) -> List[int]:
        """Children of ``rank``, ordered by the stage at which they join."""
        v = self.to_virtual(rank)
        kids: List[int] = []
        i = 0 if v == 0 else v.bit_length()
        while True:
            child_v = v + (1 << i)
            if child_v >= self.num_ranks:
                break
            kids.append(self.to_real(child_v))
            i += 1
        return kids

    def stage_of(self, rank: int) -> int:
        """Stage at which ``rank`` first receives data (root is stage 0)."""
        v = self.to_virtual(rank)
        return 0 if v == 0 else v.bit_length()

    def num_stages(self) -> int:
        """Number of communication stages, ``⌈log2(P)⌉``."""
        return ceil_log2(self.num_ranks) if self.num_ranks > 1 else 0

    def ranks_by_stage(self) -> Dict[int, List[int]]:
        """Mapping stage → ranks that join at that stage."""
        stages: Dict[int, List[int]] = {}
        for rank in range(self.num_ranks):
            stages.setdefault(self.stage_of(rank), []).append(rank)
        return stages

    def descendants(self, rank: int) -> List[int]:
        """All ranks in the subtree below ``rank`` (excluding ``rank``)."""
        out: List[int] = []
        frontier = list(self.children(rank))
        while frontier:
            node = frontier.pop()
            out.append(node)
            frontier.extend(self.children(node))
        return sorted(out)

    def leaves(self) -> List[int]:
        """Ranks with no children."""
        return [r for r in range(self.num_ranks) if not self.children(r)]

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (in edges)."""
        return max(self.stage_of(r) for r in range(self.num_ranks))

    def participating_ranks(self, process_fraction: float) -> List[int]:
        """Subset of ranks engaged when only a fraction of processes contribute.

        Implements the paper's process-threshold Reduce (Figure 10): drop
        leaves farthest from the root (highest stage first, highest rank
        first within a stage) while keeping at least
        ``ceil(process_fraction * P)`` processes.  Because children always
        live in later stages than their parent, dropping from the deepest
        stage inward never disconnects the tree.
        """
        require(
            0.0 < process_fraction <= 1.0,
            f"process_fraction must be in (0, 1], got {process_fraction}",
        )
        keep_count = max(1, int(math.ceil(process_fraction * self.num_ranks - 1e-9)))
        drop_order = sorted(
            (r for r in range(self.num_ranks) if r != self.root),
            key=lambda r: (self.stage_of(r), self.to_virtual(r)),
            reverse=True,
        )
        kept = set(range(self.num_ranks))
        for rank in drop_order:
            if len(kept) <= keep_count:
                break
            kept.remove(rank)
        return sorted(kept)

    def _check_rank(self, rank: int) -> None:
        require(
            0 <= rank < self.num_ranks,
            f"rank {rank} outside [0, {self.num_ranks})",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinomialTree(P={self.num_ranks}, root={self.root})"


# --------------------------------------------------------------------------- #
# Hypercube (paper Figure 2)
# --------------------------------------------------------------------------- #
class Hypercube:
    """d-dimensional hypercube over ``num_ranks = 2**d`` processes."""

    def __init__(self, num_ranks: int) -> None:
        check_power_of_two(num_ranks, "hypercube size")
        self.num_ranks = int(num_ranks)
        self.dimensions = ceil_log2(num_ranks) if num_ranks > 1 else 0

    def partner(self, rank: int, step: int) -> int:
        """Communication partner of ``rank`` at hypercube step ``step``."""
        require(0 <= rank < self.num_ranks, f"rank {rank} out of range")
        require(
            0 <= step < max(self.dimensions, 1),
            f"step {step} outside [0, {self.dimensions})",
        )
        return rank ^ (1 << step)

    def partners(self, rank: int) -> List[int]:
        """Partners of ``rank`` for every step, in step order."""
        return [self.partner(rank, k) for k in range(self.dimensions)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hypercube(P={self.num_ranks}, d={self.dimensions})"


# --------------------------------------------------------------------------- #
# Ring (paper Figures 4-5)
# --------------------------------------------------------------------------- #
class Ring:
    """Directed ring over ``num_ranks`` processes (send clockwise)."""

    def __init__(self, num_ranks: int) -> None:
        require(num_ranks >= 1, f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = int(num_ranks)

    def next_rank(self, rank: int) -> int:
        """Clockwise neighbour (the one this rank sends to)."""
        return (rank + 1) % self.num_ranks

    def prev_rank(self, rank: int) -> int:
        """Counter-clockwise neighbour (the one this rank receives from)."""
        return (rank - 1) % self.num_ranks

    def scatter_reduce_send_chunk(self, rank: int, step: int) -> int:
        """Chunk index sent by ``rank`` at step ``step`` of Scatter-Reduce.

        The paper: "in the kth step, node i will send the (i - k)th chunk and
        receive the (i - k - 1)th chunk".
        """
        return (rank - step) % self.num_ranks

    def scatter_reduce_recv_chunk(self, rank: int, step: int) -> int:
        return (rank - step - 1) % self.num_ranks

    def allgather_send_chunk(self, rank: int, step: int) -> int:
        """Chunk index sent by ``rank`` at step ``step`` of Allgather.

        The paper: "At the kth step, node i will send chunk (i - k + 1) and
        receive chunk (i - k)".
        """
        return (rank - step + 1) % self.num_ranks

    def allgather_recv_chunk(self, rank: int, step: int) -> int:
        return (rank - step) % self.num_ranks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ring(P={self.num_ranks})"


# --------------------------------------------------------------------------- #
# k-nomial tree (MPI baseline variants)
# --------------------------------------------------------------------------- #
class KnomialTree:
    """k-nomial tree rooted at ``root`` (radix ``k`` generalises binomial)."""

    def __init__(self, num_ranks: int, radix: int = 4, root: int = 0) -> None:
        require(num_ranks >= 1, f"num_ranks must be >= 1, got {num_ranks}")
        require(radix >= 2, f"radix must be >= 2, got {radix}")
        require(0 <= root < num_ranks, f"root {root} outside [0, {num_ranks})")
        self.num_ranks = int(num_ranks)
        self.radix = int(radix)
        self.root = int(root)
        self._parent: Dict[int, int | None] = {0: None}
        self._children: Dict[int, List[int]] = {v: [] for v in range(num_ranks)}
        self._stage: Dict[int, int] = {0: 0}
        self._build()

    def _build(self) -> None:
        """Breadth-first construction: at stage ``s`` every joined virtual rank
        adopts up to ``radix - 1`` new children."""
        joined = [0]
        next_id = 1
        stage = 1
        while next_id < self.num_ranks:
            new_nodes: List[int] = []
            for parent in list(joined):
                for _ in range(self.radix - 1):
                    if next_id >= self.num_ranks:
                        break
                    child = next_id
                    next_id += 1
                    self._parent[child] = parent
                    self._children[parent].append(child)
                    self._stage[child] = stage
                    new_nodes.append(child)
                if next_id >= self.num_ranks:
                    break
            joined.extend(new_nodes)
            stage += 1

    def to_virtual(self, rank: int) -> int:
        return (rank - self.root) % self.num_ranks

    def to_real(self, virtual_rank: int) -> int:
        return (virtual_rank + self.root) % self.num_ranks

    def parent(self, rank: int) -> int | None:
        parent_v = self._parent[self.to_virtual(rank)]
        return None if parent_v is None else self.to_real(parent_v)

    def children(self, rank: int) -> List[int]:
        return [self.to_real(c) for c in self._children[self.to_virtual(rank)]]

    def stage_of(self, rank: int) -> int:
        return self._stage[self.to_virtual(rank)]

    def num_stages(self) -> int:
        return max(self._stage.values()) if self.num_ranks > 1 else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KnomialTree(P={self.num_ranks}, k={self.radix}, root={self.root})"


# --------------------------------------------------------------------------- #
# Dissemination pattern (barrier, small allreduce)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DisseminationStep:
    """One round of the dissemination pattern for a specific rank."""

    round_index: int
    send_to: int
    recv_from: int


def dissemination_schedule(num_ranks: int, rank: int) -> List[DisseminationStep]:
    """Hensgen/Finkel/Manber dissemination pattern for one rank.

    In round ``k`` rank ``r`` sends to ``(r + 2**k) mod P`` and receives from
    ``(r - 2**k) mod P``; ``⌈log2(P)⌉`` rounds synchronise every rank with
    every other.  Used by the notification barrier and by the n-way
    dissemination discussion in the related-work section.
    """
    require(num_ranks >= 1, f"num_ranks must be >= 1, got {num_ranks}")
    require(0 <= rank < num_ranks, f"rank {rank} outside [0, {num_ranks})")
    steps: List[DisseminationStep] = []
    for k in range(ceil_log2(num_ranks) if num_ranks > 1 else 0):
        dist = 1 << k
        steps.append(
            DisseminationStep(
                round_index=k,
                send_to=(rank + dist) % num_ranks,
                recv_from=(rank - dist) % num_ranks,
            )
        )
    return steps


def chunk_bounds(total_elements: int, num_chunks: int, chunk_index: int) -> tuple[int, int]:
    """Element range ``[begin, end)`` of chunk ``chunk_index`` of ``num_chunks``.

    Chunks differ by at most one element, with the remainder spread over the
    first chunks — the usual block distribution used by ring algorithms.
    """
    require(num_chunks >= 1, f"num_chunks must be >= 1, got {num_chunks}")
    require(
        0 <= chunk_index < num_chunks,
        f"chunk_index {chunk_index} outside [0, {num_chunks})",
    )
    base = total_elements // num_chunks
    extra = total_elements % num_chunks
    begin = chunk_index * base + min(chunk_index, extra)
    size = base + (1 if chunk_index < extra else 0)
    return begin, begin + size


def chunk_sizes(total_elements: int, num_chunks: int) -> Sequence[int]:
    """Sizes of all chunks of a block distribution."""
    return [
        chunk_bounds(total_elements, num_chunks, i)[1]
        - chunk_bounds(total_elements, num_chunks, i)[0]
        for i in range(num_chunks)
    ]
