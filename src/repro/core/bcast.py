"""Eventually consistent Broadcast (paper Section III-B, Figures 3 & 8).

Two GASPI broadcast algorithms are provided:

* :func:`bst_bcast` — the binomial-spanning-tree broadcast the paper
  evaluates (``gaspi_bcast``).  The *threshold* parameter controls which
  fraction of the payload is actually shipped: with ``threshold = 0.25``
  only the first quarter of the buffer reaches the non-root ranks, which is
  the paper's way of mimicking eventual consistency ("the application can
  proceed upon arrival of a part of the data").
* :func:`flat_bcast` — the naive variant mentioned in the paper
  (P-1 ``gaspi_write_notify`` calls issued by the root).

Both also export communication-schedule builders for the timing simulator,
used by the Figure 8 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import check_fraction, require
from .schedule import CommunicationSchedule, Message, Protocol
from .topology import BinomialTree

#: Default segment id used by the broadcast collectives.
BCAST_SEGMENT_ID = 100

#: Notification ids inside the broadcast segment.
_NOTIF_DATA = 0
_NOTIF_ACK_BASE = 1


@dataclass
class BroadcastResult:
    """Outcome of a broadcast call on one rank.

    This plays the role of the *status* output parameter the paper proposes
    for eventually consistent collectives: the caller can inspect how much
    of the payload it actually received.
    """

    rank: int
    root: int
    elements_total: int
    elements_received: int
    bytes_received: int
    threshold: float
    stage: int

    @property
    def complete(self) -> bool:
        """True when the full payload was delivered (threshold == 1)."""
        return self.elements_received == self.elements_total


def threshold_elements(num_elements: int, threshold: float) -> int:
    """Number of leading elements shipped for a given data threshold.

    At least one element is always shipped so a notification is never empty.
    """
    check_fraction(threshold, "threshold")
    return max(1, int(np.floor(num_elements * threshold + 1e-9))) if num_elements else 0


# --------------------------------------------------------------------------- #
# functional implementations (threaded runtime)
# --------------------------------------------------------------------------- #
def bst_bcast(
    runtime: GaspiRuntime,
    buffer: np.ndarray,
    root: int = 0,
    threshold: float = 1.0,
    segment_id: int = BCAST_SEGMENT_ID,
    queue: int = 0,
    timeout: float = GASPI_BLOCK,
    manage_segment: bool = True,
) -> BroadcastResult:
    """Binomial-spanning-tree broadcast of ``buffer`` from ``root``.

    Parameters
    ----------
    runtime:
        Per-rank GASPI runtime.
    buffer:
        1-D contiguous NumPy array, same length and dtype on every rank.
        On non-root ranks the first ``threshold`` fraction of elements is
        overwritten with the root's data; the rest is left untouched.
    root:
        Broadcasting rank.
    threshold:
        Fraction of the payload (by element count) to ship, in (0, 1].
    segment_id:
        Segment id used as communication workspace (must be free on every
        rank when ``manage_segment`` is true).
    manage_segment:
        When true (default) the function creates and deletes the workspace
        segment and synchronises ranks around those operations.  Set to
        false when the caller (e.g. :class:`repro.core.api.Communicator`)
        manages a persistent workspace.

    Returns
    -------
    BroadcastResult
        Per-rank status, including how many elements were received.
    """
    buffer = _require_vector(buffer)
    require(0 <= root < runtime.size, f"root {root} outside world of {runtime.size}")
    send_elems = threshold_elements(buffer.size, threshold)
    send_bytes = send_elems * buffer.itemsize

    tree = BinomialTree(runtime.size, root)
    rank = runtime.rank
    children = tree.children(rank)
    parent = tree.parent(rank)

    if manage_segment:
        runtime.segment_create(segment_id, max(buffer.nbytes, 8))
        runtime.barrier()

    try:
        staging = runtime.segment_view(segment_id, dtype=buffer.dtype, count=buffer.size)

        if rank == root:
            staging[:send_elems] = buffer[:send_elems]
        else:
            # Wait for the parent's write_notify: GASPI guarantees the data is
            # already visible once the notification is.
            got = runtime.notify_waitsome(segment_id, _NOTIF_DATA, 1, timeout=timeout)
            if got is None:
                raise TimeoutError(
                    f"rank {rank}: broadcast data from parent {parent} did not arrive"
                )
            runtime.notify_reset(segment_id, _NOTIF_DATA)
            buffer[:send_elems] = staging[:send_elems]

        # Forward the (possibly partial) payload down the tree.
        for child in children:
            runtime.write_notify(
                segment_id_local=segment_id,
                offset_local=0,
                target_rank=child,
                segment_id_remote=segment_id,
                offset_remote=0,
                size=send_bytes,
                notification_id=_NOTIF_DATA,
                queue=queue,
            )
        if children:
            runtime.wait(queue)

        # Outer (leaf) nodes acknowledge their parent; inner nodes wait for the
        # acknowledgements of their leaf children (paper: "only acknowledge the
        # data transfer from the outer nodes to their parents; the collective is
        # considered complete when the outer nodes receive data").
        if parent is not None and not children:
            ack_slot = _NOTIF_ACK_BASE + tree.children(parent).index(rank)
            runtime.notify(parent, segment_id, ack_slot, queue=queue)
            runtime.wait(queue)
        leaf_children = [c for c in children if not tree.children(c)]
        for child in leaf_children:
            ack_slot = _NOTIF_ACK_BASE + children.index(child)
            got = runtime.notify_waitsome(segment_id, ack_slot, 1, timeout=timeout)
            if got is None:
                raise TimeoutError(f"rank {rank}: no ack from leaf child {child}")
            runtime.notify_reset(segment_id, ack_slot)
    finally:
        if manage_segment:
            runtime.barrier()
            runtime.segment_delete(segment_id)

    return BroadcastResult(
        rank=rank,
        root=root,
        elements_total=buffer.size,
        elements_received=buffer.size if rank == root else send_elems,
        bytes_received=0 if rank == root else send_bytes,
        threshold=threshold,
        stage=tree.stage_of(rank),
    )


def flat_bcast(
    runtime: GaspiRuntime,
    buffer: np.ndarray,
    root: int = 0,
    threshold: float = 1.0,
    segment_id: int = BCAST_SEGMENT_ID,
    queue: int = 0,
    timeout: float = GASPI_BLOCK,
    manage_segment: bool = True,
) -> BroadcastResult:
    """Flat broadcast: the root issues P-1 ``write_notify`` calls directly.

    Mentioned by the paper as the trivial alternative to the BST; it is the
    better choice only for very small worlds.
    """
    buffer = _require_vector(buffer)
    require(0 <= root < runtime.size, f"root {root} outside world of {runtime.size}")
    send_elems = threshold_elements(buffer.size, threshold)
    send_bytes = send_elems * buffer.itemsize
    rank = runtime.rank

    if manage_segment:
        runtime.segment_create(segment_id, max(buffer.nbytes, 8))
        runtime.barrier()
    try:
        staging = runtime.segment_view(segment_id, dtype=buffer.dtype, count=buffer.size)
        if rank == root:
            staging[:send_elems] = buffer[:send_elems]
            for peer in range(runtime.size):
                if peer == root:
                    continue
                runtime.write_notify(
                    segment_id, 0, peer, segment_id, 0, send_bytes, _NOTIF_DATA, queue=queue
                )
            runtime.wait(queue)
        else:
            got = runtime.notify_waitsome(segment_id, _NOTIF_DATA, 1, timeout=timeout)
            if got is None:
                raise TimeoutError(f"rank {rank}: flat bcast data never arrived")
            runtime.notify_reset(segment_id, _NOTIF_DATA)
            buffer[:send_elems] = staging[:send_elems]
    finally:
        if manage_segment:
            runtime.barrier()
            runtime.segment_delete(segment_id)

    return BroadcastResult(
        rank=rank,
        root=root,
        elements_total=buffer.size,
        elements_received=buffer.size if rank == root else send_elems,
        bytes_received=0 if rank == root else send_bytes,
        threshold=threshold,
        stage=0 if rank == root else 1,
    )


# --------------------------------------------------------------------------- #
# schedule builders (timing simulator / Figure 8)
# --------------------------------------------------------------------------- #
def bst_bcast_schedule(
    num_ranks: int,
    nbytes: int,
    threshold: float = 1.0,
    root: int = 0,
    protocol: Protocol = Protocol.ONESIDED,
    include_acks: bool = True,
    name: str | None = None,
) -> CommunicationSchedule:
    """Communication schedule of the BST broadcast for the timing simulator.

    Round ``s`` carries the messages from every stage-``(s-1)``-or-earlier
    parent to its stage-``s`` children; an optional final round models the
    zero-byte leaf acknowledgements.
    """
    check_fraction(threshold, "threshold")
    require(nbytes >= 0, "nbytes must be non-negative")
    send_bytes = max(1, int(nbytes * threshold)) if nbytes else 0
    tree = BinomialTree(num_ranks, root)
    sched = CommunicationSchedule(
        name=name or f"gaspi_bcast_bst[{int(threshold * 100)}%]",
        num_ranks=num_ranks,
        metadata={
            "threshold": threshold,
            "payload_bytes": nbytes,
            "shipped_bytes": send_bytes,
            "algorithm": "binomial_spanning_tree",
        },
    )
    stages = tree.ranks_by_stage()
    for stage in sorted(s for s in stages if s > 0):
        messages = [
            Message(
                src=tree.parent(child),
                dst=child,
                nbytes=send_bytes,
                protocol=protocol,
                tag=f"bcast-stage-{stage}",
            )
            for child in stages[stage]
        ]
        sched.add_round(messages, label=f"stage-{stage}")
    if include_acks and num_ranks > 1:
        acks = [
            Message(
                src=leaf,
                dst=tree.parent(leaf),
                nbytes=0,
                protocol=protocol,
                tag="bcast-ack",
            )
            for leaf in tree.leaves()
            if tree.parent(leaf) is not None
        ]
        if acks:
            sched.add_round(acks, label="leaf-acks")
    sched.validate()
    return sched


def flat_bcast_schedule(
    num_ranks: int,
    nbytes: int,
    threshold: float = 1.0,
    root: int = 0,
    protocol: Protocol = Protocol.ONESIDED,
    name: str | None = None,
) -> CommunicationSchedule:
    """Schedule of the flat (root-writes-to-everyone) broadcast."""
    check_fraction(threshold, "threshold")
    send_bytes = max(1, int(nbytes * threshold)) if nbytes else 0
    sched = CommunicationSchedule(
        name=name or f"gaspi_bcast_flat[{int(threshold * 100)}%]",
        num_ranks=num_ranks,
        metadata={"threshold": threshold, "payload_bytes": nbytes, "algorithm": "flat"},
    )
    messages = [
        Message(src=root, dst=peer, nbytes=send_bytes, protocol=protocol, tag="bcast-flat")
        for peer in range(num_ranks)
        if peer != root
    ]
    if messages:
        sched.add_round(messages, label="flat")
    sched.validate()
    return sched


def _require_vector(buffer: np.ndarray) -> np.ndarray:
    buffer = np.asarray(buffer)
    require(buffer.ndim == 1, f"broadcast buffer must be 1-D, got shape {buffer.shape}")
    require(buffer.flags["C_CONTIGUOUS"], "broadcast buffer must be C-contiguous")
    require(buffer.size > 0, "broadcast buffer must not be empty")
    return buffer
