"""Eventually consistent Broadcast (paper Section III-B, Figures 3 & 8).

Two GASPI broadcast algorithms are provided:

* :func:`bst_bcast` — the binomial-spanning-tree broadcast the paper
  evaluates (``gaspi_bcast``).  The *threshold* parameter controls which
  fraction of the payload is actually shipped: with ``threshold = 0.25``
  only the first quarter of the buffer reaches the non-root ranks, which is
  the paper's way of mimicking eventual consistency ("the application can
  proceed upon arrival of a part of the data").
* :func:`flat_bcast` — the naive variant mentioned in the paper
  (P-1 ``gaspi_write_notify`` calls issued by the root).

Both also export communication-schedule builders for the timing simulator,
used by the Figure 8 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import check_fraction, require
from .notifmap import NotificationLayout
from .plan import CollectivePlan
from .schedule import CommunicationSchedule, Message, Protocol
from .topology import BinomialTree

#: Default segment id used by the broadcast collectives.
BCAST_SEGMENT_ID = 100

#: Notification-id map of the broadcast segment: one data arrival slot,
#: then one ack slot per peer (indexed by child position in the BST, by
#: rank in the flat fan-out — which therefore bounds the flat plan's world
#: size to the ack range).
BCAST_LAYOUT = NotificationLayout()
_NOTIF_DATA = BCAST_LAYOUT.add("data", 1).id()
_ACK_RANGE = BCAST_LAYOUT.add("ack", 4096)
_NOTIF_ACK_BASE = _ACK_RANGE.base


@dataclass
class BroadcastResult:
    """Outcome of a broadcast call on one rank.

    This plays the role of the *status* output parameter the paper proposes
    for eventually consistent collectives: the caller can inspect how much
    of the payload it actually received.
    """

    rank: int
    root: int
    elements_total: int
    elements_received: int
    bytes_received: int
    threshold: float
    stage: int

    @property
    def complete(self) -> bool:
        """True when the full payload was delivered (threshold == 1)."""
        return self.elements_received == self.elements_total


def threshold_elements(num_elements: int, threshold: float) -> int:
    """Number of leading elements shipped for a given data threshold.

    At least one element is always shipped so a notification is never empty.
    """
    check_fraction(threshold, "threshold")
    return max(1, int(np.floor(num_elements * threshold + 1e-9))) if num_elements else 0


# --------------------------------------------------------------------------- #
# functional implementations (threaded runtime)
# --------------------------------------------------------------------------- #
def bst_bcast(
    runtime: GaspiRuntime,
    buffer: np.ndarray,
    root: int = 0,
    threshold: float = 1.0,
    segment_id: int = BCAST_SEGMENT_ID,
    queue: int = 0,
    timeout: float = GASPI_BLOCK,
    manage_segment: bool = True,
) -> BroadcastResult:
    """Binomial-spanning-tree broadcast of ``buffer`` from ``root``.

    Parameters
    ----------
    runtime:
        Per-rank GASPI runtime.
    buffer:
        1-D contiguous NumPy array, same length and dtype on every rank.
        On non-root ranks the first ``threshold`` fraction of elements is
        overwritten with the root's data; the rest is left untouched.
    root:
        Broadcasting rank.
    threshold:
        Fraction of the payload (by element count) to ship, in (0, 1].
    segment_id:
        Segment id used as communication workspace (must be free on every
        rank when ``manage_segment`` is true).
    manage_segment:
        When true (default) the function creates and deletes the workspace
        segment and synchronises ranks around those operations.  Set to
        false when the caller (e.g. :class:`repro.core.api.Communicator`)
        manages a persistent workspace.

    Returns
    -------
    BroadcastResult
        Per-rank status, including how many elements were received.
    """
    buffer = _require_vector(buffer)
    require(0 <= root < runtime.size, f"root {root} outside world of {runtime.size}")
    send_elems = threshold_elements(buffer.size, threshold)
    send_bytes = send_elems * buffer.itemsize

    tree = BinomialTree(runtime.size, root)
    rank = runtime.rank
    children = tree.children(rank)
    parent = tree.parent(rank)

    if manage_segment:
        runtime.segment_create(segment_id, max(buffer.nbytes, 8))
        runtime.barrier()

    try:
        staging = runtime.segment_view(segment_id, dtype=buffer.dtype, count=buffer.size)

        if rank == root:
            staging[:send_elems] = buffer[:send_elems]
        else:
            # Wait for the parent's write_notify: GASPI guarantees the data is
            # already visible once the notification is.
            got = runtime.notify_waitsome(segment_id, _NOTIF_DATA, 1, timeout=timeout)
            if got is None:
                raise TimeoutError(
                    f"rank {rank}: broadcast data from parent {parent} did not arrive"
                )
            runtime.notify_reset(segment_id, _NOTIF_DATA)
            buffer[:send_elems] = staging[:send_elems]

        # Forward the (possibly partial) payload down the tree.
        for child in children:
            runtime.write_notify(
                segment_id_local=segment_id,
                offset_local=0,
                target_rank=child,
                segment_id_remote=segment_id,
                offset_remote=0,
                size=send_bytes,
                notification_id=_NOTIF_DATA,
                queue=queue,
            )
        if children:
            runtime.wait(queue)

        # Outer (leaf) nodes acknowledge their parent; inner nodes wait for the
        # acknowledgements of their leaf children (paper: "only acknowledge the
        # data transfer from the outer nodes to their parents; the collective is
        # considered complete when the outer nodes receive data").
        if parent is not None and not children:
            ack_slot = _NOTIF_ACK_BASE + tree.children(parent).index(rank)
            runtime.notify(parent, segment_id, ack_slot, queue=queue)
            runtime.wait(queue)
        leaf_children = [c for c in children if not tree.children(c)]
        for child in leaf_children:
            ack_slot = _NOTIF_ACK_BASE + children.index(child)
            got = runtime.notify_waitsome(segment_id, ack_slot, 1, timeout=timeout)
            if got is None:
                raise TimeoutError(f"rank {rank}: no ack from leaf child {child}")
            runtime.notify_reset(segment_id, ack_slot)
    finally:
        if manage_segment:
            runtime.barrier()
            runtime.segment_delete(segment_id)

    return BroadcastResult(
        rank=rank,
        root=root,
        elements_total=buffer.size,
        elements_received=buffer.size if rank == root else send_elems,
        bytes_received=0 if rank == root else send_bytes,
        threshold=threshold,
        stage=tree.stage_of(rank),
    )


def flat_bcast(
    runtime: GaspiRuntime,
    buffer: np.ndarray,
    root: int = 0,
    threshold: float = 1.0,
    segment_id: int = BCAST_SEGMENT_ID,
    queue: int = 0,
    timeout: float = GASPI_BLOCK,
    manage_segment: bool = True,
) -> BroadcastResult:
    """Flat broadcast: the root issues P-1 ``write_notify`` calls directly.

    Mentioned by the paper as the trivial alternative to the BST; it is the
    better choice only for very small worlds.
    """
    buffer = _require_vector(buffer)
    require(0 <= root < runtime.size, f"root {root} outside world of {runtime.size}")
    send_elems = threshold_elements(buffer.size, threshold)
    send_bytes = send_elems * buffer.itemsize
    rank = runtime.rank

    if manage_segment:
        runtime.segment_create(segment_id, max(buffer.nbytes, 8))
        runtime.barrier()
    try:
        staging = runtime.segment_view(segment_id, dtype=buffer.dtype, count=buffer.size)
        if rank == root:
            staging[:send_elems] = buffer[:send_elems]
            for peer in range(runtime.size):
                if peer == root:
                    continue
                runtime.write_notify(
                    segment_id, 0, peer, segment_id, 0, send_bytes, _NOTIF_DATA, queue=queue
                )
            runtime.wait(queue)
        else:
            got = runtime.notify_waitsome(segment_id, _NOTIF_DATA, 1, timeout=timeout)
            if got is None:
                raise TimeoutError(f"rank {rank}: flat bcast data never arrived")
            runtime.notify_reset(segment_id, _NOTIF_DATA)
            buffer[:send_elems] = staging[:send_elems]
    finally:
        if manage_segment:
            runtime.barrier()
            runtime.segment_delete(segment_id)

    return BroadcastResult(
        rank=rank,
        root=root,
        elements_total=buffer.size,
        elements_received=buffer.size if rank == root else send_elems,
        bytes_received=0 if rank == root else send_bytes,
        threshold=threshold,
        stage=0 if rank == root else 1,
    )


# --------------------------------------------------------------------------- #
# schedule builders (timing simulator / Figure 8)
# --------------------------------------------------------------------------- #
def bst_bcast_schedule(
    num_ranks: int,
    nbytes: int,
    threshold: float = 1.0,
    root: int = 0,
    protocol: Protocol = Protocol.ONESIDED,
    include_acks: bool = True,
    name: str | None = None,
) -> CommunicationSchedule:
    """Communication schedule of the BST broadcast for the timing simulator.

    Round ``s`` carries the messages from every stage-``(s-1)``-or-earlier
    parent to its stage-``s`` children; an optional final round models the
    zero-byte leaf acknowledgements.
    """
    check_fraction(threshold, "threshold")
    require(nbytes >= 0, "nbytes must be non-negative")
    send_bytes = max(1, int(nbytes * threshold)) if nbytes else 0
    tree = BinomialTree(num_ranks, root)
    sched = CommunicationSchedule(
        name=name or f"gaspi_bcast_bst[{int(threshold * 100)}%]",
        num_ranks=num_ranks,
        metadata={
            "threshold": threshold,
            "payload_bytes": nbytes,
            "shipped_bytes": send_bytes,
            "algorithm": "binomial_spanning_tree",
        },
    )
    stages = tree.ranks_by_stage()
    for stage in sorted(s for s in stages if s > 0):
        messages = [
            Message(
                src=tree.parent(child),
                dst=child,
                nbytes=send_bytes,
                protocol=protocol,
                tag=f"bcast-stage-{stage}",
            )
            for child in stages[stage]
        ]
        sched.add_round(messages, label=f"stage-{stage}")
    if include_acks and num_ranks > 1:
        acks = [
            Message(
                src=leaf,
                dst=tree.parent(leaf),
                nbytes=0,
                protocol=protocol,
                tag="bcast-ack",
            )
            for leaf in tree.leaves()
            if tree.parent(leaf) is not None
        ]
        if acks:
            sched.add_round(acks, label="leaf-acks")
    sched.validate()
    return sched


def flat_bcast_schedule(
    num_ranks: int,
    nbytes: int,
    threshold: float = 1.0,
    root: int = 0,
    protocol: Protocol = Protocol.ONESIDED,
    name: str | None = None,
) -> CommunicationSchedule:
    """Schedule of the flat (root-writes-to-everyone) broadcast."""
    check_fraction(threshold, "threshold")
    send_bytes = max(1, int(nbytes * threshold)) if nbytes else 0
    sched = CommunicationSchedule(
        name=name or f"gaspi_bcast_flat[{int(threshold * 100)}%]",
        num_ranks=num_ranks,
        metadata={"threshold": threshold, "payload_bytes": nbytes, "algorithm": "flat"},
    )
    messages = [
        Message(src=root, dst=peer, nbytes=send_bytes, protocol=protocol, tag="bcast-flat")
        for peer in range(num_ranks)
        if peer != root
    ]
    if messages:
        sched.add_round(messages, label="flat")
    sched.validate()
    return sched


def _require_vector(buffer: np.ndarray) -> np.ndarray:
    buffer = np.asarray(buffer)
    # Hot path: one combined check; messages are built only on failure.
    if buffer.ndim != 1 or buffer.size == 0 or not buffer.flags["C_CONTIGUOUS"]:
        require(buffer.ndim == 1, f"broadcast buffer must be 1-D, got shape {buffer.shape}")
        require(buffer.flags["C_CONTIGUOUS"], "broadcast buffer must be C-contiguous")
        require(buffer.size > 0, "broadcast buffer must not be empty")
    return buffer


# --------------------------------------------------------------------------- #
# compiled plans (persistent workspace, zero per-call setup)
# --------------------------------------------------------------------------- #
class BstBcastPlan(CollectivePlan):
    """Compiled BST broadcast: frozen tree, pooled workspace, no barriers.

    The cold path's segment-management barriers also serialise successive
    calls; without them, reuse needs an explicit hand-shake.  This plan
    uses *consume acknowledgements*: every child acks its parent once it
    has (a) copied the payload out of its staging slot and (b) flushed its
    own forwards, and a parent consumes each child's previous-call ack
    immediately before overwriting that child's staging slot.  A parent
    therefore can never clobber an unconsumed slot, however far ahead the
    root races — and unlike a trailing barrier, the ack wait overlaps with
    the next call's compute (MPI persistent-collective style pipelining).
    """

    def __init__(self, runtime, key, segment_id: int, policy) -> None:
        super().__init__(runtime, key, segment_id)
        self.dtype = np.dtype(key.dtype)
        self.elements = key.nbytes // self.dtype.itemsize
        self.send_elems = threshold_elements(self.elements, policy.threshold)
        self.send_bytes = self.send_elems * self.dtype.itemsize
        self.tree = BinomialTree(runtime.size, key.root)
        rank = runtime.rank
        self.children = self.tree.children(rank)
        self.parent = self.tree.parent(rank)
        self.stage = self.tree.stage_of(rank)
        self.parent_ack_slot = (
            None
            if self.parent is None
            else _NOTIF_ACK_BASE + self.tree.children(self.parent).index(rank)
        )
        self.child_ack_slots = [
            _NOTIF_ACK_BASE + i for i in range(len(self.children))
        ]
        self._create_workspace(key.nbytes)
        # The workspace buffer is stable for the plan's lifetime, so the
        # staging view is computed once — zero per-call segment lookups.
        self._staging = runtime.segment_view(
            segment_id, dtype=self.dtype, count=self.elements
        )

    def execute(self, request) -> "CollectiveResult":
        from .policy import CollectiveResult

        buffer = self._check_payload(_require_vector(request.sendbuf), "bcast buffer")
        rt = self.runtime
        rank = rt.rank
        root = self.key.root
        sid = self.segment_id
        queue = request.queue
        timeout = request.timeout
        send = self.send_elems

        if rank == root:
            self._staging[:send] = buffer[:send]
        else:
            got = rt.notify_waitsome(sid, _NOTIF_DATA, 1, timeout=timeout)
            if got is None:
                raise TimeoutError(
                    f"rank {rank}: planned bcast data from parent "
                    f"{self.parent} did not arrive"
                )
            rt.notify_reset(sid, _NOTIF_DATA)
            buffer[:send] = self._staging[:send]

        if self.children:
            if self.calls:
                # Consume each child's previous-call ack before its slot
                # is overwritten (see the class docstring).
                for slot in self.child_ack_slots:
                    got = rt.notify_waitsome(sid, slot, 1, timeout=timeout)
                    if got is None:
                        raise TimeoutError(
                            f"rank {rank}: planned bcast child never acknowledged "
                            f"the previous call"
                        )
                    rt.notify_reset(sid, slot)
            for child in self.children:
                rt.write_notify(
                    segment_id_local=sid,
                    offset_local=0,
                    target_rank=child,
                    segment_id_remote=sid,
                    offset_remote=0,
                    size=self.send_bytes,
                    notification_id=_NOTIF_DATA,
                    queue=queue,
                )
            rt.wait(queue)

        if self.parent is not None:
            # Ack only after wait(queue): the forwards read the staging
            # slot zero-copy, so it must stay stable until they flushed.
            rt.notify(self.parent, sid, self.parent_ack_slot, queue=queue)
            rt.wait(queue)

        self.calls += 1
        detail = BroadcastResult(
            rank=rank,
            root=root,
            elements_total=buffer.size,
            elements_received=buffer.size if rank == root else send,
            bytes_received=0 if rank == root else self.send_bytes,
            threshold=self.key.policy[0],
            stage=self.stage,
        )
        return CollectiveResult(value=request.sendbuf, detail=detail)


class FlatBcastPlan(CollectivePlan):
    """Compiled flat broadcast: root fan-out over a pooled workspace.

    Reuse safety mirrors :class:`BstBcastPlan`: every receiver acks the
    root after copying the payload out, and the root consumes all P-1
    previous-call acks before restaging — the cold path's barriers are
    replaced by one ack round that the root overlaps with its next call.
    """

    def __init__(self, runtime, key, segment_id: int, policy) -> None:
        super().__init__(runtime, key, segment_id)
        self.dtype = np.dtype(key.dtype)
        self.elements = key.nbytes // self.dtype.itemsize
        self.send_elems = threshold_elements(self.elements, policy.threshold)
        self.send_bytes = self.send_elems * self.dtype.itemsize
        rank = runtime.rank
        self.peers = [r for r in range(runtime.size) if r != key.root]
        self.ack_slot = _NOTIF_ACK_BASE + rank
        self.peer_ack_slots = [_NOTIF_ACK_BASE + r for r in self.peers]
        self._create_workspace(key.nbytes)
        self._staging = runtime.segment_view(
            segment_id, dtype=self.dtype, count=self.elements
        )

    def execute(self, request) -> "CollectiveResult":
        from .policy import CollectiveResult

        buffer = self._check_payload(_require_vector(request.sendbuf), "bcast buffer")
        rt = self.runtime
        rank = rt.rank
        root = self.key.root
        sid = self.segment_id
        queue = request.queue
        timeout = request.timeout
        send = self.send_elems

        if rank == root:
            if self.calls:
                for slot in self.peer_ack_slots:
                    got = rt.notify_waitsome(sid, slot, 1, timeout=timeout)
                    if got is None:
                        raise TimeoutError(
                            f"rank {rank}: planned flat bcast peer never "
                            f"acknowledged the previous call"
                        )
                    rt.notify_reset(sid, slot)
            self._staging[:send] = buffer[:send]
            for peer in self.peers:
                rt.write_notify(
                    sid, 0, peer, sid, 0, self.send_bytes, _NOTIF_DATA, queue=queue
                )
            rt.wait(queue)
        else:
            got = rt.notify_waitsome(sid, _NOTIF_DATA, 1, timeout=timeout)
            if got is None:
                raise TimeoutError(f"rank {rank}: planned flat bcast data never arrived")
            rt.notify_reset(sid, _NOTIF_DATA)
            buffer[:send] = self._staging[:send]
            rt.notify(root, sid, self.ack_slot, queue=queue)
            rt.wait(queue)

        self.calls += 1
        detail = BroadcastResult(
            rank=rank,
            root=root,
            elements_total=buffer.size,
            elements_received=buffer.size if rank == root else send,
            bytes_received=0 if rank == root else self.send_bytes,
            threshold=self.key.policy[0],
            stage=0 if rank == root else 1,
        )
        return CollectiveResult(value=request.sendbuf, detail=detail)
