"""Registry of collective algorithms: schedule builders *and* runners.

Every registered :class:`AlgorithmInfo` carries up to three things:

* a **schedule builder** ``builder(num_ranks, nbytes, **kwargs)`` returning
  a :class:`~repro.core.schedule.CommunicationSchedule` for the timing
  simulator (all algorithms have one — it is how the paper's figures are
  regenerated);
* an executable **runner** ``run(runtime, request)`` that performs the
  collective for real on a :class:`~repro.gaspi.runtime.GaspiRuntime`,
  taking a :class:`~repro.core.policy.CollectiveRequest` and returning a
  :class:`~repro.core.policy.CollectiveResult` (the GASPI collectives and
  the functional MPI baselines have one; schedule-only entries raise a
  descriptive error when asked to execute);
* **capability metadata** (:class:`AlgorithmCapabilities`) describing which
  consistency policies, world sizes and dtypes the algorithm accepts, so
  dispatch failures surface as clear errors *before* any communication and
  the tuning tables can skip unsupported candidates.

The user-facing :class:`~repro.core.api.Communicator` routes every
collective through this registry (``algorithm="auto"`` consults the tuning
table in :mod:`repro.core.tuning`); the benchmark harness resolves the
same names, so the two paths cannot diverge.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..utils.validation import is_power_of_two
from .plan import CollectivePlan, PlanKey
from .policy import CollectiveRequest, CollectiveResult, ConsistencyPolicy
from .schedule import CommunicationSchedule

ScheduleBuilder = Callable[..., CommunicationSchedule]
Runner = Callable[..., CollectiveResult]  # runner(runtime, request)
Planner = Callable[..., CollectivePlan]  # planner(runtime, key, segment_id, policy)


@dataclass(frozen=True)
class AlgorithmCapabilities:
    """What a registered algorithm can and cannot do.

    Attributes
    ----------
    supports_threshold:
        Accepts ``policy.threshold < 1`` (the eventually consistent modes).
    modes:
        Threshold interpretations accepted (``"data"`` and/or
        ``"processes"``).
    supports_slack:
        Accepts ``policy.slack > 0`` (the SSP collectives).
    supports_op:
        Honours the reduction-operator argument (reducing collectives).
    min_ranks / max_ranks:
        Valid communicator-size range (``None`` = unbounded above).
    requires_power_of_two:
        World size must be 2^k (hypercube/recursive-doubling algorithms).
    dtype:
        Required element dtype name, when the implementation is fixed to
        one (the two-sided MPI baselines stage float64 envelopes).
    fault_tolerant:
        The algorithm detects non-contributing ranks (notification
        timeouts), completes degraded at the policy's threshold and
        reports :attr:`~repro.core.policy.CollectiveResult.missing_ranks`.
        ``Communicator(..., faults=plan)`` prefers these entries for
        ``algorithm="auto"``, as does any policy with
        ``on_failure="complete"``.
    plannable:
        The algorithm has a plan-compilation entry point
        (:meth:`AlgorithmInfo.plan`): repeated calls with the same shape
        can run through a compiled :class:`~repro.core.plan.CollectivePlan`
        with a pooled workspace and zero per-call setup.  The Communicator
        caches such plans transparently (see
        :meth:`~repro.core.api.Communicator.plan_cache_stats`).
    pipelined:
        The compiled plan is a chunked pipeline
        (:mod:`repro.core.pipeline`): it honours
        ``ConsistencyPolicy.chunk_bytes``, its schedule builder takes a
        ``chunk_bytes`` kwarg, and — because pipelines expose an
        incremental ``begin()`` executor — it can back the nonblocking
        ``ibcast``/``ireduce``/``iallreduce`` API.
    verified:
        The algorithm's compiled plan is covered by the static schedule
        verifier (:mod:`repro.analysis`): ``python -m repro.analysis
        --all`` models it at several rank counts/payloads and checks
        notification matching, deadlock freedom, happens-before data-race
        freedom and notification/offset budgets.  Set for every plannable
        algorithm; schedule-only and cold-path-only entries are not
        modelled and keep the default.
    """

    supports_threshold: bool = False
    modes: Tuple[str, ...] = ("data",)
    supports_slack: bool = False
    supports_op: bool = False
    min_ranks: int = 1
    max_ranks: Optional[int] = None
    requires_power_of_two: bool = False
    dtype: Optional[str] = None
    fault_tolerant: bool = False
    plannable: bool = False
    pipelined: bool = False
    verified: bool = False

    def unsupported_reason(
        self,
        num_ranks: int,
        policy: Optional[ConsistencyPolicy] = None,
        dtype: Optional[np.dtype] = None,
    ) -> Optional[str]:
        """Why a request is unsupported, or ``None`` when it is fine."""
        if num_ranks < self.min_ranks:
            return f"needs at least {self.min_ranks} ranks, got {num_ranks}"
        if self.max_ranks is not None and num_ranks > self.max_ranks:
            return f"supports at most {self.max_ranks} ranks, got {num_ranks}"
        if self.requires_power_of_two and not is_power_of_two(num_ranks):
            return f"requires a power-of-two world size, got {num_ranks}"
        if policy is not None:
            if policy.threshold < 1.0:
                if not self.supports_threshold:
                    return "does not support partial (threshold < 1) delivery"
                if policy.mode.value not in self.modes:
                    return (
                        f"does not support the {policy.mode.value!r} threshold "
                        f"mode (supported: {', '.join(self.modes)})"
                    )
            if policy.slack > 0 and not self.supports_slack:
                return "does not support SSP slack"
        if self.dtype is not None and dtype is not None:
            if np.dtype(dtype) != np.dtype(self.dtype):
                return f"only supports dtype {self.dtype}, got {np.dtype(dtype)}"
        return None


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registered algorithm: identity, builder, runner and capabilities."""

    name: str
    collective: str
    family: str  # "gaspi" or "mpi"
    builder: ScheduleBuilder
    description: str = ""
    runner: Optional[Runner] = None
    capabilities: AlgorithmCapabilities = field(default_factory=AlgorithmCapabilities)
    planner: Optional[Planner] = None

    @property
    def executable(self) -> bool:
        """True when the algorithm has a real ``run`` entry point."""
        return self.runner is not None

    @property
    def plannable(self) -> bool:
        """True when repeated calls can be served by a compiled plan."""
        return self.planner is not None and self.capabilities.plannable

    # ------------------------------------------------------------------ #
    # capability checking
    # ------------------------------------------------------------------ #
    def supports(
        self,
        num_ranks: int,
        policy: Optional[ConsistencyPolicy] = None,
        dtype: Optional[np.dtype] = None,
    ) -> Tuple[bool, str]:
        """(supported?, reason-if-not) for a prospective request."""
        reason = self.capabilities.unsupported_reason(num_ranks, policy, dtype)
        return (reason is None), (reason or "")

    def check_request(
        self,
        num_ranks: int,
        policy: Optional[ConsistencyPolicy] = None,
        dtype: Optional[np.dtype] = None,
    ) -> None:
        """Raise :class:`ValueError` when the algorithm cannot serve this."""
        reason = self.capabilities.unsupported_reason(num_ranks, policy, dtype)
        if reason is not None:
            raise ValueError(f"algorithm {self.name!r} {reason}")

    def schedule_kwargs(self, policy: Optional[ConsistencyPolicy] = None) -> dict:
        """Builder kwargs encoding the policy, for simulation of this entry."""
        if policy is None:
            return {}
        kwargs: dict = {}
        if self.capabilities.supports_threshold:
            kwargs["threshold"] = policy.threshold
            if len(self.capabilities.modes) > 1:
                kwargs["mode"] = policy.mode
        if self.capabilities.pipelined and policy.chunk_bytes is not None:
            kwargs["chunk_bytes"] = policy.chunk_bytes
        return kwargs

    # ------------------------------------------------------------------ #
    def run(
        self,
        runtime,
        request: CollectiveRequest,
        plan: Optional[CollectivePlan] = None,
    ) -> CollectiveResult:
        """Execute the collective for real on ``runtime``.

        Validates capabilities against the world size, policy and payload
        dtype first so misuse fails fast with a clear message instead of a
        deadlocked collective.  When a compiled ``plan`` is supplied (the
        plan-aware entry point) the call runs through
        :meth:`CollectivePlan.execute` — pooled workspace, frozen topology
        and notification layout — instead of the cold runner.
        """
        if plan is None and self.runner is None:
            raise ValueError(
                f"algorithm {self.name!r} is schedule-only (no executable "
                f"runner); simulate it through the benchmark harness instead"
            )
        dtype = None if request.sendbuf is None else np.asarray(request.sendbuf).dtype
        self.check_request(runtime.size, request.policy, dtype)
        if plan is not None:
            result = plan.execute(request)
        else:
            result = self.runner(runtime, request)
        result.algorithm = self.name
        result.policy = request.policy
        return result

    def plan(
        self,
        runtime,
        key: PlanKey,
        segment_id: int,
        policy: ConsistencyPolicy,
    ) -> CollectivePlan:
        """Compile a :class:`CollectivePlan` for ``key`` on this rank.

        Collective: every rank must compile the plan for the same key at
        the same point of its call sequence (plan construction registers
        the pooled workspace and synchronises once).
        """
        if not self.plannable:
            raise ValueError(
                f"algorithm {self.name!r} does not support compiled plans"
            )
        self.check_request(runtime.size, policy, np.dtype(key.dtype))
        return self.planner(runtime, key, segment_id, policy)


class AlgorithmRegistry:
    """Name → :class:`AlgorithmInfo` registry with per-collective listing."""

    def __init__(self) -> None:
        self._algorithms: Dict[str, AlgorithmInfo] = {}

    def register(
        self,
        name: str,
        collective: str,
        family: str,
        builder: ScheduleBuilder,
        description: str = "",
        runner: Optional[Runner] = None,
        capabilities: Optional[AlgorithmCapabilities] = None,
        planner: Optional[Planner] = None,
        overwrite: bool = False,
    ) -> None:
        """Register an algorithm under a unique name."""
        if name in self._algorithms and not overwrite:
            raise ValueError(f"algorithm {name!r} is already registered")
        self._algorithms[name] = AlgorithmInfo(
            name=name,
            collective=collective,
            family=family,
            builder=builder,
            description=description,
            runner=runner,
            capabilities=capabilities or AlgorithmCapabilities(),
            planner=planner,
        )

    def attach_runner(
        self,
        name: str,
        runner: Runner,
        capabilities: Optional[AlgorithmCapabilities] = None,
    ) -> None:
        """Add (or replace) the executable path of an existing entry."""
        info = self.get(name)
        self._algorithms[name] = replace(
            info, runner=runner, capabilities=capabilities or info.capabilities
        )

    def attach_planner(
        self,
        name: str,
        planner: Planner,
        capabilities: Optional[AlgorithmCapabilities] = None,
    ) -> None:
        """Add (or replace) the plan-compilation path of an existing entry."""
        info = self.get(name)
        self._algorithms[name] = replace(
            info, planner=planner, capabilities=capabilities or info.capabilities
        )

    def get(self, name: str) -> AlgorithmInfo:
        try:
            return self._algorithms[name]
        except KeyError as exc:
            known = ", ".join(sorted(self._algorithms)) or "<none>"
            raise KeyError(f"unknown algorithm {name!r}; registered: {known}") from exc

    def build(self, name: str, num_ranks: int, nbytes: int, **kwargs) -> CommunicationSchedule:
        """Build the schedule of a registered algorithm."""
        return self.get(name).builder(num_ranks, nbytes, **kwargs)

    def run(self, name: str, runtime, request: CollectiveRequest) -> CollectiveResult:
        """Execute a registered algorithm for real (capability-checked)."""
        return self.get(name).run(runtime, request)

    def names(
        self,
        collective: Optional[str] = None,
        family: Optional[str] = None,
        executable: Optional[bool] = None,
    ) -> List[str]:
        """Registered names, optionally filtered."""
        out = []
        for name, info in sorted(self._algorithms.items()):
            if collective is not None and info.collective != collective:
                continue
            if family is not None and info.family != family:
                continue
            if executable is not None and info.executable != executable:
                continue
            out.append(name)
        return out

    def __contains__(self, name: object) -> bool:
        return name in self._algorithms

    def __len__(self) -> int:
        return len(self._algorithms)

    def items(self) -> Iterable[AlgorithmInfo]:
        return list(self._algorithms.values())


#: Global registry shared by the Communicator and the benchmark harness.
REGISTRY = AlgorithmRegistry()


# --------------------------------------------------------------------------- #
# runners for the GASPI collectives
# --------------------------------------------------------------------------- #
def _run_bcast_bst(runtime, request: CollectiveRequest) -> CollectiveResult:
    from .bcast import bst_bcast

    detail = bst_bcast(
        runtime,
        request.sendbuf,
        root=request.root,
        threshold=request.policy.threshold,
        segment_id=request.segment_id,
        queue=request.queue,
        timeout=request.timeout,
    )
    return CollectiveResult(value=request.sendbuf, detail=detail)


def _run_bcast_flat(runtime, request: CollectiveRequest) -> CollectiveResult:
    from .bcast import flat_bcast

    detail = flat_bcast(
        runtime,
        request.sendbuf,
        root=request.root,
        threshold=request.policy.threshold,
        segment_id=request.segment_id,
        queue=request.queue,
        timeout=request.timeout,
    )
    return CollectiveResult(value=request.sendbuf, detail=detail)


def _run_reduce_bst(runtime, request: CollectiveRequest) -> CollectiveResult:
    from .reduce import bst_reduce

    detail = bst_reduce(
        runtime,
        request.sendbuf,
        recvbuf=request.recvbuf,
        root=request.root,
        op=request.op,
        threshold=request.policy.threshold,
        mode=request.policy.mode,
        segment_id=request.segment_id,
        queue=request.queue,
        timeout=request.timeout,
    )
    return CollectiveResult(value=request.recvbuf, detail=detail)


def _run_allreduce_ring(runtime, request: CollectiveRequest) -> CollectiveResult:
    from .allreduce_ring import ring_allreduce

    recvbuf = request.recvbuf
    if recvbuf is None:
        recvbuf = np.array(request.sendbuf, copy=True)
    detail = ring_allreduce(
        runtime,
        np.ascontiguousarray(request.sendbuf),
        recvbuf,
        op=request.op,
        segment_id=request.segment_id,
        queue=request.queue,
        timeout=request.timeout,
    )
    return CollectiveResult(value=recvbuf, detail=detail)


def _run_allreduce_hypercube(runtime, request: CollectiveRequest) -> CollectiveResult:
    from .allreduce_ssp import ssp_allreduce_once

    value = ssp_allreduce_once(
        runtime,
        np.ascontiguousarray(request.sendbuf),
        slack=request.policy.slack,
        op=request.op,
        segment_id=request.segment_id,
    )
    if request.recvbuf is not None:
        request.recvbuf[:] = value
        value = request.recvbuf
    return CollectiveResult(value=value)


def _run_alltoall(runtime, request: CollectiveRequest) -> CollectiveResult:
    from .alltoall import alltoall, alltoallv

    if request.send_counts is not None or request.recv_counts is not None:
        value = alltoallv(
            runtime,
            request.sendbuf,
            request.send_counts,
            request.recv_counts,
            request.recvbuf,
            segment_id=request.segment_id,
            queue=request.queue,
            timeout=request.timeout,
        )
    else:
        value = alltoall(
            runtime,
            request.sendbuf,
            request.recvbuf,
            segment_id=request.segment_id,
            queue=request.queue,
            timeout=request.timeout,
        )
    return CollectiveResult(value=value)


def _run_allgather_ring(runtime, request: CollectiveRequest) -> CollectiveResult:
    from .allgather import ring_allgather

    value = ring_allgather(
        runtime,
        request.sendbuf,
        request.recvbuf,
        segment_id=request.segment_id,
        queue=request.queue,
        timeout=request.timeout,
    )
    return CollectiveResult(value=value)


def _run_barrier(runtime, request: CollectiveRequest) -> CollectiveResult:
    from .barrier import notification_barrier

    notification_barrier(runtime, segment_id=request.segment_id, timeout=request.timeout)
    return CollectiveResult(value=None)


# --------------------------------------------------------------------------- #
# planners for the GASPI collectives (compiled-plan entry points)
# --------------------------------------------------------------------------- #
def _plan_bcast_bst(runtime, key, segment_id, policy) -> CollectivePlan:
    from .bcast import BstBcastPlan

    return BstBcastPlan(runtime, key, segment_id, policy)


def _plan_bcast_flat(runtime, key, segment_id, policy) -> CollectivePlan:
    from .bcast import FlatBcastPlan

    return FlatBcastPlan(runtime, key, segment_id, policy)


def _plan_reduce_bst(runtime, key, segment_id, policy) -> CollectivePlan:
    from .reduce import BstReducePlan

    return BstReducePlan(runtime, key, segment_id, policy)


def _plan_allreduce_ring(runtime, key, segment_id, policy) -> CollectivePlan:
    from .allreduce_ring import RingAllreducePlan

    return RingAllreducePlan(runtime, key, segment_id, policy)


def _plan_allreduce_hypercube(runtime, key, segment_id, policy) -> CollectivePlan:
    from .allreduce_ssp import HypercubeAllreducePlan

    return HypercubeAllreducePlan(runtime, key, segment_id, policy)


# --------------------------------------------------------------------------- #
# pipelined (chunked) variants — the large-message data path
# --------------------------------------------------------------------------- #
def _run_bcast_pipelined(runtime, request: CollectiveRequest) -> CollectiveResult:
    from .pipeline import run_pipelined_bcast

    return run_pipelined_bcast(runtime, request)


def _run_reduce_pipelined(runtime, request: CollectiveRequest) -> CollectiveResult:
    from .pipeline import run_pipelined_reduce

    return run_pipelined_reduce(runtime, request)


def _run_allreduce_pipelined(runtime, request: CollectiveRequest) -> CollectiveResult:
    from .pipeline import run_pipelined_allreduce

    return run_pipelined_allreduce(runtime, request)


def _plan_bcast_pipelined(runtime, key, segment_id, policy) -> CollectivePlan:
    from .pipeline import PipelinedBstBcastPlan

    return PipelinedBstBcastPlan(runtime, key, segment_id, policy)


def _plan_reduce_pipelined(runtime, key, segment_id, policy) -> CollectivePlan:
    from .pipeline import PipelinedBstReducePlan

    return PipelinedBstReducePlan(runtime, key, segment_id, policy)


def _plan_allreduce_pipelined(runtime, key, segment_id, policy) -> CollectivePlan:
    from .pipeline import PipelinedRingAllreducePlan

    return PipelinedRingAllreducePlan(runtime, key, segment_id, policy)


def _register_core_algorithms() -> None:
    """Register the GASPI collectives described in the paper."""
    # Import the builder functions explicitly: several submodules (e.g.
    # ``alltoall``) share their name with a function re-exported by
    # ``repro.core``, so ``from . import alltoall`` could resolve to the
    # function once the package __init__ has run.
    from .allgather import ring_allgather_schedule
    from .allreduce_ring import ring_allreduce_schedule
    from .allreduce_ssp import hypercube_allreduce_schedule
    from .alltoall import alltoall_schedule
    from .barrier import dissemination_barrier_schedule
    from .bcast import bst_bcast_schedule, flat_bcast_schedule
    from .reduce import bst_reduce_schedule

    REGISTRY.register(
        "gaspi_bcast_bst",
        collective="bcast",
        family="gaspi",
        builder=bst_bcast_schedule,
        runner=_run_bcast_bst,
        planner=_plan_bcast_bst,
        capabilities=AlgorithmCapabilities(
            supports_threshold=True, modes=("data",), plannable=True, verified=True
        ),
        description="Binomial spanning tree broadcast with data threshold (paper III-B)",
    )
    REGISTRY.register(
        "gaspi_bcast_flat",
        collective="bcast",
        family="gaspi",
        builder=flat_bcast_schedule,
        runner=_run_bcast_flat,
        planner=_plan_bcast_flat,
        capabilities=AlgorithmCapabilities(
            supports_threshold=True, modes=("data",), plannable=True, verified=True
        ),
        description="Flat broadcast: P-1 write_notify calls from the root",
    )
    REGISTRY.register(
        "gaspi_reduce_bst",
        collective="reduce",
        family="gaspi",
        builder=bst_reduce_schedule,
        runner=_run_reduce_bst,
        planner=_plan_reduce_bst,
        capabilities=AlgorithmCapabilities(
            supports_threshold=True,
            modes=("data", "processes"),
            supports_op=True,
            plannable=True,
            verified=True,
        ),
        description="Binomial spanning tree reduce with data/process threshold (paper III-B)",
    )
    REGISTRY.register(
        "gaspi_allreduce_ring",
        collective="allreduce",
        family="gaspi",
        builder=ring_allreduce_schedule,
        runner=_run_allreduce_ring,
        planner=_plan_allreduce_ring,
        capabilities=AlgorithmCapabilities(
            supports_op=True, plannable=True, verified=True
        ),
        description="Segmented pipelined ring allreduce with notifications (paper IV-A)",
    )
    REGISTRY.register(
        "gaspi_allreduce_ssp_hypercube",
        collective="allreduce",
        family="gaspi",
        builder=hypercube_allreduce_schedule,
        runner=_run_allreduce_hypercube,
        planner=_plan_allreduce_hypercube,
        capabilities=AlgorithmCapabilities(
            supports_op=True,
            supports_slack=True,
            requires_power_of_two=True,
            plannable=True,
            verified=True,
        ),
        description="Hypercube allreduce underlying allreduce_SSP (paper III-A)",
    )
    from .pipeline import (
        pipelined_bst_bcast_schedule,
        pipelined_bst_reduce_schedule,
        pipelined_ring_allreduce_schedule,
    )

    REGISTRY.register(
        "gaspi_bcast_bst_pipelined",
        collective="bcast",
        family="gaspi",
        builder=pipelined_bst_bcast_schedule,
        runner=_run_bcast_pipelined,
        planner=_plan_bcast_pipelined,
        capabilities=AlgorithmCapabilities(
            supports_threshold=True,
            modes=("data",),
            plannable=True,
            pipelined=True,
            verified=True,
        ),
        description=(
            "Chunked pipelined BST broadcast: per-chunk notifications, "
            "zero-copy segment_bind data path, overlapped tree levels"
        ),
    )
    REGISTRY.register(
        "gaspi_reduce_bst_pipelined",
        collective="reduce",
        family="gaspi",
        builder=pipelined_bst_reduce_schedule,
        runner=_run_reduce_pipelined,
        planner=_plan_reduce_pipelined,
        capabilities=AlgorithmCapabilities(
            supports_threshold=True,
            modes=("data", "processes"),
            supports_op=True,
            plannable=True,
            pipelined=True,
            verified=True,
        ),
        description=(
            "Chunked pipelined BST reduce: per-chunk folds pushed up the "
            "tree while later chunks arrive"
        ),
    )
    REGISTRY.register(
        "gaspi_allreduce_ring_pipelined",
        collective="allreduce",
        family="gaspi",
        builder=pipelined_ring_allreduce_schedule,
        runner=_run_allreduce_pipelined,
        planner=_plan_allreduce_pipelined,
        capabilities=AlgorithmCapabilities(
            supports_op=True, plannable=True, pipelined=True, verified=True
        ),
        description=(
            "Chunked ring allreduce: multiple in-flight sub-chunk slots, "
            "sends posted straight from the pooled work region"
        ),
    )
    REGISTRY.register(
        "gaspi_alltoall",
        collective="alltoall",
        family="gaspi",
        builder=alltoall_schedule,
        runner=_run_alltoall,
        description="Direct write_notify AlltoAll (paper IV-B)",
    )
    REGISTRY.register(
        "gaspi_allgather_ring",
        collective="allgather",
        family="gaspi",
        builder=ring_allgather_schedule,
        runner=_run_allgather_ring,
        description="Ring allgather (second stage of the pipelined ring allreduce)",
    )
    REGISTRY.register(
        "gaspi_barrier_dissemination",
        collective="barrier",
        family="gaspi",
        builder=lambda num_ranks, nbytes=0, **kw: dissemination_barrier_schedule(
            num_ranks, **kw
        ),
        runner=_run_barrier,
        description="Dissemination barrier built on notifications",
    )


_register_core_algorithms()
