"""Registry of collective algorithms (schedule builders).

The benchmark harness regenerates the paper's figures by asking the
registry for named algorithms ("gaspi_allreduce_ring", "mpi_allreduce_ring",
"mpi_bcast_binomial", …) and simulating their schedules over a machine
model.  Registering by name keeps the per-figure experiment definitions
declarative (collective kind + algorithm names + sweep parameters).

A schedule builder is any callable ``builder(num_ranks, nbytes, **kwargs)``
returning a :class:`~repro.core.schedule.CommunicationSchedule`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from .schedule import CommunicationSchedule

ScheduleBuilder = Callable[..., CommunicationSchedule]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registered algorithm metadata."""

    name: str
    collective: str
    family: str  # "gaspi" or "mpi"
    builder: ScheduleBuilder
    description: str = ""


class AlgorithmRegistry:
    """Name → schedule-builder registry with per-collective listing."""

    def __init__(self) -> None:
        self._algorithms: Dict[str, AlgorithmInfo] = {}

    def register(
        self,
        name: str,
        collective: str,
        family: str,
        builder: ScheduleBuilder,
        description: str = "",
        overwrite: bool = False,
    ) -> None:
        """Register a schedule builder under a unique name."""
        if name in self._algorithms and not overwrite:
            raise ValueError(f"algorithm {name!r} is already registered")
        self._algorithms[name] = AlgorithmInfo(
            name=name,
            collective=collective,
            family=family,
            builder=builder,
            description=description,
        )

    def get(self, name: str) -> AlgorithmInfo:
        try:
            return self._algorithms[name]
        except KeyError as exc:
            known = ", ".join(sorted(self._algorithms)) or "<none>"
            raise KeyError(f"unknown algorithm {name!r}; registered: {known}") from exc

    def build(self, name: str, num_ranks: int, nbytes: int, **kwargs) -> CommunicationSchedule:
        """Build the schedule of a registered algorithm."""
        return self.get(name).builder(num_ranks, nbytes, **kwargs)

    def names(
        self, collective: Optional[str] = None, family: Optional[str] = None
    ) -> List[str]:
        """Registered names, optionally filtered by collective and/or family."""
        out = []
        for name, info in sorted(self._algorithms.items()):
            if collective is not None and info.collective != collective:
                continue
            if family is not None and info.family != family:
                continue
            out.append(name)
        return out

    def __contains__(self, name: object) -> bool:
        return name in self._algorithms

    def __len__(self) -> int:
        return len(self._algorithms)

    def items(self) -> Iterable[AlgorithmInfo]:
        return list(self._algorithms.values())


#: Global registry used by the benchmark harness.
REGISTRY = AlgorithmRegistry()


def _register_core_algorithms() -> None:
    """Register the GASPI collectives described in the paper."""
    # Import the builder functions explicitly: several submodules (e.g.
    # ``alltoall``) share their name with a function re-exported by
    # ``repro.core``, so ``from . import alltoall`` could resolve to the
    # function once the package __init__ has run.
    from .allgather import ring_allgather_schedule
    from .allreduce_ring import ring_allreduce_schedule
    from .allreduce_ssp import hypercube_allreduce_schedule
    from .alltoall import alltoall_schedule
    from .barrier import dissemination_barrier_schedule
    from .bcast import bst_bcast_schedule, flat_bcast_schedule
    from .reduce import bst_reduce_schedule

    REGISTRY.register(
        "gaspi_bcast_bst",
        collective="bcast",
        family="gaspi",
        builder=bst_bcast_schedule,
        description="Binomial spanning tree broadcast with data threshold (paper III-B)",
    )
    REGISTRY.register(
        "gaspi_bcast_flat",
        collective="bcast",
        family="gaspi",
        builder=flat_bcast_schedule,
        description="Flat broadcast: P-1 write_notify calls from the root",
    )
    REGISTRY.register(
        "gaspi_reduce_bst",
        collective="reduce",
        family="gaspi",
        builder=bst_reduce_schedule,
        description="Binomial spanning tree reduce with data/process threshold (paper III-B)",
    )
    REGISTRY.register(
        "gaspi_allreduce_ring",
        collective="allreduce",
        family="gaspi",
        builder=ring_allreduce_schedule,
        description="Segmented pipelined ring allreduce with notifications (paper IV-A)",
    )
    REGISTRY.register(
        "gaspi_allreduce_ssp_hypercube",
        collective="allreduce",
        family="gaspi",
        builder=hypercube_allreduce_schedule,
        description="Hypercube allreduce underlying allreduce_SSP (paper III-A)",
    )
    REGISTRY.register(
        "gaspi_alltoall",
        collective="alltoall",
        family="gaspi",
        builder=alltoall_schedule,
        description="Direct write_notify AlltoAll (paper IV-B)",
    )
    REGISTRY.register(
        "gaspi_allgather_ring",
        collective="allgather",
        family="gaspi",
        builder=ring_allgather_schedule,
        description="Ring allgather (second stage of the pipelined ring allreduce)",
    )
    REGISTRY.register(
        "gaspi_barrier_dissemination",
        collective="barrier",
        family="gaspi",
        builder=lambda num_ranks, nbytes=0, **kw: dissemination_barrier_schedule(
            num_ranks, **kw
        ),
        description="Dissemination barrier built on notifications",
    )


_register_core_algorithms()
