"""First-class consistency policies for the collective API.

The paper's central idea is that a collective should expose a *consistency
dial* rather than a single synchronous semantics: ship only a fraction of
the data (data threshold), engage only a fraction of the processes
(process threshold), or accept bounded-stale contributions (SSP slack).
The seed API scattered these knobs as loose keyword arguments
(``threshold=``, ``mode=``, ``slack=``) across per-collective methods;
this module makes them one value object, :class:`ConsistencyPolicy`, that
every :class:`~repro.core.api.Communicator` collective accepts and every
registered algorithm advertises support for
(:class:`~repro.core.registry.AlgorithmCapabilities`).

The other two dataclasses form the uniform currency of the dispatch path:

* :class:`CollectiveRequest` — everything an executable algorithm needs to
  run one collective (buffers, root, operator, policy, workspace segment);
* :class:`CollectiveResult` — the outcome: the value, the algorithm that
  produced it, the per-algorithm status detail (e.g.
  :class:`~repro.core.bcast.BroadcastResult`) and, when a machine model is
  attached, the simulated :class:`~repro.simulate.executor.SimulationResult`.

``CollectiveResult`` delegates unknown attributes to its ``detail`` so
existing code written against the old per-collective result types
(``result.elements_received``, ``result.participated``, …) keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..gaspi.constants import GASPI_BLOCK
from ..utils.validation import check_fraction, require
from .reduce import ReduceMode
from .reduction_ops import ReductionOp


@dataclass(frozen=True)
class ConsistencyPolicy:
    """The paper's consistency dial as a single immutable value object.

    Attributes
    ----------
    threshold:
        Fraction in ``(0, 1]`` of the data (``mode="data"``) or of the
        processes (``mode="processes"``) a collective must cover before it
        is considered complete.  ``1.0`` is the fully consistent behaviour.
    mode:
        What the threshold applies to: :data:`ReduceMode.DATA` ships only
        the leading fraction of every vector (paper Figures 8 & 9);
        :data:`ReduceMode.PROCESSES` ships full vectors but lets the ranks
        farthest from the root stay silent (Figure 10).
    slack:
        Stale Synchronous Parallelism slack in iterations for the SSP
        collectives (paper Algorithm 1); ``0`` means fully synchronous.
    on_failure:
        What a fault-tolerant collective does when, after its detection
        timeout, fewer contributors than the threshold requires have
        arrived: ``"abort"`` (the default) raises
        :class:`~repro.faults.recovery.DegradedCollectiveError`;
        ``"complete"`` publishes the degraded result anyway, with the
        absent ranks recorded in
        :attr:`CollectiveResult.missing_ranks`.  Algorithms without the
        ``fault_tolerant`` capability ignore this field.
    chunk_bytes:
        Chunk size (bytes) of the pipelined chunked data path.  ``None``
        (the default) lets the tuning tables pick a payload-dependent
        size (:func:`~repro.core.tuning.select_chunk_bytes`); an explicit
        value overrides them, e.g. to force fine-grained chunks for a
        nonblocking overlap loop.  Algorithms without a pipelined
        implementation ignore this field.
    """

    threshold: float = 1.0
    mode: ReduceMode = ReduceMode.DATA
    slack: int = 0
    on_failure: str = "abort"
    chunk_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        check_fraction(self.threshold, "policy threshold")
        object.__setattr__(self, "mode", ReduceMode(self.mode))
        require(
            isinstance(self.slack, (int, np.integer)) and self.slack >= 0,
            f"policy slack must be a non-negative integer, got {self.slack!r}",
        )
        object.__setattr__(self, "slack", int(self.slack))
        require(
            self.on_failure in ("abort", "complete"),
            f"policy on_failure must be 'abort' or 'complete', got "
            f"{self.on_failure!r}",
        )
        if self.chunk_bytes is not None:
            require(
                isinstance(self.chunk_bytes, (int, np.integer))
                and self.chunk_bytes > 0,
                f"policy chunk_bytes must be a positive integer or None, "
                f"got {self.chunk_bytes!r}",
            )
            object.__setattr__(self, "chunk_bytes", int(self.chunk_bytes))

    # ------------------------------------------------------------------ #
    # constructors for the three dial positions
    # ------------------------------------------------------------------ #
    @classmethod
    def strict(cls) -> "ConsistencyPolicy":
        """Fully consistent: all data, all processes, zero slack."""
        return cls()

    @classmethod
    def data_threshold(
        cls, threshold: float, on_failure: str = "abort"
    ) -> "ConsistencyPolicy":
        """Eventually consistent in the data: ship the leading fraction."""
        return cls(threshold=threshold, mode=ReduceMode.DATA, on_failure=on_failure)

    @classmethod
    def process_threshold(
        cls, threshold: float, on_failure: str = "abort"
    ) -> "ConsistencyPolicy":
        """Eventually consistent in the processes: a rank subset reduces."""
        return cls(
            threshold=threshold, mode=ReduceMode.PROCESSES, on_failure=on_failure
        )

    @classmethod
    def ssp(cls, slack: int) -> "ConsistencyPolicy":
        """Stale-synchronous: accept contributions up to ``slack`` old."""
        return cls(slack=slack)

    def with_chunk_bytes(self, chunk_bytes: Optional[int]) -> "ConsistencyPolicy":
        """Copy of this policy with an explicit pipeline chunk size."""
        return ConsistencyPolicy(
            threshold=self.threshold,
            mode=self.mode,
            slack=self.slack,
            on_failure=self.on_failure,
            chunk_bytes=chunk_bytes,
        )

    # ------------------------------------------------------------------ #
    @property
    def is_strict(self) -> bool:
        """True when this policy requests the fully consistent semantics."""
        return self.threshold >= 1.0 and self.slack == 0

    def describe(self) -> str:
        """Short human-readable form used in error messages and reports."""
        if self.is_strict and self.on_failure == "abort" and self.chunk_bytes is None:
            return "strict"
        if self.is_strict and self.chunk_bytes is None:
            return f"strict, on_failure={self.on_failure}"
        parts = []
        if self.threshold < 1.0:
            parts.append(f"{int(self.threshold * 100)}% {self.mode.value}")
        if self.slack > 0:
            parts.append(f"slack={self.slack}")
        if self.on_failure != "abort":
            parts.append(f"on_failure={self.on_failure}")
        if self.chunk_bytes is not None:
            parts.append(f"chunk_bytes={self.chunk_bytes}")
        return ", ".join(parts) or "strict"


#: The default policy used when a collective is called without one.
STRICT = ConsistencyPolicy()


def check_policy(policy: object) -> None:
    """Reject non-policy values early with a migration hint.

    Catches v1-style positional calls (``comm.bcast(buf, 0, 0.25)``) where
    a bare threshold float lands in the ``policy`` parameter — without
    this, the mistake surfaces as an AttributeError deep in capability
    checking.
    """
    if not isinstance(policy, ConsistencyPolicy):
        raise TypeError(
            f"policy must be a ConsistencyPolicy, got {policy!r}; a bare "
            f"threshold is no longer accepted positionally — pass "
            f"policy=ConsistencyPolicy.data_threshold(...) instead"
        )


def coerce_policy(
    policy: Optional[ConsistencyPolicy],
    threshold: Optional[float] = None,
    mode: Optional[ReduceMode | str] = None,
    slack: Optional[int] = None,
) -> ConsistencyPolicy:
    """Merge a policy object with legacy loose kwargs into one policy.

    The deprecated per-call kwargs (``threshold=``, ``mode=``, ``slack=``)
    may not be combined with an explicit ``policy`` — that would make the
    effective consistency ambiguous.
    """
    loose = {
        k: v
        for k, v in (("threshold", threshold), ("mode", mode), ("slack", slack))
        if v is not None
    }
    if policy is not None:
        check_policy(policy)
        require(
            not loose,
            f"pass either policy= or the legacy kwargs {sorted(loose)}, not both",
        )
        return policy
    if not loose:
        return STRICT
    return ConsistencyPolicy(
        threshold=threshold if threshold is not None else 1.0,
        mode=ReduceMode(mode) if mode is not None else ReduceMode.DATA,
        slack=slack if slack is not None else 0,
    )


@dataclass
class CollectiveRequest:
    """One collective invocation, as handed to a registered algorithm.

    The request is backend-agnostic: the threaded runners execute it with
    real data movement, while the simulator backend additionally replays
    the algorithm's communication schedule on a machine model.
    """

    collective: str
    sendbuf: Optional[np.ndarray] = None
    recvbuf: Optional[np.ndarray] = None
    root: int = 0
    op: str | ReductionOp = "sum"
    policy: ConsistencyPolicy = field(default_factory=ConsistencyPolicy)
    send_counts: Optional[Sequence[int]] = None
    recv_counts: Optional[Sequence[int]] = None
    segment_id: int = 0
    queue: int = 0
    timeout: float = GASPI_BLOCK
    #: Plan-instance tag: requests with different tags never share a
    #: compiled plan, so several same-shape nonblocking collectives (the
    #: per-bucket gradient exchanges of the ML overlap path) can be in
    #: flight concurrently, each on its own workspace and notification
    #: space.
    tag: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (0 for data-free collectives)."""
        if self.sendbuf is None:
            return 0
        return int(np.asarray(self.sendbuf).nbytes)


@dataclass
class CollectiveResult:
    """Outcome of one dispatched collective on one rank.

    Attributes
    ----------
    value:
        The rank's output buffer (``None`` for pure synchronisation).
    algorithm:
        Registry name of the algorithm that actually ran — with
        ``algorithm="auto"`` this records the tuning table's choice.
    policy:
        The effective consistency policy.
    detail:
        The algorithm's own status object (:class:`BroadcastResult`,
        :class:`ReduceResult`, :class:`RingAllreduceStats`, …).
    simulated:
        :class:`~repro.simulate.executor.SimulationResult` of the
        algorithm's schedule when the communicator carries a machine
        model; ``None`` otherwise.
    missing_ranks:
        Ranks whose contribution never arrived before a fault-tolerant
        collective completed (empty for ordinary collectives).  The
        per-algorithm ``detail`` (:class:`~repro.faults.recovery.DegradedResult`)
        carries the matching correction handle.
    """

    value: Optional[np.ndarray]
    algorithm: str = ""
    policy: ConsistencyPolicy = field(default_factory=ConsistencyPolicy)
    detail: Any = None
    simulated: Any = None
    missing_ranks: Tuple[int, ...] = ()

    @property
    def simulated_seconds(self) -> Optional[float]:
        """Simulated completion time, when a machine model was attached."""
        return None if self.simulated is None else self.simulated.total_time

    def __getattr__(self, name: str) -> Any:
        # Delegate unknown attributes to the per-algorithm detail object so
        # callers written against the old result types keep working
        # (e.g. ``result.elements_received`` on a broadcast).
        detail = object.__getattribute__(self, "detail")
        if detail is not None and not name.startswith("_"):
            try:
                return getattr(detail, name)
            except AttributeError:
                pass
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r} "
            f"(detail is {type(detail).__name__!r})"
        )
