"""Dissemination barrier built on GASPI notifications.

The related-work section of the paper points to the Hensgen/Finkel/Manber
dissemination algorithm (used e.g. by MPICH barriers).  This module
implements it with pure notification traffic: in round ``k`` each rank
notifies ``(rank + 2**k) mod P`` and waits for the notification from
``(rank - 2**k) mod P``.  After ``⌈log2 P⌉`` rounds every rank has
(transitively) heard from every other rank.

The implementation is reusable: each instance owns a tiny segment whose
notification slots encode ``(generation, round)`` so back-to-back barriers
do not confuse each other.
"""

from __future__ import annotations

from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import ceil_log2, require
from .schedule import CommunicationSchedule, Message, Protocol
from .topology import dissemination_schedule

#: Default segment id used by the notification barrier.
BARRIER_SEGMENT_ID = 150

#: Number of barrier generations tracked before notification ids wrap.
_GENERATIONS = 4


class NotificationBarrier:
    """Reusable dissemination barrier over all ranks."""

    def __init__(
        self,
        runtime: GaspiRuntime,
        segment_id: int = BARRIER_SEGMENT_ID,
        queue: int = 0,
    ) -> None:
        self.runtime = runtime
        self.segment_id = int(segment_id)
        self.queue = int(queue)
        self.rounds = ceil_log2(runtime.size) if runtime.size > 1 else 0
        self.generation = 0
        # The segment only exists to carry notifications; 8 bytes suffice.
        runtime.segment_create(self.segment_id, 8)
        runtime.barrier()
        self._closed = False

    def wait(self, timeout: float = GASPI_BLOCK) -> None:
        """Enter the barrier; returns when every rank has entered it."""
        if self._closed:
            raise RuntimeError("barrier already closed")
        rank = self.runtime.rank
        size = self.runtime.size
        if size == 1:
            self.generation += 1
            return
        gen_slot = self.generation % _GENERATIONS
        for step in dissemination_schedule(size, rank):
            notif = gen_slot * self.rounds + step.round_index
            self.runtime.notify(step.send_to, self.segment_id, notif, queue=self.queue)
            self.runtime.wait(self.queue)
            got = self.runtime.notify_waitsome(self.segment_id, notif, 1, timeout=timeout)
            if got is None:
                raise TimeoutError(
                    f"rank {rank}: dissemination barrier round {step.round_index} "
                    f"timed out waiting for rank {step.recv_from}"
                )
            self.runtime.notify_reset(self.segment_id, got)
        self.generation += 1

    def close(self) -> None:
        """Release the barrier segment (collective)."""
        if self._closed:
            return
        self.runtime.barrier()
        self.runtime.segment_delete(self.segment_id)
        self._closed = True

    def __enter__(self) -> "NotificationBarrier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def notification_barrier(
    runtime: GaspiRuntime,
    segment_id: int = BARRIER_SEGMENT_ID,
    timeout: float = GASPI_BLOCK,
) -> None:
    """One-shot dissemination barrier (constructs and tears down its state)."""
    barrier = NotificationBarrier(runtime, segment_id=segment_id)
    try:
        barrier.wait(timeout=timeout)
    finally:
        barrier.close()


def dissemination_barrier_schedule(
    num_ranks: int,
    protocol: Protocol = Protocol.ONESIDED,
    name: str | None = None,
) -> CommunicationSchedule:
    """Schedule of the dissemination barrier (zero-byte messages)."""
    require(num_ranks >= 1, "num_ranks must be >= 1")
    sched = CommunicationSchedule(
        name=name or "gaspi_barrier_dissemination",
        num_ranks=num_ranks,
        metadata={"algorithm": "dissemination"},
    )
    rounds = ceil_log2(num_ranks) if num_ranks > 1 else 0
    for k in range(rounds):
        dist = 1 << k
        sched.add_round(
            [
                Message(
                    src=rank,
                    dst=(rank + dist) % num_ranks,
                    nbytes=0,
                    protocol=protocol,
                    tag=f"barrier-round-{k}",
                )
                for rank in range(num_ranks)
            ],
            label=f"round-{k}",
        )
    sched.validate()
    return sched
