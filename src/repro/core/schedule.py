"""Communication schedules: the timing-simulator view of a collective.

Every collective in :mod:`repro.core` and every MPI baseline in
:mod:`repro.mpi` can export its communication pattern as a
:class:`CommunicationSchedule` — an ordered list of rounds, each round a
list of point-to-point :class:`Message` transfers plus optional reduction
work at the receiver.  The timing simulator
(:mod:`repro.simulate.executor`) replays a schedule on a machine model to
estimate the collective's completion time; the figure benchmarks compare
schedules of the GASPI collectives against the MPI baselines exactly the
way the paper compares implementations.

The schedule is *data*, not code: it is derived from the same topology
helpers the functional implementations use, so the simulated pattern is the
pattern the threaded runtime actually executes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..utils.validation import require


class Protocol(enum.Enum):
    """Transfer protocol, which determines the simulator cost model.

    * ``ONESIDED`` — GASPI ``write_notify``: the sender does not block on the
      receiver; completion at the receiver is detected through a
      notification (cheap).
    * ``TWOSIDED`` — MPI send/recv: message matching overhead at both sides
      and, above the eager threshold, a rendezvous handshake that couples
      sender and receiver.
    """

    ONESIDED = "onesided"
    TWOSIDED = "twosided"


@dataclass(frozen=True)
class Message:
    """One point-to-point transfer inside a round.

    Attributes
    ----------
    src, dst:
        Global ranks of the producer and consumer.
    nbytes:
        Payload size in bytes (0 is allowed: a pure notification/ack).
    protocol:
        One-sided (GASPI) or two-sided (MPI) semantics.
    reduce_bytes:
        Number of payload bytes the *receiver* combines into a local
        accumulator upon arrival (drives the compute term of the model).
    tag:
        Free-form label used in traces ("scatter-reduce", "bcast-stage-2", …).
    """

    src: int
    dst: int
    nbytes: int
    protocol: Protocol = Protocol.ONESIDED
    reduce_bytes: int = 0
    tag: str = ""

    def __post_init__(self) -> None:
        require(self.src >= 0 and self.dst >= 0, "ranks must be non-negative")
        require(self.src != self.dst, f"self-message on rank {self.src} not allowed")
        require(self.nbytes >= 0, f"nbytes must be >= 0, got {self.nbytes}")
        require(self.reduce_bytes >= 0, "reduce_bytes must be >= 0")


@dataclass(frozen=True)
class LocalCompute:
    """Purely local work performed by one rank within a round (no transfer)."""

    rank: int
    compute_bytes: int
    tag: str = ""

    def __post_init__(self) -> None:
        require(self.rank >= 0, "rank must be non-negative")
        require(self.compute_bytes >= 0, "compute_bytes must be >= 0")


@dataclass
class Round:
    """One round of a schedule: messages that may proceed concurrently.

    A rank participating in round ``k`` may not start its round-``k``
    operations before it finished its operations of rounds ``< k``; ranks
    that do not appear in a round are unaffected by it.
    """

    messages: List[Message] = field(default_factory=list)
    local_compute: List[LocalCompute] = field(default_factory=list)
    #: If true, every rank of the schedule synchronises at the end of this
    #: round (models the global phase barriers the paper removes from the
    #: MPI ring Allreduce).
    barrier_after: bool = False
    label: str = ""

    def participants(self) -> set[int]:
        ranks: set[int] = set()
        for m in self.messages:
            ranks.add(m.src)
            ranks.add(m.dst)
        for c in self.local_compute:
            ranks.add(c.rank)
        return ranks

    def total_bytes(self) -> int:
        return sum(m.nbytes for m in self.messages)


@dataclass
class CommunicationSchedule:
    """A named, ordered sequence of rounds over ``num_ranks`` processes."""

    name: str
    num_ranks: int
    rounds: List[Round] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- construction ----------------------------------------------------- #
    def add_round(
        self,
        messages: Iterable[Message] = (),
        local_compute: Iterable[LocalCompute] = (),
        barrier_after: bool = False,
        label: str = "",
    ) -> Round:
        """Append a round and return it."""
        rnd = Round(
            messages=list(messages),
            local_compute=list(local_compute),
            barrier_after=barrier_after,
            label=label,
        )
        self.rounds.append(rnd)
        return rnd

    # -- inspection -------------------------------------------------------- #
    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def messages(self) -> Iterator[Message]:
        """Iterate over every message of every round, in round order."""
        for rnd in self.rounds:
            yield from rnd.messages

    def total_bytes(self) -> int:
        """Total payload bytes moved by the collective."""
        return sum(rnd.total_bytes() for rnd in self.rounds)

    def total_messages(self) -> int:
        return sum(len(rnd.messages) for rnd in self.rounds)

    def bytes_sent_by(self, rank: int) -> int:
        return sum(m.nbytes for m in self.messages() if m.src == rank)

    def bytes_received_by(self, rank: int) -> int:
        return sum(m.nbytes for m in self.messages() if m.dst == rank)

    def max_rank_used(self) -> int:
        ranks = [0]
        for rnd in self.rounds:
            parts = rnd.participants()
            if parts:
                ranks.append(max(parts))
        return max(ranks)

    def participants(self) -> set[int]:
        """All ranks that appear in at least one round."""
        ranks: set[int] = set()
        for rnd in self.rounds:
            ranks |= rnd.participants()
        return ranks

    # -- validation -------------------------------------------------------- #
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValueError` on violation.

        Invariants:

        * every rank referenced by a message/compute is < ``num_ranks``;
        * payload sizes are non-negative (enforced at construction);
        * ``reduce_bytes`` never exceeds the message payload.
        """
        require(self.num_ranks >= 1, "schedule needs at least one rank")
        for i, rnd in enumerate(self.rounds):
            for m in rnd.messages:
                require(
                    m.src < self.num_ranks and m.dst < self.num_ranks,
                    f"round {i}: message {m} references rank >= {self.num_ranks}",
                )
                require(
                    m.reduce_bytes <= m.nbytes,
                    f"round {i}: reduce_bytes {m.reduce_bytes} exceeds payload {m.nbytes}",
                )
            for c in rnd.local_compute:
                require(
                    c.rank < self.num_ranks,
                    f"round {i}: local compute references rank {c.rank} >= {self.num_ranks}",
                )

    def describe(self) -> str:
        """Short human-readable summary used by reports and examples."""
        lines = [
            f"schedule {self.name!r}: {self.num_ranks} ranks, "
            f"{self.num_rounds} rounds, {self.total_messages()} messages, "
            f"{self.total_bytes()} bytes"
        ]
        for i, rnd in enumerate(self.rounds):
            lines.append(
                f"  round {i:3d} [{rnd.label or '-'}]: "
                f"{len(rnd.messages)} msgs, {rnd.total_bytes()} bytes"
                + (", barrier" if rnd.barrier_after else "")
            )
        return "\n".join(lines)


def merge_sequential(
    name: str, schedules: Sequence[CommunicationSchedule], barrier_between: bool = False
) -> CommunicationSchedule:
    """Concatenate schedules back-to-back (e.g. Reduce followed by Bcast).

    All inputs must agree on ``num_ranks``.  With ``barrier_between`` a
    global synchronisation is inserted after each component, modelling MPI
    composite collectives that complete one phase before the next.
    """
    require(len(schedules) >= 1, "need at least one schedule to merge")
    num_ranks = schedules[0].num_ranks
    for s in schedules:
        require(
            s.num_ranks == num_ranks,
            f"cannot merge schedules over different worlds: {s.num_ranks} vs {num_ranks}",
        )
    merged = CommunicationSchedule(name=name, num_ranks=num_ranks)
    for idx, s in enumerate(schedules):
        for rnd in s.rounds:
            merged.rounds.append(
                Round(
                    messages=list(rnd.messages),
                    local_compute=list(rnd.local_compute),
                    barrier_after=rnd.barrier_after,
                    label=f"{s.name}:{rnd.label}" if rnd.label else s.name,
                )
            )
        if barrier_between and idx < len(schedules) - 1 and merged.rounds:
            merged.rounds[-1].barrier_after = True
        merged.metadata[f"component_{idx}"] = s.name
    return merged
