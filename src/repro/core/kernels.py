"""Vectorized reduction kernels for the collective hot path.

Receiver-side reductions are the per-element compute of every reducing
collective: the BST reduce folds child slots into an accumulator, the
pipelined ring reduces one incoming chunk per step, the SSP hypercube
reduces the partner mailbox, and the tolerant flat exchanges fold every
live peer's slot.  The seed implementation routed all of them through
``ReductionOp.reduce_into``, which evaluated ``op(acc, contrib)`` into a
*temporary* array and then copied it back — one full-size allocation plus
an extra pass over the data per fold.

This module provides allocation-free kernels instead:

* built-in operators (sum/prod/min/max) are NumPy *ufuncs*, so the fold is
  a single ``ufunc(acc, contrib, out=acc)`` call — one fused pass, no
  temporary;
* contributions may be any contiguous view — in particular a raw
  :meth:`~repro.gaspi.runtime.GaspiRuntime.segment_view` slice — so a
  receiver can reduce straight out of its registered segment without
  first materialising a copy (the zero-copy receive path);
* non-ufunc user-defined operators transparently fall back to the generic
  evaluate-and-copy path, so :func:`repro.core.reduction_ops.register_op`
  extensions keep working unchanged.

``reduce.py``, ``allreduce_ring.py``, ``allreduce_ssp.py`` and the
tolerant variants in ``faults/recovery.py`` all fold through here (via
:meth:`ReductionOp.reduce_into`, which delegates to :func:`reduce_into`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (reduction_ops)
    from .reduction_ops import ReductionOp


def is_vectorizable(func: object) -> bool:
    """True when ``func`` is a binary ufunc usable as an in-place kernel."""
    return isinstance(func, np.ufunc) and func.nin == 2 and func.nout == 1


def reduce_into(
    op: "ReductionOp",
    accumulator: np.ndarray,
    contribution: np.ndarray,
) -> np.ndarray:
    """In-place ``accumulator = op(accumulator, contribution)``, no temporary.

    ``contribution`` may be a plain array or a segment view; it is never
    modified.  Returns ``accumulator`` for chaining.
    """
    func = op.func
    if is_vectorizable(func):
        func(accumulator, contribution, out=accumulator)
    else:
        # Generic operators may return a fresh array of any compatible
        # dtype; copyto applies NumPy's same-kind casting back into place.
        np.copyto(accumulator, func(accumulator, contribution))
    return accumulator


def fold(
    op: "ReductionOp",
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Fused ``out = op(a, b)`` — one ufunc pass, no temporary.

    Unlike :func:`reduce_into` this writes to a *third* destination, which
    lets the pipelined reduce fuse copies away entirely: the first fold of
    a chunk reads straight from the caller's ``sendbuf`` (instead of
    pre-copying it into the accumulator), and the last fold at the root
    lands straight in ``recvbuf``.  ``out`` may alias ``a``.
    """
    func = op.func
    if is_vectorizable(func):
        func(a, b, out=out)
    else:
        np.copyto(out, func(a, b))
    return out


def reduce_from_segment(
    op: "ReductionOp",
    accumulator: np.ndarray,
    runtime,
    segment_id: int,
    offset: int,
    count: int,
) -> np.ndarray:
    """Fold a segment slice into ``accumulator`` without copying it out.

    Safe whenever the slice is quiescent — i.e. the notification covering
    the slice has been consumed, so no concurrent remote write can land in
    it (the GASPI visibility guarantee).  Callers that cannot rule out a
    concurrent writer must use ``segment_read`` (copying) instead.
    """
    view = runtime.segment_view(
        segment_id, dtype=accumulator.dtype, offset=offset, count=count
    )
    return reduce_into(op, accumulator, view)


def fold_slots(
    op: "ReductionOp",
    accumulator: np.ndarray,
    slots: Union[np.ndarray, list],
) -> np.ndarray:
    """Fold a sequence of equally-shaped contributions into ``accumulator``.

    Used by flat (rank-slot-indexed) exchanges that collected several
    contributions before reducing.  A 2-D array folds row by row through
    the same in-place kernel.
    """
    for slot in slots:
        reduce_into(op, accumulator, slot)
    return accumulator
