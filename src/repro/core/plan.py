"""Compiled collective plans: the persistent fast path of the hot loop.

The paper's pitch is *efficient* eventually consistent collectives, but a
naive dispatch re-derives everything per call: topology objects are
rebuilt, a workspace segment is registered and torn down (two barriers!),
notification layouts are recomputed and the simulator schedule is rebuilt
— for every single ``comm.allreduce(x)`` of an iterative application.
Production MPI amortises exactly this setup through *persistent*
(initialised) collectives; this module brings the same idea here.

A :class:`CollectivePlan` freezes, for one :class:`PlanKey` — the tuple
``(collective, algorithm, world size, root, payload bytes, dtype, op,
policy fingerprint)`` — everything about a collective that does not depend
on the payload *values*:

* the topology (binomial tree / ring / hypercube neighbour lists),
* the per-round send/receive offsets and the notification-id layout,
* the communication schedule for the simulator backend (built once), and
* a pooled workspace segment, registered once and reused by every call.

Concrete plans live next to their algorithms
(:class:`~repro.core.bcast.BstBcastPlan`,
:class:`~repro.core.reduce.BstReducePlan`,
:class:`~repro.core.allreduce_ring.RingAllreducePlan`, …) and are built
through the registry's planner entry points
(:meth:`~repro.core.registry.AlgorithmInfo.plan`).  The
:class:`~repro.core.api.Communicator` keeps them in a bounded
:class:`PlanCache` (transparent LRU; hits observable through
:meth:`~repro.core.api.Communicator.plan_cache_stats`), and exposes an
explicit MPI-persistent-style handle API via
:meth:`~repro.core.api.Communicator.persistent`.

Plan reuse changes the synchronisation structure: the cold path brackets
every call with segment-management barriers, which also serialise
successive calls.  Planned executors must therefore be *self-synchronising
across calls* — each plan documents its reuse argument (consume-ack
handshakes for the broadcast fan-out, the ready/ack handshake of the BST
reduce, the ring's transitive step dependency, SSP's logical clocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..gaspi.errors import GaspiError
from ..utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from ..gaspi.runtime import GaspiRuntime
    from .policy import CollectiveRequest, CollectiveResult, ConsistencyPolicy
    from .registry import AlgorithmInfo
    from .schedule import CommunicationSchedule


# --------------------------------------------------------------------------- #
# plan identity
# --------------------------------------------------------------------------- #
PolicyFingerprint = Tuple[float, str, int, str, Optional[int]]


def policy_fingerprint(policy: "ConsistencyPolicy") -> PolicyFingerprint:
    """Hashable fingerprint of the consistency dial a plan is frozen for.

    Includes the pipeline chunk size: two calls that differ only in
    ``chunk_bytes`` freeze different chunk layouts and notification maps,
    so they must not share a compiled plan.
    """
    return (
        policy.threshold,
        policy.mode.value,
        policy.slack,
        policy.on_failure,
        policy.chunk_bytes,
    )


def policy_from_fingerprint(fingerprint: PolicyFingerprint) -> "ConsistencyPolicy":
    """Rebuild the :class:`ConsistencyPolicy` a fingerprint was taken from."""
    from .policy import ConsistencyPolicy
    from .reduce import ReduceMode

    threshold, mode, slack, on_failure, chunk_bytes = fingerprint
    return ConsistencyPolicy(
        threshold=threshold,
        mode=ReduceMode(mode),
        slack=slack,
        on_failure=on_failure,
        chunk_bytes=chunk_bytes,
    )


@dataclass(frozen=True)
class PlanKey:
    """Everything that determines a compiled plan, and nothing else.

    Two requests with equal keys are served by the same plan: identical
    topology, offsets, notification layout, workspace and schedule.  The
    payload *values* are deliberately absent — they are the only thing a
    planned call still moves.
    """

    collective: str
    algorithm: str
    size: int
    root: int
    nbytes: int
    dtype: str
    op: str
    policy: PolicyFingerprint
    #: Plan-instance tag (:attr:`CollectiveRequest.tag`): distinct tags
    #: compile distinct plans, giving concurrent nonblocking requests of
    #: the same shape disjoint workspaces.
    tag: int = 0

    @classmethod
    def from_request(
        cls, info: "AlgorithmInfo", runtime: "GaspiRuntime", request: "CollectiveRequest"
    ) -> Optional["PlanKey"]:
        """Key of the plan serving ``request``, or ``None`` if unplannable.

        Data-free requests (barriers) and non-array payloads cannot be
        keyed and fall back to the cold path.
        """
        if request.sendbuf is None:
            return None
        sendbuf = np.asarray(request.sendbuf)
        if sendbuf.size == 0:
            return None
        from .reduction_ops import get_op

        try:
            op_name = get_op(request.op).name
        except ValueError:
            return None
        return cls(
            collective=info.collective,
            algorithm=info.name,
            size=runtime.size,
            root=int(request.root),
            nbytes=int(sendbuf.nbytes),
            dtype=sendbuf.dtype.str,
            op=op_name,
            policy=policy_fingerprint(request.policy),
            tag=int(request.tag),
        )

    # ------------------------------------------------------------------ #
    # serialization (checkpoint snapshots)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form of the key (used by elastic checkpoints)."""
        return {
            "collective": self.collective,
            "algorithm": self.algorithm,
            "size": self.size,
            "root": self.root,
            "nbytes": self.nbytes,
            "dtype": self.dtype,
            "op": self.op,
            "policy": list(self.policy),
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PlanKey":
        """Rebuild a key from :meth:`to_dict` output (JSON round-trip safe).

        The policy fingerprint travels as a JSON list; it is coerced back
        to the canonical tuple form so the rebuilt key hashes and compares
        equal to the original.
        """
        threshold, mode, slack, on_failure, chunk_bytes = data["policy"]
        fingerprint: PolicyFingerprint = (
            float(threshold),
            str(mode),
            int(slack),
            str(on_failure),
            None if chunk_bytes is None else int(chunk_bytes),
        )
        return cls(
            collective=str(data["collective"]),
            algorithm=str(data["algorithm"]),
            size=int(data["size"]),
            root=int(data["root"]),
            nbytes=int(data["nbytes"]),
            dtype=str(data["dtype"]),
            op=str(data["op"]),
            policy=fingerprint,
            tag=int(data.get("tag", 0)),
        )


# --------------------------------------------------------------------------- #
# plan base class
# --------------------------------------------------------------------------- #
class CollectivePlan:
    """Base class of compiled collectives: pooled workspace + frozen layout.

    Subclasses precompute their topology and offsets in ``__init__`` and
    implement :meth:`execute`; the base class owns the workspace segment
    life-cycle (registered once, freed exactly once) and the cached
    simulator schedule.

    Construction is collective: every rank builds the plan for the same
    key at the same dispatch, so the workspace creation can synchronise
    with a single barrier — the last barrier this plan will ever take.
    """

    def __init__(self, runtime: "GaspiRuntime", key: PlanKey, segment_id: int) -> None:
        self.runtime = runtime
        self.key = key
        self.key_dtype = np.dtype(key.dtype)
        self.segment_id = int(segment_id)
        self.calls = 0
        #: Pin reference count: one per open persistent handle.  A plan is
        #: exempt from LRU eviction while any handle still references it —
        #: a plain boolean would let closing one of two same-shape handles
        #: unpin the plan out from under the other.
        self.pins = 0
        self._schedule: Optional["CommunicationSchedule"] = None
        self._workspace_created = False
        self._closed = False

    # ------------------------------------------------------------------ #
    def _create_workspace(self, nbytes: int, num_notifications: Optional[int] = None) -> None:
        """Register the pooled segment on every rank and synchronise once."""
        kwargs: Dict[str, int] = {}
        if num_notifications is not None:
            kwargs["num_notifications"] = num_notifications
        self.runtime.segment_create(self.segment_id, max(int(nbytes), 8), **kwargs)
        self._workspace_created = True
        self.runtime.barrier()

    def execute(self, request: "CollectiveRequest") -> "CollectiveResult":
        """Run one planned call (implemented by subclasses)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def schedule(self, info: "AlgorithmInfo") -> "CommunicationSchedule":
        """The plan's communication schedule, built once and cached.

        Matches what the cold path hands the simulator backend for the
        same request, so plan-cached and cold simulations are identical.
        """
        if self._schedule is None:
            policy = policy_from_fingerprint(self.key.policy)
            self._schedule = info.builder(
                self.key.size, self.key.nbytes, **info.schedule_kwargs(policy)
            )
        return self._schedule

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once the pooled workspace has been released."""
        return self._closed

    def close(self) -> None:
        """Free the pooled workspace segment (idempotent, never raises).

        Tolerates a wrapped runtime that can no longer perform segment
        operations (e.g. a :class:`~repro.faults.injection.FaultyRuntime`
        whose rank crashed): the flag flips exactly once either way, so a
        later :meth:`close` — from cache eviction, a persistent handle and
        ``Communicator.close()`` alike — never double-frees.
        """
        if self._closed:
            return
        self._closed = True
        if not self._workspace_created:
            return
        try:
            self.runtime.segment_delete(self.segment_id)
        except GaspiError:  # pragma: no cover - crashed/vanished runtime
            pass

    def _check_payload(self, buffer: np.ndarray, name: str = "buffer") -> np.ndarray:
        """Validate that a per-call payload matches the plan's frozen key.

        Hot path: the failure message is built only on mismatch — eager
        f-strings here are measurable at plan-cached call rates.
        """
        buffer = np.asarray(buffer)
        if buffer.nbytes != self.key.nbytes or buffer.dtype != self.key_dtype:
            raise ValueError(
                f"{name} ({buffer.nbytes} bytes, dtype {buffer.dtype}) does not "
                f"match the plan compiled for {self.key.nbytes} bytes of "
                f"{self.key.dtype}"
            )
        return buffer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"calls={self.calls}"
        return f"{type(self).__name__}({self.key.algorithm}, seg={self.segment_id}, {state})"


# --------------------------------------------------------------------------- #
# LRU cache
# --------------------------------------------------------------------------- #
@dataclass
class PlanCacheStats:
    """Counters of one communicator's plan cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    capacity: int = 0
    pinned: int = 0

    @property
    def dispatches(self) -> int:
        """Plannable dispatches observed so far (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of plannable dispatches served from the cache.

        Defined as ``0.0`` before any plannable dispatch — callers and
        reports can always divide/format it without guarding the
        zero-dispatch case themselves.
        """
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        """One-line human-readable summary, safe at zero dispatches."""
        if not self.dispatches:
            return (
                f"plan cache: no plannable dispatches yet "
                f"(capacity {self.capacity})"
            )
        return (
            f"plan cache: {self.hits}/{self.dispatches} hits "
            f"({self.hit_rate:.1%}), {self.entries}/{self.capacity} entries, "
            f"{self.evictions} evictions, {self.pinned} pinned"
        )


class PlanCache:
    """Bounded LRU mapping :class:`PlanKey` → :class:`CollectivePlan`.

    Plans pinned by a persistent handle are exempt from eviction (the cap
    becomes soft while pins exist).  Like the capped degraded-workspace
    tracking on the communicator, the bound exists so a workload that
    never repeats a shape cannot grow pooled segments without limit.
    """

    def __init__(self, capacity: int) -> None:
        require(capacity >= 0, f"plan cache capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._plans: Dict[PlanKey, CollectivePlan] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: PlanKey) -> Optional[CollectivePlan]:
        """Look up a plan, counting the hit/miss and refreshing recency."""
        plan = self._plans.pop(key, None)
        if plan is None:
            self._misses += 1
            return None
        self._plans[key] = plan  # re-insert: most recently used
        self._hits += 1
        return plan

    def put(self, key: PlanKey, plan: CollectivePlan) -> List[CollectivePlan]:
        """Insert a freshly built plan; returns the plans evicted by LRU.

        The caller closes the evicted plans — eviction happens at a
        dispatch every rank executes, so the closes stay in lock-step.
        """
        self._plans[key] = plan
        evicted: List[CollectivePlan] = []
        if self.capacity:
            for old_key in list(self._plans):
                if len(self._plans) <= self.capacity:
                    break
                if self._plans[old_key].pins > 0 or old_key == key:
                    continue
                evicted.append(self._plans.pop(old_key))
                self._evictions += 1
        return evicted

    def pin(self, key: PlanKey) -> None:
        """Add one eviction-protection reference (persistent handles)."""
        self._plans[key].pins += 1

    def unpin(self, key: PlanKey) -> None:
        """Drop one pin reference; the plan stays cached until evicted.

        Reference-counted: two persistent handles over the same shape each
        hold their own pin, so closing one never exposes the other to
        eviction.
        """
        plan = self._plans.get(key)
        if plan is not None and plan.pins > 0:
            plan.pins -= 1

    def stats(self) -> PlanCacheStats:
        return PlanCacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            entries=len(self._plans),
            capacity=self.capacity,
            pinned=sum(1 for p in self._plans.values() if p.pins > 0),
        )

    def close_all(self) -> None:
        """Free every cached plan's workspace exactly once (idempotent)."""
        while self._plans:
            _, plan = self._plans.popitem()
            plan.close()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: object) -> bool:
        return key in self._plans
