"""Eventually consistent Allreduce with Stale Synchronous Parallelism.

This is Algorithm 1 of the paper (``allreduce_SSP``): a hypercube
allreduce in which a rank, instead of waiting for a *fresh* contribution
from its step-``k`` partner, reuses the last contribution it received for
that step, provided it is not older than ``slack`` iterations.

Implementation notes matching the paper:

* **Dedicated per-step mailboxes** (``rcv_data_vec``): the segment contains
  one slot per hypercube dimension.  The step-``k`` partner always writes
  into slot ``k``, overwriting its previous contribution, so "read the last
  contribution" is simply a local read of slot ``k``.
* **Logical clocks travel with the data.**  Each slot stores
  ``[clock, payload...]``; when two contributions are reduced the result is
  tagged with the *minimum* of their clocks, so the clock of the final
  result bounds the staleness of every contribution it contains.
* **Waiting only when too stale** (lines 7–11 of Algorithm 1): the reader
  checks the slot's clock against ``clock - slack``; only when it is older
  does it block on the slot's notification, and it keeps waiting until a
  sufficiently fresh contribution lands.

The collective keeps state across calls (the mailboxes and the local
clock), so it is exposed as a class, :class:`SSPAllreduce`, that an
iterative application constructs once and then calls every iteration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.errors import GaspiError
from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import check_power_of_two, require
from . import kernels
from .plan import CollectivePlan
from .reduction_ops import ReductionOp, get_op
from .schedule import CommunicationSchedule, Message, Protocol
from .topology import Hypercube

#: Default segment id used by the SSP allreduce.
SSP_SEGMENT_ID = 160


@dataclass
class SSPCallStats:
    """Instrumentation of a single ``reduce`` call on one rank.

    ``wait_time`` is the quantity plotted on the right-hand side of
    Figure 7 of the paper ("time spent waiting for fresh updates").
    """

    clock: int
    result_clock: int
    waits: int = 0
    wait_time: float = 0.0
    stale_reuses: int = 0
    fresh_uses: int = 0
    elapsed: float = 0.0

    @property
    def staleness(self) -> int:
        """How many iterations behind the freshest data the result is."""
        return self.clock - self.result_clock


@dataclass
class SSPAllreduceResult:
    """Result of one SSP allreduce call: the value, its clock and statistics."""

    value: np.ndarray
    clock: int
    stats: SSPCallStats


@dataclass
class SSPTotals:
    """Accumulated statistics over the lifetime of an :class:`SSPAllreduce`."""

    calls: int = 0
    waits: int = 0
    wait_time: float = 0.0
    stale_reuses: int = 0
    fresh_uses: int = 0
    per_call: List[SSPCallStats] = field(default_factory=list)

    def record(self, stats: SSPCallStats, keep_per_call: bool) -> None:
        self.calls += 1
        self.waits += stats.waits
        self.wait_time += stats.wait_time
        self.stale_reuses += stats.stale_reuses
        self.fresh_uses += stats.fresh_uses
        if keep_per_call:
            self.per_call.append(stats)


class SSPAllreduce:
    """Stateful SSP allreduce collective (paper Algorithm 1).

    Parameters
    ----------
    runtime:
        Per-rank GASPI runtime.
    num_elements:
        Length of the reduced vector (identical on all ranks).
    slack:
        Allowed staleness in iterations.  ``slack = 0`` degenerates to a
        fully synchronous hypercube allreduce; larger values let fast ranks
        proceed with older partner contributions.
    op:
        Reduction operator (the paper uses a sum / average of gradients).
    dtype:
        Element dtype of the reduced vector.
    segment_id:
        Segment id of the mailbox segment (one per collective instance).
    wait_timeout:
        Upper bound (seconds) on a single "wait for fresh update"; raising
        :class:`TimeoutError` instead of hanging forever makes failures in
        mis-configured runs visible.
    keep_per_call_stats:
        Keep an :class:`SSPCallStats` entry per call in :attr:`totals`.
    """

    def __init__(
        self,
        runtime: GaspiRuntime,
        num_elements: int,
        slack: int = 0,
        op: str | ReductionOp = "sum",
        dtype=np.float64,
        segment_id: int = SSP_SEGMENT_ID,
        queue: int = 0,
        wait_timeout: float = 60.0,
        keep_per_call_stats: bool = True,
    ) -> None:
        require(num_elements > 0, "num_elements must be positive")
        require(slack >= 0, f"slack must be non-negative, got {slack}")
        check_power_of_two(runtime.size, "SSP allreduce world size")

        self.runtime = runtime
        self.num_elements = int(num_elements)
        self.slack = int(slack)
        self.op = get_op(op)
        self.dtype = np.dtype(dtype)
        self.segment_id = int(segment_id)
        self.queue = int(queue)
        self.wait_timeout = float(wait_timeout)
        self.keep_per_call_stats = bool(keep_per_call_stats)

        self.hypercube = Hypercube(runtime.size)
        self.dimensions = self.hypercube.dimensions
        self.clock = 0
        self.totals = SSPTotals()

        # Slot layout: [clock: float64][payload: num_elements * dtype]
        self._slot_header = 8
        self._slot_bytes = self._slot_header + self.num_elements * self.dtype.itemsize
        # One mailbox slot per dimension plus one staging slot for sends.
        segment_bytes = max(self._slot_bytes * (self.dimensions + 1), 16)
        runtime.segment_create(self.segment_id, segment_bytes)
        runtime.barrier()
        self._send_offset = self.dimensions * self._slot_bytes
        self._closed = False

    # ------------------------------------------------------------------ #
    # main entry point — Algorithm 1
    # ------------------------------------------------------------------ #
    def reduce(
        self,
        contribution: np.ndarray,
        clock: Optional[int] = None,
    ) -> SSPAllreduceResult:
        """Perform one SSP allreduce of ``contribution``.

        Parameters
        ----------
        contribution:
            This rank's fresh contribution for the current iteration.
        clock:
            Explicit iteration number; by default the internal clock is
            incremented by one (line 1 of Algorithm 1).

        Returns
        -------
        SSPAllreduceResult
            The (possibly partially stale) reduction, the clock associated
            with it — the minimum clock over all contributions it contains —
            and per-call statistics.
        """
        self._check_open()
        contribution = np.ascontiguousarray(contribution, dtype=self.dtype)
        require(
            contribution.size == self.num_elements,
            f"contribution has {contribution.size} elements, expected {self.num_elements}",
        )

        start = time.perf_counter()
        # line 1: advance the logical clock
        self.clock = self.clock + 1 if clock is None else int(clock)
        # line 2: oldest acceptable contribution
        min_clock_accepted = self.clock - self.slack
        # line 3: start from the fresh local contribution
        part_red = contribution.copy()
        part_clock = self.clock

        stats = SSPCallStats(clock=self.clock, result_clock=self.clock)

        for k in range(self.dimensions):
            partner = self.hypercube.partner(self.runtime.rank, k)

            # line 6: send the current partial reduction (tagged with its clock)
            self._send_partial(partner, k, part_red, part_clock)

            # line 7: read the last contribution received for this step
            rcv_clock, rcv_data = self._read_mailbox(k)

            # lines 8-11: wait only if the cached contribution is too stale
            if rcv_clock < min_clock_accepted:
                waited = self._wait_for_update(k, min_clock_accepted, stats)
                rcv_clock, rcv_data = waited
            else:
                stats.stale_reuses += 1 if rcv_clock < self.clock else 0
                stats.fresh_uses += 1 if rcv_clock >= self.clock else 0
                # consume a pending notification, if any, to keep the board tidy
                if self.runtime.notify_peek(self.segment_id, k):
                    self.runtime.notify_reset(self.segment_id, k)

            # line 12: reduce sent with received data; clock = min of the two
            kernels.reduce_into(self.op, part_red, rcv_data)
            part_clock = min(part_clock, rcv_clock)

        stats.result_clock = int(part_clock)
        stats.elapsed = time.perf_counter() - start
        self.totals.record(stats, self.keep_per_call_stats)
        return SSPAllreduceResult(value=part_red, clock=int(part_clock), stats=stats)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _send_partial(
        self, partner: int, step: int, data: np.ndarray, data_clock: int
    ) -> None:
        """Write ``[clock, data]`` into the partner's step-``step`` mailbox."""
        header = self.runtime.segment_view(
            self.segment_id, dtype=np.float64, offset=self._send_offset, count=1
        )
        header[0] = float(data_clock)
        payload = self.runtime.segment_view(
            self.segment_id,
            dtype=self.dtype,
            offset=self._send_offset + self._slot_header,
            count=self.num_elements,
        )
        payload[:] = data
        self.runtime.write_notify(
            segment_id_local=self.segment_id,
            offset_local=self._send_offset,
            target_rank=partner,
            segment_id_remote=self.segment_id,
            offset_remote=step * self._slot_bytes,
            size=self._slot_bytes,
            notification_id=step,
            notification_value=max(1, int(data_clock)),
            queue=self.queue,
        )
        self.runtime.wait(self.queue)

    def _read_mailbox(self, step: int) -> tuple[int, np.ndarray]:
        """Consistent snapshot of mailbox slot ``step``: (clock, payload)."""
        raw = self.runtime.segment_read(
            self.segment_id,
            dtype=np.uint8,
            offset=step * self._slot_bytes,
            count=self._slot_bytes,
        )
        clock = int(raw[: self._slot_header].view(np.float64)[0])
        payload = raw[self._slot_header :].view(self.dtype).copy()
        return clock, payload

    def _wait_for_update(
        self, step: int, min_clock_accepted: int, stats: SSPCallStats
    ) -> tuple[int, np.ndarray]:
        """Block until the step mailbox holds a contribution fresh enough."""
        wait_start = time.perf_counter()
        deadline = wait_start + self.wait_timeout
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self.runtime.rank}: SSP step {step} waited longer than "
                    f"{self.wait_timeout}s for a contribution newer than clock "
                    f"{min_clock_accepted}"
                )
            got = self.runtime.notify_waitsome(
                self.segment_id, step, 1, timeout=min(remaining, 0.05)
            )
            if got is not None:
                self.runtime.notify_reset(self.segment_id, got)
            rcv_clock, rcv_data = self._read_mailbox(step)
            if rcv_clock >= min_clock_accepted:
                stats.waits += 1
                stats.wait_time += time.perf_counter() - wait_start
                stats.fresh_uses += 1
                return rcv_clock, rcv_data

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Synchronise all ranks (used before tearing the collective down)."""
        self._check_open()
        self.runtime.barrier()

    def close(self) -> None:
        """Release the mailbox segment.  All ranks must call this together."""
        if self._closed:
            return
        self.runtime.barrier()
        self.runtime.segment_delete(self.segment_id)
        self._closed = True

    def __enter__(self) -> "SSPAllreduce":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("SSPAllreduce already closed")


# --------------------------------------------------------------------------- #
# one-shot helper
# --------------------------------------------------------------------------- #
def ssp_allreduce_once(
    runtime: GaspiRuntime,
    contribution: np.ndarray,
    slack: int = 0,
    op: str | ReductionOp = "sum",
    segment_id: int = SSP_SEGMENT_ID,
) -> np.ndarray:
    """Single-call convenience wrapper (constructs and tears down the state).

    With ``slack = 0`` and a single call, this is a plain synchronous
    hypercube allreduce and the result equals the exact reduction — handy
    for tests and for users who only need the consistent behaviour.
    """
    contribution = np.ascontiguousarray(contribution)
    with SSPAllreduce(
        runtime,
        contribution.size,
        slack=slack,
        op=op,
        dtype=contribution.dtype,
        segment_id=segment_id,
    ) as coll:
        result = coll.reduce(contribution)
        coll.flush()
    return result.value


# --------------------------------------------------------------------------- #
# compiled plan (persistent mailboxes, zero per-call setup)
# --------------------------------------------------------------------------- #
class HypercubeAllreducePlan(CollectivePlan):
    """Compiled hypercube allreduce: one persistent :class:`SSPAllreduce`.

    The one-shot dispatch path (:func:`ssp_allreduce_once`) constructs and
    tears down the whole mailbox state per call — a segment registration,
    two barriers and a delete.  The plan keeps a single long-lived
    :class:`SSPAllreduce` instead; cross-call safety is inherent in the
    SSP design, because every contribution travels with its logical clock
    and a slack-0 reader blocks until the partner's *current*-clock data
    arrived.  Each planned call is therefore exactly one `reduce()` of
    Algorithm 1, and repeated calls return bit-identical values to
    repeated one-shot calls (the reduction order per step is fixed by the
    hypercube).
    """

    def __init__(self, runtime, key, segment_id: int, policy) -> None:
        super().__init__(runtime, key, segment_id)
        self.dtype = np.dtype(key.dtype)
        self.elements = key.nbytes // self.dtype.itemsize
        # The SSP instance owns the workspace segment (created in its
        # constructor, including the one synchronising barrier).
        self._instance = SSPAllreduce(
            runtime,
            self.elements,
            slack=policy.slack,
            op=key.op,
            dtype=self.dtype,
            segment_id=segment_id,
        )
        self._workspace_created = True

    @property
    def instance(self) -> SSPAllreduce:
        """The underlying persistent SSP collective (for stats/tests)."""
        return self._instance

    def execute(self, request) -> "CollectiveResult":
        from .policy import CollectiveResult

        sendbuf = self._check_payload(
            np.ascontiguousarray(request.sendbuf), "allreduce sendbuf"
        )
        result = self._instance.reduce(sendbuf)
        self.calls += 1
        value = result.value
        if request.recvbuf is not None:
            request.recvbuf[:] = value
            value = request.recvbuf
        return CollectiveResult(value=value)

    def close(self) -> None:
        """Release the mailbox segment through the SSP instance (idempotent).

        :meth:`SSPAllreduce.close` synchronises the ranks before the
        delete — necessary because slack > 0 permits genuinely in-flight
        partner writes at call boundaries.  Plan closes happen in
        lock-step (cache eviction and ``Communicator.close()`` are
        collective), so the barrier pairs up; a runtime that can no longer
        synchronise (crashed rank) degrades to a local delete.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._instance.close()
        except GaspiError:  # pragma: no cover - crashed/vanished runtime
            try:
                self.runtime.segment_delete(self.segment_id)
            except GaspiError:
                pass


# --------------------------------------------------------------------------- #
# schedule builder (Figure 7 left: collective execution time)
# --------------------------------------------------------------------------- #
def hypercube_allreduce_schedule(
    num_ranks: int,
    nbytes: int,
    protocol: Protocol = Protocol.ONESIDED,
    name: str | None = None,
) -> CommunicationSchedule:
    """Schedule of one fully synchronous hypercube allreduce iteration.

    The hypercube exchanges the *entire* vector in every one of its
    ``log2(P)`` steps — the paper points out this is why ``allreduce_ssp``
    cannot match the ring algorithms for the large vectors it was evaluated
    on (Figure 7, left).  The SSP mechanism changes *waiting*, not the
    amount of data moved, so the synchronous schedule is the correct model
    for the collective's execution time.
    """
    check_power_of_two(num_ranks, "hypercube size")
    require(nbytes >= 0, "nbytes must be non-negative")
    sched = CommunicationSchedule(
        name=name or "allreduce_ssp_hypercube",
        num_ranks=num_ranks,
        metadata={"payload_bytes": nbytes, "algorithm": "hypercube"},
    )
    cube = Hypercube(num_ranks)
    for step in range(cube.dimensions):
        sched.add_round(
            [
                Message(
                    src=rank,
                    dst=cube.partner(rank, step),
                    nbytes=nbytes,
                    protocol=protocol,
                    reduce_bytes=nbytes,
                    tag=f"hypercube-step-{step}",
                )
                for rank in range(num_ranks)
            ],
            label=f"step-{step}",
        )
    sched.validate()
    return sched
