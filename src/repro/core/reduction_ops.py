"""Reduction operators used by Reduce/Allreduce collectives.

The paper's consistent Allreduce uses a global sum and notes that any
reduction whose compute cost stays below the communication cost can be
hidden the same way (Section IV-A).  :class:`ReductionOp` wraps a NumPy
binary operation together with its identity element so tree- and
ring-based reductions can initialise partial results uniformly, and so the
timing simulator can charge a per-element compute cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Union

import numpy as np

from . import kernels

ArrayOp = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ReductionOp:
    """A binary, associative and commutative reduction operator.

    Attributes
    ----------
    name:
        Short identifier ("sum", "max", …).
    func:
        Callable combining two arrays elementwise into a new array.
    identity:
        Identity element (scalar) used to initialise accumulators.
    flops_per_element:
        Relative compute cost per element, used by the timing simulator.
    commutative:
        All built-in operators are commutative; user-defined operators can
        declare otherwise, in which case order-sensitive algorithms refuse
        to reorder contributions.
    """

    name: str
    func: ArrayOp
    identity: float
    flops_per_element: float = 1.0
    commutative: bool = True

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Combine two arrays, broadcasting per NumPy rules."""
        return self.func(a, b)

    def reduce_into(self, accumulator: np.ndarray, contribution: np.ndarray) -> None:
        """In-place ``accumulator = op(accumulator, contribution)``.

        Delegates to the vectorized kernels in :mod:`repro.core.kernels`:
        built-in ufunc operators fold in a single fused ``out=`` pass with
        no temporary allocation; generic operators fall back to
        evaluate-and-copy.
        """
        kernels.reduce_into(self, accumulator, contribution)

    def identity_like(self, array: np.ndarray) -> np.ndarray:
        """Array of the identity element with the same shape/dtype as ``array``."""
        return np.full_like(array, self.identity)


SUM = ReductionOp("sum", np.add, 0.0, flops_per_element=1.0)
PROD = ReductionOp("prod", np.multiply, 1.0, flops_per_element=1.0)
MIN = ReductionOp("min", np.minimum, float("inf"), flops_per_element=1.0)
MAX = ReductionOp("max", np.maximum, float("-inf"), flops_per_element=1.0)

_BUILTINS: Dict[str, ReductionOp] = {
    op.name: op for op in (SUM, PROD, MIN, MAX)
}


def get_op(op: Union[str, ReductionOp]) -> ReductionOp:
    """Resolve an operator name or pass through a :class:`ReductionOp`.

    Raises
    ------
    ValueError
        If ``op`` is a string that does not name a built-in operator.
    """
    if isinstance(op, ReductionOp):
        return op
    try:
        return _BUILTINS[op]
    except KeyError as exc:
        raise ValueError(
            f"unknown reduction op {op!r}; built-ins: {sorted(_BUILTINS)}"
        ) from exc


def register_op(op: ReductionOp, overwrite: bool = False) -> None:
    """Register a user-defined reduction operator by name.

    The paper highlights user-defined reductions on user-defined data
    structures as a use case the pipelined ring can absorb for free; this
    hook lets applications plug those in.
    """
    if not overwrite and op.name in _BUILTINS:
        raise ValueError(f"reduction op {op.name!r} already registered")
    _BUILTINS[op.name] = op


def available_ops() -> list[str]:
    """Names of all registered reduction operators."""
    return sorted(_BUILTINS)
