"""Pipelined chunked data path and the nonblocking collective engine.

The paper's collectives win by letting ranks proceed on partial data, yet
the compiled plans of PR 3 still move every tree/ring edge as a single
monolithic ``write_notify``: each BST level (or ring step) waits for the
*entire* payload of the previous one.  This module segments large payloads
into chunks and pipelines them — the classic large-message optimisation of
Open MPI / Intel MPI tuning tables (segmented binomial broadcast, bucket
ring allreduce) — and builds a nonblocking request API on top.

Three pipelined planned executors (registered in
:mod:`repro.core.registry`, selected by the tuning tables for large
payloads):

* :class:`PipelinedBstBcastPlan` — a parent forwards chunk ``k`` while
  chunk ``k+1`` is still in flight.  On runtimes with
  :meth:`~repro.gaspi.runtime.GaspiRuntime.segment_bind` support the
  user's buffer *is* the segment (the ``gaspi_segment_bind`` zero-copy
  path): chunks land directly in the destination buffer, per-chunk
  notification ids mark arrivals, and a per-call readiness handshake is
  the consume-ack that makes cross-call reuse safe.  Without bind support
  the same protocol runs over per-chunk staging slots.
* :class:`PipelinedBstReducePlan` — per-chunk folds
  (:mod:`repro.core.kernels`) with each completed chunk pushed up the tree
  while later chunks are still arriving; the accumulator lives in the
  pooled segment so the push-up needs no staging copy.
* :class:`PipelinedRingAllreducePlan` — the ring with multiple in-flight
  sub-chunk slots per step, sends posted straight from the pooled work
  region and allgather chunks written *directly* into the successor's work
  region (no copy-out), guarded by a per-call entry notification.

The same chunk machinery drives the **nonblocking API**:
:meth:`~repro.core.api.Communicator.ibcast` / ``ireduce`` /
``iallreduce`` return a :class:`CollectiveHandle` whose
``test()/wait()/progress()`` advance the pipeline incrementally through a
per-communicator :class:`ProgressEngine`, so callers overlap compute with
communication (the ML/SGD layer uses this for overlapping gradient
allreduce).

Every pipelined executor is written as a *generator* that yields
:class:`WaitSpec` objects whenever it cannot progress without a
notification.  The blocking path (:func:`drive_pipeline`) resumes it with
blocking waits; the nonblocking path polls with ``timeout=0`` from
``progress()``.  One implementation, two completion disciplines.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

import numpy as np

from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.errors import GaspiError
from ..telemetry.core import CLOCK, NULL_TELEMETRY
from ..utils.logging import get_logger
from ..utils.validation import require
from . import kernels
from .bcast import BroadcastResult, _require_vector, threshold_elements
from .notifmap import NotificationLayout
from .plan import CollectivePlan, PlanKey, policy_fingerprint
from .reduce import ReduceMode, ReduceResult
from .reduction_ops import get_op
from .schedule import CommunicationSchedule, Message, Protocol
from .topology import BinomialTree, Ring, chunk_bounds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .policy import CollectiveRequest, CollectiveResult

logger = get_logger("core.pipeline")


# --------------------------------------------------------------------------- #
# chunk layout
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChunkLayout:
    """Frozen segmentation of a payload into pipeline chunks.

    Bounds are in *elements*; :meth:`byte_bounds` converts to the byte
    offsets the one-sided operations use.  Chunk sizes come from the
    tuning tables (:func:`repro.core.tuning.select_chunk_bytes`) unless
    the policy pins them (``ConsistencyPolicy.chunk_bytes``).
    """

    total_elements: int
    itemsize: int
    chunk_elements: int
    bounds: Tuple[Tuple[int, int], ...]

    @classmethod
    def for_elements(
        cls, elements: int, itemsize: int, chunk_bytes: Optional[int]
    ) -> "ChunkLayout":
        """Layout over ``elements`` items with ``chunk_bytes``-sized chunks.

        ``chunk_bytes`` of ``None`` (or >= the payload) yields a single
        chunk — the degenerate pipeline, which is exactly the zero-copy
        monolithic transfer.
        """
        require(elements >= 0, "elements must be non-negative")
        require(itemsize >= 1, "itemsize must be >= 1")
        nbytes = elements * itemsize
        if chunk_bytes is None or chunk_bytes >= nbytes or elements <= 1:
            chunk_elements = max(elements, 1)
        else:
            chunk_elements = max(1, int(chunk_bytes) // itemsize)
        num_chunks = max(1, -(-elements // chunk_elements))
        bounds = tuple(
            (k * chunk_elements, min((k + 1) * chunk_elements, elements))
            for k in range(num_chunks)
        )
        return cls(
            total_elements=int(elements),
            itemsize=int(itemsize),
            chunk_elements=int(chunk_elements),
            bounds=bounds,
        )

    @property
    def num_chunks(self) -> int:
        return len(self.bounds)

    @property
    def chunk_bytes(self) -> int:
        return self.chunk_elements * self.itemsize

    def byte_bounds(self, index: int) -> Tuple[int, int]:
        begin, end = self.bounds[index]
        return begin * self.itemsize, end * self.itemsize


def resolve_chunk_bytes(nbytes: int, policy) -> Optional[int]:
    """Chunk size for a payload: the policy override, else the tuning table."""
    if policy is not None and policy.chunk_bytes is not None:
        return policy.chunk_bytes
    from .tuning import select_chunk_bytes

    return select_chunk_bytes(nbytes)


# --------------------------------------------------------------------------- #
# generator protocol
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WaitSpec:
    """Resume condition of a suspended pipeline: a notification range.

    A pipeline generator yields one of these whenever it cannot progress;
    the driver resumes the generator once *any* notification in
    ``[first, first + count)`` of ``segment_id`` is pending (the generator
    re-checks and consumes what it needs itself, so a spurious resume is
    harmless).
    """

    segment_id: int
    first: int
    count: int = 1


PipelineGen = Generator[WaitSpec, None, "CollectiveResult"]


def drive_pipeline(runtime, gen: PipelineGen, timeout: float = GASPI_BLOCK):
    """Run a pipeline generator to completion with blocking waits.

    When the runtime stack carries a telemetry registry the blocking
    waits become ``"chunk"`` spans (nested inside the dispatch span on
    the trace timeline) and feed the ``pipeline.chunk_wait_s`` histogram;
    otherwise the loop is exactly the uninstrumented original.
    """
    tel = getattr(runtime, "telemetry", None)
    if tel is not None and tel.enabled:
        return _drive_pipeline_instrumented(runtime, tel, gen, timeout)
    try:
        spec = next(gen)
        while True:
            got = runtime.notify_waitsome(
                spec.segment_id, spec.first, spec.count, timeout=timeout
            )
            if got is None:
                gen.close()
                raise TimeoutError(
                    f"rank {runtime.rank}: pipelined collective timed out waiting "
                    f"for notifications [{spec.first}, {spec.first + spec.count}) "
                    f"on segment {spec.segment_id}"
                )
            spec = next(gen)
    except StopIteration as stop:
        return stop.value


def _plan_poll_timeout(runtime, request) -> float:
    """Inline-wait timeout for a plan's blocking ``execute`` path.

    Uninstrumented, the generator waits inline with the request's timeout
    and never yields (one wait per notification, no poll-then-park double
    round-trip).  With telemetry attached it polls with ``timeout=0`` and
    yields when blocked, so every blocked chunk surfaces as a
    :class:`WaitSpec` and the instrumented driver can record it as a
    ``"chunk"`` span — the cost is the extra zero-timeout probe per
    notification, which is part of the documented enabled-mode overhead.
    """
    tel = getattr(runtime, "telemetry", None)
    if tel is not None and tel.enabled:
        return 0.0
    return request.timeout


def _drive_pipeline_instrumented(runtime, tel, gen: PipelineGen, timeout: float):
    """The blocking driver with per-chunk wait instrumentation."""
    h_wait = tel.histogram("pipeline.chunk_wait_s")
    c_chunks = tel.counter("pipeline.chunks")
    try:
        spec = next(gen)
        while True:
            t0 = CLOCK()
            got = runtime.notify_waitsome(
                spec.segment_id, spec.first, spec.count, timeout=timeout
            )
            t1 = CLOCK()
            if got is None:
                gen.close()
                raise TimeoutError(
                    f"rank {runtime.rank}: pipelined collective timed out waiting "
                    f"for notifications [{spec.first}, {spec.first + spec.count}) "
                    f"on segment {spec.segment_id}"
                )
            h_wait.observe(t1 - t0)
            c_chunks.add()
            tel.record_span(
                "chunk", "chunk", t0, t1,
                {"segment": spec.segment_id, "first": spec.first,
                 "count": spec.count},
            )
            spec = next(gen)
    except StopIteration as stop:
        return stop.value


# --------------------------------------------------------------------------- #
# nonblocking handles and the progress engine
# --------------------------------------------------------------------------- #
class CollectiveHandle:
    """Nonblocking collective request (the ``MPI_Request`` analogue).

    Returned by :meth:`~repro.core.api.Communicator.ibcast` /
    ``ireduce`` / ``iallreduce``.  The pipeline advances when the caller
    pumps it — :meth:`progress` and :meth:`test` poll without blocking,
    :meth:`wait` drives it (and every handle issued before it, in order)
    to completion.  Handles sharing one compiled plan are serialised in
    issue order by the :class:`ProgressEngine`, so several in-flight
    requests of the same shape are safe.
    """

    def __init__(
        self,
        engine: Optional["ProgressEngine"],
        runtime,
        plan: Optional[CollectivePlan],
        gen: Optional[PipelineGen],
        result=None,
        on_complete=None,
    ) -> None:
        self._engine = engine
        self._runtime = runtime
        self._plan = plan
        self._gen = gen
        self._spec: Optional[WaitSpec] = None
        self._started = False
        self._result = result
        self._done = gen is None
        self._error: Optional[BaseException] = None
        self._on_complete = on_complete
        if self._done and on_complete is not None:
            on_complete(self._result)

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """True once the collective completed on this rank."""
        return self._done

    @property
    def result(self):
        """The :class:`CollectiveResult`, or ``None`` while in flight."""
        return self._result

    @property
    def error(self) -> Optional[BaseException]:
        """The exception that failed this handle mid-flight, if any.

        A failed handle is *done* (it can never complete) but has no
        result; :meth:`wait` re-raises the stored exception.
        """
        return self._error

    # ------------------------------------------------------------------ #
    def _finish(self, stop: StopIteration) -> None:
        self._result = stop.value
        self._done = True
        self._gen = None
        self._spec = None
        if self._on_complete is not None:
            self._on_complete(self._result)

    def _fail(self, exc: BaseException) -> None:
        """Mark the handle failed: done, no result, exception stored.

        The generator is closed so the plan's per-call state is not left
        suspended mid-protocol; peers of a failed collective see missing
        notifications, which their own fault handling (timeouts, fault
        plans) is responsible for.  :meth:`wait` re-raises ``exc``.
        """
        self._error = exc
        self._done = True
        logger.debug(
            "rank %d: nonblocking collective failed mid-flight: %s",
            getattr(self._runtime, "rank", -1), exc, exc_info=exc,
        )
        gen = self._gen
        self._gen = None
        self._spec = None
        if gen is not None:
            try:
                gen.close()
            except Exception:  # pragma: no cover - generator cleanup races
                pass

    def _step(self, timeout: float) -> bool:
        """Advance until blocked (``timeout=0``) or done; returns done.

        The ``timeout=0`` pump path uses the runtime's lock-free
        :meth:`~repro.gaspi.runtime.GaspiRuntime.notify_probe` — a pump
        over many idle pipelines must cost nanoseconds per handle, not a
        condition-lock round trip each.
        """
        if self._done:
            return True
        rt = self._runtime
        try:
            if not self._started:
                self._started = True
                self._spec = next(self._gen)
            while True:
                spec = self._spec
                if timeout == 0.0:
                    if not rt.notify_probe(spec.segment_id, spec.first, spec.count):
                        return False
                elif (
                    rt.notify_waitsome(
                        spec.segment_id, spec.first, spec.count, timeout=timeout
                    )
                    is None
                ):
                    return False
                self._spec = next(self._gen)
        except StopIteration as stop:
            self._finish(stop)
            return True
        except Exception as exc:  # noqa: BLE001 - stored, re-raised by wait()
            # A handle erroring mid-flight (crashed runtime, torn-down
            # segment, a bug in a pipelined executor) must not leave the
            # engine wedged: record the failure, retire the handle, and
            # let wait() surface the exception to the issuing caller.
            self._fail(exc)
            return True

    # ------------------------------------------------------------------ #
    def progress(self) -> bool:
        """Advance every in-flight handle without blocking; returns done.

        Pumps the whole engine (in issue order, the SPMD order every rank
        shares) rather than just this handle — progress of an earlier
        handle is often what unblocks this one on a peer.
        """
        if self._engine is not None:
            self._engine.progress()
        return self._done

    def test(self) -> bool:
        """Nonblocking completion probe (``MPI_Test``)."""
        return self.progress()

    def wait(self, timeout: float = GASPI_BLOCK):
        """Block until complete; returns the :class:`CollectiveResult`.

        Re-raises the stored exception when the collective failed
        mid-flight (see :attr:`error`).
        """
        if not self._done:
            self._engine.wait_until(self, timeout)
        if self._error is not None:
            raise self._error
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else ("active" if self._started else "pending")
        name = type(self._plan).__name__ if self._plan is not None else "completed"
        return f"CollectiveHandle({name}, {state})"


class ProgressEngine:
    """Per-communicator scheduler of in-flight nonblocking collectives.

    Keeps the live handles in issue order (the SPMD program order, which
    every rank shares) and enforces one rule: two handles over the *same*
    compiled plan never interleave — the later one does not start until
    the earlier one finished, because they would otherwise race on the
    plan's notification ids and workspace.  Distinct plans (e.g. tagged
    per-bucket gradient exchanges) advance independently, which is what
    makes the ML gradient-bucket overlap pattern work.

    Progress is caller-driven by default (pump via
    :meth:`Communicator.progress` between compute steps, like
    core-direct GASPI).  :meth:`start_thread` adds *asynchronous*
    progress — a daemon thread that pumps whenever handles are in flight,
    the analogue of GPI-2's progress threads / MPI asynchronous progress:
    pipelines then advance even while the application thread is busy (or,
    on this one-core-per-rank substrate, idle in accelerator-style
    offloaded compute).  All engine state is guarded by one lock, so the
    thread and the caller never race on a generator.
    """

    def __init__(self, runtime, telemetry=None) -> None:
        self._runtime = runtime
        self._handles: List[CollectiveHandle] = []
        self._lock = threading.RLock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._work = threading.Event()
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._g_depth = tel.gauge("progress.queue_depth")
        self._c_registered = tel.counter("progress.handles")

    @property
    def active(self) -> int:
        """Number of handles still in flight."""
        return len(self._handles)

    @property
    def threaded(self) -> bool:
        """True while a background progress thread is running."""
        return self._thread is not None

    def register(self, handle: CollectiveHandle) -> None:
        if handle.done:
            return
        self._c_registered.add()
        with self._lock:
            self._handles.append(handle)
            self._g_depth.set(len(self._handles))
            # Start eagerly: post the entry handshake and the first sends
            # now, so peer writes can land while the caller computes.
            self._pump()
        self._work.set()

    def _runnable(self) -> List[CollectiveHandle]:
        """Live handles whose plan is not busy with an earlier handle."""
        busy = set()
        out = []
        for handle in self._handles:
            plan_id = id(handle._plan)
            if plan_id not in busy:
                out.append(handle)
                busy.add(plan_id)
        return out

    def _pump(self) -> int:
        """One nonblocking pass over all runnable handles (lock held)."""
        advanced = True
        while advanced:
            advanced = False
            for handle in self._runnable():
                if handle._step(timeout=0.0):
                    self._handles.remove(handle)
                    advanced = True  # a successor on the same plan may start
        depth = len(self._handles)
        self._g_depth.set(depth)
        return depth

    def progress(self) -> int:
        """One nonblocking pump over all runnable handles; returns #live."""
        with self._lock:
            return self._pump()

    # ------------------------------------------------------------------ #
    # asynchronous progress
    # ------------------------------------------------------------------ #
    def start_thread(self, interval: float = 2e-4) -> None:
        """Start the background progress thread (idempotent).

        ``interval`` is the pause between pump rounds while handles are in
        flight — small enough that a pipeline advances at data speed,
        large enough that the thread does not monopolise the GIL.  The
        thread parks on an event while nothing is in flight.
        """
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._thread_loop,
            args=(float(interval),),
            name=f"gaspi-progress-{self._runtime.rank}",
            daemon=True,
        )
        self._thread.start()
        if self._handles:
            self._work.set()

    def stop_thread(self) -> None:
        """Stop the background progress thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        self._work.set()
        thread.join()
        self._thread = None

    def _thread_loop(self, interval: float) -> None:
        while not self._stop.is_set():
            self._work.wait(timeout=0.05)
            if self._stop.is_set():
                return
            try:
                with self._lock:
                    live = self._pump()
                    spec = None
                    if live:
                        head = self._runnable()[0]
                        spec = head._spec
                if not live:
                    self._work.clear()
                elif spec is not None:
                    # Event-driven: park on the head pipeline's pending
                    # notification (bounded by ``interval``) so the critical
                    # chain advances at data speed, not at a polling cadence.
                    # The spec may be stale by the time we wait — a spurious
                    # or missed wake just means one ``interval`` of delay.
                    self._runtime.notify_waitsome(
                        spec.segment_id, spec.first, spec.count, timeout=interval
                    )
                else:
                    time.sleep(interval)
            except Exception:  # noqa: BLE001 - park instead of dying silently
                # Handle errors are captured per handle in _step; what can
                # still raise here is the runtime itself (crashed by a
                # fault plan, segment torn down under the park).  Asynch
                # progress must survive that: park until new work arrives
                # or the engine stops, and keep the thread joinable.
                self._work.clear()

    # ------------------------------------------------------------------ #
    # completion
    # ------------------------------------------------------------------ #
    def wait_until(self, target: CollectiveHandle, timeout: float = GASPI_BLOCK) -> None:
        """Drive handles in issue order until ``target`` completed.

        Earlier handles are completed first (they may be what the target —
        or a peer's copy of the target — transitively depends on); because
        every rank issues the same sequence, the blocking order is
        identical everywhere and cannot deadlock.  The caller drives with
        *blocking* notification waits while holding the engine lock — a
        running progress thread simply pauses for the duration (waits at
        condition-variable speed beat any polling cadence); peers' writes
        are delivered by their own threads regardless.
        """
        with self._lock:
            while target in self._handles:
                head = self._runnable()[0]
                if not head._step(timeout=timeout):
                    raise TimeoutError(
                        f"rank {self._runtime.rank}: nonblocking collective did "
                        f"not complete within {timeout} s"
                    )
                if head.done:
                    self._handles.remove(head)

    def wait_all(self, timeout: float = GASPI_BLOCK) -> None:
        """Complete every in-flight handle (``MPI_Waitall``)."""
        while self._handles:
            self.wait_until(self._handles[-1], timeout)

    def wait_plan(self, plan, timeout: float = GASPI_BLOCK) -> None:
        """Complete every in-flight handle that uses ``plan``.

        The blocking dispatch path calls this before executing through a
        cached plan: a blocking call racing an in-flight handle on the
        same plan would consume each other's notifications and deadlock.
        Driving the FIFO (earlier handles first) keeps the blocking order
        identical on every rank, exactly as :meth:`wait_until`.
        """
        with self._lock:
            while any(handle._plan is plan for handle in self._handles):
                head = self._runnable()[0]
                if not head._step(timeout=timeout):
                    raise TimeoutError(
                        f"rank {self._runtime.rank}: nonblocking collective did "
                        f"not complete within {timeout} s"
                    )
                if head.done:
                    self._handles.remove(head)


# --------------------------------------------------------------------------- #
# pipelined BST broadcast
# --------------------------------------------------------------------------- #
class PipelinedBstBcastPlan(CollectivePlan):
    """Chunked, pipelined BST broadcast over a (bindable) workspace.

    A parent forwards chunk ``k`` to its children the moment chunk ``k``'s
    notification arrives, while chunk ``k+1`` is still travelling from its
    own parent — tree levels overlap instead of serialising on the full
    payload.  Per-chunk notification ids (allocated through
    :class:`~repro.core.notifmap.NotificationLayout`) mark arrivals; a
    per-call readiness notification from every child is the consume-ack
    that allows the parent to overwrite the child's chunk slots for the
    next call.

    On runtimes with ``segment_bind`` the segment *is* the user's buffer
    (``gaspi_segment_bind``): no staging copy at the root, no copy-out at
    the receivers, and forwards post straight from the destination buffer.
    The readiness notification doubles as the rebind fence — a child
    announces only after (re)binding, so a parent can never write into a
    stale binding.  Without bind support the identical protocol runs over
    per-chunk staging slots in the pooled segment.
    """

    def __init__(self, runtime, key: PlanKey, segment_id: int, policy) -> None:
        super().__init__(runtime, key, segment_id)
        self.dtype = np.dtype(key.dtype)
        self.elements = key.nbytes // self.dtype.itemsize
        self.send_elems = threshold_elements(self.elements, policy.threshold)
        self.chunks = ChunkLayout.for_elements(
            self.send_elems,
            self.dtype.itemsize,
            resolve_chunk_bytes(self.send_elems * self.dtype.itemsize, policy),
        )
        self.tree = BinomialTree(runtime.size, key.root)
        rank = runtime.rank
        self.children = self.tree.children(rank)
        self.parent = self.tree.parent(rank)
        self.stage = self.tree.stage_of(rank)
        self.my_child_index = (
            None
            if self.parent is None
            else self.tree.children(self.parent).index(rank)
        )
        layout = NotificationLayout()
        self.notif_ready = layout.add("ready", 64)
        self.notif_data = layout.add("data", self.chunks.num_chunks)
        # Per-call constants, precomputed: notification ids and byte
        # bounds per chunk (method calls and f-strings are measurable at
        # plan-cached call rates, GIL-serialised across every rank).
        self._child_ready_ids = [
            self.notif_ready.id(ci) for ci in range(len(self.children))
        ]
        self._parent_ready_id = (
            None
            if self.my_child_index is None
            else self.notif_ready.id(self.my_child_index)
        )
        self._byte_bounds = [
            self.chunks.byte_bounds(k) for k in range(self.chunks.num_chunks)
        ]
        self.zero_copy = runtime.supports_bind
        self._bound: Optional[np.ndarray] = None
        # Budget check: the chunk map is sliced by hand below, so prove
        # here — once, on every rank alike — that the last chunk ends
        # inside the workspace the next line creates.
        require(
            not self._byte_bounds
            or self._byte_bounds[-1][1] <= max(key.nbytes, 8),
            f"pipelined bcast chunk map overruns the workspace: last chunk "
            f"ends at byte {self._byte_bounds[-1][1]} of {max(key.nbytes, 8)}",
        )
        self._create_workspace(key.nbytes)
        self._staging = (
            None
            if self.zero_copy
            else runtime.segment_view(segment_id, dtype=self.dtype, count=self.elements)
        )

    # ------------------------------------------------------------------ #
    def begin(self, request: "CollectiveRequest") -> PipelineGen:
        """The incremental executor (generator) for one call.

        Waits poll with ``timeout=0`` and yield a :class:`WaitSpec` when
        blocked, so a :class:`ProgressEngine` can advance the pipeline
        incrementally.
        """
        return self._run(request, poll_timeout=0.0)

    def execute(self, request: "CollectiveRequest") -> "CollectiveResult":
        # Blocking mode: the generator waits inline with the request's
        # timeout and (in the common infinite-timeout case) never yields,
        # so the blocking path pays exactly one wait per notification —
        # no poll-then-park double round-trip.
        return drive_pipeline(
            self.runtime,
            self._run(request, poll_timeout=_plan_poll_timeout(self.runtime, request)),
            request.timeout,
        )

    # ------------------------------------------------------------------ #
    def _run(self, request: "CollectiveRequest", poll_timeout: float) -> PipelineGen:
        from .policy import CollectiveResult

        buffer = self._check_payload(_require_vector(request.sendbuf), "bcast buffer")
        rt = self.runtime
        rank = rt.rank
        root = self.key.root
        sid = self.segment_id
        queue = request.queue
        data = self.notif_data
        chunks = self.chunks

        if self.zero_copy and self._bound is not buffer:
            # Swap the registered window to this call's buffer.  Safe: no
            # write can be in flight — the parent only writes after
            # consuming the readiness notification posted *below*.
            rt.segment_bind(sid, buffer)
            self._bound = buffer

        # Entry handshake: announce that this call's chunk slots (and, in
        # zero-copy mode, this call's binding) are writable.  This is the
        # cross-call consume-ack: it is posted only once the previous
        # call's chunks were fully consumed on this rank.
        if self._parent_ready_id is not None:
            rt.notify(self.parent, sid, self._parent_ready_id, queue=queue)
            rt.wait(queue)
        for nid in self._child_ready_ids:
            while rt.notify_waitsome(sid, nid, 1, timeout=poll_timeout) is None:
                yield WaitSpec(sid, nid, 1)
            rt.notify_reset(sid, nid)

        bounds = self._byte_bounds
        children = self.children
        if rank == root:
            for k, (bb, be) in enumerate(bounds):
                if self._staging is not None:
                    eb, ee = chunks.bounds[k]
                    self._staging[eb:ee] = buffer[eb:ee]
                for child in children:
                    rt.write_notify(sid, bb, child, sid, bb, be - bb, data.base + k, queue=queue)
            if children:
                rt.wait(queue)
        else:
            pending = chunks.num_chunks
            while pending:
                got = rt.notify_drain(sid, data.base, data.count)
                if not got:
                    if (
                        rt.notify_waitsome(sid, data.base, data.count, timeout=poll_timeout)
                        is None
                    ):
                        yield WaitSpec(sid, data.base, data.count)
                    continue
                for nid in sorted(got):
                    bb, be = bounds[nid - data.base]
                    for child in children:
                        rt.write_notify(sid, bb, child, sid, bb, be - bb, nid, queue=queue)
                    if self._staging is not None:
                        eb, ee = chunks.bounds[nid - data.base]
                        buffer[eb:ee] = self._staging[eb:ee]
                if children:
                    rt.wait(queue)
                pending -= len(got)

        self.calls += 1
        detail = BroadcastResult(
            rank=rank,
            root=root,
            elements_total=buffer.size,
            elements_received=buffer.size if rank == root else self.send_elems,
            bytes_received=(
                0 if rank == root else self.send_elems * self.dtype.itemsize
            ),
            threshold=self.key.policy[0],
            stage=self.stage,
        )
        return CollectiveResult(value=request.sendbuf, detail=detail)


# --------------------------------------------------------------------------- #
# pipelined BST reduce
# --------------------------------------------------------------------------- #
class PipelinedBstReducePlan(CollectivePlan):
    """Chunked, pipelined BST reduce with per-chunk folds and push-ups.

    A parent folds chunk ``k`` of each child (vectorised
    :func:`~repro.core.kernels.reduce_into` straight from the child's
    segment slot) while chunk ``k+1`` is still arriving, and pushes every
    completed chunk to its own parent without waiting for the rest of the
    vector.  The accumulator lives *inside* the pooled segment, so the
    push-up posts directly from it — the staging copy of the monolithic
    plan is gone.

    Reuse safety: a parent notifies each child ``ready`` at call entry,
    which certifies that all of the previous call's child slots were
    folded; a child pushes only after consuming it.  The child's
    accumulator needs no acknowledgement — its pushes are flushed
    (``wait(queue)``) before the call returns, so the data has left the
    accumulator before the next call can overwrite it.
    """

    def __init__(self, runtime, key: PlanKey, segment_id: int, policy) -> None:
        super().__init__(runtime, key, segment_id)
        self.dtype = np.dtype(key.dtype)
        self.elements = key.nbytes // self.dtype.itemsize
        self.mode = ReduceMode(policy.mode)
        self.tree = BinomialTree(runtime.size, key.root)
        rank = runtime.rank
        if self.mode is ReduceMode.DATA:
            self.reduce_elems = threshold_elements(self.elements, policy.threshold)
            participants = list(range(runtime.size))
        else:
            self.reduce_elems = self.elements
            participants = self.tree.participating_ranks(policy.threshold)
        self.reduce_bytes = self.reduce_elems * self.dtype.itemsize
        self.participants = participants
        self.participating = rank in participants
        self.children_all = self.tree.children(rank)
        self.children = [c for c in self.children_all if c in participants]
        self.child_indices = [self.children_all.index(c) for c in self.children]
        self.parent = self.tree.parent(rank)
        self.my_index = (
            None
            if self.parent is None
            else self.tree.children(self.parent).index(rank)
        )
        #: Contributors below (and including) this rank — static for the
        #: fault-free plans; carried as the push-up notification value.
        self.subtree_contributors = 1 + sum(
            1 for r in self.tree.descendants(rank) if r in participants
        )
        self.chunks = ChunkLayout.for_elements(
            self.reduce_elems,
            self.dtype.itemsize,
            resolve_chunk_bytes(self.reduce_bytes, policy),
        )
        layout = NotificationLayout()
        self.notif_ready = layout.add("ready", 1)
        # Slot (i, k): chunk k of the i-th child.  Sized by the global
        # 64-child fan-out bound (not this rank's own child count): a rank
        # computes ids for its *parent's* slot table, so the map must be
        # identical on every rank.
        self.notif_data = layout.add("data", 64 * self.chunks.num_chunks)
        self._ready_id = self.notif_ready.id(0)
        C = self.chunks.num_chunks
        self._byte_bounds = [self.chunks.byte_bounds(k) for k in range(C)]
        # Per-call constants for the push-up to the parent.
        if self.my_index is not None:
            self._push_ids = [self._data_id(self.my_index, k) for k in range(C)]
            self._push_offsets = [
                (1 + self.my_index) * self.reduce_bytes + bb
                for bb, _ in self._byte_bounds
            ]
            # Budget check: the push offsets index the *parent's* slot
            # table, which the parent sizes from its own child count —
            # prove every push lands inside it before any call posts.
            parent_slots = max(1, len(self.tree.children(self.parent)))
            parent_workspace = (1 + parent_slots) * max(key.nbytes, 8)
            last_bb, last_be = self._byte_bounds[-1]
            require(
                self._push_offsets[-1] + (last_be - last_bb)
                <= parent_workspace,
                f"pipelined reduce push-up overruns the parent's workspace: "
                f"slot {self.my_index} chunk {C - 1} ends at byte "
                f"{self._push_offsets[-1] + (last_be - last_bb)} of "
                f"{parent_workspace}",
            )
        # Segment layout: the accumulator in [0, reduce_bytes), then one
        # full-width slot per child.
        slot_count = max(1, len(self.children_all))
        self._create_workspace((1 + slot_count) * max(key.nbytes, 8))
        self._acc = runtime.segment_view(
            segment_id, dtype=self.dtype, count=self.reduce_elems
        )
        self._child_slots = {
            index: runtime.segment_view(
                segment_id,
                dtype=self.dtype,
                offset=(1 + index) * self.reduce_bytes,
                count=self.reduce_elems,
            )
            for index in self.child_indices
        }

    def _data_id(self, child_index: int, chunk: int) -> int:
        return self.notif_data.id(child_index * self.chunks.num_chunks + chunk)

    # ------------------------------------------------------------------ #
    def begin(self, request: "CollectiveRequest") -> PipelineGen:
        return self._run(request, poll_timeout=0.0)

    def execute(self, request: "CollectiveRequest") -> "CollectiveResult":
        return drive_pipeline(
            self.runtime,
            self._run(request, poll_timeout=_plan_poll_timeout(self.runtime, request)),
            request.timeout,
        )

    # ------------------------------------------------------------------ #
    def _run(self, request: "CollectiveRequest", poll_timeout: float) -> PipelineGen:
        from .policy import CollectiveResult

        sendbuf = self._check_payload(np.asarray(request.sendbuf), "reduce sendbuf")
        require(
            sendbuf.ndim == 1 and sendbuf.flags["C_CONTIGUOUS"],
            "reduce sendbuf must be a contiguous vector",
        )
        operator = get_op(request.op)
        rt = self.runtime
        rank = rt.rank
        root = self.key.root
        sid = self.segment_id
        queue = request.queue
        chunks = self.chunks
        C = chunks.num_chunks
        recvbuf = request.recvbuf

        if self.participating:
            acc = self._acc
            own = sendbuf[: self.reduce_elems]
            # Fused-fold fast path: with a ufunc operator the first fold
            # of each chunk reads straight from the caller's sendbuf (no
            # upfront accumulator copy) and the root's last fold lands
            # straight in recvbuf — two full passes over the vector gone.
            fused = bool(self.children) and kernels.is_vectorizable(operator.func)
            root_out = None
            if self.parent is None and recvbuf is not None:
                recvbuf = np.asarray(recvbuf)
                require(
                    recvbuf.size >= self.reduce_elems,
                    "recvbuf too small for the reduced prefix",
                )
                if (
                    fused
                    and recvbuf.dtype == self.dtype
                    and recvbuf.flags["C_CONTIGUOUS"]
                ):
                    root_out = recvbuf
            if not fused:
                acc[:] = own

            # Entry handshake: the previous call's child slots are folded,
            # so the children may overwrite them for this call.
            for child in self.children:
                rt.notify(child, sid, self._ready_id, queue=queue)
            if self.children:
                rt.wait(queue)

            parent_ready = self.parent is None
            completed: List[int] = []
            # Deterministic fold order: drained notifications arrive in
            # whatever order the children raced in, but floating-point
            # reduction is not associative — so arrivals are *recorded*
            # out of order and *folded* strictly in child order per
            # chunk, keeping the result bit-identical to the monolithic
            # (and the cold) path.
            arrived = [set() for _ in range(C)]
            next_fold = [0] * C
            remaining = C if self.children else 0
            if not self.children:
                completed = list(range(C))
            data_base = self.notif_data.base
            data_count = self.notif_data.count
            bounds = chunks.bounds
            fold_order = self.child_indices
            n_children = len(fold_order)

            def try_push() -> None:
                # Push every completed chunk up, once the parent declared
                # this call's slots writable.
                for k in completed:
                    bb, be = self._byte_bounds[k]
                    rt.write_notify(
                        sid,
                        bb,
                        self.parent,
                        sid,
                        self._push_offsets[k],
                        be - bb,
                        self._push_ids[k],
                        self.subtree_contributors,
                        queue=queue,
                    )
                completed.clear()

            while remaining:
                got = rt.notify_drain(sid, data_base, data_count)
                if not got:
                    if completed and not parent_ready:
                        # Nothing to fold; see whether the parent freed our
                        # slots so the completed chunks can move now.
                        if (
                            rt.notify_waitsome(sid, self._ready_id, 1, timeout=0.0)
                            is not None
                        ):
                            rt.notify_reset(sid, self._ready_id)
                            parent_ready = True
                            try_push()
                            continue
                    if (
                        rt.notify_waitsome(sid, data_base, data_count, timeout=poll_timeout)
                        is None
                    ):
                        yield WaitSpec(sid, data_base, data_count)
                    continue
                for nid in got:
                    child_index, k = divmod(nid - data_base, C)
                    arrived[k].add(child_index)
                for k in range(C):
                    position = next_fold[k]
                    if position >= n_children:
                        continue
                    eb, ee = bounds[k]
                    while position < n_children and fold_order[position] in arrived[k]:
                        slot = self._child_slots[fold_order[position]][eb:ee]
                        if fused:
                            first = position == 0
                            last = position == n_children - 1
                            fold_src = own[eb:ee] if first else acc[eb:ee]
                            fold_out = (
                                root_out[eb:ee]
                                if (last and root_out is not None)
                                else acc[eb:ee]
                            )
                            kernels.fold(operator, fold_src, slot, fold_out)
                        else:
                            kernels.reduce_into(operator, acc[eb:ee], slot)
                        position += 1
                    next_fold[k] = position
                    if position == n_children:
                        next_fold[k] = n_children + 1  # fold done, marker
                        remaining -= 1
                        completed.append(k)
                if self.parent is not None and completed:
                    if not parent_ready:
                        if (
                            rt.notify_waitsome(sid, self._ready_id, 1, timeout=0.0)
                            is not None
                        ):
                            rt.notify_reset(sid, self._ready_id)
                            parent_ready = True
                    if parent_ready:
                        try_push()

            if self.parent is not None:
                if not parent_ready:
                    nid = self._ready_id
                    while rt.notify_waitsome(sid, nid, 1, timeout=poll_timeout) is None:
                        yield WaitSpec(sid, nid, 1)
                    rt.notify_reset(sid, nid)
                    parent_ready = True
                try_push()
                rt.wait(queue)
            elif recvbuf is not None and root_out is None:
                # Non-fused root: the result is in the accumulator.
                recvbuf[: self.reduce_elems] = acc

        self.calls += 1
        contributors = len(self.participants) if rank == root else 0
        detail = ReduceResult(
            rank=rank,
            root=root,
            mode=self.mode,
            threshold=self.key.policy[0],
            participated=self.participating,
            elements_reduced=self.reduce_elems if self.participating else 0,
            contributors=contributors if self.participating else 0,
        )
        return CollectiveResult(value=request.recvbuf, detail=detail)


# --------------------------------------------------------------------------- #
# pipelined (chunked) ring allreduce
# --------------------------------------------------------------------------- #
class PipelinedRingAllreducePlan(CollectivePlan):
    """Ring allreduce with in-flight sub-chunk slots and a zero-copy path.

    Differences from the monolithic :class:`~repro.core.allreduce_ring.RingAllreducePlan`:

    * the working vector lives *inside* the pooled segment, so every send
      posts directly from it — the per-step staging copy is gone;
    * each ring step's 1/P chunk is split into up to ``M`` sub-chunks
      (``policy.chunk_bytes`` / the tuning table), all in flight at once
      with per-sub-chunk notification ids;
    * allgather-phase sub-chunks are written straight into the
      *successor's work region* (their final destination — same global
      offsets on every rank), eliminating the receive-slot copy of that
      phase.  A per-call entry notification from the successor fences
      those direct writes against the successor's next-call entry
      overwrite (``work[:] = sendbuf``); the scatter-phase slots need no
      fence — the ring's transitive step dependency already serialises
      them across calls, exactly as for the monolithic plan.
    """

    def __init__(self, runtime, key: PlanKey, segment_id: int, policy) -> None:
        super().__init__(runtime, key, segment_id)
        self.dtype = np.dtype(key.dtype)
        self.elements = key.nbytes // self.dtype.itemsize
        size = runtime.size
        rank = runtime.rank
        self.ring = Ring(size)
        self.next_rank = self.ring.next_rank(rank)
        self.prev_rank = self.ring.prev_rank(rank)
        itemsize = self.dtype.itemsize
        max_chunk = -(-self.elements // size) if size else 0
        max_chunk_bytes = max(max_chunk * itemsize, itemsize)
        chunk_bytes = resolve_chunk_bytes(max_chunk_bytes, policy)
        if chunk_bytes is None:
            self.subs = 1
        else:
            self.subs = max(1, min(64, -(-max_chunk_bytes // max(chunk_bytes, 1))))
        self.scatter_steps = size - 1
        self.total_steps = 2 * (size - 1)
        self.sub_slot_bytes = max(-(-max_chunk_bytes // self.subs), itemsize)
        layout = NotificationLayout()
        self.notif_entry = layout.add("entry", 1)
        self.notif_steps = layout.add(
            "steps", max(1, self.total_steps * self.subs)
        )
        # Step table: per global step, the fully precomputed send and
        # receive actions.  Sends: (notif id, local byte offset, remote
        # byte offset, size).  Receives: (notif id, element bounds, slot
        # byte offset or None for in-place allgather arrivals).
        # Sub-bounds slice the *global* vector; sender and receiver cut
        # the same global chunk, so they always agree.
        itemsize = self.dtype.itemsize
        self.steps: List[Tuple[List[tuple], List[tuple], bool]] = []
        for gstep in range(self.total_steps):
            fold = gstep < self.scatter_steps
            step = gstep if fold else gstep - self.scatter_steps
            if fold:
                send_chunk = self.ring.scatter_reduce_send_chunk(rank, step)
                recv_chunk = self.ring.scatter_reduce_recv_chunk(rank, step)
            else:
                send_chunk = self.ring.allgather_send_chunk(rank, step)
                recv_chunk = self.ring.allgather_recv_chunk(rank, step)
            sends = []
            for m, (sb, se) in enumerate(self._sub_bounds(send_chunk)):
                nid = self._step_id(gstep, m)
                remote = self._slot_offset(gstep, m) if fold else sb * itemsize
                sends.append((nid, sb * itemsize, remote, (se - sb) * itemsize))
            recvs = []
            for m, (rb, re) in enumerate(self._sub_bounds(recv_chunk)):
                nid = self._step_id(gstep, m)
                slot = self._slot_offset(gstep, m) if fold else None
                recvs.append((nid, rb, re, slot))
            self.steps.append((sends, recvs, fold))
        if size > 1:
            slot_region = self.scatter_steps * self.subs * self.sub_slot_bytes
            workspace_bytes = max(key.nbytes, 8) + slot_region
            # Budget check: the step table's remote offsets are computed by
            # hand (scatter slots past the work region, allgather writes
            # into the work region itself) — prove every send of every
            # step lands inside the workspace created just below.
            for sends, _recvs, _fold in self.steps:
                for nid, _local, remote, send_bytes in sends:
                    require(
                        0 <= remote and remote + send_bytes <= workspace_bytes,
                        f"ring step table overruns the workspace: send for "
                        f"notification {nid} covers bytes "
                        f"[{remote}, {remote + send_bytes}) of "
                        f"{workspace_bytes}",
                    )
            self._create_workspace(workspace_bytes)
            self._work = runtime.segment_view(
                segment_id, dtype=self.dtype, count=self.elements
            )
            # Frozen receive-slot views per scatter sub-chunk (keyed by
            # notification id) — no per-call segment lookups.
            self._slot_views = {
                nid: runtime.segment_view(
                    segment_id, dtype=self.dtype, offset=slot, count=re - rb
                )
                for sends, recvs, fold in self.steps
                if fold
                for nid, rb, re, slot in recvs
                if re > rb
            }

    def _sub_bounds(self, chunk_index: int) -> List[Tuple[int, int]]:
        """Element bounds of every sub-chunk of one rank-chunk."""
        begin, end = chunk_bounds(self.elements, self.runtime.size, chunk_index)
        out = []
        for m in range(self.subs):
            sb, se = chunk_bounds(end - begin, self.subs, m)
            out.append((begin + sb, begin + se))
        return out

    def _slot_offset(self, step: int, sub: int) -> int:
        return self.key.nbytes + (step * self.subs + sub) * self.sub_slot_bytes

    def _step_id(self, step: int, sub: int) -> int:
        return self.notif_steps.id(step * self.subs + sub)

    # ------------------------------------------------------------------ #
    def begin(self, request: "CollectiveRequest") -> PipelineGen:
        return self._run(request, poll_timeout=0.0)

    def execute(self, request: "CollectiveRequest") -> "CollectiveResult":
        return drive_pipeline(
            self.runtime,
            self._run(request, poll_timeout=_plan_poll_timeout(self.runtime, request)),
            request.timeout,
        )

    # ------------------------------------------------------------------ #
    def _run(self, request: "CollectiveRequest", poll_timeout: float) -> PipelineGen:
        from .allreduce_ring import RingAllreduceStats
        from .policy import CollectiveResult

        sendbuf = self._check_payload(np.asarray(request.sendbuf), "allreduce sendbuf")
        require(
            sendbuf.ndim == 1 and sendbuf.flags["C_CONTIGUOUS"],
            "allreduce sendbuf must be a contiguous vector",
        )
        operator = get_op(request.op)
        rt = self.runtime
        rank = rt.rank
        size = rt.size
        recvbuf = request.recvbuf
        if recvbuf is None:
            recvbuf = np.array(sendbuf, copy=True)
        else:
            recvbuf = np.asarray(recvbuf)
            require(
                recvbuf.shape == sendbuf.shape and recvbuf.dtype == sendbuf.dtype,
                "recvbuf must match sendbuf in shape and dtype",
            )
        if size == 1:
            recvbuf[:] = sendbuf
            self.calls += 1
            return CollectiveResult(
                value=recvbuf, detail=RingAllreduceStats(rank, 1, 0, 0, 0)
            )

        sid = self.segment_id
        queue = request.queue
        work = self._work
        nxt = self.next_rank
        work[:] = sendbuf
        # Entry fence: tell the predecessor our work region holds this
        # call's data, so its allgather-phase direct writes cannot land
        # before (and be clobbered by) the copy above.
        entry_id = self.notif_entry.id(0)
        rt.notify(self.prev_rank, sid, entry_id, queue=queue)
        rt.wait(queue)
        entry_seen = False

        bytes_sent = 0
        bytes_received = 0
        itemsize = self.dtype.itemsize
        for sends, recvs, fold in self.steps:
            if not fold and not entry_seen:
                # First allgather send: wait for the successor's entry
                # notification before writing into its work region.
                while rt.notify_waitsome(sid, entry_id, 1, timeout=poll_timeout) is None:
                    yield WaitSpec(sid, entry_id, 1)
                rt.notify_reset(sid, entry_id)
                entry_seen = True
            for nid, local, remote, sub_bytes in sends:
                if sub_bytes:
                    rt.write_notify(
                        sid, local, nxt, sid, remote, sub_bytes, nid, queue=queue
                    )
                else:
                    rt.notify(nxt, sid, nid, queue=queue)
                bytes_sent += sub_bytes
            rt.wait(queue)
            for nid, rb, re, _slot in recvs:
                while rt.notify_waitsome(sid, nid, 1, timeout=poll_timeout) is None:
                    yield WaitSpec(sid, nid, 1)
                rt.notify_reset(sid, nid)
                bytes_received += (re - rb) * itemsize
                if fold and re > rb:
                    kernels.reduce_into(operator, work[rb:re], self._slot_views[nid])
                # Allgather sub-chunks were written straight into work.

        recvbuf[:] = work
        self.calls += 1
        detail = RingAllreduceStats(
            rank=rank,
            num_chunks=size,
            steps=self.total_steps,
            bytes_sent=bytes_sent,
            bytes_received=bytes_received,
        )
        return CollectiveResult(value=recvbuf, detail=detail)


# --------------------------------------------------------------------------- #
# cold-path runners (registry entry points without a cached plan)
# --------------------------------------------------------------------------- #
def _request_key(
    collective: str, algorithm: str, runtime, request: "CollectiveRequest"
) -> PlanKey:
    """Plan key of a one-shot (cold) pipelined execution."""
    sendbuf = np.asarray(request.sendbuf)
    op_name = get_op(request.op).name
    return PlanKey(
        collective=collective,
        algorithm=algorithm,
        size=runtime.size,
        root=int(request.root),
        nbytes=int(sendbuf.nbytes),
        dtype=sendbuf.dtype.str,
        op=op_name,
        policy=policy_fingerprint(request.policy),
        tag=int(request.tag),
    )


def _run_cold(plan_cls, collective: str, name: str, runtime, request):
    """Build a throwaway plan, run one call, tear it down (cold path).

    Mirrors the other cold runners' costs: one segment registration with
    its barrier on construction, one barrier before the segment delete
    (draining the entry-handshake notifications still in flight from the
    call).
    """
    key = _request_key(collective, name, runtime, request)
    plan = plan_cls(runtime, key, request.segment_id, request.policy)
    try:
        result = plan.execute(request)
    finally:
        try:
            runtime.barrier()
        except GaspiError:  # pragma: no cover - crashed/vanished runtime
            pass
        plan.close()
    return result


def run_pipelined_bcast(runtime, request):
    return _run_cold(
        PipelinedBstBcastPlan, "bcast", "gaspi_bcast_bst_pipelined", runtime, request
    )


def run_pipelined_reduce(runtime, request):
    return _run_cold(
        PipelinedBstReducePlan, "reduce", "gaspi_reduce_bst_pipelined", runtime, request
    )


def run_pipelined_allreduce(runtime, request):
    result = _run_cold(
        PipelinedRingAllreducePlan,
        "allreduce",
        "gaspi_allreduce_ring_pipelined",
        runtime,
        request,
    )
    if request.recvbuf is not None:
        result.value = request.recvbuf
    return result


# --------------------------------------------------------------------------- #
# schedule builders (simulator models of the per-chunk pipelines)
# --------------------------------------------------------------------------- #
def _chunk_count(nbytes: int, chunk_bytes: Optional[int]) -> int:
    """Number of pipeline chunks the schedule models for a payload."""
    if chunk_bytes is None:
        from .tuning import select_chunk_bytes

        chunk_bytes = select_chunk_bytes(nbytes)
    if not nbytes or chunk_bytes is None or chunk_bytes >= nbytes:
        return 1
    return max(1, -(-nbytes // int(chunk_bytes)))


def pipelined_bst_bcast_schedule(
    num_ranks: int,
    nbytes: int,
    threshold: float = 1.0,
    chunk_bytes: Optional[int] = None,
    root: int = 0,
    protocol: Protocol = Protocol.ONESIDED,
    name: str | None = None,
) -> CommunicationSchedule:
    """Per-chunk schedule of the pipelined BST broadcast.

    Round ``r`` carries chunk ``k`` across tree stage ``s`` wherever
    ``(s - 1) + k == r`` — the wavefront of the pipeline.  Because the
    simulator orders each rank's rounds, this models exactly the overlap
    the pipelining buys: with ``C`` chunks and ``S`` stages the depth is
    ``S + C - 1`` chunk times instead of ``S`` full-payload times.
    """
    from ..utils.validation import check_fraction

    check_fraction(threshold, "threshold")
    require(nbytes >= 0, "nbytes must be non-negative")
    send_bytes = max(1, int(nbytes * threshold)) if nbytes else 0
    chunks = _chunk_count(send_bytes, chunk_bytes)
    tree = BinomialTree(num_ranks, root)
    sched = CommunicationSchedule(
        name=name or f"gaspi_bcast_bst_pipelined[{chunks}ch]",
        num_ranks=num_ranks,
        metadata={
            "threshold": threshold,
            "payload_bytes": nbytes,
            "shipped_bytes": send_bytes,
            "chunks": chunks,
            "algorithm": "pipelined_binomial_spanning_tree",
        },
    )
    stages = tree.ranks_by_stage()
    max_stage = max(stages) if num_ranks > 1 else 0
    per_chunk = [
        chunk_bounds(send_bytes, chunks, k)[1] - chunk_bounds(send_bytes, chunks, k)[0]
        for k in range(chunks)
    ]
    for wave in range(max_stage + chunks - 1):
        messages = []
        for stage in sorted(s for s in stages if s > 0):
            k = wave - (stage - 1)
            if not (0 <= k < chunks):
                continue
            messages.extend(
                Message(
                    src=tree.parent(child),
                    dst=child,
                    nbytes=per_chunk[k],
                    protocol=protocol,
                    tag=f"bcast-stage-{stage}-chunk-{k}",
                )
                for child in stages[stage]
            )
        if messages:
            sched.add_round(messages, label=f"wave-{wave}")
    sched.validate()
    return sched


def pipelined_bst_reduce_schedule(
    num_ranks: int,
    nbytes: int,
    threshold: float = 1.0,
    mode: ReduceMode | str = ReduceMode.DATA,
    chunk_bytes: Optional[int] = None,
    root: int = 0,
    protocol: Protocol = Protocol.ONESIDED,
    name: str | None = None,
) -> CommunicationSchedule:
    """Per-chunk schedule of the pipelined BST reduce (inverse wavefront).

    The deepest stage pushes chunk ``k`` at round ``(S_max - s) + k``;
    every hop pays the per-chunk reduction, modelled through the messages'
    ``reduce_bytes``.
    """
    from ..utils.validation import check_fraction

    mode = ReduceMode(mode)
    check_fraction(threshold, "threshold")
    require(nbytes >= 0, "nbytes must be non-negative")
    tree = BinomialTree(num_ranks, root)
    if mode is ReduceMode.DATA:
        send_bytes = max(1, int(nbytes * threshold)) if nbytes else 0
        participants = set(range(num_ranks))
    else:
        send_bytes = nbytes
        participants = set(tree.participating_ranks(threshold))
    chunks = _chunk_count(send_bytes, chunk_bytes)
    sched = CommunicationSchedule(
        name=name or f"gaspi_reduce_bst_pipelined[{chunks}ch]",
        num_ranks=num_ranks,
        metadata={
            "threshold": threshold,
            "mode": mode.value,
            "payload_bytes": nbytes,
            "shipped_bytes": send_bytes,
            "chunks": chunks,
            "participants": len(participants),
            "algorithm": "pipelined_binomial_spanning_tree",
        },
    )
    stages = tree.ranks_by_stage()
    max_stage = max(stages) if num_ranks > 1 else 0
    per_chunk = [
        chunk_bounds(send_bytes, chunks, k)[1] - chunk_bounds(send_bytes, chunks, k)[0]
        for k in range(chunks)
    ]
    for wave in range(max_stage + chunks - 1):
        messages = []
        for stage in sorted((s for s in stages if s > 0), reverse=True):
            k = wave - (max_stage - stage)
            if not (0 <= k < chunks):
                continue
            for child in stages[stage]:
                parent = tree.parent(child)
                if child in participants and parent in participants:
                    messages.append(
                        Message(
                            src=child,
                            dst=parent,
                            nbytes=per_chunk[k],
                            protocol=protocol,
                            reduce_bytes=per_chunk[k],
                            tag=f"reduce-stage-{stage}-chunk-{k}",
                        )
                    )
        if messages:
            sched.add_round(messages, label=f"wave-{wave}")
    sched.validate()
    return sched


def pipelined_ring_allreduce_schedule(
    num_ranks: int,
    nbytes: int,
    chunk_bytes: Optional[int] = None,
    protocol: Protocol = Protocol.ONESIDED,
    name: str | None = None,
) -> CommunicationSchedule:
    """Schedule of the chunked ring: the ring builder with sub-splitting."""
    from .allreduce_ring import ring_allreduce_schedule

    per_rank_chunk = -(-nbytes // num_ranks) if num_ranks else nbytes
    subs = _chunk_count(per_rank_chunk, chunk_bytes)
    sched = ring_allreduce_schedule(
        num_ranks,
        nbytes,
        protocol=protocol,
        segment_messages=subs,
        name=name or f"gaspi_allreduce_ring_pipelined[{subs}sub]",
    )
    sched.metadata["chunks"] = subs
    sched.metadata["algorithm"] = "pipelined_segmented_ring"
    return sched
