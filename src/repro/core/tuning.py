"""Runtime algorithm selection: Intel-MPI-style tuning tables.

Intel MPI picks a collective implementation from the message size and the
communicator size (``I_MPI_ADJUST_*``); the paper's "mpi-def" baselines
are whatever those tables select.  This module generalises that mechanism
into a first-class :class:`TuningTable` that both families use:

* the **GASPI table** backs ``algorithm="auto"`` on the user-facing
  :class:`~repro.core.api.Communicator` — small payloads go to the
  latency-optimal hypercube, large payloads to the bandwidth-optimal
  segmented pipelined ring, exactly the trade-off Figures 11–12 quantify;
* the **MPI table** reproduces the Intel defaults and backs the
  ``mpi_*_default`` registry entries (:mod:`repro.mpi.tuning` imports the
  byte thresholds from here so the two layers cannot drift apart).

A rule matches on the communicator size and payload size; the first
matching rule whose algorithm also *supports* the request (capability
check against the registry) wins, so e.g. the hypercube is skipped
automatically on non-power-of-two worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from ..utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .policy import ConsistencyPolicy
    from .registry import AlgorithmInfo, AlgorithmRegistry

# --------------------------------------------------------------------------- #
# Selection thresholds (bytes) — round numbers in the range the MPI
# literature and the Intel defaults use; deliberately conservative so the
# "default" baseline is a strong competitor, as it is in the paper's figures.
# --------------------------------------------------------------------------- #
ALLREDUCE_SMALL = 8 * 1024
ALLREDUCE_MEDIUM = 256 * 1024
BCAST_SMALL = 12 * 1024
REDUCE_SMALL = 32 * 1024
ALLTOALL_SMALL = 1024
ALLTOALL_MEDIUM = 64 * 1024

# --------------------------------------------------------------------------- #
# Pipelined chunked data path (PR 4).  Payloads at or above
# PIPELINE_MIN_BYTES route to the chunked pipelined variants; the chunk
# size itself comes from PIPELINE_CHUNK_TABLE below.
# --------------------------------------------------------------------------- #
PIPELINE_MIN_BYTES = 128 * 1024

#: The reduce crossover sits higher: the monolithic BST reduce's
#: ready/data/ack handshake is already tight at a quarter megabyte, and
#: the measured pipelined win only appears once per-chunk folds overlap
#: multi-hundred-microsecond transfers (see BENCH_pr4.json).
REDUCE_PIPELINE_MIN_BYTES = 512 * 1024


@dataclass(frozen=True)
class ChunkRule:
    """One row of the chunk-size table: payloads up to ``max_nbytes``
    (``None`` = unbounded) are cut into ``chunk_bytes``-sized pieces
    (``None`` = a single chunk, the degenerate zero-copy pipeline)."""

    max_nbytes: Optional[int]
    chunk_bytes: Optional[int]


#: Payload-size → chunk-size table of the pipelined data path.  The shape
#: mirrors Open MPI's segmented-collective tuning: no segmentation below
#: the pipelining threshold, then chunk sizes that grow with the payload
#: so the chunk count stays small.  On this thread-per-rank substrate the
#: per-chunk cost is a condition-variable wakeup (~50 us), not a NIC
#: doorbell, so the crossover sits far higher than on real hardware —
#: chunking pays off only once a chunk's memcpy time clears the wakeup
#: latency.  ``ConsistencyPolicy.chunk_bytes`` overrides the table, which
#: the nonblocking overlap path uses to force finer chunks.
PIPELINE_CHUNK_TABLE: List[ChunkRule] = [
    ChunkRule(max_nbytes=512 * 1024, chunk_bytes=None),  # single zero-copy chunk
    ChunkRule(max_nbytes=2 * 1024 * 1024, chunk_bytes=512 * 1024),
    ChunkRule(max_nbytes=8 * 1024 * 1024, chunk_bytes=1024 * 1024),
    ChunkRule(max_nbytes=None, chunk_bytes=2 * 1024 * 1024),
]


def select_chunk_bytes(
    nbytes: int, table: Optional[List[ChunkRule]] = None
) -> Optional[int]:
    """Chunk size (bytes) the pipelined data path uses for a payload.

    ``None`` means "do not segment" — the pipeline degenerates to a single
    zero-copy transfer per edge.
    """
    require(nbytes >= 0, f"nbytes must be non-negative, got {nbytes}")
    for rule in table if table is not None else PIPELINE_CHUNK_TABLE:
        if rule.max_nbytes is None or nbytes <= rule.max_nbytes:
            return rule.chunk_bytes
    return None


@dataclass(frozen=True)
class TuningRule:
    """One row of a tuning table.

    A rule applies when ``nbytes <= max_nbytes`` (if set) and
    ``min_ranks <= num_ranks <= max_ranks`` (where set).  Rules are tried
    in order; a rule whose algorithm does not support the request (wrong
    world size, unsupported policy) is skipped rather than failing, so the
    table degrades gracefully.
    """

    collective: str
    algorithm: str
    max_nbytes: Optional[int] = None
    min_nbytes: int = 0
    min_ranks: int = 1
    max_ranks: Optional[int] = None
    reason: str = ""

    def matches(self, num_ranks: int, nbytes: int) -> bool:
        if nbytes < self.min_nbytes:
            return False
        if self.max_nbytes is not None and nbytes > self.max_nbytes:
            return False
        if num_ranks < self.min_ranks:
            return False
        if self.max_ranks is not None and num_ranks > self.max_ranks:
            return False
        return True


class TuningTable:
    """Ordered rule list mapping (collective, size, ranks) → algorithm."""

    def __init__(self, name: str, rules: List[TuningRule]) -> None:
        self.name = name
        self.rules = list(rules)

    def select(
        self,
        collective: str,
        num_ranks: int,
        nbytes: int,
        policy: Optional["ConsistencyPolicy"] = None,
        registry: Optional["AlgorithmRegistry"] = None,
        executable: bool = False,
    ) -> "AlgorithmInfo":
        """Pick the first applicable, supported algorithm for a request.

        Parameters
        ----------
        registry:
            Registry the candidate names are resolved against (the global
            :data:`~repro.core.registry.REGISTRY` when ``None``).
        executable:
            Require the selected algorithm to carry a ``run`` entry point
            (set by the Communicator; the benchmark harness only needs the
            schedule builder and leaves this off).
        """
        from .registry import REGISTRY

        registry = registry if registry is not None else REGISTRY
        candidates = [r for r in self.rules if r.collective == collective]
        require(
            bool(candidates),
            f"tuning table {self.name!r} has no rules for collective "
            f"{collective!r}",
        )
        skipped = []
        for rule in candidates:
            if not rule.matches(num_ranks, nbytes):
                continue
            if rule.algorithm not in registry:
                skipped.append(f"{rule.algorithm} (not registered)")
                continue
            info = registry.get(rule.algorithm)
            if executable and not info.executable:
                skipped.append(f"{rule.algorithm} (no executable runner)")
                continue
            supported, why = info.supports(num_ranks, policy)
            if not supported:
                skipped.append(f"{rule.algorithm} ({why})")
                continue
            return info
        detail = f"; skipped: {', '.join(skipped)}" if skipped else ""
        raise ValueError(
            f"tuning table {self.name!r} found no supported {collective!r} "
            f"algorithm for {num_ranks} ranks / {nbytes} bytes{detail}"
        )


def default_gaspi_table() -> TuningTable:
    """The auto-selection rules for the paper's GASPI collectives.

    Mirrors the shape of the Intel tables: latency-optimal algorithms for
    small payloads (hypercube allreduce — log2(P) rounds; flat broadcast
    for tiny worlds), bandwidth-optimal ones beyond the threshold (the
    segmented pipelined ring, the BST).  The crossover values reuse the
    byte thresholds of the MPI defaults so the two families are tuned on
    the same scale.
    """
    return TuningTable(
        "gaspi-default",
        [
            # Allreduce: hypercube moves the full vector every one of its
            # log2(P) steps — unbeatable latency for small vectors, hopeless
            # bandwidth for large ones (paper Figure 7 left / Figure 12).
            TuningRule(
                "allreduce",
                "gaspi_allreduce_ssp_hypercube",
                max_nbytes=ALLREDUCE_SMALL,
                reason="latency-optimal for small payloads (log2 P rounds)",
            ),
            TuningRule(
                "allreduce",
                "gaspi_allreduce_ring_pipelined",
                min_nbytes=PIPELINE_MIN_BYTES,
                reason="chunked zero-copy ring for large payloads",
            ),
            TuningRule(
                "allreduce",
                "gaspi_allreduce_ring",
                reason="bandwidth-optimal segmented pipelined ring",
            ),
            # Bcast: the flat P-1 write_notify fan-out beats the BST only
            # for very small worlds; the BST wins everywhere else; large
            # payloads take the chunked zero-copy pipeline.
            TuningRule(
                "bcast",
                "gaspi_bcast_flat",
                max_ranks=2,
                max_nbytes=BCAST_SMALL,
                reason="flat fan-out for tiny worlds",
            ),
            TuningRule(
                "bcast",
                "gaspi_bcast_bst_pipelined",
                min_nbytes=PIPELINE_MIN_BYTES,
                reason="chunked pipelined BST for large payloads",
            ),
            TuningRule(
                "bcast",
                "gaspi_bcast_bst",
                reason="binomial spanning tree (paper III-B)",
            ),
            TuningRule(
                "reduce",
                "gaspi_reduce_bst_pipelined",
                min_nbytes=REDUCE_PIPELINE_MIN_BYTES,
                reason="chunked pipelined BST reduce for large payloads",
            ),
            TuningRule("reduce", "gaspi_reduce_bst", reason="BST reduce"),
            TuningRule(
                "alltoall", "gaspi_alltoall", reason="direct write_notify exchange"
            ),
            TuningRule(
                "allgather", "gaspi_allgather_ring", reason="ring allgather"
            ),
            TuningRule(
                "barrier",
                "gaspi_barrier_dissemination",
                reason="dissemination barrier",
            ),
        ],
    )


def default_mpi_table() -> TuningTable:
    """Auto-selection over the MPI baselines (the paper's "mpi-def")."""
    return TuningTable(
        "mpi-default",
        [
            TuningRule(
                "allreduce",
                "mpi_allreduce_mpi1_recursive_doubling",
                max_nbytes=ALLREDUCE_SMALL,
                reason="latency-optimal recursive doubling",
            ),
            TuningRule(
                "allreduce",
                "mpi_allreduce_mpi2_rabenseifner",
                max_nbytes=ALLREDUCE_MEDIUM,
                reason="Rabenseifner for medium payloads",
            ),
            TuningRule(
                "allreduce",
                "mpi_allreduce_mpi7_shumilin_ring",
                reason="bandwidth-optimal ring",
            ),
            # Executable fallbacks: the preferred picks above are
            # schedule-only (no functional two-sided implementation), so an
            # executable=True selection (live Communicator dispatch) falls
            # through to the functional ring; simulation keeps the Intel
            # picks because non-executable selection stops earlier.
            TuningRule(
                "allreduce",
                "mpi_allreduce_mpi8_ring",
                reason="executable fallback: functional two-sided ring",
            ),
            TuningRule(
                "bcast",
                "mpi_bcast_binomial",
                max_nbytes=BCAST_SMALL,
                reason="binomial tree for small payloads",
            ),
            TuningRule("bcast", "mpi_bcast_binomial", max_ranks=4),
            TuningRule(
                "bcast",
                "mpi_bcast_scatter_allgather",
                reason="van de Geijn scatter+allgather",
            ),
            TuningRule(
                "bcast",
                "mpi_bcast_binomial",
                reason="executable fallback: functional binomial tree",
            ),
            TuningRule(
                "reduce",
                "mpi_reduce_binomial",
                max_nbytes=REDUCE_SMALL,
                reason="binomial tree for small payloads",
            ),
            TuningRule("reduce", "mpi_reduce_binomial", max_ranks=4),
            TuningRule(
                "reduce",
                "mpi_reduce_scatter_gather",
                reason="reduce-scatter + gather",
            ),
            TuningRule(
                "reduce",
                "mpi_reduce_binomial",
                reason="executable fallback: functional binomial tree",
            ),
            TuningRule(
                "alltoall",
                "mpi_alltoall_bruck",
                max_nbytes=ALLTOALL_SMALL,
                reason="Bruck for small blocks",
            ),
            TuningRule(
                "alltoall",
                "mpi_alltoall_pairwise",
                reason="pairwise exchange",
            ),
        ],
    )


#: Singleton default tables, keyed by family.
DEFAULT_TABLES = {"gaspi": default_gaspi_table(), "mpi": default_mpi_table()}


def select_algorithm(
    collective: str,
    num_ranks: int,
    nbytes: int,
    policy: Optional["ConsistencyPolicy"] = None,
    family: str = "gaspi",
    registry: Optional["AlgorithmRegistry"] = None,
    executable: bool = False,
) -> "AlgorithmInfo":
    """Module-level convenience over the default per-family tables."""
    require(
        family in DEFAULT_TABLES,
        f"unknown tuning family {family!r}; available: {sorted(DEFAULT_TABLES)}",
    )
    return DEFAULT_TABLES[family].select(
        collective,
        num_ranks,
        nbytes,
        policy=policy,
        registry=registry,
        executable=executable,
    )
