"""Centralised notification-id budgeting for the collective protocols.

Every GASPI collective multiplexes several logical channels over one
segment's notification-id space: data arrivals, readiness handshakes,
consume acknowledgements — and, since the pipelined data path, one id per
*chunk* of a segmented payload.  The seed code carved these ranges out
with per-module magic constants (``_NOTIF_DATA = 0``, ``_NOTIF_ACK_BASE =
1``, ``_NOTIF_DATA_BASE = 64`` …), which silently assumed the ranges never
collide and never exceed the segment's slot budget.  Chunked pipelines
make both assumptions load-bearing: a 64-chunk broadcast over 8 children
needs hundreds of ids, laid out identically on every rank.

:class:`NotificationLayout` is the one allocator all of
:mod:`repro.core.bcast`, :mod:`repro.core.reduce`,
:mod:`repro.core.allreduce_ring` and :mod:`repro.core.pipeline` build
their id maps through: named, non-overlapping ranges handed out in
declaration order, validated against the segment's slot budget.  Because
allocation is deterministic, two ranks that declare the same ranges in
the same order agree on every id — the SPMD contract the protocols rely
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..gaspi.constants import DEFAULT_NOTIFICATION_COUNT
from ..utils.validation import require


@dataclass(frozen=True)
class NotifRange:
    """A named, contiguous range of notification ids.

    ``range.id(i)`` is the id of the ``i``-th slot; ``range.base`` /
    ``range.count`` feed directly into ``notify_waitsome(segment, base,
    count)`` range waits and ``notify_drain`` sweeps.
    """

    name: str
    base: int
    count: int

    def id(self, index: int = 0) -> int:
        """Absolute notification id of slot ``index`` of this range."""
        require(
            0 <= index < self.count,
            f"notification index {index} outside range {self.name!r} "
            f"of {self.count} slots",
        )
        return self.base + index

    @property
    def end(self) -> int:
        """One past the last id of the range."""
        return self.base + self.count


class NotificationLayout:
    """Sequential allocator of named notification-id ranges.

    Parameters
    ----------
    budget:
        Total notification slots available on the segment this layout is
        used with (the GPI-2 default per segment otherwise).  Exceeding it
        raises immediately at layout construction — on every rank alike —
        instead of surfacing as a deadlocked wait on an out-of-range id.
    """

    def __init__(self, budget: int = DEFAULT_NOTIFICATION_COUNT) -> None:
        require(budget > 0, f"notification budget must be positive, got {budget}")
        self.budget = int(budget)
        self._next = 0
        self._ranges: Dict[str, NotifRange] = {}

    def add(self, name: str, count: int) -> NotifRange:
        """Allocate the next ``count`` ids under ``name``."""
        require(count >= 1, f"range {name!r} needs at least one id, got {count}")
        require(name not in self._ranges, f"notification range {name!r} already allocated")
        require(
            self._next + count <= self.budget,
            f"notification budget exhausted: range {name!r} needs ids "
            f"[{self._next}, {self._next + count}) but the segment provides "
            f"only {self.budget} slots",
        )
        rng = NotifRange(name=name, base=self._next, count=int(count))
        self._next += int(count)
        self._ranges[name] = rng
        return rng

    def __getitem__(self, name: str) -> NotifRange:
        return self._ranges[name]

    @property
    def used(self) -> int:
        """Total ids allocated so far."""
        return self._next

    @property
    def remaining(self) -> int:
        """Ids still available before the budget is exhausted."""
        return self.budget - self._next

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ranges = ", ".join(
            f"{r.name}=[{r.base},{r.end})" for r in self._ranges.values()
        )
        return f"NotificationLayout({ranges}; used={self._next}/{self.budget})"
