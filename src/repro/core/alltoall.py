"""Consistent AlltoAll (paper Section IV-B, Figure 13).

The GASPI AlltoAll follows "a rather simple but well-performing pattern":
every rank writes its block for peer ``j`` directly into peer ``j``'s
segment with ``gaspi_write_notify`` (the notification id identifies the
producer), then waits for P-1 notifications, resetting each one
(``gaspi_notify_waitsome`` + ``gaspi_notify_reset``).  There is no
intermediate forwarding, no pairwise ordering and no global barrier.

:func:`alltoallv` extends the same scheme to variable block sizes, which
the paper mentions as the GASPI equivalent of ``MPI_AlltoAllV`` used by the
Quantum Espresso FFT mini-app.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import require
from .schedule import CommunicationSchedule, Message, Protocol

#: Default segment id used by the alltoall collectives.
ALLTOALL_SEGMENT_ID = 140


def alltoall(
    runtime: GaspiRuntime,
    sendbuf: np.ndarray,
    recvbuf: Optional[np.ndarray] = None,
    segment_id: int = ALLTOALL_SEGMENT_ID,
    queue: int = 0,
    timeout: float = GASPI_BLOCK,
    manage_segment: bool = True,
) -> np.ndarray:
    """Exchange equal-sized blocks between every pair of ranks.

    Parameters
    ----------
    sendbuf:
        1-D array of ``P * block`` elements; ``sendbuf[j*block:(j+1)*block]``
        is destined for rank ``j``.
    recvbuf:
        Optional output of the same shape; ``recvbuf[i*block:(i+1)*block]``
        receives rank ``i``'s block.  Allocated when ``None``.

    Returns
    -------
    numpy.ndarray
        The receive buffer.
    """
    sendbuf = np.ascontiguousarray(sendbuf)
    rank, size = runtime.rank, runtime.size
    require(sendbuf.ndim == 1, "sendbuf must be a 1-D vector")
    require(
        sendbuf.size % size == 0,
        f"sendbuf length {sendbuf.size} is not divisible by world size {size}",
    )
    block = sendbuf.size // size
    require(block > 0, "alltoall blocks must contain at least one element")
    block_bytes = block * sendbuf.itemsize

    if recvbuf is None:
        recvbuf = np.empty_like(sendbuf)
    else:
        recvbuf = np.asarray(recvbuf)
        require(
            recvbuf.size == sendbuf.size and recvbuf.dtype == sendbuf.dtype,
            "recvbuf must match sendbuf in size and dtype",
        )

    # Segment layout: the slot at offset i*block_bytes receives rank i's block.
    if manage_segment:
        runtime.segment_create(segment_id, max(size * block_bytes * 2, 8))
        runtime.barrier()
    try:
        # Stage the outgoing data in the upper half of the local segment so
        # local reads and remote writes never overlap.
        send_offset = size * block_bytes
        staging = runtime.segment_view(
            segment_id, dtype=sendbuf.dtype, offset=send_offset, count=sendbuf.size
        )
        staging[:] = sendbuf

        # Own block never touches the network.
        recvbuf[rank * block : (rank + 1) * block] = sendbuf[
            rank * block : (rank + 1) * block
        ]

        for peer in range(size):
            if peer == rank:
                continue
            runtime.write_notify(
                segment_id_local=segment_id,
                offset_local=send_offset + peer * block_bytes,
                target_rank=peer,
                segment_id_remote=segment_id,
                offset_remote=rank * block_bytes,
                size=block_bytes,
                notification_id=rank,
                queue=queue,
            )
        if size > 1:
            runtime.wait(queue)

        pending = {p for p in range(size) if p != rank}
        while pending:
            got = runtime.notify_waitsome(segment_id, 0, size, timeout=timeout)
            if got is None:
                raise TimeoutError(
                    f"rank {rank}: alltoall still waiting for blocks from {sorted(pending)}"
                )
            runtime.notify_reset(segment_id, got)
            if got in pending:
                pending.discard(got)
                incoming = runtime.segment_read(
                    segment_id,
                    dtype=sendbuf.dtype,
                    offset=got * block_bytes,
                    count=block,
                )
                recvbuf[got * block : (got + 1) * block] = incoming
    finally:
        if manage_segment:
            runtime.barrier()
            runtime.segment_delete(segment_id)
    return recvbuf


def alltoallv(
    runtime: GaspiRuntime,
    sendbuf: np.ndarray,
    send_counts: Sequence[int],
    recv_counts: Sequence[int],
    recvbuf: Optional[np.ndarray] = None,
    segment_id: int = ALLTOALL_SEGMENT_ID,
    queue: int = 0,
    timeout: float = GASPI_BLOCK,
    manage_segment: bool = True,
) -> np.ndarray:
    """Variable-size AlltoAll (``MPI_Alltoallv`` equivalent).

    ``send_counts[j]`` elements go to rank ``j``; ``recv_counts[i]`` elements
    are expected from rank ``i``.  Displacements are the prefix sums of the
    counts (dense packing), matching how the FFT mini-app lays out its
    pencil exchange buffers.

    Because GASPI writes are one-sided, a sender needs to know *where* in
    the receiver's segment its block belongs.  The collective therefore runs
    a cheap offset-exchange phase first: every rank pushes the byte offset
    at which it expects each peer's data into that peer's segment header,
    then the data phase proceeds with plain ``write_notify`` exactly like
    the fixed-size AlltoAll.

    Every rank must pass ``recv_counts`` consistent with the peers'
    ``send_counts``; this is the caller's responsibility exactly as with
    MPI.
    """
    sendbuf = np.ascontiguousarray(sendbuf)
    rank, size = runtime.rank, runtime.size
    send_counts = [int(c) for c in send_counts]
    recv_counts = [int(c) for c in recv_counts]
    require(len(send_counts) == size, "send_counts must have one entry per rank")
    require(len(recv_counts) == size, "recv_counts must have one entry per rank")
    require(all(c >= 0 for c in send_counts), "send_counts must be non-negative")
    require(all(c >= 0 for c in recv_counts), "recv_counts must be non-negative")
    require(sum(send_counts) == sendbuf.size, "send_counts must sum to len(sendbuf)")

    itemsize = sendbuf.itemsize
    send_displs = np.concatenate(([0], np.cumsum(send_counts)))[:-1].astype(int)
    recv_displs = np.concatenate(([0], np.cumsum(recv_counts)))[:-1].astype(int)
    total_recv = int(sum(recv_counts))

    if recvbuf is None:
        recvbuf = np.empty(total_recv, dtype=sendbuf.dtype)
    else:
        recvbuf = np.asarray(recvbuf)
        require(recvbuf.size >= total_recv, "recvbuf too small for recv_counts")

    # Segment layout: [header: size int64][recv region][send staging][offset staging]
    header_bytes = size * 8
    recv_bytes_total = max(total_recv * itemsize, itemsize)
    send_bytes_total = max(sendbuf.size * itemsize, itemsize)
    offset_staging_bytes = size * 8
    recv_region = header_bytes
    send_region = header_bytes + recv_bytes_total
    offset_region = send_region + send_bytes_total

    # Notification ids: [0, size) for data (id = producer), [size, 2*size) for
    # the offset-exchange header (id = size + producer).
    if manage_segment:
        runtime.segment_create(
            segment_id,
            header_bytes + recv_bytes_total + send_bytes_total + offset_staging_bytes,
        )
        runtime.barrier()
    try:
        if sendbuf.size:
            staging = runtime.segment_view(
                segment_id, dtype=sendbuf.dtype, offset=send_region, count=sendbuf.size
            )
            staging[:] = sendbuf
        offsets_out = runtime.segment_view(
            segment_id, dtype=np.int64, offset=offset_region, count=size
        )
        offsets_out[:] = [recv_region + int(d) * itemsize for d in recv_displs]

        # Phase 1: tell every peer where its data belongs in our recv region.
        for peer in range(size):
            if peer == rank:
                continue
            runtime.write_notify(
                segment_id_local=segment_id,
                offset_local=offset_region + peer * 8,
                target_rank=peer,
                segment_id_remote=segment_id,
                offset_remote=rank * 8,
                size=8,
                notification_id=size + rank,
                queue=queue,
            )
        if size > 1:
            runtime.wait(queue)

        # local block
        own = sendbuf[send_displs[rank] : send_displs[rank] + send_counts[rank]]
        recvbuf[recv_displs[rank] : recv_displs[rank] + recv_counts[rank]] = own

        # Phase 2: push data to the offsets the peers advertised.
        header_pending = {p for p in range(size) if p != rank}
        while header_pending:
            got = runtime.notify_waitsome(segment_id, size, size, timeout=timeout)
            if got is None:
                raise TimeoutError(
                    f"rank {rank}: alltoallv offset exchange incomplete, "
                    f"missing {sorted(header_pending)}"
                )
            runtime.notify_reset(segment_id, got)
            peer = got - size
            if peer not in header_pending:
                continue
            header_pending.discard(peer)
            remote_offset = int(
                runtime.segment_read(segment_id, dtype=np.int64, offset=peer * 8, count=1)[0]
            )
            nbytes = send_counts[peer] * itemsize
            if nbytes:
                runtime.write_notify(
                    segment_id_local=segment_id,
                    offset_local=send_region + int(send_displs[peer]) * itemsize,
                    target_rank=peer,
                    segment_id_remote=segment_id,
                    offset_remote=remote_offset,
                    size=nbytes,
                    notification_id=rank,
                    queue=queue,
                )
            else:
                runtime.notify(peer, segment_id, rank, queue=queue)
        if size > 1:
            runtime.wait(queue)

        pending = {p for p in range(size) if p != rank}
        while pending:
            got = runtime.notify_waitsome(segment_id, 0, size, timeout=timeout)
            if got is None:
                raise TimeoutError(
                    f"rank {rank}: alltoallv still waiting for {sorted(pending)}"
                )
            runtime.notify_reset(segment_id, got)
            if got in pending:
                pending.discard(got)
                count = recv_counts[got]
                if count:
                    incoming = runtime.segment_read(
                        segment_id,
                        dtype=sendbuf.dtype,
                        offset=recv_region + int(recv_displs[got]) * itemsize,
                        count=count,
                    )
                    recvbuf[recv_displs[got] : recv_displs[got] + count] = incoming
    finally:
        if manage_segment:
            runtime.barrier()
            runtime.segment_delete(segment_id)
    return recvbuf


# --------------------------------------------------------------------------- #
# schedule builder (Figure 13)
# --------------------------------------------------------------------------- #
def alltoall_schedule(
    num_ranks: int,
    block_nbytes: int,
    protocol: Protocol = Protocol.ONESIDED,
    name: str | None = None,
) -> CommunicationSchedule:
    """Schedule of the direct write_notify AlltoAll.

    A single round containing all P(P-1) messages: every rank injects its
    P-1 blocks back-to-back (the simulator serialises per-NIC injection, so
    the cost still scales with P).
    """
    require(num_ranks >= 1, "num_ranks must be >= 1")
    require(block_nbytes >= 0, "block_nbytes must be non-negative")
    sched = CommunicationSchedule(
        name=name or "gaspi_alltoall",
        num_ranks=num_ranks,
        metadata={"block_bytes": block_nbytes, "algorithm": "direct_write_notify"},
    )
    if num_ranks > 1:
        messages = [
            Message(
                src=src,
                dst=dst,
                nbytes=block_nbytes,
                protocol=protocol,
                tag="alltoall",
            )
            for src in range(num_ranks)
            for dst in range(num_ranks)
            if src != dst
        ]
        sched.add_round(messages, label="direct")
    sched.validate()
    return sched
