"""Consistent Allreduce: segmented pipelined ring (paper Section IV-A).

``gaspi_allreduce_ring`` targets the large messages typical of ML/DL
gradient exchanges.  The algorithm has two stages (Figures 4 and 5 of the
paper):

1. **Scatter-Reduce** — P-1 steps; at step ``k`` rank ``i`` sends chunk
   ``(i - k) mod P`` to its clockwise neighbour and reduces the incoming
   chunk ``(i - k - 1) mod P`` into its local data.  Afterwards rank ``i``
   owns the fully reduced chunk ``(i + 1) mod P``.
2. **Allgather** — P-1 further steps circulating the finished chunks, so
   every rank ends with the complete reduced vector.

Each transfer is a ``write_notify`` into a per-step staging slot of the
neighbour's segment; completion is detected with notifications only — no
global synchronisation between or after the two stages, which is the key
difference from the MPI ring implementations the paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import require
from . import kernels
from .notifmap import NotificationLayout, NotifRange
from .plan import CollectivePlan
from .reduction_ops import ReductionOp, get_op
from .schedule import CommunicationSchedule, Message, Protocol
from .topology import Ring, chunk_bounds

#: Default segment id used by the ring allreduce.
RING_SEGMENT_ID = 120


def ring_notification_layout(total_steps: int) -> NotifRange:
    """Step-notification range of a ring exchange (one id per ring step).

    The ring's notification id *is* the step index; routing the range
    through :class:`~repro.core.notifmap.NotificationLayout` keeps the
    budget check (and any future extra ranges) in one place shared with
    the other collectives.
    """
    layout = NotificationLayout()
    return layout.add("steps", max(1, int(total_steps)))


@dataclass
class RingAllreduceStats:
    """Instrumentation returned by :func:`ring_allreduce`."""

    rank: int
    num_chunks: int
    steps: int
    bytes_sent: int
    bytes_received: int


def ring_allreduce(
    runtime: GaspiRuntime,
    sendbuf: np.ndarray,
    recvbuf: Optional[np.ndarray] = None,
    op: str | ReductionOp = "sum",
    segment_id: int = RING_SEGMENT_ID,
    queue: int = 0,
    timeout: float = GASPI_BLOCK,
    manage_segment: bool = True,
) -> RingAllreduceStats:
    """Segmented pipelined ring allreduce over all ranks.

    Parameters
    ----------
    sendbuf:
        This rank's contribution (1-D, identical length and dtype on all
        ranks).  Left unmodified.
    recvbuf:
        Output buffer; when ``None`` the reduction is written back into
        ``sendbuf`` (in-place allreduce).
    op:
        Reduction operator ("sum" by default, as in the paper).

    Returns
    -------
    RingAllreduceStats
        Per-rank message/byte counters (useful for tests and examples).

    Notes
    -----
    Works for any world size P >= 1 and any vector length >= P is not
    required — chunks may be empty for tiny vectors; empty chunks skip the
    transfer but still advance the notification protocol so the pipeline
    stays aligned.
    """
    sendbuf = np.ascontiguousarray(sendbuf)
    require(sendbuf.ndim == 1 and sendbuf.size > 0, "sendbuf must be a non-empty vector")
    operator = get_op(op)
    rank, size = runtime.rank, runtime.size

    if recvbuf is None:
        recvbuf = sendbuf
    else:
        recvbuf = np.asarray(recvbuf)
        require(
            recvbuf.shape == sendbuf.shape and recvbuf.dtype == sendbuf.dtype,
            "recvbuf must match sendbuf in shape and dtype",
        )

    work = sendbuf.astype(sendbuf.dtype, copy=True)

    if size == 1:
        recvbuf[:] = work
        return RingAllreduceStats(rank, 1, 0, 0, 0)

    ring = Ring(size)
    nxt = ring.next_rank(rank)
    itemsize = work.itemsize
    max_chunk = -(-work.size // size)  # ceil
    slot_bytes = max(max_chunk * itemsize, itemsize)
    total_steps = 2 * (size - 1)
    # Budget-checked id map: the step index is the notification id.
    step_ids = ring_notification_layout(total_steps)
    assert step_ids.base == 0

    # Segment layout: the lower half holds one *receive* slot per step (the
    # predecessor writes into slot ``step``; notification id == step), the
    # upper half holds one *send staging* slot per step.  Keeping the two
    # regions disjoint is essential: a fast predecessor may deliver the
    # step-k chunk before this rank has even staged its own step-k send, and
    # the incoming data must not be clobbered.
    if manage_segment:
        runtime.segment_create(segment_id, slot_bytes * total_steps * 2)
        runtime.barrier()
    send_region = slot_bytes * total_steps

    bytes_sent = 0
    bytes_received = 0
    try:
        # ----------------------------- Scatter-Reduce ---------------------- #
        for step in range(size - 1):
            send_chunk = ring.scatter_reduce_send_chunk(rank, step)
            recv_chunk = ring.scatter_reduce_recv_chunk(rank, step)
            s_begin, s_end = chunk_bounds(work.size, size, send_chunk)
            r_begin, r_end = chunk_bounds(work.size, size, recv_chunk)

            _send_chunk(
                runtime,
                work[s_begin:s_end],
                nxt,
                segment_id,
                step,
                slot_bytes,
                send_region,
                queue,
            )
            bytes_sent += (s_end - s_begin) * itemsize

            incoming = _recv_chunk(
                runtime, segment_id, step, r_end - r_begin, work.dtype, slot_bytes, timeout
            )
            bytes_received += (r_end - r_begin) * itemsize
            if incoming.size:
                kernels.reduce_into(operator, work[r_begin:r_end], incoming)

        # ----------------------------- Allgather --------------------------- #
        for step in range(size - 1):
            gstep = (size - 1) + step
            send_chunk = ring.allgather_send_chunk(rank, step)
            recv_chunk = ring.allgather_recv_chunk(rank, step)
            s_begin, s_end = chunk_bounds(work.size, size, send_chunk)
            r_begin, r_end = chunk_bounds(work.size, size, recv_chunk)

            _send_chunk(
                runtime,
                work[s_begin:s_end],
                nxt,
                segment_id,
                gstep,
                slot_bytes,
                send_region,
                queue,
            )
            bytes_sent += (s_end - s_begin) * itemsize

            incoming = _recv_chunk(
                runtime, segment_id, gstep, r_end - r_begin, work.dtype, slot_bytes, timeout
            )
            bytes_received += (r_end - r_begin) * itemsize
            if incoming.size:
                work[r_begin:r_end] = incoming
    finally:
        if manage_segment:
            runtime.barrier()
            runtime.segment_delete(segment_id)

    recvbuf[:] = work
    return RingAllreduceStats(
        rank=rank,
        num_chunks=size,
        steps=total_steps,
        bytes_sent=bytes_sent,
        bytes_received=bytes_received,
    )


def _send_chunk(
    runtime: GaspiRuntime,
    chunk: np.ndarray,
    target: int,
    segment_id: int,
    step: int,
    slot_bytes: int,
    send_region: int,
    queue: int,
) -> None:
    """Stage ``chunk`` in the local send slot and write_notify it to ``target``.

    The staging slot lives in the send region of the local segment; the data
    lands in the *receive* slot of the same step at the target.  Empty chunks
    degenerate into a pure notification so the receiver's step counter still
    advances.
    """
    if chunk.size:
        local_offset = send_region + step * slot_bytes
        staging = runtime.segment_view(
            segment_id, dtype=chunk.dtype, offset=local_offset, count=chunk.size
        )
        staging[:] = chunk
        runtime.write_notify(
            segment_id_local=segment_id,
            offset_local=local_offset,
            target_rank=target,
            segment_id_remote=segment_id,
            offset_remote=step * slot_bytes,
            size=chunk.nbytes,
            notification_id=step,
            queue=queue,
        )
    else:
        runtime.notify(target, segment_id, step, queue=queue)
    runtime.wait(queue)


def _recv_chunk(
    runtime: GaspiRuntime,
    segment_id: int,
    step: int,
    count: int,
    dtype,
    slot_bytes: int,
    timeout: float,
) -> np.ndarray:
    """Wait for the step's notification and return a view of the staged chunk.

    Zero-copy: once the notification is consumed the slot is quiescent (the
    predecessor writes each step's slot exactly once per call), so the
    caller can reduce or copy straight out of the segment view.
    """
    got = runtime.notify_waitsome(segment_id, step, 1, timeout=timeout)
    if got is None:
        raise TimeoutError(f"rank {runtime.rank}: ring step {step} never completed")
    runtime.notify_reset(segment_id, step)
    if count == 0:
        return np.empty(0, dtype=dtype)
    return runtime.segment_view(
        segment_id, dtype=dtype, offset=step * slot_bytes, count=count
    )


# --------------------------------------------------------------------------- #
# compiled plan (persistent workspace, zero per-call setup)
# --------------------------------------------------------------------------- #
class RingAllreducePlan(CollectivePlan):
    """Compiled pipelined-ring allreduce: frozen step table, pooled slots.

    The ring needs no extra cross-call synchronisation: each step's slot
    and notification id are consumed exactly once per call, and before
    rank ``r`` can post its call-``k+1`` step-``s`` write, the transitive
    recv-from-predecessor chain guarantees its successor has already
    finished call-``k`` step ``s + P - 2 >= s`` — i.e. consumed the slot
    being overwritten.  The per-call work is therefore exactly the data
    movement plus the reduction kernels; all offsets, chunk bounds and
    notification ids come from the frozen step table below.
    """

    def __init__(self, runtime, key, segment_id: int, policy) -> None:
        super().__init__(runtime, key, segment_id)
        self.dtype = np.dtype(key.dtype)
        self.elements = key.nbytes // self.dtype.itemsize
        size = runtime.size
        rank = runtime.rank
        self.ring = Ring(size)
        self.next_rank = self.ring.next_rank(rank)
        itemsize = self.dtype.itemsize
        max_chunk = -(-self.elements // size) if size else 0
        self.slot_bytes = max(max_chunk * itemsize, itemsize)
        self.total_steps = 2 * (size - 1)
        # Budget-checked id map: the step index is the notification id.
        self.step_ids = ring_notification_layout(self.total_steps)
        self.send_region = self.slot_bytes * self.total_steps
        # Frozen step table: (step, send bounds, recv bounds, reduce?).
        self.steps = []
        for step in range(size - 1):
            self.steps.append(
                (
                    step,
                    chunk_bounds(self.elements, size, self.ring.scatter_reduce_send_chunk(rank, step)),
                    chunk_bounds(self.elements, size, self.ring.scatter_reduce_recv_chunk(rank, step)),
                    True,
                )
            )
        for step in range(size - 1):
            self.steps.append(
                (
                    (size - 1) + step,
                    chunk_bounds(self.elements, size, self.ring.allgather_send_chunk(rank, step)),
                    chunk_bounds(self.elements, size, self.ring.allgather_recv_chunk(rank, step)),
                    False,
                )
            )
        if size > 1:
            self._create_workspace(self.slot_bytes * self.total_steps * 2)
            # Frozen zero-copy views per step: the send staging slot and
            # the receive slot (the latter sliced to the chunk length).
            self._send_slots = [
                runtime.segment_view(
                    segment_id,
                    dtype=self.dtype,
                    offset=self.send_region + step * self.slot_bytes,
                    count=(s_end - s_begin),
                )
                if s_end > s_begin
                else None
                for step, (s_begin, s_end), _, _ in self.steps
            ]
            self._recv_slots = [
                runtime.segment_view(
                    segment_id,
                    dtype=self.dtype,
                    offset=step * self.slot_bytes,
                    count=(r_end - r_begin),
                )
                if r_end > r_begin
                else None
                for step, _, (r_begin, r_end), _ in self.steps
            ]

    def execute(self, request) -> "CollectiveResult":
        from .policy import CollectiveResult

        sendbuf = self._check_payload(np.asarray(request.sendbuf), "allreduce sendbuf")
        require(
            sendbuf.ndim == 1 and sendbuf.flags["C_CONTIGUOUS"],
            "allreduce sendbuf must be a contiguous vector",
        )
        operator = get_op(request.op)
        rt = self.runtime
        rank = rt.rank
        size = rt.size
        recvbuf = request.recvbuf
        if recvbuf is None:
            recvbuf = np.array(sendbuf, copy=True)
        else:
            recvbuf = np.asarray(recvbuf)
            require(
                recvbuf.shape == sendbuf.shape and recvbuf.dtype == sendbuf.dtype,
                "recvbuf must match sendbuf in shape and dtype",
            )

        if size == 1:
            recvbuf[:] = sendbuf
            self.calls += 1
            return CollectiveResult(
                value=recvbuf, detail=RingAllreduceStats(rank, 1, 0, 0, 0)
            )

        work = sendbuf.astype(self.dtype, copy=True)
        sid = self.segment_id
        queue = request.queue
        timeout = request.timeout
        itemsize = self.dtype.itemsize
        bytes_sent = 0
        bytes_received = 0

        for i, (step, (s_begin, s_end), (r_begin, r_end), reduce_step) in enumerate(
            self.steps
        ):
            send_slot = self._send_slots[i]
            if send_slot is not None:
                send_slot[:] = work[s_begin:s_end]
                rt.write_notify(
                    segment_id_local=sid,
                    offset_local=self.send_region + step * self.slot_bytes,
                    target_rank=self.next_rank,
                    segment_id_remote=sid,
                    offset_remote=step * self.slot_bytes,
                    size=(s_end - s_begin) * itemsize,
                    notification_id=step,
                    queue=queue,
                )
            else:
                rt.notify(self.next_rank, sid, step, queue=queue)
            rt.wait(queue)
            bytes_sent += (s_end - s_begin) * itemsize

            got = rt.notify_waitsome(sid, step, 1, timeout=timeout)
            if got is None:
                raise TimeoutError(
                    f"rank {rank}: planned ring step {step} never completed"
                )
            rt.notify_reset(sid, step)
            bytes_received += (r_end - r_begin) * itemsize
            recv_slot = self._recv_slots[i]
            if recv_slot is not None:
                if reduce_step:
                    kernels.reduce_into(operator, work[r_begin:r_end], recv_slot)
                else:
                    work[r_begin:r_end] = recv_slot

        recvbuf[:] = work
        self.calls += 1
        detail = RingAllreduceStats(
            rank=rank,
            num_chunks=size,
            steps=self.total_steps,
            bytes_sent=bytes_sent,
            bytes_received=bytes_received,
        )
        return CollectiveResult(value=recvbuf, detail=detail)


# --------------------------------------------------------------------------- #
# schedule builder (Figures 11 and 12)
# --------------------------------------------------------------------------- #
def ring_allreduce_schedule(
    num_ranks: int,
    nbytes: int,
    protocol: Protocol = Protocol.ONESIDED,
    phase_barriers: bool = False,
    segment_messages: int = 1,
    name: str | None = None,
) -> CommunicationSchedule:
    """Schedule of the segmented pipelined ring allreduce.

    Parameters
    ----------
    phase_barriers:
        Insert a global synchronisation after the Scatter-Reduce and
        Allgather phases.  The GASPI implementation does *not* do this
        (that is one of its selling points); the MPI ring variants in
        :mod:`repro.mpi.allreduce_variants` reuse this builder with
        ``phase_barriers=True`` and two-sided protocol.
    segment_messages:
        Sub-split each 1/P chunk into this many messages (the paper notes
        GPI-2 may split messages internally; 1 keeps one message per chunk).
    """
    require(num_ranks >= 1, "num_ranks must be >= 1")
    require(nbytes >= 0, "nbytes must be non-negative")
    require(segment_messages >= 1, "segment_messages must be >= 1")
    sched = CommunicationSchedule(
        name=name or "gaspi_allreduce_ring",
        num_ranks=num_ranks,
        metadata={
            "payload_bytes": nbytes,
            "algorithm": "segmented_pipelined_ring",
            "phase_barriers": phase_barriers,
        },
    )
    if num_ranks == 1 or nbytes == 0:
        sched.validate()
        return sched

    ring = Ring(num_ranks)
    chunk_nbytes = [
        chunk_bounds(nbytes, num_ranks, c)[1] - chunk_bounds(nbytes, num_ranks, c)[0]
        for c in range(num_ranks)
    ]

    def add_phase(phase: str, reduce: bool) -> None:
        for step in range(num_ranks - 1):
            messages = []
            for rank in range(num_ranks):
                if phase == "scatter-reduce":
                    chunk = ring.scatter_reduce_send_chunk(rank, step)
                else:
                    chunk = ring.allgather_send_chunk(rank, step)
                total = chunk_nbytes[chunk]
                per_msg = -(-total // segment_messages)
                remaining = total
                for s in range(segment_messages):
                    this = min(per_msg, remaining)
                    remaining -= this
                    if this <= 0 and s > 0:
                        continue
                    messages.append(
                        Message(
                            src=rank,
                            dst=ring.next_rank(rank),
                            nbytes=this,
                            protocol=protocol,
                            reduce_bytes=this if reduce else 0,
                            tag=f"{phase}-step-{step}",
                        )
                    )
            sched.add_round(messages, label=f"{phase}-{step}")
        if phase_barriers and sched.rounds:
            sched.rounds[-1].barrier_after = True

    add_phase("scatter-reduce", reduce=True)
    add_phase("allgather", reduce=False)
    sched.validate()
    return sched
