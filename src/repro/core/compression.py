"""Gradient compression hooks (the paper's stated extension direction).

Section IV-A of the paper: "Currently, we work on extending Allreduce
towards eventually consistent collectives by coupling it with a
compression technique.  Hence, we foresee to reduce the amount of data
transferred as well as to crop some data."

These compressors implement that foreseen extension so the library's
Allreduce can optionally trade accuracy for bytes on the wire:

* :class:`ThresholdCompressor` — drop every element whose magnitude is
  below a user-defined threshold (the "crop some data" idea, matching the
  threshold parameter of the eventually consistent Broadcast/Reduce).
* :class:`TopKCompressor` — keep only the ``k`` largest-magnitude elements.

Both return a sparse ``(indices, values)`` representation together with the
achieved compression ratio, and can reconstruct a dense vector for the
reduction.  They are exercised by the ablation benchmark
``benchmarks/bench_ablation_compression.py`` and by the examples, but they
are not part of any paper figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.validation import require


@dataclass
class CompressedVector:
    """Sparse representation produced by a compressor."""

    indices: np.ndarray
    values: np.ndarray
    original_size: int

    @property
    def nnz(self) -> int:
        """Number of retained elements."""
        return int(self.values.size)

    @property
    def compression_ratio(self) -> float:
        """Original bytes divided by compressed bytes (>= 1 means smaller).

        The compressed payload counts 4 bytes per index plus the value bytes.
        """
        original = self.original_size * self.values.dtype.itemsize
        compressed = self.nnz * (4 + self.values.dtype.itemsize)
        return float("inf") if compressed == 0 else original / compressed

    def decompress(self) -> np.ndarray:
        """Reconstruct the dense vector (dropped entries become zero)."""
        dense = np.zeros(self.original_size, dtype=self.values.dtype)
        dense[self.indices] = self.values
        return dense

    @property
    def nbytes(self) -> int:
        """Wire size of the compressed representation."""
        return int(self.nnz * (4 + self.values.dtype.itemsize))


class ThresholdCompressor:
    """Keep only elements whose magnitude is at least ``threshold``."""

    def __init__(self, threshold: float) -> None:
        require(threshold >= 0.0, f"threshold must be non-negative, got {threshold}")
        self.threshold = float(threshold)

    def compress(self, vector: np.ndarray) -> CompressedVector:
        vector = np.ascontiguousarray(vector)
        require(vector.ndim == 1, "compression expects a 1-D vector")
        mask = np.abs(vector) >= self.threshold
        indices = np.nonzero(mask)[0].astype(np.int64)
        return CompressedVector(
            indices=indices, values=vector[indices].copy(), original_size=vector.size
        )


class TopKCompressor:
    """Keep the ``k`` largest-magnitude elements of the vector."""

    def __init__(self, k: int) -> None:
        require(k >= 1, f"k must be >= 1, got {k}")
        self.k = int(k)

    def compress(self, vector: np.ndarray) -> CompressedVector:
        vector = np.ascontiguousarray(vector)
        require(vector.ndim == 1, "compression expects a 1-D vector")
        k = min(self.k, vector.size)
        # argpartition avoids a full sort of the vector (O(n) vs O(n log n)).
        idx = np.argpartition(np.abs(vector), vector.size - k)[vector.size - k :]
        idx = np.sort(idx).astype(np.int64)
        return CompressedVector(
            indices=idx, values=vector[idx].copy(), original_size=vector.size
        )


def compression_error(original: np.ndarray, compressed: CompressedVector) -> float:
    """Relative L2 error introduced by the compression (0 means lossless)."""
    original = np.ascontiguousarray(original, dtype=np.float64)
    dense = compressed.decompress().astype(np.float64)
    norm = np.linalg.norm(original)
    if norm == 0.0:
        return 0.0
    return float(np.linalg.norm(original - dense) / norm)
