"""The paper's collectives: eventually consistent and consistent variants.

Public surface:

* :class:`~repro.core.api.Communicator` — high-level per-rank API, driven
  by :class:`~repro.core.policy.ConsistencyPolicy` objects and routed
  through the algorithm :data:`~repro.core.registry.REGISTRY`
  (``algorithm="auto"`` consults the :mod:`~repro.core.tuning` tables).
* Functional collectives: :func:`~repro.core.bcast.bst_bcast`,
  :func:`~repro.core.reduce.bst_reduce`,
  :func:`~repro.core.allreduce_ring.ring_allreduce`,
  :class:`~repro.core.allreduce_ssp.SSPAllreduce`,
  :func:`~repro.core.alltoall.alltoall` / ``alltoallv``,
  :func:`~repro.core.allgather.ring_allgather`,
  :class:`~repro.core.barrier.NotificationBarrier`.
* Schedule builders for the timing simulator and the algorithm
  :data:`~repro.core.registry.REGISTRY` the benchmark harness uses.
"""

from .api import Communicator, PersistentCollective
from .notifmap import NotificationLayout, NotifRange
from .pipeline import (
    ChunkLayout,
    CollectiveHandle,
    ProgressEngine,
    pipelined_bst_bcast_schedule,
    pipelined_bst_reduce_schedule,
    pipelined_ring_allreduce_schedule,
)
from .plan import CollectivePlan, PlanCache, PlanCacheStats, PlanKey
from .policy import (
    CollectiveRequest,
    CollectiveResult,
    ConsistencyPolicy,
    coerce_policy,
)
from .tuning import TuningRule, TuningTable, select_algorithm, select_chunk_bytes
from .allgather import ring_allgather, ring_allgather_schedule
from .allreduce_ring import RingAllreduceStats, ring_allreduce, ring_allreduce_schedule
from .allreduce_ssp import (
    SSPAllreduce,
    SSPAllreduceResult,
    SSPCallStats,
    SSPTotals,
    hypercube_allreduce_schedule,
    ssp_allreduce_once,
)
from .alltoall import alltoall, alltoall_schedule, alltoallv
from .barrier import (
    NotificationBarrier,
    dissemination_barrier_schedule,
    notification_barrier,
)
from .bcast import (
    BroadcastResult,
    bst_bcast,
    bst_bcast_schedule,
    flat_bcast,
    flat_bcast_schedule,
    threshold_elements,
)
from .compression import (
    CompressedVector,
    ThresholdCompressor,
    TopKCompressor,
    compression_error,
)
from .reduce import ReduceMode, ReduceResult, bst_reduce, bst_reduce_schedule
from .reduction_ops import MAX, MIN, PROD, SUM, ReductionOp, available_ops, get_op, register_op
from .registry import (
    REGISTRY,
    AlgorithmCapabilities,
    AlgorithmInfo,
    AlgorithmRegistry,
)
from .schedule import (
    CommunicationSchedule,
    LocalCompute,
    Message,
    Protocol,
    Round,
    merge_sequential,
)
from .topology import (
    BinomialTree,
    Hypercube,
    KnomialTree,
    Ring,
    chunk_bounds,
    chunk_sizes,
    dissemination_schedule,
)

__all__ = [
    "Communicator",
    "PersistentCollective",
    "CollectivePlan",
    "PlanCache",
    "PlanCacheStats",
    "PlanKey",
    "CollectiveRequest",
    "CollectiveResult",
    "ConsistencyPolicy",
    "coerce_policy",
    "TuningRule",
    "TuningTable",
    "select_algorithm",
    "AlgorithmCapabilities",
    "ring_allgather",
    "ring_allgather_schedule",
    "RingAllreduceStats",
    "ring_allreduce",
    "ring_allreduce_schedule",
    "SSPAllreduce",
    "SSPAllreduceResult",
    "SSPCallStats",
    "SSPTotals",
    "hypercube_allreduce_schedule",
    "ssp_allreduce_once",
    "alltoall",
    "alltoall_schedule",
    "alltoallv",
    "NotificationBarrier",
    "dissemination_barrier_schedule",
    "notification_barrier",
    "BroadcastResult",
    "bst_bcast",
    "bst_bcast_schedule",
    "flat_bcast",
    "flat_bcast_schedule",
    "threshold_elements",
    "CompressedVector",
    "ThresholdCompressor",
    "TopKCompressor",
    "compression_error",
    "ReduceMode",
    "ReduceResult",
    "bst_reduce",
    "bst_reduce_schedule",
    "ReductionOp",
    "SUM",
    "PROD",
    "MIN",
    "MAX",
    "available_ops",
    "get_op",
    "register_op",
    "REGISTRY",
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "CommunicationSchedule",
    "LocalCompute",
    "Message",
    "Protocol",
    "Round",
    "merge_sequential",
    "BinomialTree",
    "Hypercube",
    "KnomialTree",
    "Ring",
    "chunk_bounds",
    "chunk_sizes",
    "dissemination_schedule",
]
