"""Ring Allgather collective.

The Allgather stage of the pipelined ring Allreduce is useful on its own
(the paper's related work extends the same machinery to Allgather(V)), so
it is exposed here both as a functional collective and as a schedule
builder.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import require
from .schedule import CommunicationSchedule, Message, Protocol
from .topology import Ring

#: Default segment id used by the allgather collective.
ALLGATHER_SEGMENT_ID = 130


def ring_allgather(
    runtime: GaspiRuntime,
    sendbuf: np.ndarray,
    recvbuf: Optional[np.ndarray] = None,
    segment_id: int = ALLGATHER_SEGMENT_ID,
    queue: int = 0,
    timeout: float = GASPI_BLOCK,
    manage_segment: bool = True,
) -> np.ndarray:
    """Gather equal-sized blocks from every rank onto every rank.

    Parameters
    ----------
    sendbuf:
        This rank's block (1-D, same length and dtype on every rank).
    recvbuf:
        Optional output of length ``size * len(sendbuf)``; allocated when
        ``None``.  On return, ``recvbuf[r*b:(r+1)*b]`` holds rank ``r``'s
        block.

    Returns
    -------
    numpy.ndarray
        The gathered vector (the same object as ``recvbuf`` when given).
    """
    sendbuf = np.ascontiguousarray(sendbuf)
    require(sendbuf.ndim == 1 and sendbuf.size > 0, "sendbuf must be a non-empty vector")
    rank, size = runtime.rank, runtime.size
    block = sendbuf.size
    if recvbuf is None:
        recvbuf = np.empty(size * block, dtype=sendbuf.dtype)
    else:
        recvbuf = np.asarray(recvbuf)
        require(
            recvbuf.size == size * block and recvbuf.dtype == sendbuf.dtype,
            "recvbuf must have size P*block and matching dtype",
        )

    recvbuf[rank * block : (rank + 1) * block] = sendbuf
    if size == 1:
        return recvbuf

    ring = Ring(size)
    nxt = ring.next_rank(rank)
    slot_bytes = sendbuf.nbytes

    # Lower half of the segment: receive slots (one per step, written by the
    # predecessor); upper half: local send staging.  Keeping them disjoint
    # avoids clobbering an early-arriving block while staging the outgoing one.
    if manage_segment:
        runtime.segment_create(segment_id, slot_bytes * (size - 1) * 2)
        runtime.barrier()
    send_region = slot_bytes * (size - 1)
    try:
        for step in range(size - 1):
            # Send the block received in the previous step (own block first).
            send_owner = (rank - step) % size
            recv_owner = (rank - step - 1) % size
            offset = step * slot_bytes

            staging = runtime.segment_view(
                segment_id, dtype=sendbuf.dtype, offset=send_region + offset, count=block
            )
            staging[:] = recvbuf[send_owner * block : (send_owner + 1) * block]
            runtime.write_notify(
                segment_id_local=segment_id,
                offset_local=send_region + offset,
                target_rank=nxt,
                segment_id_remote=segment_id,
                offset_remote=offset,
                size=slot_bytes,
                notification_id=step,
                queue=queue,
            )
            runtime.wait(queue)

            got = runtime.notify_waitsome(segment_id, step, 1, timeout=timeout)
            if got is None:
                raise TimeoutError(f"rank {rank}: allgather step {step} never completed")
            runtime.notify_reset(segment_id, step)
            incoming = runtime.segment_read(
                segment_id, dtype=sendbuf.dtype, offset=offset, count=block
            )
            recvbuf[recv_owner * block : (recv_owner + 1) * block] = incoming
    finally:
        if manage_segment:
            runtime.barrier()
            runtime.segment_delete(segment_id)
    return recvbuf


def ring_allgather_schedule(
    num_ranks: int,
    block_nbytes: int,
    protocol: Protocol = Protocol.ONESIDED,
    name: str | None = None,
) -> CommunicationSchedule:
    """Schedule of the ring allgather: P-1 rounds of neighbour transfers."""
    require(num_ranks >= 1, "num_ranks must be >= 1")
    require(block_nbytes >= 0, "block_nbytes must be non-negative")
    sched = CommunicationSchedule(
        name=name or "gaspi_allgather_ring",
        num_ranks=num_ranks,
        metadata={"block_bytes": block_nbytes, "algorithm": "ring"},
    )
    if num_ranks == 1:
        sched.validate()
        return sched
    ring = Ring(num_ranks)
    for step in range(num_ranks - 1):
        sched.add_round(
            [
                Message(
                    src=rank,
                    dst=ring.next_rank(rank),
                    nbytes=block_nbytes,
                    protocol=protocol,
                    tag=f"allgather-step-{step}",
                )
                for rank in range(num_ranks)
            ],
            label=f"step-{step}",
        )
    sched.validate()
    return sched
