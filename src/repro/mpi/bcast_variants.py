"""MPI broadcast baselines: binomial and "default" (Figure 8).

``mpi-bin`` in Figure 8 is the binomial-tree broadcast; ``mpi-def`` is
whatever Intel MPI's auto-tuner selects, which for large payloads is the
scatter + allgather (van de Geijn) algorithm.  Both are provided as
schedule builders plus a functional binomial broadcast over the two-sided
layer for cross-validation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.schedule import CommunicationSchedule, Message, Protocol
from ..core.topology import BinomialTree, Ring, chunk_bounds
from ..utils.validation import require
from .twosided import TwoSidedLayer

TWOSIDED = Protocol.TWOSIDED


def binomial_bcast_schedule(num_ranks: int, nbytes: int, root: int = 0, **_) -> CommunicationSchedule:
    """Binomial-tree broadcast (the ``mpi-bin`` line of Figure 8)."""
    require(num_ranks >= 1 and nbytes >= 0, "invalid arguments")
    sched = CommunicationSchedule(
        name="mpi_bcast_binomial",
        num_ranks=num_ranks,
        metadata={"payload_bytes": nbytes, "algorithm": "binomial"},
    )
    tree = BinomialTree(num_ranks, root)
    stages = tree.ranks_by_stage()
    for stage in sorted(s for s in stages if s > 0):
        sched.add_round(
            [
                Message(tree.parent(child), child, nbytes, TWOSIDED, 0, tag=f"bcast-{stage}")
                for child in stages[stage]
            ],
            label=f"stage-{stage}",
        )
    sched.validate()
    return sched


def scatter_allgather_bcast_schedule(
    num_ranks: int, nbytes: int, root: int = 0, **_
) -> CommunicationSchedule:
    """Van de Geijn broadcast: binomial scatter of 1/P chunks + ring allgather.

    This is the large-message algorithm Intel MPI's auto-selection falls
    back to; its bandwidth term is ~2·n·β instead of log(P)·n·β.
    """
    require(num_ranks >= 1 and nbytes >= 0, "invalid arguments")
    sched = CommunicationSchedule(
        name="mpi_bcast_scatter_allgather",
        num_ranks=num_ranks,
        metadata={"payload_bytes": nbytes, "algorithm": "scatter_allgather"},
    )
    if num_ranks == 1 or nbytes == 0:
        sched.validate()
        return sched
    tree = BinomialTree(num_ranks, root)
    stages = tree.ranks_by_stage()
    # Scatter: a parent forwards to each child the half of its current range
    # that the child's subtree owns; message sizes shrink with the stage.
    for stage in sorted(s for s in stages if s > 0):
        messages = []
        for child in stages[stage]:
            subtree = 1 + len(tree.descendants(child))
            chunk = max(1, (nbytes * subtree) // num_ranks)
            messages.append(
                Message(tree.parent(child), child, chunk, TWOSIDED, 0, tag=f"scatter-{stage}")
            )
        sched.add_round(messages, label=f"scatter-{stage}")
    if sched.rounds:
        sched.rounds[-1].barrier_after = True
    # Allgather ring: P-1 rounds of 1/P chunks.
    ring = Ring(num_ranks)
    chunk = max(1, nbytes // num_ranks)
    for step in range(num_ranks - 1):
        sched.add_round(
            [
                Message(r, ring.next_rank(r), chunk, TWOSIDED, 0, tag=f"allgather-{step}")
                for r in range(num_ranks)
            ],
            label=f"allgather-{step}",
        )
    sched.validate()
    return sched


def default_bcast_schedule(
    num_ranks: int, nbytes: int, root: int = 0, **kwargs
) -> CommunicationSchedule:
    """The ``mpi-def`` line: Intel-MPI-like auto-selection between variants."""
    from .tuning import select_bcast_variant

    builder = select_bcast_variant(num_ranks, nbytes)
    sched = builder(num_ranks, nbytes, root=root, **kwargs)
    sched.metadata["selected_by"] = "mpi_default_tuning"
    return sched


# --------------------------------------------------------------------------- #
# functional reference
# --------------------------------------------------------------------------- #
def binomial_bcast_twosided(
    layer: TwoSidedLayer,
    buffer: np.ndarray,
    root: int = 0,
) -> np.ndarray:
    """Functional binomial broadcast over the two-sided layer."""
    runtime = layer.runtime
    tree = BinomialTree(runtime.size, root)
    rank = runtime.rank
    parent = tree.parent(rank)
    buffer = np.ascontiguousarray(buffer, dtype=np.float64)
    if parent is not None:
        incoming, _ = layer.recv(parent, tag=7)
        buffer[: incoming.size] = incoming
    for child in tree.children(rank):
        layer.send(buffer, child, tag=7)
    return buffer
