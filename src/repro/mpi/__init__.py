"""MPI baseline substrate.

The paper compares its GASPI collectives against the collectives shipped
with Intel MPI 2018: a dozen ``MPI_Allreduce`` variants (Figure 11 lists
them as mpi1…mpi12), binomial and "default" ``MPI_Bcast`` / ``MPI_Reduce``
variants, and the default ``MPI_Alltoall``.  None of that software is
available here, so this package implements the named algorithms from the
literature:

* :mod:`repro.mpi.twosided` — a two-sided send/recv layer (eager +
  rendezvous) built on the same GASPI runtime, used by the functional
  baseline collectives and by tests that cross-validate the GASPI
  collectives against an independent implementation;
* :mod:`repro.mpi.allreduce_variants`, :mod:`repro.mpi.bcast_variants`,
  :mod:`repro.mpi.reduce_variants`, :mod:`repro.mpi.alltoall_variants` —
  schedule builders (and functional reference implementations for the most
  important ones) for every baseline the figures need;
* :mod:`repro.mpi.tuning` — an Intel-MPI-like auto-selection table that
  picks a variant from the message size and rank count, providing the
  "mpi-def" lines of Figures 8–13.

Importing this package registers every baseline in
:data:`repro.core.registry.REGISTRY` under ``mpi_*`` names.
"""

from . import allreduce_variants, alltoall_variants, bcast_variants, reduce_variants, tuning
from .twosided import TwoSidedLayer, MessageEnvelope
from .tuning import (
    select_allreduce_variant,
    select_bcast_variant,
    select_reduce_variant,
    select_alltoall_variant,
    ALLREDUCE_VARIANT_LABELS,
)

__all__ = [
    "TwoSidedLayer",
    "MessageEnvelope",
    "allreduce_variants",
    "bcast_variants",
    "reduce_variants",
    "alltoall_variants",
    "tuning",
    "select_allreduce_variant",
    "select_bcast_variant",
    "select_reduce_variant",
    "select_alltoall_variant",
    "ALLREDUCE_VARIANT_LABELS",
]
