"""Intel-MPI-like auto-selection ("mpi-def") and registry registration.

Intel MPI ships a tuning table that picks a collective implementation from
the message size and communicator size (``I_MPI_ADJUST_*``).  The paper's
"default"/"mpi-def" baselines are whatever those tables select, so this
module provides a comparable rule set:

* small payloads → latency-optimal trees (binomial / recursive doubling /
  Bruck);
* large payloads → bandwidth-optimal algorithms (Rabenseifner,
  scatter+allgather, Shumilin ring, pairwise exchange).

The thresholds are round numbers in the range the MPI literature and the
Intel defaults use; they are deliberately conservative so the "default"
baseline is a strong competitor, as it is in the paper's figures.

Importing :mod:`repro.mpi` calls :func:`register_mpi_algorithms`, which
places every baseline into :data:`repro.core.registry.REGISTRY` under
``mpi_*`` names for the benchmark harness.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.registry import REGISTRY
from ..core.schedule import CommunicationSchedule
from ..core.tuning import (
    ALLREDUCE_MEDIUM,
    ALLREDUCE_SMALL,
    ALLTOALL_MEDIUM,
    ALLTOALL_SMALL,
    BCAST_SMALL,
    REDUCE_SMALL,
)

#: Human-readable labels of the Figure 11 variants (mpi1..mpi12).
ALLREDUCE_VARIANT_LABELS: Dict[str, str] = {
    "mpi1_recursive_doubling": "recursive doubling",
    "mpi2_rabenseifner": "Rabenseifner's",
    "mpi3_reduce_bcast": "Reduce + Bcast",
    "mpi4_topo_reduce_bcast": "topology aware Reduce + Bcast",
    "mpi5_gather_scatter": "binomial gather + scatter",
    "mpi6_topo_gather_scatter": "topology aware binomial gather + scatter",
    "mpi7_shumilin_ring": "Shumilin's ring",
    "mpi8_ring": "ring",
    "mpi9_knomial": "Knomial",
    "mpi10_shm_flat": "topology aware SHM-based flat",
    "mpi11_shm_knomial": "topology aware SHM-based Knomial",
    "mpi12_shm_knary": "topology aware SHM-based Knary",
}

# Selection thresholds (bytes) — the canonical values live in
# repro.core.tuning so the GASPI auto-selection and the MPI defaults are
# tuned on the same scale; the underscored aliases are kept for
# backwards compatibility.
_ALLREDUCE_SMALL = ALLREDUCE_SMALL
_ALLREDUCE_MEDIUM = ALLREDUCE_MEDIUM
_BCAST_SMALL = BCAST_SMALL
_REDUCE_SMALL = REDUCE_SMALL
_ALLTOALL_SMALL = ALLTOALL_SMALL
_ALLTOALL_MEDIUM = ALLTOALL_MEDIUM


def select_allreduce_variant(num_ranks: int, nbytes: int) -> Callable[..., CommunicationSchedule]:
    """Pick the Allreduce variant Intel MPI's default tuning would use."""
    from . import allreduce_variants as av

    if nbytes <= _ALLREDUCE_SMALL:
        return av.recursive_doubling_schedule
    if nbytes <= _ALLREDUCE_MEDIUM:
        return av.rabenseifner_schedule
    return av.shumilin_ring_schedule


def select_bcast_variant(num_ranks: int, nbytes: int) -> Callable[..., CommunicationSchedule]:
    """Pick the Bcast variant the default tuning would use."""
    from . import bcast_variants as bv

    if nbytes <= _BCAST_SMALL or num_ranks <= 4:
        return bv.binomial_bcast_schedule
    return bv.scatter_allgather_bcast_schedule


def select_reduce_variant(num_ranks: int, nbytes: int) -> Callable[..., CommunicationSchedule]:
    """Pick the Reduce variant the default tuning would use."""
    from . import reduce_variants as rv

    if nbytes <= _REDUCE_SMALL or num_ranks <= 4:
        return rv.binomial_reduce_schedule
    return rv.reduce_scatter_gather_schedule


def select_alltoall_variant(num_ranks: int, block_nbytes: int) -> Callable[..., CommunicationSchedule]:
    """Pick the AlltoAll variant the default tuning would use."""
    from . import alltoall_variants as atv

    if block_nbytes <= _ALLTOALL_SMALL:
        return atv.bruck_alltoall_schedule
    return atv.pairwise_alltoall_schedule


def default_allreduce_schedule(num_ranks: int, nbytes: int, **kwargs) -> CommunicationSchedule:
    """The ``MPI_Allreduce`` default pick (used as the MPI line in Figure 7)."""
    builder = select_allreduce_variant(num_ranks, nbytes)
    sched = builder(num_ranks, nbytes, **kwargs)
    sched.metadata["selected_by"] = "mpi_default_tuning"
    return sched


def register_mpi_algorithms(overwrite: bool = False) -> None:
    """Register every MPI baseline in the global algorithm registry.

    Schedule builders serve the timing simulator; where a functional
    two-sided implementation exists (:mod:`repro.mpi.executable`), the
    entry additionally carries an executable runner and its capability
    metadata, so the Communicator can run the baseline for real.
    """
    from . import allreduce_variants as av
    from . import alltoall_variants as atv
    from . import bcast_variants as bv
    from . import reduce_variants as rv
    from .executable import EXECUTABLE_BASELINES

    def reg(name: str, collective: str, builder, description: str) -> None:
        if name in REGISTRY and not overwrite:
            return
        runner, capabilities = EXECUTABLE_BASELINES.get(name, (None, None))
        REGISTRY.register(
            name,
            collective=collective,
            family="mpi",
            builder=builder,
            description=description,
            runner=runner,
            capabilities=capabilities,
            overwrite=overwrite,
        )

    for name, builder in av.VARIANTS.items():
        reg(
            f"mpi_allreduce_{name}",
            "allreduce",
            builder,
            f"MPI_Allreduce variant: {ALLREDUCE_VARIANT_LABELS[name]}",
        )
    reg(
        "mpi_allreduce_default",
        "allreduce",
        default_allreduce_schedule,
        "MPI_Allreduce with Intel-MPI-like auto-selection",
    )
    reg("mpi_bcast_binomial", "bcast", bv.binomial_bcast_schedule, "MPI_Bcast binomial tree")
    reg(
        "mpi_bcast_scatter_allgather",
        "bcast",
        bv.scatter_allgather_bcast_schedule,
        "MPI_Bcast scatter + allgather (van de Geijn)",
    )
    reg("mpi_bcast_default", "bcast", bv.default_bcast_schedule, "MPI_Bcast auto-selected")
    reg("mpi_reduce_binomial", "reduce", rv.binomial_reduce_schedule, "MPI_Reduce binomial tree")
    reg(
        "mpi_reduce_scatter_gather",
        "reduce",
        rv.reduce_scatter_gather_schedule,
        "MPI_Reduce reduce-scatter + gather (Rabenseifner)",
    )
    reg("mpi_reduce_default", "reduce", rv.default_reduce_schedule, "MPI_Reduce auto-selected")
    reg("mpi_alltoall_bruck", "alltoall", atv.bruck_alltoall_schedule, "MPI_Alltoall Bruck")
    reg(
        "mpi_alltoall_pairwise",
        "alltoall",
        atv.pairwise_alltoall_schedule,
        "MPI_Alltoall pairwise exchange",
    )
    reg(
        "mpi_alltoall_isend_irecv",
        "alltoall",
        atv.isend_irecv_alltoall_schedule,
        "MPI_Alltoall posted isend/irecv",
    )
    reg(
        "mpi_alltoall_default",
        "alltoall",
        atv.default_alltoall_schedule,
        "MPI_Alltoall auto-selected",
    )


register_mpi_algorithms()
