"""Executable runners for the MPI baselines.

The MPI comparison algorithms exist in two forms: communication-schedule
builders (for the timing simulator, all twelve Allreduce variants etc.)
and functional reference implementations over the two-sided messaging
layer (:mod:`repro.mpi.twosided`).  This module adapts the functional
implementations to the registry's runner contract —
``runner(runtime, request) -> CollectiveResult`` — so the policy-driven
:class:`~repro.core.api.Communicator` can execute MPI baselines through
the same dispatch path as the GASPI collectives
(``comm.allreduce(x, algorithm="mpi_allreduce_mpi8_ring")``).

The two-sided layer stages float64 envelopes, so every runner advertises a
``float64`` dtype capability.  ``mpi_allreduce_default`` re-applies the
Intel-style tuning rules at execution time; the bcast/reduce defaults
execute the binomial reference (the only functional variant), so for
payloads above the tuning thresholds their *executed* algorithm differs
from the scatter-allgather / reduce-scatter schedule the simulator models
for the same name.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..core.policy import CollectiveRequest, CollectiveResult
from ..core.registry import AlgorithmCapabilities
from ..core.tuning import ALLREDUCE_SMALL
from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import is_power_of_two
from .twosided import TwoSidedLayer

#: Capability shared by every two-sided runner.
_TWOSIDED = dict(dtype="float64", min_ranks=2)


@contextmanager
def _layer(runtime: GaspiRuntime, request: CollectiveRequest):
    """Two-sided mailbox layer scoped to one collective call."""
    layer = TwoSidedLayer(
        runtime,
        max_elements=max(int(np.asarray(request.sendbuf).size), 1),
        segment_id=request.segment_id,
        queue=request.queue,
    )
    try:
        yield layer
    finally:
        layer.close()


def _deliver(request: CollectiveRequest, value: np.ndarray) -> CollectiveResult:
    """Honour the caller's recvbuf, then wrap the value."""
    if request.recvbuf is not None:
        request.recvbuf[: value.size] = value
        value = request.recvbuf
    return CollectiveResult(value=value)


# --------------------------------------------------------------------------- #
# runners
# --------------------------------------------------------------------------- #
def run_recursive_doubling_allreduce(
    runtime: GaspiRuntime, request: CollectiveRequest
) -> CollectiveResult:
    from .allreduce_variants import recursive_doubling_allreduce

    with _layer(runtime, request) as layer:
        value = recursive_doubling_allreduce(layer, request.sendbuf, op=request.op)
    return _deliver(request, value)


def run_ring_allreduce(
    runtime: GaspiRuntime, request: CollectiveRequest
) -> CollectiveResult:
    from .allreduce_variants import ring_allreduce_twosided

    with _layer(runtime, request) as layer:
        value = ring_allreduce_twosided(layer, request.sendbuf, op=request.op)
    return _deliver(request, value)


def run_default_allreduce(
    runtime: GaspiRuntime, request: CollectiveRequest
) -> CollectiveResult:
    """Execution-time analogue of the Intel default tuning pick."""
    small = request.nbytes <= ALLREDUCE_SMALL and is_power_of_two(runtime.size)
    if small:
        return run_recursive_doubling_allreduce(runtime, request)
    return run_ring_allreduce(runtime, request)


def run_binomial_bcast(
    runtime: GaspiRuntime, request: CollectiveRequest
) -> CollectiveResult:
    from .bcast_variants import binomial_bcast_twosided

    with _layer(runtime, request) as layer:
        value = binomial_bcast_twosided(layer, request.sendbuf, root=request.root)
    if value is not request.sendbuf:
        request.sendbuf[: value.size] = value
    return CollectiveResult(value=request.sendbuf)


def run_binomial_reduce(
    runtime: GaspiRuntime, request: CollectiveRequest
) -> CollectiveResult:
    from .reduce_variants import binomial_reduce_twosided

    with _layer(runtime, request) as layer:
        value = binomial_reduce_twosided(
            layer, request.sendbuf, root=request.root, op=request.op
        )
    if runtime.rank == request.root and request.recvbuf is not None:
        request.recvbuf[: value.size] = value
        value = request.recvbuf
    return CollectiveResult(value=value)


def run_pairwise_alltoall(
    runtime: GaspiRuntime, request: CollectiveRequest
) -> CollectiveResult:
    from .alltoall_variants import pairwise_alltoall_twosided

    if request.send_counts is not None or request.recv_counts is not None:
        raise ValueError(
            "the MPI alltoall baselines only support uniform blocks "
            "(no alltoallv); use the gaspi_alltoall runner for variable counts"
        )
    with _layer(runtime, request) as layer:
        value = pairwise_alltoall_twosided(layer, request.sendbuf)
    return _deliver(request, value)


#: Registry name → (runner, capability overrides).  Applied by
#: :func:`repro.mpi.tuning.register_mpi_algorithms`.
EXECUTABLE_BASELINES = {
    "mpi_allreduce_mpi1_recursive_doubling": (
        run_recursive_doubling_allreduce,
        AlgorithmCapabilities(
            supports_op=True, requires_power_of_two=True, **_TWOSIDED
        ),
    ),
    "mpi_allreduce_mpi8_ring": (
        run_ring_allreduce,
        AlgorithmCapabilities(supports_op=True, **_TWOSIDED),
    ),
    "mpi_allreduce_default": (
        run_default_allreduce,
        AlgorithmCapabilities(supports_op=True, **_TWOSIDED),
    ),
    "mpi_bcast_binomial": (
        run_binomial_bcast,
        AlgorithmCapabilities(**_TWOSIDED),
    ),
    "mpi_bcast_default": (
        run_binomial_bcast,
        AlgorithmCapabilities(**_TWOSIDED),
    ),
    "mpi_reduce_binomial": (
        run_binomial_reduce,
        AlgorithmCapabilities(supports_op=True, **_TWOSIDED),
    ),
    "mpi_reduce_default": (
        run_binomial_reduce,
        AlgorithmCapabilities(supports_op=True, **_TWOSIDED),
    ),
    "mpi_alltoall_pairwise": (
        run_pairwise_alltoall,
        AlgorithmCapabilities(**_TWOSIDED),
    ),
    "mpi_alltoall_default": (
        run_pairwise_alltoall,
        AlgorithmCapabilities(**_TWOSIDED),
    ),
}
