"""The twelve Intel-MPI ``MPI_Allreduce`` variants of Figure 11.

The paper's Figure 11 compares ``gaspi_allreduce_ring`` against the full
set of Intel MPI 2018 Allreduce implementations:

====  =========================================
mpi1  recursive doubling
mpi2  Rabenseifner's (reduce-scatter + allgather)
mpi3  Reduce + Bcast
mpi4  topology-aware Reduce + Bcast
mpi5  binomial gather + scatter
mpi6  topology-aware binomial gather + scatter
mpi7  Shumilin's ring
mpi8  ring
mpi9  K-nomial
mpi10 topology-aware SHM-based flat
mpi11 topology-aware SHM-based K-nomial
mpi12 topology-aware SHM-based K-nary
====  =========================================

Each variant is provided as a schedule builder following the published
algorithm structure (rounds, message sizes, reduction placement) with
two-sided message costs; the topology/SHM-aware variants split the work
into an intra-node phase (shared-memory channel) and an inter-node phase
between node leaders, which is what "topology aware" means in the Intel
implementation.  A functional recursive-doubling reference is also
provided for cross-validation against the GASPI collectives.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..core.reduction_ops import get_op
from ..core.schedule import CommunicationSchedule, LocalCompute, Message, Protocol
from ..core.topology import BinomialTree, Hypercube, KnomialTree, Ring, chunk_bounds
from ..core.allreduce_ring import ring_allreduce_schedule
from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import is_power_of_two, require
from .twosided import TwoSidedLayer

TWOSIDED = Protocol.TWOSIDED


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _schedule(name: str, num_ranks: int, nbytes: int, **metadata) -> CommunicationSchedule:
    sched = CommunicationSchedule(
        name=name,
        num_ranks=num_ranks,
        metadata={"payload_bytes": nbytes, **metadata},
    )
    return sched


def _node_leaders(num_ranks: int, ranks_per_node: int) -> List[int]:
    """First rank of every node under the block rank→node mapping."""
    return list(range(0, num_ranks, max(1, ranks_per_node)))


def _pairwise_exchange_round(
    sched: CommunicationSchedule,
    pairs: List[tuple],
    nbytes: int,
    reduce_bytes: int,
    label: str,
) -> None:
    """Add one round in which every (a, b) pair exchanges ``nbytes`` both ways."""
    messages = []
    for a, b in pairs:
        messages.append(Message(a, b, nbytes, TWOSIDED, reduce_bytes, tag=label))
        messages.append(Message(b, a, nbytes, TWOSIDED, reduce_bytes, tag=label))
    sched.add_round(messages, label=label)


# --------------------------------------------------------------------------- #
# mpi1: recursive doubling
# --------------------------------------------------------------------------- #
def recursive_doubling_schedule(num_ranks: int, nbytes: int, **_) -> CommunicationSchedule:
    """Recursive doubling: log2(P) full-vector exchanges (best for small m)."""
    require(num_ranks >= 1 and nbytes >= 0, "invalid arguments")
    sched = _schedule("mpi1_recursive_doubling", num_ranks, nbytes, algorithm="recursive_doubling")
    if num_ranks == 1 or nbytes == 0:
        sched.validate()
        return sched

    pow2 = 1 << (num_ranks.bit_length() - 1)
    remainder = num_ranks - pow2
    # fold-in phase for non-power-of-two rank counts
    if remainder:
        sched.add_round(
            [
                Message(pow2 + i, i, nbytes, TWOSIDED, nbytes, tag="fold-in")
                for i in range(remainder)
            ],
            label="fold-in",
        )
    step = 1
    while step < pow2:
        pairs = []
        for r in range(pow2):
            partner = r ^ step
            if r < partner:
                pairs.append((r, partner))
        _pairwise_exchange_round(sched, pairs, nbytes, nbytes, f"exchange-{step}")
        step <<= 1
    if remainder:
        sched.add_round(
            [
                Message(i, pow2 + i, nbytes, TWOSIDED, 0, tag="fold-out")
                for i in range(remainder)
            ],
            label="fold-out",
        )
    sched.validate()
    return sched


# --------------------------------------------------------------------------- #
# mpi2: Rabenseifner (recursive halving reduce-scatter + recursive doubling allgather)
# --------------------------------------------------------------------------- #
def rabenseifner_schedule(num_ranks: int, nbytes: int, **_) -> CommunicationSchedule:
    """Rabenseifner's algorithm: bandwidth-efficient for large vectors."""
    require(num_ranks >= 1 and nbytes >= 0, "invalid arguments")
    sched = _schedule("mpi2_rabenseifner", num_ranks, nbytes, algorithm="rabenseifner")
    if num_ranks == 1 or nbytes == 0:
        sched.validate()
        return sched
    pow2 = 1 << (num_ranks.bit_length() - 1)
    remainder = num_ranks - pow2
    if remainder:
        sched.add_round(
            [
                Message(pow2 + i, i, nbytes, TWOSIDED, nbytes, tag="fold-in")
                for i in range(remainder)
            ],
            label="fold-in",
        )
    # reduce-scatter by recursive halving: message size halves every round
    step = pow2 // 2
    size = nbytes // 2
    while step >= 1 and size > 0:
        pairs = [(r, r ^ step) for r in range(pow2) if r < (r ^ step)]
        _pairwise_exchange_round(sched, pairs, size, size, f"halving-{step}")
        step //= 2
        size //= 2
    # allgather by recursive doubling: message size doubles every round
    step = 1
    size = max(nbytes // pow2, 1)
    while step < pow2:
        pairs = [(r, r ^ step) for r in range(pow2) if r < (r ^ step)]
        _pairwise_exchange_round(sched, pairs, size, 0, f"doubling-{step}")
        step <<= 1
        size *= 2
    if remainder:
        sched.add_round(
            [
                Message(i, pow2 + i, nbytes, TWOSIDED, 0, tag="fold-out")
                for i in range(remainder)
            ],
            label="fold-out",
        )
    sched.validate()
    return sched


# --------------------------------------------------------------------------- #
# mpi3 / mpi4: Reduce + Bcast (flat and topology aware)
# --------------------------------------------------------------------------- #
def reduce_bcast_schedule(num_ranks: int, nbytes: int, **_) -> CommunicationSchedule:
    """Binomial reduce to rank 0 followed by binomial broadcast."""
    sched = _schedule("mpi3_reduce_bcast", num_ranks, nbytes, algorithm="reduce_bcast")
    _add_binomial_reduce(sched, range(num_ranks), nbytes)
    _add_binomial_bcast(sched, range(num_ranks), nbytes, barrier_before=True)
    sched.validate()
    return sched


def topo_reduce_bcast_schedule(
    num_ranks: int, nbytes: int, ranks_per_node: int = 1, **_
) -> CommunicationSchedule:
    """Hierarchical Reduce+Bcast: intra-node first, then across node leaders."""
    sched = _schedule(
        "mpi4_topo_reduce_bcast",
        num_ranks,
        nbytes,
        algorithm="topo_reduce_bcast",
        ranks_per_node=ranks_per_node,
    )
    leaders = _node_leaders(num_ranks, ranks_per_node)
    # intra-node reduce onto each leader
    intra = []
    for leader in leaders:
        members = [r for r in range(leader, min(leader + ranks_per_node, num_ranks))]
        for member in members[1:]:
            intra.append(Message(member, leader, nbytes, TWOSIDED, nbytes, tag="intra-reduce"))
    if intra:
        sched.add_round(intra, label="intra-reduce")
    _add_binomial_reduce(sched, leaders, nbytes)
    _add_binomial_bcast(sched, leaders, nbytes, barrier_before=True)
    # intra-node bcast from each leader
    intra_b = []
    for leader in leaders:
        members = [r for r in range(leader, min(leader + ranks_per_node, num_ranks))]
        for member in members[1:]:
            intra_b.append(Message(leader, member, nbytes, TWOSIDED, 0, tag="intra-bcast"))
    if intra_b:
        sched.add_round(intra_b, label="intra-bcast")
    sched.validate()
    return sched


def _add_binomial_reduce(sched: CommunicationSchedule, ranks, nbytes: int) -> None:
    ranks = list(ranks)
    if len(ranks) <= 1:
        return
    tree = BinomialTree(len(ranks))
    stages = tree.ranks_by_stage()
    for stage in sorted((s for s in stages if s > 0), reverse=True):
        sched.add_round(
            [
                Message(
                    ranks[child],
                    ranks[tree.parent(child)],
                    nbytes,
                    TWOSIDED,
                    nbytes,
                    tag=f"reduce-stage-{stage}",
                )
                for child in stages[stage]
            ],
            label=f"reduce-stage-{stage}",
        )


def _add_binomial_bcast(
    sched: CommunicationSchedule, ranks, nbytes: int, barrier_before: bool = False
) -> None:
    ranks = list(ranks)
    if len(ranks) <= 1:
        return
    if barrier_before and sched.rounds:
        sched.rounds[-1].barrier_after = True
    tree = BinomialTree(len(ranks))
    stages = tree.ranks_by_stage()
    for stage in sorted(s for s in stages if s > 0):
        sched.add_round(
            [
                Message(
                    ranks[tree.parent(child)],
                    ranks[child],
                    nbytes,
                    TWOSIDED,
                    0,
                    tag=f"bcast-stage-{stage}",
                )
                for child in stages[stage]
            ],
            label=f"bcast-stage-{stage}",
        )


# --------------------------------------------------------------------------- #
# mpi5 / mpi6: binomial gather + scatter
# --------------------------------------------------------------------------- #
def gather_scatter_schedule(num_ranks: int, nbytes: int, **_) -> CommunicationSchedule:
    """Binomial gather of all contributions to rank 0, reduce there, bcast back.

    The gather messages grow with the subtree size, which is why this
    variant falls behind for large vectors.
    """
    sched = _schedule("mpi5_gather_scatter", num_ranks, nbytes, algorithm="gather_scatter")
    if num_ranks > 1 and nbytes > 0:
        tree = BinomialTree(num_ranks)
        stages = tree.ranks_by_stage()
        for stage in sorted((s for s in stages if s > 0), reverse=True):
            messages = []
            for child in stages[stage]:
                subtree = 1 + len(tree.descendants(child))
                messages.append(
                    Message(
                        child,
                        tree.parent(child),
                        nbytes * subtree,
                        TWOSIDED,
                        0,
                        tag=f"gather-stage-{stage}",
                    )
                )
            sched.add_round(messages, label=f"gather-stage-{stage}")
        # rank 0 reduces the P gathered vectors locally
        sched.add_round(
            local_compute=[LocalCompute(0, nbytes * (num_ranks - 1), tag="root-reduce")],
            label="root-reduce",
        )
        _add_binomial_bcast(sched, range(num_ranks), nbytes, barrier_before=True)
    sched.validate()
    return sched


def topo_gather_scatter_schedule(
    num_ranks: int, nbytes: int, ranks_per_node: int = 1, **_
) -> CommunicationSchedule:
    """Topology-aware gather+scatter: gather within nodes, then across leaders."""
    sched = _schedule(
        "mpi6_topo_gather_scatter",
        num_ranks,
        nbytes,
        algorithm="topo_gather_scatter",
        ranks_per_node=ranks_per_node,
    )
    if num_ranks > 1 and nbytes > 0:
        leaders = _node_leaders(num_ranks, ranks_per_node)
        intra = []
        for leader in leaders:
            members = [r for r in range(leader, min(leader + ranks_per_node, num_ranks))]
            for member in members[1:]:
                intra.append(Message(member, leader, nbytes, TWOSIDED, nbytes, tag="intra-gather"))
        if intra:
            sched.add_round(intra, label="intra-gather")
        if len(leaders) > 1:
            tree = BinomialTree(len(leaders))
            stages = tree.ranks_by_stage()
            for stage in sorted((s for s in stages if s > 0), reverse=True):
                messages = []
                for child in stages[stage]:
                    subtree = 1 + len(tree.descendants(child))
                    messages.append(
                        Message(
                            leaders[child],
                            leaders[tree.parent(child)],
                            nbytes * subtree,
                            TWOSIDED,
                            0,
                            tag=f"leader-gather-{stage}",
                        )
                    )
                sched.add_round(messages, label=f"leader-gather-{stage}")
            sched.add_round(
                local_compute=[LocalCompute(0, nbytes * (len(leaders) - 1), tag="root-reduce")],
                label="root-reduce",
            )
            _add_binomial_bcast(sched, leaders, nbytes, barrier_before=True)
        intra_b = []
        for leader in leaders:
            members = [r for r in range(leader, min(leader + ranks_per_node, num_ranks))]
            for member in members[1:]:
                intra_b.append(Message(leader, member, nbytes, TWOSIDED, 0, tag="intra-bcast"))
        if intra_b:
            sched.add_round(intra_b, label="intra-bcast")
    sched.validate()
    return sched


# --------------------------------------------------------------------------- #
# mpi7 / mpi8: ring variants
# --------------------------------------------------------------------------- #
def shumilin_ring_schedule(num_ranks: int, nbytes: int, **_) -> CommunicationSchedule:
    """Shumilin's ring: Intel MPI's best large-message variant in the paper.

    Modelled as the segmented ring with two-sided messages and a single
    completion synchronisation (it avoids the per-phase barrier of the plain
    ring variant, which is why the paper measures it as the fastest MPI
    ring).
    """
    sched = ring_allreduce_schedule(
        num_ranks,
        nbytes,
        protocol=TWOSIDED,
        phase_barriers=False,
        name="mpi7_shumilin_ring",
    )
    if sched.rounds:
        sched.rounds[-1].barrier_after = True
    sched.metadata["algorithm"] = "shumilin_ring"
    return sched


def ring_schedule(num_ranks: int, nbytes: int, **_) -> CommunicationSchedule:
    """Plain MPI ring allreduce: segmented ring with per-phase synchronisation."""
    sched = ring_allreduce_schedule(
        num_ranks,
        nbytes,
        protocol=TWOSIDED,
        phase_barriers=True,
        name="mpi8_ring",
    )
    sched.metadata["algorithm"] = "ring"
    return sched


# --------------------------------------------------------------------------- #
# mpi9: K-nomial
# --------------------------------------------------------------------------- #
def knomial_schedule(num_ranks: int, nbytes: int, radix: int = 4, **_) -> CommunicationSchedule:
    """K-nomial reduce followed by K-nomial broadcast (radix 4 by default)."""
    sched = _schedule("mpi9_knomial", num_ranks, nbytes, algorithm="knomial", radix=radix)
    if num_ranks > 1 and nbytes > 0:
        tree = KnomialTree(num_ranks, radix=radix)
        max_stage = tree.num_stages()
        # reduce: deepest stage first
        for stage in range(max_stage, 0, -1):
            messages = [
                Message(r, tree.parent(r), nbytes, TWOSIDED, nbytes, tag=f"kred-{stage}")
                for r in range(num_ranks)
                if tree.stage_of(r) == stage
            ]
            if messages:
                sched.add_round(messages, label=f"knomial-reduce-{stage}")
        if sched.rounds:
            sched.rounds[-1].barrier_after = True
        for stage in range(1, max_stage + 1):
            messages = [
                Message(tree.parent(r), r, nbytes, TWOSIDED, 0, tag=f"kbc-{stage}")
                for r in range(num_ranks)
                if tree.stage_of(r) == stage
            ]
            if messages:
                sched.add_round(messages, label=f"knomial-bcast-{stage}")
    sched.validate()
    return sched


# --------------------------------------------------------------------------- #
# mpi10 / mpi11 / mpi12: SHM-based variants
# --------------------------------------------------------------------------- #
def shm_flat_schedule(
    num_ranks: int, nbytes: int, ranks_per_node: int = 1, **_
) -> CommunicationSchedule:
    """Topology-aware SHM-based flat: everyone sends to the root directly.

    Intra-node traffic goes through shared memory; across nodes the leaders
    send their node's partial straight to rank 0, which broadcasts back the
    same way.  Cheap for few ranks, poor at scale.
    """
    sched = _schedule(
        "mpi10_shm_flat", num_ranks, nbytes, algorithm="shm_flat", ranks_per_node=ranks_per_node
    )
    if num_ranks > 1 and nbytes > 0:
        leaders = _node_leaders(num_ranks, ranks_per_node)
        intra = []
        for leader in leaders:
            members = [r for r in range(leader, min(leader + ranks_per_node, num_ranks))]
            for member in members[1:]:
                intra.append(Message(member, leader, nbytes, TWOSIDED, nbytes, tag="shm-reduce"))
        if intra:
            sched.add_round(intra, label="shm-reduce")
        flat_in = [
            Message(leader, 0, nbytes, TWOSIDED, nbytes, tag="flat-reduce")
            for leader in leaders
            if leader != 0
        ]
        if flat_in:
            sched.add_round(flat_in, label="flat-reduce")
        flat_out = [
            Message(0, leader, nbytes, TWOSIDED, 0, tag="flat-bcast")
            for leader in leaders
            if leader != 0
        ]
        if flat_out:
            sched.add_round(flat_out, label="flat-bcast", barrier_after=False)
        intra_b = []
        for leader in leaders:
            members = [r for r in range(leader, min(leader + ranks_per_node, num_ranks))]
            for member in members[1:]:
                intra_b.append(Message(leader, member, nbytes, TWOSIDED, 0, tag="shm-bcast"))
        if intra_b:
            sched.add_round(intra_b, label="shm-bcast")
    sched.validate()
    return sched


def shm_knomial_schedule(
    num_ranks: int, nbytes: int, ranks_per_node: int = 1, radix: int = 4, **_
) -> CommunicationSchedule:
    """Topology-aware SHM-based K-nomial: K-nomial tree across node leaders."""
    sched = _schedule(
        "mpi11_shm_knomial",
        num_ranks,
        nbytes,
        algorithm="shm_knomial",
        ranks_per_node=ranks_per_node,
        radix=radix,
    )
    _add_shm_tree(sched, num_ranks, nbytes, ranks_per_node, radix=radix, knary=False)
    sched.validate()
    return sched


def shm_knary_schedule(
    num_ranks: int, nbytes: int, ranks_per_node: int = 1, radix: int = 4, **_
) -> CommunicationSchedule:
    """Topology-aware SHM-based K-nary tree (fixed fan-out tree)."""
    sched = _schedule(
        "mpi12_shm_knary",
        num_ranks,
        nbytes,
        algorithm="shm_knary",
        ranks_per_node=ranks_per_node,
        radix=radix,
    )
    _add_shm_tree(sched, num_ranks, nbytes, ranks_per_node, radix=radix, knary=True)
    sched.validate()
    return sched


def _add_shm_tree(
    sched: CommunicationSchedule,
    num_ranks: int,
    nbytes: int,
    ranks_per_node: int,
    radix: int,
    knary: bool,
) -> None:
    if num_ranks <= 1 or nbytes == 0:
        return
    leaders = _node_leaders(num_ranks, ranks_per_node)
    intra = []
    for leader in leaders:
        members = [r for r in range(leader, min(leader + ranks_per_node, num_ranks))]
        for member in members[1:]:
            intra.append(Message(member, leader, nbytes, TWOSIDED, nbytes, tag="shm-reduce"))
    if intra:
        sched.add_round(intra, label="shm-reduce")
    if len(leaders) > 1:
        # A K-nary tree is a K-nomial tree whose inner nodes adopt children in
        # a single stage; the cost difference at this granularity is the number
        # of stages, so reuse KnomialTree with a different effective radix.
        effective_radix = radix + 1 if knary else radix
        tree = KnomialTree(len(leaders), radix=effective_radix)
        max_stage = tree.num_stages()
        for stage in range(max_stage, 0, -1):
            messages = [
                Message(
                    leaders[r],
                    leaders[tree.parent(r)],
                    nbytes,
                    TWOSIDED,
                    nbytes,
                    tag=f"leader-reduce-{stage}",
                )
                for r in range(len(leaders))
                if tree.stage_of(r) == stage
            ]
            if messages:
                sched.add_round(messages, label=f"leader-reduce-{stage}")
        if sched.rounds:
            sched.rounds[-1].barrier_after = True
        for stage in range(1, max_stage + 1):
            messages = [
                Message(
                    leaders[tree.parent(r)],
                    leaders[r],
                    nbytes,
                    TWOSIDED,
                    0,
                    tag=f"leader-bcast-{stage}",
                )
                for r in range(len(leaders))
                if tree.stage_of(r) == stage
            ]
            if messages:
                sched.add_round(messages, label=f"leader-bcast-{stage}")
    intra_b = []
    for leader in leaders:
        members = [r for r in range(leader, min(leader + ranks_per_node, num_ranks))]
        for member in members[1:]:
            intra_b.append(Message(leader, member, nbytes, TWOSIDED, 0, tag="shm-bcast"))
    if intra_b:
        sched.add_round(intra_b, label="shm-bcast")


#: Ordered mapping of the paper's variant labels to schedule builders.
VARIANTS: Dict[str, Callable[..., CommunicationSchedule]] = {
    "mpi1_recursive_doubling": recursive_doubling_schedule,
    "mpi2_rabenseifner": rabenseifner_schedule,
    "mpi3_reduce_bcast": reduce_bcast_schedule,
    "mpi4_topo_reduce_bcast": topo_reduce_bcast_schedule,
    "mpi5_gather_scatter": gather_scatter_schedule,
    "mpi6_topo_gather_scatter": topo_gather_scatter_schedule,
    "mpi7_shumilin_ring": shumilin_ring_schedule,
    "mpi8_ring": ring_schedule,
    "mpi9_knomial": knomial_schedule,
    "mpi10_shm_flat": shm_flat_schedule,
    "mpi11_shm_knomial": shm_knomial_schedule,
    "mpi12_shm_knary": shm_knary_schedule,
}


# --------------------------------------------------------------------------- #
# functional reference: recursive doubling on the threaded runtime
# --------------------------------------------------------------------------- #
def recursive_doubling_allreduce(
    layer: TwoSidedLayer,
    sendbuf: np.ndarray,
    op: str = "sum",
) -> np.ndarray:
    """Functional recursive-doubling allreduce over the two-sided layer.

    Requires a power-of-two world size (the schedule builder handles the
    general case; the functional version is used for cross-validation).
    """
    runtime: GaspiRuntime = layer.runtime
    require(is_power_of_two(runtime.size), "functional recursive doubling needs 2^k ranks")
    operator = get_op(op)
    result = np.ascontiguousarray(sendbuf, dtype=np.float64).copy()
    cube = Hypercube(runtime.size)
    for k in range(cube.dimensions):
        partner = cube.partner(runtime.rank, k)
        incoming = layer.sendrecv(result, dest=partner, source=partner, tag=k)
        operator.reduce_into(result, incoming)
    return result


def ring_allreduce_twosided(
    layer: TwoSidedLayer,
    sendbuf: np.ndarray,
    op: str = "sum",
) -> np.ndarray:
    """Functional MPI-style ring allreduce (reduce-scatter + allgather).

    Used by tests to cross-check the GASPI pipelined ring against an
    independently written implementation of the same mathematical result.
    """
    runtime: GaspiRuntime = layer.runtime
    operator = get_op(op)
    work = np.ascontiguousarray(sendbuf, dtype=np.float64).copy()
    size, rank = runtime.size, runtime.rank
    if size == 1:
        return work
    ring = Ring(size)
    nxt, prv = ring.next_rank(rank), ring.prev_rank(rank)
    for step in range(size - 1):
        send_chunk = ring.scatter_reduce_send_chunk(rank, step)
        recv_chunk = ring.scatter_reduce_recv_chunk(rank, step)
        sb, se = chunk_bounds(work.size, size, send_chunk)
        rb, re = chunk_bounds(work.size, size, recv_chunk)
        incoming = layer.sendrecv(work[sb:se], dest=nxt, source=prv, tag=step)
        if incoming.size:
            operator.reduce_into(work[rb:re], incoming)
    for step in range(size - 1):
        send_chunk = ring.allgather_send_chunk(rank, step)
        recv_chunk = ring.allgather_recv_chunk(rank, step)
        sb, se = chunk_bounds(work.size, size, send_chunk)
        rb, re = chunk_bounds(work.size, size, recv_chunk)
        incoming = layer.sendrecv(work[sb:se], dest=nxt, source=prv, tag=100 + step)
        if incoming.size:
            work[rb:re] = incoming
    return work
