"""MPI AlltoAll baselines (Figure 13).

Intel MPI's ``MPI_Alltoall`` auto-selects between three classic
algorithms; all are provided here:

* **Bruck** — ``log2(P)`` rounds of aggregated messages; best for very
  small blocks because it trades bandwidth (each element travels multiple
  hops) for far fewer messages.
* **Pairwise exchange** — P-1 rounds; in round ``k`` rank ``i`` exchanges
  one block with rank ``i XOR k`` (or ``i ± k`` for non-power-of-two);
  the standard medium/large-message algorithm.
* **Isend/Irecv posting** — every rank posts all P-1 sends/receives at
  once; similar structure to the GASPI direct AlltoAll but paying
  two-sided matching and (beyond the eager threshold) rendezvous costs per
  message.

A functional pairwise exchange over the two-sided layer is included for
cross-validation of the GASPI ``alltoall``.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import CommunicationSchedule, Message, Protocol
from ..utils.validation import require
from .twosided import TwoSidedLayer

TWOSIDED = Protocol.TWOSIDED


def bruck_alltoall_schedule(num_ranks: int, block_nbytes: int, **_) -> CommunicationSchedule:
    """Bruck algorithm: ⌈log2 P⌉ rounds, each moving ~half of the blocks."""
    require(num_ranks >= 1 and block_nbytes >= 0, "invalid arguments")
    sched = CommunicationSchedule(
        name="mpi_alltoall_bruck",
        num_ranks=num_ranks,
        metadata={"block_bytes": block_nbytes, "algorithm": "bruck"},
    )
    if num_ranks == 1 or block_nbytes == 0:
        sched.validate()
        return sched
    step = 1
    while step < num_ranks:
        # Every rank sends the blocks whose destination has the current bit
        # set — about half of its P blocks, aggregated in a single message.
        blocks_moved = sum(1 for d in range(num_ranks) if (d & step) != 0)
        nbytes = blocks_moved * block_nbytes
        sched.add_round(
            [
                Message(
                    r,
                    (r + step) % num_ranks,
                    nbytes,
                    TWOSIDED,
                    0,
                    tag=f"bruck-{step}",
                )
                for r in range(num_ranks)
            ],
            label=f"bruck-{step}",
        )
        step <<= 1
    sched.validate()
    return sched


def pairwise_alltoall_schedule(num_ranks: int, block_nbytes: int, **_) -> CommunicationSchedule:
    """Pairwise exchange: P-1 rounds of single-block exchanges."""
    require(num_ranks >= 1 and block_nbytes >= 0, "invalid arguments")
    sched = CommunicationSchedule(
        name="mpi_alltoall_pairwise",
        num_ranks=num_ranks,
        metadata={"block_bytes": block_nbytes, "algorithm": "pairwise"},
    )
    if num_ranks == 1 or block_nbytes == 0:
        sched.validate()
        return sched
    for k in range(1, num_ranks):
        messages = []
        for r in range(num_ranks):
            partner = r ^ k if _is_pow2(num_ranks) else (r + k) % num_ranks
            if partner == r:
                continue
            messages.append(Message(r, partner, block_nbytes, TWOSIDED, 0, tag=f"pairwise-{k}"))
        sched.add_round(messages, label=f"pairwise-{k}")
    sched.validate()
    return sched


def isend_irecv_alltoall_schedule(num_ranks: int, block_nbytes: int, **_) -> CommunicationSchedule:
    """Post-all-sends AlltoAll: one round with all P(P-1) two-sided messages."""
    require(num_ranks >= 1 and block_nbytes >= 0, "invalid arguments")
    sched = CommunicationSchedule(
        name="mpi_alltoall_isend_irecv",
        num_ranks=num_ranks,
        metadata={"block_bytes": block_nbytes, "algorithm": "isend_irecv"},
    )
    if num_ranks > 1 and block_nbytes > 0:
        sched.add_round(
            [
                Message(src, dst, block_nbytes, TWOSIDED, 0, tag="isend")
                for src in range(num_ranks)
                for dst in range(num_ranks)
                if src != dst
            ],
            label="post-all",
        )
    sched.validate()
    return sched


def default_alltoall_schedule(num_ranks: int, block_nbytes: int, **kwargs) -> CommunicationSchedule:
    """The vendor-default AlltoAll: auto-selection by block size."""
    from .tuning import select_alltoall_variant

    builder = select_alltoall_variant(num_ranks, block_nbytes)
    sched = builder(num_ranks, block_nbytes, **kwargs)
    sched.metadata["selected_by"] = "mpi_default_tuning"
    return sched


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


# --------------------------------------------------------------------------- #
# functional reference
# --------------------------------------------------------------------------- #
def pairwise_alltoall_twosided(
    layer: TwoSidedLayer,
    sendbuf: np.ndarray,
) -> np.ndarray:
    """Functional pairwise-exchange AlltoAll over the two-sided layer."""
    runtime = layer.runtime
    size, rank = runtime.size, runtime.rank
    sendbuf = np.ascontiguousarray(sendbuf, dtype=np.float64)
    require(sendbuf.size % size == 0, "sendbuf length must be divisible by world size")
    block = sendbuf.size // size
    recvbuf = np.empty_like(sendbuf)
    recvbuf[rank * block : (rank + 1) * block] = sendbuf[rank * block : (rank + 1) * block]
    for k in range(1, size):
        partner = rank ^ k if _is_pow2(size) else (rank + k) % size
        recv_from = partner if _is_pow2(size) else (rank - k) % size
        outgoing = sendbuf[partner * block : (partner + 1) * block]
        layer.send(outgoing, partner, tag=k)
        incoming, _ = layer.recv(recv_from, tag=k)
        recvbuf[recv_from * block : (recv_from + 1) * block] = incoming
    return recvbuf
