"""MPI reduce baselines: binomial and "default" (Figures 9 and 10).

``mpi-bin`` is the binomial-tree reduction; ``mpi-def`` is the
auto-selected variant, which for large vectors is Rabenseifner's
reduce-scatter + binomial gather (bandwidth ~2·n·β instead of
log(P)·n·β) — that is why the paper measures the MPI default as still
~2× faster than the threshold-less GASPI BST reduce at 1 M elements.
"""

from __future__ import annotations

import numpy as np

from ..core.reduction_ops import get_op
from ..core.schedule import CommunicationSchedule, Message, Protocol
from ..core.topology import BinomialTree
from ..utils.validation import require
from .twosided import TwoSidedLayer

TWOSIDED = Protocol.TWOSIDED


def binomial_reduce_schedule(num_ranks: int, nbytes: int, root: int = 0, **_) -> CommunicationSchedule:
    """Binomial-tree reduce (the ``mpi-bin`` line of Figure 9)."""
    require(num_ranks >= 1 and nbytes >= 0, "invalid arguments")
    sched = CommunicationSchedule(
        name="mpi_reduce_binomial",
        num_ranks=num_ranks,
        metadata={"payload_bytes": nbytes, "algorithm": "binomial"},
    )
    tree = BinomialTree(num_ranks, root)
    stages = tree.ranks_by_stage()
    for stage in sorted((s for s in stages if s > 0), reverse=True):
        sched.add_round(
            [
                Message(
                    child,
                    tree.parent(child),
                    nbytes,
                    TWOSIDED,
                    nbytes,
                    tag=f"reduce-{stage}",
                )
                for child in stages[stage]
            ],
            label=f"stage-{stage}",
        )
    sched.validate()
    return sched


def reduce_scatter_gather_schedule(
    num_ranks: int, nbytes: int, root: int = 0, **_
) -> CommunicationSchedule:
    """Rabenseifner-style reduce: recursive-halving reduce-scatter + binomial gather."""
    require(num_ranks >= 1 and nbytes >= 0, "invalid arguments")
    sched = CommunicationSchedule(
        name="mpi_reduce_scatter_gather",
        num_ranks=num_ranks,
        metadata={"payload_bytes": nbytes, "algorithm": "reduce_scatter_gather"},
    )
    if num_ranks == 1 or nbytes == 0:
        sched.validate()
        return sched
    pow2 = 1 << (num_ranks.bit_length() - 1)
    remainder = num_ranks - pow2
    if remainder:
        sched.add_round(
            [
                Message(pow2 + i, i, nbytes, TWOSIDED, nbytes, tag="fold-in")
                for i in range(remainder)
            ],
            label="fold-in",
        )
    step = pow2 // 2
    size = nbytes // 2
    while step >= 1 and size > 0:
        messages = []
        for r in range(pow2):
            partner = r ^ step
            if r < partner:
                messages.append(Message(r, partner, size, TWOSIDED, size, tag=f"halving-{step}"))
                messages.append(Message(partner, r, size, TWOSIDED, size, tag=f"halving-{step}"))
        sched.add_round(messages, label=f"halving-{step}")
        step //= 2
        size //= 2
    if sched.rounds:
        sched.rounds[-1].barrier_after = True
    # binomial gather of the scattered pieces back to the root
    tree = BinomialTree(pow2, root % pow2)
    stages = tree.ranks_by_stage()
    piece = max(1, nbytes // pow2)
    for stage in sorted((s for s in stages if s > 0), reverse=True):
        messages = []
        for child in stages[stage]:
            subtree = 1 + len(tree.descendants(child))
            messages.append(
                Message(
                    child,
                    tree.parent(child),
                    piece * subtree,
                    TWOSIDED,
                    0,
                    tag=f"gather-{stage}",
                )
            )
        sched.add_round(messages, label=f"gather-{stage}")
    sched.validate()
    return sched


def default_reduce_schedule(
    num_ranks: int, nbytes: int, root: int = 0, **kwargs
) -> CommunicationSchedule:
    """The ``mpi-def`` reduce: Intel-MPI-like auto-selection."""
    from .tuning import select_reduce_variant

    builder = select_reduce_variant(num_ranks, nbytes)
    sched = builder(num_ranks, nbytes, root=root, **kwargs)
    sched.metadata["selected_by"] = "mpi_default_tuning"
    return sched


# --------------------------------------------------------------------------- #
# functional reference
# --------------------------------------------------------------------------- #
def binomial_reduce_twosided(
    layer: TwoSidedLayer,
    sendbuf: np.ndarray,
    root: int = 0,
    op: str = "sum",
) -> np.ndarray:
    """Functional binomial reduce over the two-sided layer.

    Returns the reduction on the root; other ranks return their partial
    accumulator (as MPI does not define their receive buffer).
    """
    runtime = layer.runtime
    operator = get_op(op)
    tree = BinomialTree(runtime.size, root)
    rank = runtime.rank
    accumulator = np.ascontiguousarray(sendbuf, dtype=np.float64).copy()
    # Children are adopted in increasing stage order; a parent must receive
    # from the deepest children last, but order does not affect the sum.
    for child in tree.children(rank):
        incoming, _ = layer.recv(child, tag=11)
        operator.reduce_into(accumulator, incoming)
    parent = tree.parent(rank)
    if parent is not None:
        layer.send(accumulator, parent, tag=11)
    return accumulator
