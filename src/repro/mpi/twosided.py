"""Two-sided (MPI-style) messaging built on the one-sided GASPI runtime.

The functional MPI baselines need ``send``/``recv`` with tag matching.
This layer implements the classic design on top of one-sided writes:

* every rank owns a mailbox segment with one *slot per peer*;
* ``send`` waits until the receiver has marked the sender's slot free
  (credit notification), writes the payload plus a small envelope
  (tag, element count) into the slot and notifies the receiver;
* ``recv`` waits for the data notification of the matching source, checks
  the tag, copies the payload out and returns the credit.

This is intentionally a *rendezvous-like* protocol: a send cannot complete
before the receiver granted the credit, which mirrors the sender/receiver
coupling of large-message MPI traffic and distinguishes the baselines from
the notification-only GASPI collectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.runtime import GaspiRuntime
from ..utils.validation import require

#: Default segment id of the two-sided mailbox layer.
TWOSIDED_SEGMENT_ID = 180

#: Any-tag wildcard for :meth:`TwoSidedLayer.recv`.
ANY_TAG = -1

_ENVELOPE_DOUBLES = 2  # [tag, element_count]


@dataclass
class MessageEnvelope:
    """Metadata travelling with every two-sided message."""

    source: int
    tag: int
    count: int


class TwoSidedLayer:
    """Per-rank send/recv endpoint with one mailbox slot per peer.

    Parameters
    ----------
    runtime:
        The rank's GASPI runtime.
    max_elements:
        Maximum number of float64 elements a single message may carry.
    segment_id:
        Mailbox segment id (must match on every rank).
    """

    def __init__(
        self,
        runtime: GaspiRuntime,
        max_elements: int,
        segment_id: int = TWOSIDED_SEGMENT_ID,
        queue: int = 0,
    ) -> None:
        require(max_elements >= 1, "max_elements must be >= 1")
        self.runtime = runtime
        self.max_elements = int(max_elements)
        self.segment_id = int(segment_id)
        self.queue = int(queue)
        self.dtype = np.dtype(np.float64)

        size = runtime.size
        self._slot_elems = _ENVELOPE_DOUBLES + self.max_elements
        self._slot_bytes = self._slot_elems * self.dtype.itemsize
        # Layout: [recv slots: P][send staging: P]
        self._send_region = size * self._slot_bytes
        runtime.segment_create(self.segment_id, 2 * size * self._slot_bytes)
        runtime.barrier()

        # Notification ids: data from peer p -> p; credit from peer p -> size + p.
        self._data_base = 0
        self._credit_base = size
        # Initially every peer may send to us once.
        for peer in range(size):
            if peer != runtime.rank:
                runtime.notify(peer, self.segment_id, self._credit_base + runtime.rank, queue=queue)
        runtime.wait(queue)
        runtime.barrier()
        self._closed = False

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #
    def send(
        self,
        data: np.ndarray,
        dest: int,
        tag: int = 0,
        timeout: float = GASPI_BLOCK,
    ) -> None:
        """Blocking tagged send of a float64 vector to ``dest``."""
        self._check_open()
        data = np.ascontiguousarray(data, dtype=self.dtype)
        require(data.size <= self.max_elements, "message larger than the mailbox slot")
        require(0 <= dest < self.runtime.size and dest != self.runtime.rank,
                f"invalid destination {dest}")
        rank = self.runtime.rank

        # Wait for the credit: the receiver's slot for us is free.
        got = self.runtime.notify_waitsome(
            self.segment_id, self._credit_base + dest, 1, timeout=timeout
        )
        if got is None:
            raise TimeoutError(f"rank {rank}: no credit from {dest} (receiver absent?)")
        self.runtime.notify_reset(self.segment_id, got)

        offset = self._send_region + dest * self._slot_bytes
        staging = self.runtime.segment_view(
            self.segment_id, dtype=self.dtype, offset=offset, count=self._slot_elems
        )
        staging[0] = float(tag)
        staging[1] = float(data.size)
        staging[_ENVELOPE_DOUBLES : _ENVELOPE_DOUBLES + data.size] = data

        self.runtime.write_notify(
            segment_id_local=self.segment_id,
            offset_local=offset,
            target_rank=dest,
            segment_id_remote=self.segment_id,
            offset_remote=rank * self._slot_bytes,
            size=(_ENVELOPE_DOUBLES + data.size) * self.dtype.itemsize,
            notification_id=self._data_base + rank,
            queue=self.queue,
        )
        self.runtime.wait(self.queue)

    def recv(
        self,
        source: int,
        tag: int = ANY_TAG,
        timeout: float = GASPI_BLOCK,
    ) -> tuple[np.ndarray, MessageEnvelope]:
        """Blocking receive of the next message from ``source``.

        Returns the payload and its envelope; raises ``ValueError`` when a
        specific ``tag`` was requested and the arriving message carries a
        different one (the protocol delivers messages per peer in order, so
        a mismatch indicates a bug in the calling collective).
        """
        self._check_open()
        require(0 <= source < self.runtime.size and source != self.runtime.rank,
                f"invalid source {source}")
        got = self.runtime.notify_waitsome(
            self.segment_id, self._data_base + source, 1, timeout=timeout
        )
        if got is None:
            raise TimeoutError(f"rank {self.runtime.rank}: no message from {source}")
        self.runtime.notify_reset(self.segment_id, got)

        slot = self.runtime.segment_read(
            self.segment_id,
            dtype=self.dtype,
            offset=source * self._slot_bytes,
            count=self._slot_elems,
        )
        envelope = MessageEnvelope(source=source, tag=int(slot[0]), count=int(slot[1]))
        if tag != ANY_TAG and envelope.tag != tag:
            raise ValueError(
                f"rank {self.runtime.rank}: expected tag {tag} from {source}, "
                f"got {envelope.tag}"
            )
        payload = slot[_ENVELOPE_DOUBLES : _ENVELOPE_DOUBLES + envelope.count].copy()
        # Return the credit so the peer may send again.
        self.runtime.notify(
            source, self.segment_id, self._credit_base + self.runtime.rank, queue=self.queue
        )
        self.runtime.wait(self.queue)
        return payload, envelope

    def sendrecv(
        self,
        senddata: np.ndarray,
        dest: int,
        source: int,
        tag: int = 0,
        timeout: float = GASPI_BLOCK,
    ) -> np.ndarray:
        """Combined send+recv used by exchange-style algorithms.

        The send is issued first and the receive afterwards; because every
        pair of ranks in the exchange algorithms sends to each other, the
        credit protocol guarantees progress.
        """
        self.send(senddata, dest, tag=tag, timeout=timeout)
        payload, _ = self.recv(source, tag=tag, timeout=timeout)
        return payload

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the mailbox segment (collective)."""
        if self._closed:
            return
        self.runtime.barrier()
        self.runtime.segment_delete(self.segment_id)
        self._closed = True

    def __enter__(self) -> "TwoSidedLayer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("TwoSidedLayer already closed")
