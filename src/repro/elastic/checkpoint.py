"""Collective-boundary checkpoints of per-rank communicator state.

Collectives are synchronization points, which makes them the cheap place
to checkpoint (the Collective Vector Clocks observation): at a boundary
there is no partially-applied payload anywhere, so the only state worth
saving is the *control* state a resumed rank needs to keep allocating in
lock-step with an uninterrupted one — segment-id counters, the collective
sequence number, the plan-cache contents (as keys, not buffers), the
suspected-rank set and the policy fingerprints.

:func:`checkpoint` freezes exactly that into a :class:`CommSnapshot`:

* **plan-cache keys** in LRU order, with each plan's workspace segment id
  and pin state, so :func:`restore` recompiles byte-identical plans into
  the *same* segment ids without consuming fresh ones;
* **in-flight handle queue**: nonblocking handles cannot be serialized
  mid-pipeline, so the checkpoint first drains them (``wait_all``) and
  records how many it drained (:attr:`CommSnapshot.drained_handles`) —
  the snapshot is always taken at a true boundary;
* **notification high-water marks**: the quiesce barrier taken before
  snapshotting guarantees every board is clean (planned executors are
  self-synchronising across calls and the barrier orders the last call's
  final notifications before the snapshot), so the marks are uniformly
  zero and carried implicitly;
* **suspected ranks and policy fingerprints**, so degraded-mode routing
  resumes exactly where it stopped.

Snapshots serialize to one JSON file per rank under a versioned schema
(``repro-ckpt/v1``) plus a rank-0 manifest, and :func:`restore` rebuilds
a :class:`~repro.core.api.Communicator` in a fresh world that replays
from the boundary with bit-identical results (same algorithms, same
segment ids, same plan-cache state — ``misses == 0`` after the replay
proves the restored plans served).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.api import Communicator
from ..gaspi.constants import GASPI_BLOCK
from ..gaspi.group import Group
from ..core.plan import PlanKey, PolicyFingerprint, policy_fingerprint, policy_from_fingerprint
from ..gaspi.runtime import GaspiRuntime
from ..telemetry.core import CLOCK
from ..utils.logging import get_logger
from ..utils.validation import require

logger = get_logger("elastic.checkpoint")

#: Versioned snapshot schema; bump on any incompatible layout change.
CKPT_SCHEMA = "repro-ckpt/v1"

#: Rank-0 manifest describing the checkpoint as a whole.
MANIFEST_NAME = "MANIFEST.json"


@dataclass(frozen=True)
class PlanEntry:
    """One plan-cache entry of a snapshot: its key, segment id, pin state."""

    key: PlanKey
    segment_id: int
    calls: int
    pinned: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key.to_dict(),
            "segment_id": self.segment_id,
            "calls": self.calls,
            "pinned": self.pinned,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PlanEntry":
        return cls(
            key=PlanKey.from_dict(data["key"]),
            segment_id=int(data["segment_id"]),
            calls=int(data["calls"]),
            pinned=bool(data.get("pinned", False)),
        )


@dataclass(frozen=True)
class CommSnapshot:
    """Per-rank communicator state at one collective boundary.

    Everything a restored rank needs to keep allocating segment ids and
    sequence numbers in lock-step with an uninterrupted run.  Immutable
    and JSON-serializable; :meth:`save`/:meth:`load` handle the on-disk
    layout (one ``rank-NNNNN.json`` per rank plus a rank-0 manifest).
    """

    rank: int
    size: int
    segment_base: int
    segment_span: int
    next_segment: int
    collective_seq: int
    split_count: int
    family: str
    policy: PolicyFingerprint
    detect_timeout: Optional[float]
    suspected: Tuple[int, ...]
    plan_capacity: int
    plans: Tuple[PlanEntry, ...] = ()
    #: Nonblocking handles drained (completed) to reach the boundary.
    drained_handles: int = 0
    schema: str = CKPT_SCHEMA

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "rank": self.rank,
            "size": self.size,
            "segment_base": self.segment_base,
            "segment_span": self.segment_span,
            "next_segment": self.next_segment,
            "collective_seq": self.collective_seq,
            "split_count": self.split_count,
            "family": self.family,
            "policy": list(self.policy),
            "detect_timeout": self.detect_timeout,
            "suspected": list(self.suspected),
            "plan_capacity": self.plan_capacity,
            "plans": [entry.to_dict() for entry in self.plans],
            "drained_handles": self.drained_handles,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CommSnapshot":
        schema = str(data.get("schema", ""))
        require(
            schema == CKPT_SCHEMA,
            f"unsupported checkpoint schema {schema!r} (expected {CKPT_SCHEMA!r})",
        )
        threshold, mode, slack, on_failure, chunk_bytes = data["policy"]
        fingerprint: PolicyFingerprint = (
            float(threshold),
            str(mode),
            int(slack),
            str(on_failure),
            None if chunk_bytes is None else int(chunk_bytes),
        )
        detect_timeout = data.get("detect_timeout")
        return cls(
            rank=int(data["rank"]),
            size=int(data["size"]),
            segment_base=int(data["segment_base"]),
            segment_span=int(data["segment_span"]),
            next_segment=int(data["next_segment"]),
            collective_seq=int(data["collective_seq"]),
            split_count=int(data["split_count"]),
            family=str(data["family"]),
            policy=fingerprint,
            detect_timeout=None if detect_timeout is None else float(detect_timeout),
            suspected=tuple(int(r) for r in data.get("suspected", ())),
            plan_capacity=int(data["plan_capacity"]),
            plans=tuple(PlanEntry.from_dict(p) for p in data.get("plans", ())),
            drained_handles=int(data.get("drained_handles", 0)),
            schema=schema,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def rank_file(rank: int) -> str:
        return f"rank-{int(rank):05d}.json"

    def save(self, directory: str) -> str:
        """Write this rank's snapshot (and, on rank 0, the manifest).

        Returns the path of the rank file.  Safe to call concurrently
        from every rank: each writes only its own file.
        """
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, self.rank_file(self.rank))
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
        if self.rank == 0:
            manifest = {"schema": self.schema, "size": self.size}
            with open(
                os.path.join(directory, MANIFEST_NAME), "w", encoding="utf-8"
            ) as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
        return path

    @classmethod
    def load(cls, directory: str, rank: int) -> "CommSnapshot":
        """Read one rank's snapshot back, validating schema and identity."""
        path = os.path.join(directory, cls.rank_file(rank))
        with open(path, "r", encoding="utf-8") as fh:
            snapshot = cls.from_dict(json.load(fh))
        require(
            snapshot.rank == int(rank),
            f"snapshot {path} is for rank {snapshot.rank}, not {rank}",
        )
        return snapshot


# --------------------------------------------------------------------------- #
# checkpoint / restore
# --------------------------------------------------------------------------- #
def checkpoint(
    comm: Communicator,
    *,
    group: Optional[Group] = None,
    timeout: float = GASPI_BLOCK,
) -> CommSnapshot:
    """Snapshot ``comm`` at a collective boundary (collective call).

    Drains any in-flight nonblocking handles first (the snapshot is
    always taken at a true boundary) and takes one quiesce barrier so
    every notification board is clean before the control state is frozen.
    The communicator stays fully usable afterwards.

    ``group``/``timeout`` bound the quiesce barrier for checkpoints taken
    with ranks already gone (the recovery supervisor checkpoints over the
    survivors before repairing): the barrier covers only ``group`` and
    gives up after ``timeout`` instead of waiting on the dead.
    """
    tel = comm.telemetry
    t0 = CLOCK() if tel.enabled else 0.0
    drained = 0
    if comm._progress.active:
        drained = comm._progress.active
        comm.wait_all(timeout)
    comm._quiesce_plans(group, timeout=timeout)
    entries = tuple(
        PlanEntry(
            key=key,
            segment_id=plan.segment_id,
            calls=plan.calls,
            pinned=plan.pins > 0,
        )
        for key, plan in comm._plans._plans.items()  # LRU order: oldest first
    )
    snapshot = CommSnapshot(
        rank=comm.rank,
        size=comm.size,
        segment_base=comm._segment_base,
        segment_span=comm._segment_span,
        next_segment=comm._next_segment,
        collective_seq=comm._collective_seq,
        split_count=comm._split_count,
        family=comm._family,
        policy=policy_fingerprint(comm.policy),
        detect_timeout=comm._detect_timeout,
        suspected=tuple(sorted(comm._suspected)),
        plan_capacity=comm._plans.capacity,
        plans=entries,
        drained_handles=drained,
    )
    logger.info(
        "rank %d: checkpoint at seq %d (%d cached plan(s), %d handle(s) drained)",
        comm.rank, snapshot.collective_seq, len(entries), drained,
    )
    if tel.enabled:
        t1 = CLOCK()
        tel.counter("elastic.checkpoints").add()
        tel.histogram("elastic.checkpoint_s").observe(t1 - t0)
        tel.record_span(
            "checkpoint", "elastic", t0, t1,
            {"seq": snapshot.collective_seq, "plans": len(entries)},
        )
    return snapshot


def restore(
    runtime: GaspiRuntime,
    snapshot: CommSnapshot,
    *,
    tuning=None,
    machine=None,
    registry=None,
    faults=None,
    telemetry=None,
    barrier: bool = True,
) -> Communicator:
    """Rebuild a communicator from ``snapshot`` in a fresh world.

    Collective when the snapshot holds compiled plans: plan compilation
    synchronises, so every rank must restore at the same point (that is
    what ``barrier=True`` enforces at the end as well).  A *single* rank
    rejoining a live world — the respawn path — passes ``barrier=False``,
    which is only legal for plan-free snapshots.

    The restored communicator allocates segment ids and sequence numbers
    exactly where the checkpointed one stopped, and its plan cache is
    repopulated (same keys, same segment ids, pins re-applied) without
    counting misses — a subsequent replay that stays at ``misses == 0``
    proves the restored plans served every call.
    """
    require(
        snapshot.schema == CKPT_SCHEMA,
        f"unsupported checkpoint schema {snapshot.schema!r}",
    )
    require(
        runtime.size == snapshot.size,
        f"snapshot is for a {snapshot.size}-rank world, runtime has "
        f"{runtime.size} ranks (shrink()/respawn instead of restore)",
    )
    require(
        runtime.rank == snapshot.rank,
        f"rank {runtime.rank} cannot restore rank {snapshot.rank}'s snapshot",
    )
    require(
        barrier or not snapshot.plans,
        "barrier=False restore is only possible for plan-free snapshots "
        "(plan compilation itself synchronises)",
    )
    tel = telemetry
    t0 = CLOCK() if (tel is not None and tel.enabled) else 0.0
    comm = Communicator(
        runtime,
        segment_base=snapshot.segment_base,
        segment_span=snapshot.segment_span,
        policy=policy_from_fingerprint(snapshot.policy),
        tuning=tuning,
        machine=machine,
        family=snapshot.family,
        registry=registry,
        detect_timeout=snapshot.detect_timeout,
        plan_cache=snapshot.plan_capacity,
        faults=faults,
        telemetry=telemetry,
    )
    for entry in snapshot.plans:
        info = comm._registry.get(entry.key.algorithm)
        plan = info.plan(
            comm.runtime,
            entry.key,
            entry.segment_id,
            policy_from_fingerprint(entry.key.policy),
        )
        # Restored plans restart at calls=0: the fresh world's boards are
        # clean, so the executors' cross-call synchronisation state is at
        # its initial position regardless of how far the old world got.
        for evicted in comm._plans.put(entry.key, plan):
            evicted.close()
        if entry.pinned:
            comm._plans.pin(entry.key)
    comm._next_segment = snapshot.next_segment
    comm._collective_seq = snapshot.collective_seq
    comm._split_count = snapshot.split_count
    comm._suspected = set(snapshot.suspected)
    if barrier:
        comm._quiesce_plans()
    logger.info(
        "rank %d: restored at seq %d (%d plan(s) recompiled)",
        comm.rank, snapshot.collective_seq, len(snapshot.plans),
    )
    if tel is not None and tel.enabled:
        t1 = CLOCK()
        tel.counter("elastic.restores").add()
        tel.histogram("elastic.restore_s").observe(t1 - t0)
        tel.record_span(
            "restore", "elastic", t0, t1,
            {"seq": snapshot.collective_seq, "plans": len(snapshot.plans)},
        )
    return comm
