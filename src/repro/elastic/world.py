"""A process-per-rank shm world whose ranks can die and be respawned.

:func:`~repro.gaspi.shm.run_shm` launches all ranks at once and tears the
world down when they return — a batch job.  :class:`ElasticShmWorld` is
the operable-service counterpart: it owns a live
:class:`~repro.gaspi.shm.ShmWorld` whose rank processes are started,
observed and *replaced* individually, so a crashed rank can be respawned
into the same world (same uid, same deterministic segment names) while
the survivors keep running.

::

    with ElasticShmWorld(8) as world:
        world.spawn_all(worker_a)
        dead = world.wait([7])           # rank 7 hard-exited
        assert dead[7].status == "dead"
        world.spawn(7, worker_b)         # replacement, same rank identity
        results = world.wait()

Replacement processes fork from the parent like the originals, so they
inherit the world's locks and control block; their runtime re-attaches
the predecessor's leftover segments through
:meth:`~repro.gaspi.shm.ShmRuntime.adopt_segment` (see
:mod:`repro.elastic.respawn`).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..gaspi.errors import GaspiInvalidArgumentError
from ..gaspi.shm import ShmConfig, ShmWorld, _picklable_exception
from ..utils.logging import get_logger

logger = get_logger("elastic.world")


@dataclass
class RankResult:
    """Outcome of one rank incarnation."""

    rank: int
    status: str  # "ok" | "error" | "dead" | "running"
    value: Any = None
    error: Optional[BaseException] = None
    traceback: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _elastic_child_main(world: ShmWorld, rank: int, fn, args, kwargs, conn) -> None:
    """Entry point of one (re)spawned rank process (fork semantics)."""
    # Like run_shm's children: only the parent closes/unlinks the control
    # block; the child's inherited mapping dies with the process.
    world._ctl.close = lambda: None
    runtime = world.runtime(rank)
    try:
        try:
            payload = ("ok", fn(runtime, *args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            payload = ("err", _picklable_exception(exc), traceback.format_exc())
    finally:
        runtime.close()
    try:
        conn.send(payload)
    except Exception as exc:  # result not picklable, broken pipe, ...
        try:
            conn.send(
                ("err", RuntimeError(f"rank {rank} could not ship its result: {exc}"), "")
            )
        except Exception:  # pragma: no cover - parent is gone
            pass
    conn.close()


class ElasticShmWorld:
    """Individually-managed rank processes over one live :class:`ShmWorld`.

    The parent process creates the world (control block, locks, condvar)
    and forks rank processes on demand; ranks that die — cleanly or hard
    — can be respawned under the same rank identity while the rest of the
    world keeps running.  :meth:`close` terminates stragglers and sweeps
    any leaked shared-memory blocks, returning their names so callers
    (the chaos-smoke CI job) can fail on leaks.
    """

    def __init__(self, num_ranks: int, config: Optional[ShmConfig] = None) -> None:
        if num_ranks <= 0:
            raise GaspiInvalidArgumentError(
                f"num_ranks must be positive, got {num_ranks}"
            )
        self.world = ShmWorld(num_ranks, config)
        self.num_ranks = int(num_ranks)
        self._procs: Dict[int, Any] = {}
        self._pipes: Dict[int, Any] = {}
        self._results: Dict[int, RankResult] = {}
        #: Process generation per rank (0 = original, 1+ = replacements).
        self.incarnations: Dict[int, int] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    def spawn(self, rank: int, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
        """Fork one rank process running ``fn(runtime, *args, **kwargs)``.

        The rank must be in range and not currently live; respawning a
        finished or dead rank replaces its recorded result.
        """
        rank = int(rank)
        if self._closed:
            raise RuntimeError("ElasticShmWorld is closed")
        if not (0 <= rank < self.num_ranks):
            raise GaspiInvalidArgumentError(
                f"rank {rank} outside world of size {self.num_ranks}"
            )
        proc = self._procs.get(rank)
        if proc is not None and proc.is_alive():
            raise RuntimeError(f"rank {rank} is still running; wait() for it first")
        incarnation = self.incarnations.get(rank, -1) + 1
        self.incarnations[rank] = incarnation
        ctx = self.world.ctx
        parent_end, child_end = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_elastic_child_main,
            args=(self.world, rank, fn, args, kwargs, child_end),
            name=f"gaspi-elastic-rank-{rank}.{incarnation}",
            daemon=True,
        )
        proc.start()
        child_end.close()  # the parent only reads
        self._procs[rank] = proc
        self._pipes[rank] = parent_end
        self._results[rank] = RankResult(rank=rank, status="running")
        logger.info("spawned rank %d (incarnation %d)", rank, incarnation)

    def spawn_all(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
        """Fork every rank of the world (the initial launch)."""
        for rank in range(self.num_ranks):
            self.spawn(rank, fn, *args, **kwargs)

    # ------------------------------------------------------------------ #
    def wait(
        self, ranks: Optional[Iterable[int]] = None, timeout: float = 120.0
    ) -> Dict[int, RankResult]:
        """Collect the outcomes of ``ranks`` (default: every spawned rank).

        Blocks up to ``timeout`` overall.  A rank whose pipe reports EOF
        without a payload died hard (``status="dead"`` — killed, or
        ``os._exit``); one that misses the deadline stays ``"running"``
        and is *not* terminated (it may legitimately still be working —
        :meth:`close` is the hammer).  Collected processes are joined.
        """
        targets = sorted(self._procs) if ranks is None else sorted(int(r) for r in ranks)
        deadline = time.monotonic() + float(timeout)
        out: Dict[int, RankResult] = {}
        for rank in targets:
            pipe = self._pipes.get(rank)
            current = self._results.get(rank)
            if pipe is None or current is None:
                raise GaspiInvalidArgumentError(f"rank {rank} was never spawned")
            if current.status != "running":
                out[rank] = current
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                ready = pipe.poll(remaining)
            except (EOFError, OSError):
                ready = True
            if not ready:
                out[rank] = current  # still running; leave it alone
                continue
            try:
                payload = pipe.recv()
            except (EOFError, OSError):
                result = RankResult(
                    rank=rank,
                    status="dead",
                    error=RuntimeError(
                        f"rank {rank} exited without reporting a result "
                        "(killed or crashed hard?)"
                    ),
                )
            else:
                if payload[0] == "ok":
                    result = RankResult(rank=rank, status="ok", value=payload[1])
                else:
                    result = RankResult(
                        rank=rank, status="error",
                        error=payload[1], traceback=payload[2],
                    )
            self._results[rank] = result
            out[rank] = result
            proc = self._procs[rank]
            proc.join(5.0)
            if proc.is_alive():  # pragma: no cover - wedged despite result
                proc.terminate()
                proc.join(5.0)
        return out

    def results(self) -> Dict[int, RankResult]:
        """Last known outcome per spawned rank (no blocking)."""
        return dict(self._results)

    def leaked_blocks(self) -> List[str]:
        """Shared-memory blocks of this world still present in /dev/shm."""
        return self.world.leaked_blocks()

    # ------------------------------------------------------------------ #
    def close(self) -> List[str]:
        """Terminate stragglers, sweep leaks, unlink the control block.

        Returns the names of any swept (leaked) segment blocks, so the
        caller can fail on unclean teardown.  Idempotent.
        """
        if self._closed:
            return []
        self._closed = True
        for rank, proc in self._procs.items():
            if proc.is_alive():
                logger.warning("terminating still-running rank %d", rank)
                proc.terminate()
                proc.join(5.0)
        leaked = self.world.sweep()
        self.world.close()
        return leaked

    def __enter__(self) -> "ElasticShmWorld":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = sum(1 for p in self._procs.values() if p.is_alive())
        return (
            f"ElasticShmWorld(size={self.num_ranks}, live={live}, "
            f"uid={self.world.uid!r})"
        )
