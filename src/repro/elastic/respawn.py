"""Fold a recovered or respawned rank back into a live world.

Two recovery shapes share this module:

* **In-place recovery** (threaded backend, injected crashes): the rank's
  process survived, only its :class:`~repro.faults.injection.FaultyRuntime`
  layer is refusing operations.  :func:`recover_crashed` flips it back,
  then :func:`rejoin` re-drives the dead rank's contribution into the
  degraded exchange it crashed out of.
* **Respawn** (shm backend, hard process death): a *new* process takes
  over the dead rank's identity in the live
  :class:`~repro.gaspi.shm.ShmWorld`.  The predecessor's shared-memory
  blocks are still in ``/dev/shm`` under their deterministic names;
  :func:`rejoin` adopts the degraded exchange's block
  (:meth:`~repro.gaspi.shm.ShmRuntime.adopt_segment` re-validates the
  header and drains stale notifications) and :func:`sweep_stale_segments`
  unlinks the rest.

Either way the actual re-convergence is the existing Küttler machinery:
:func:`~repro.faults.recovery.send_late_contribution` pushes the slot-
indexed contribution to the survivors, whose
:meth:`~repro.faults.recovery.DegradedResult.correct` passes fold it in,
and :meth:`~repro.core.api.Communicator.reinstate` clears the suspicion.
:func:`rejoin` wraps the send in a bounded retry loop
(:class:`~repro.utils.backoff.Backoff`) because the replacement races
the survivors' workspace creation — a send landing before a peer created
its workspace is silently dropped, so delivery is confirmed peer by peer
(the survivors' already-counted dedup makes duplicate sends idempotent).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..core.api import Communicator
from ..faults.recovery import send_late_contribution
from ..gaspi.runtime import GaspiRuntime
from ..telemetry.core import CLOCK
from ..utils.backoff import Backoff, BackoffPolicy
from ..utils.logging import get_logger
from ..utils.validation import require

logger = get_logger("elastic.respawn")

#: Budget of one :func:`rejoin` delivery loop (seconds).
DEFAULT_REJOIN_TIMEOUT = 10.0

#: Delivery retries start near-immediate (the usual race is microseconds
#: of workspace setup) and back off to a 50 ms cadence while a slow peer
#: catches up, with jitter so simultaneous rejoiners desynchronize.
_REJOIN_BACKOFF = BackoffPolicy(
    initial=0.002, factor=2.0, max_pause=0.05, jitter=0.5
)


def _runtime_stack(runtime) -> Iterable:
    """The wrapper stack outermost-first (telemetry, faults, groups, base)."""
    seen = set()
    layer = runtime
    while layer is not None and id(layer) not in seen:
        seen.add(id(layer))
        yield layer
        layer = getattr(layer, "inner", None) or getattr(layer, "base", None)


def recover_crashed(comm: Communicator) -> bool:
    """Un-crash this rank's fault layer, if any; True when it recovered.

    Finds the :class:`~repro.faults.injection.FaultyRuntime` in the
    communicator's wrapper stack and calls its ``recover()`` — the
    in-place half of the recovery protocol (the process is still alive,
    only the injected crash makes its runtime refuse operations).
    """
    for layer in _runtime_stack(comm.runtime):
        is_crashed = getattr(layer, "is_crashed", None)
        if is_crashed is None or not hasattr(layer, "recover"):
            continue
        if is_crashed:
            layer.recover()
            logger.info("rank %d: recovered crashed fault layer", comm.rank)
            return True
        return False
    return False


def _shm_runtime(runtime):
    """The :class:`~repro.gaspi.shm.ShmRuntime` under the wrappers, or None."""
    for layer in _runtime_stack(runtime):
        if hasattr(layer, "adopt_segment"):
            return layer
    return None


def sweep_stale_segments(runtime, keep: Iterable[int] = ()) -> List[int]:
    """Unlink this rank's leftover shm blocks from a dead predecessor.

    Skips the ids in ``keep`` and any segment the current incarnation
    already owns (created or adopted).  Returns the unlinked ids; a no-op
    (empty list) on non-shm runtimes.
    """
    shm = _shm_runtime(runtime)
    if shm is None:
        return []
    keep_ids = {int(s) for s in keep} | set(shm._local)
    swept: List[int] = []
    for sid in shm.world.stale_segments(shm.rank):
        if sid in keep_ids:
            continue
        if shm.world.unlink_segment(shm.rank, sid):
            swept.append(sid)
    if swept:
        logger.info(
            "rank %d: swept %d stale segment(s) from dead predecessor: %s",
            shm.rank, len(swept), swept,
        )
    return swept


def _ensure_workspace(runtime: GaspiRuntime, segment_id: int, nbytes: int) -> bool:
    """Make the rejoin exchange segment available; True if adopted.

    Three cases, tried in order: the segment already exists on this rank
    (in-place recovery — the crashed dispatch created it before dying);
    a dead predecessor's block can be adopted (shm respawn); otherwise a
    fresh segment is created (the crash happened before this rank's
    ``segment_create``).
    """
    from ..gaspi.errors import GaspiError

    try:
        runtime.segment_size(segment_id)
        return False  # already ours
    except GaspiError:
        pass
    shm = _shm_runtime(runtime)
    if shm is not None:
        try:
            drained = shm.adopt_segment(segment_id)
            logger.info(
                "rank %d: adopted predecessor's segment %d "
                "(%d stale notification(s) drained)",
                shm.rank, segment_id, len(drained),
            )
            return True
        except GaspiError:
            pass
    runtime.segment_create(segment_id, max(int(nbytes), 8))
    return False


def rejoin(
    comm: Communicator,
    sendbuf: np.ndarray,
    *,
    targets: Optional[Iterable[int]] = None,
    advance: bool = False,
    min_peers: Optional[int] = None,
    timeout: float = DEFAULT_REJOIN_TIMEOUT,
    queue: int = 0,
) -> int:
    """Re-drive this rank's contribution into the degraded exchange.

    The recovered/respawned half of the re-convergence protocol.  By
    default the exchange is the one this communicator last dispatched
    (:attr:`~repro.core.api.Communicator.last_segment_id` — segment ids
    are allocated in SPMD lock-step, so even a rank that crashed
    mid-dispatch observes the survivors' id).  A freshly *restored* rank
    that never dispatched passes ``advance=True`` to allocate the next
    id and bump the sequence number, aligning its counters with the
    survivors that did dispatch.

    Delivery is retried until ``min_peers`` peers (default: all of them)
    accepted the write or ``timeout`` expired — the replacement races the
    survivors' workspace creation, and duplicate sends are idempotent on
    the receiving side.  Returns the number of peers reached.
    """
    sendbuf = np.ascontiguousarray(sendbuf)
    tel = comm.telemetry
    t0 = CLOCK() if tel.enabled else 0.0
    recovered = recover_crashed(comm)
    if advance:
        segment_id = comm._allocate_segment_id()
        comm._collective_seq += 1
        comm._last_segment_id = segment_id
    else:
        segment_id = comm.last_segment_id
        require(
            segment_id is not None,
            "rejoin needs a dispatched collective to rejoin (or advance=True "
            "after a restore)",
        )
    peers = sorted(
        {int(p) for p in (targets if targets is not None else range(comm.size))}
        - {comm.rank}
    )
    needed = len(peers) if min_peers is None else min(int(min_peers), len(peers))
    adopted = _ensure_workspace(
        comm.runtime, segment_id, comm.size * sendbuf.nbytes
    )
    pending = set(peers)
    reached = 0
    backoff = Backoff(
        _REJOIN_BACKOFF, timeout=float(timeout), seed=comm.rank
    )
    while pending:
        got = send_late_contribution(
            comm.runtime, sendbuf, segment_id, targets=sorted(pending), queue=queue
        )
        pending -= set(got)
        reached = len(peers) - len(pending)
        if reached >= needed or not pending:
            break
        if not backoff.sleep():
            break
    require(
        reached >= needed,
        f"rejoin reached only {reached}/{needed} peer(s) within {timeout}s "
        f"(still unreachable: {sorted(pending)})",
    )
    logger.info(
        "rank %d: rejoined exchange %d (%d/%d peer(s), %s)",
        comm.rank, segment_id, reached, len(peers),
        "adopted predecessor workspace" if adopted
        else ("recovered in place" if recovered else "fresh workspace"),
    )
    if tel.enabled:
        t1 = CLOCK()
        tel.counter("elastic.respawns").add()
        tel.histogram("elastic.respawn_s").observe(t1 - t0)
        tel.record_span(
            "respawn", "elastic", t0, t1,
            {"segment_id": segment_id, "peers": reached,
             "recovered_in_place": recovered, "advance": advance},
        )
    return reached
