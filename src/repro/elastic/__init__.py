"""Elastic communicators: checkpoint, shrink, and respawn into a live world.

The step from batch job to operable service, built on three primitives:

* :func:`checkpoint` / :func:`restore` — serialize per-rank communicator
  state at a collective boundary (``repro-ckpt/v1`` JSON snapshots) and
  rebuild it in a fresh world with bit-identical replay;
* :meth:`Communicator.shrink() <repro.core.api.Communicator.shrink>` —
  renumber the survivors of a crash into a fresh full-strength
  communicator (agreement round, quiesce, disjoint segment range);
* :func:`rejoin` + :class:`ElasticShmWorld` — spawn a replacement rank
  into a live shm world, adopt the dead predecessor's shared-memory
  blocks, and fold the late contribution back in Küttler-style.

``python -m repro.elastic`` demonstrates all three end to end (the
chaos-smoke CI job runs it on both backends).
"""

from .checkpoint import (
    CKPT_SCHEMA,
    MANIFEST_NAME,
    CommSnapshot,
    PlanEntry,
    checkpoint,
    restore,
)
from .respawn import (
    DEFAULT_REJOIN_TIMEOUT,
    recover_crashed,
    rejoin,
    sweep_stale_segments,
)
from .world import ElasticShmWorld, RankResult

__all__ = [
    "CKPT_SCHEMA",
    "MANIFEST_NAME",
    "CommSnapshot",
    "PlanEntry",
    "checkpoint",
    "restore",
    "DEFAULT_REJOIN_TIMEOUT",
    "recover_crashed",
    "rejoin",
    "sweep_stale_segments",
    "ElasticShmWorld",
    "RankResult",
]
