"""Crash → checkpoint → shrink → respawn demo (``python -m repro.elastic``).

Three end-to-end flows, each verifying exactness rather than printing
pretty numbers:

* ``checkpoint`` — run planned allreduces, checkpoint at a collective
  boundary, restore into a *fresh* world and replay the epilogue;
  the restored run must be bit-identical to the uninterrupted one and
  must serve every replayed call from the restored plan cache
  (``misses == 0``).
* ``shrink`` — lose the last rank mid-stream (``crash_then_shrink``),
  have the survivors ``shrink()`` to a full-strength smaller world, and
  compare the shrunk world's strict collectives bit-for-bit against a
  native run of that smaller size.
* ``respawn`` — lose the last rank mid-collective
  (``crash_then_respawn``), fold a recovered (threaded) or freshly
  respawned (shm, via :class:`~repro.elastic.world.ElasticShmWorld`)
  incarnation back in, and verify exact re-convergence of integer sums
  on every rank.

The shm flows additionally fail on any leaked ``/dev/shm`` block — this
is what the chaos-smoke CI job runs.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
import warnings
from typing import Dict, List, Optional

import numpy as np

from ..core.api import Communicator
from ..core.policy import ConsistencyPolicy
from ..faults.injection import RankCrashedError
from ..faults.scenarios import get_scenario
from ..gaspi.launch import BACKENDS, run_backend
from .checkpoint import CommSnapshot, restore
from .respawn import rejoin, sweep_stale_segments
from .world import ElasticShmWorld

#: Algorithms exercised by the checkpoint round-trip (monolithic ring and
#: the paper's segmented pipelined ring).
CHECKPOINT_ALGORITHMS = ("ring", "ring_pipelined")

#: Process-threshold policy of the degraded phases: complete at half.
DEGRADED = ConsistencyPolicy.process_threshold(0.5, on_failure="complete")

#: Detection window of the crash flows; generous enough for loaded CI.
DETECT_TIMEOUT = 1.5

#: Budget of the survivors' correction loop and the replacement's rejoin.
CONVERGE_TIMEOUT = 30.0


def _payload(rank: int, step: int, elements: int) -> np.ndarray:
    """Deterministic per-(rank, step) float payload (replayable anywhere)."""
    return np.arange(elements, dtype=np.float64) * 0.001 + rank * 1.7 + step * 0.31


def _int_payload(rank: int, elements: int) -> np.ndarray:
    """Integer payload for exact re-convergence checks."""
    return np.arange(elements, dtype=np.int64) + rank * 1000


def _shm_leaks(caught) -> List[str]:
    """ResourceWarnings from run_shm's leak sweep, as messages."""
    return [
        str(w.message)
        for w in caught
        if issubclass(w.category, ResourceWarning) and "leaked" in str(w.message)
    ]


# --------------------------------------------------------------------------- #
# checkpoint round-trip
# --------------------------------------------------------------------------- #
def _checkpoint_phase_a(runtime, algorithm, steps_before, steps_after, elements, ckpt_dir):
    comm = Communicator(runtime)
    try:
        for step in range(steps_before):
            comm.allreduce(_payload(comm.rank, step, elements), algorithm=algorithm)
        comm.checkpoint().save(ckpt_dir)
        out = [
            comm.allreduce(
                _payload(comm.rank, steps_before + j, elements), algorithm=algorithm
            ).tobytes()
            for j in range(steps_after)
        ]
        return b"".join(out)
    finally:
        comm.close()


def _checkpoint_phase_b(runtime, algorithm, steps_before, steps_after, elements, ckpt_dir):
    snapshot = CommSnapshot.load(ckpt_dir, runtime.rank)
    comm = restore(runtime, snapshot)
    try:
        out = [
            comm.allreduce(
                _payload(comm.rank, steps_before + j, elements), algorithm=algorithm
            ).tobytes()
            for j in range(steps_after)
        ]
        stats = comm.plan_cache_stats()
        return b"".join(out), stats.misses, stats.hits
    finally:
        comm.close()


def run_checkpoint_demo(
    backend: str,
    ranks: int,
    elements: int = 2048,
    steps_before: int = 3,
    steps_after: int = 3,
) -> Dict[str, object]:
    """Checkpoint → restore-into-fresh-world → bit-identical replay."""
    failures: List[str] = []
    for algorithm in CHECKPOINT_ALGORITHMS:
        with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as ckpt_dir:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always", ResourceWarning)
                reference = run_backend(
                    ranks, _checkpoint_phase_a, algorithm, steps_before,
                    steps_after, elements, ckpt_dir, backend=backend,
                )
                replayed = run_backend(
                    ranks, _checkpoint_phase_b, algorithm, steps_before,
                    steps_after, elements, ckpt_dir, backend=backend,
                )
            leaks = _shm_leaks(caught)
            if leaks:
                failures.append(f"{algorithm}: shm leak(s): {leaks}")
            for rank in range(ranks):
                replay_bytes, misses, hits = replayed[rank]
                if replay_bytes != reference[rank]:
                    failures.append(
                        f"{algorithm}: rank {rank} replay diverged from the "
                        f"uninterrupted run"
                    )
                if misses != 0:
                    failures.append(
                        f"{algorithm}: rank {rank} recompiled plans on replay "
                        f"({misses} miss(es), {hits} hit(s)) — restore did not "
                        f"repopulate the cache"
                    )
    return {
        "mode": "checkpoint",
        "backend": backend,
        "ranks": ranks,
        "ok": not failures,
        "failures": failures,
        "detail": f"{len(CHECKPOINT_ALGORITHMS)} algorithm(s), "
                  f"{steps_before}+{steps_after} steps",
    }


# --------------------------------------------------------------------------- #
# shrink
# --------------------------------------------------------------------------- #
def _shrink_worker(runtime, victim, elements, steps, faults):
    comm = Communicator(runtime, faults=faults, detect_timeout=DETECT_TIMEOUT)
    if comm.rank == victim:
        try:
            comm.allreduce(_payload(comm.rank, 0, elements), policy=DEGRADED)
        except RankCrashedError:
            pass
        comm.close()
        return None
    try:
        comm.allreduce(_payload(comm.rank, 0, elements), policy=DEGRADED)
        shrunk = comm.shrink()
        try:
            out = [
                shrunk.allreduce(
                    _payload(shrunk.rank, 1 + step, elements), algorithm="ring"
                ).tobytes()
                for step in range(steps)
            ]
            return b"".join(out)
        finally:
            shrunk.close()
    finally:
        comm.close()


def _shrink_native_worker(runtime, elements, steps):
    comm = Communicator(runtime)
    try:
        out = [
            comm.allreduce(
                _payload(comm.rank, 1 + step, elements), algorithm="ring"
            ).tobytes()
            for step in range(steps)
        ]
        return b"".join(out)
    finally:
        comm.close()


def run_shrink_demo(
    backend: str, ranks: int, elements: int = 2048, steps: int = 3
) -> Dict[str, object]:
    """Crash → survivors shrink() → bit-identical to a native smaller run."""
    victim = ranks - 1
    faults = get_scenario("crash_then_shrink").plan(ranks)
    failures: List[str] = []
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", ResourceWarning)
        shrunk = run_backend(
            ranks, _shrink_worker, victim, elements, steps, faults, backend=backend
        )
        native = run_backend(
            ranks - 1, _shrink_native_worker, elements, steps, backend=backend
        )
    leaks = _shm_leaks(caught)
    if leaks:
        failures.append(f"shm leak(s): {leaks}")
    if shrunk[victim] is not None:
        failures.append(f"victim rank {victim} unexpectedly produced a result")
    for rank in range(ranks - 1):
        if shrunk[rank] != native[rank]:
            failures.append(
                f"rank {rank}: shrunk-world results diverged from the native "
                f"{ranks - 1}-rank run"
            )
    return {
        "mode": "shrink",
        "backend": backend,
        "ranks": ranks,
        "ok": not failures,
        "failures": failures,
        "detail": f"{ranks} -> {ranks - 1} ranks, {steps} post-shrink steps",
    }


# --------------------------------------------------------------------------- #
# respawn
# --------------------------------------------------------------------------- #
def _respawn_converge(comm, victim):
    """Survivor side: correct until complete, then reinstate the victim."""
    detail = comm.last_result.detail
    deadline = time.monotonic() + CONVERGE_TIMEOUT
    while detail is not None and not detail.complete:
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"rank {comm.rank}: correction did not converge within "
                f"{CONVERGE_TIMEOUT}s (missing: {list(detail.missing_ranks)})"
            )
        detail.correct(timeout=0.5)
    comm.reinstate(victim)


def _respawn_threaded_worker(runtime, victim, rejoin_peers, elements, faults):
    comm = Communicator(runtime, faults=faults, detect_timeout=DETECT_TIMEOUT)
    try:
        data = _int_payload(comm.rank, elements)
        if comm.rank == victim:
            try:
                comm.allreduce(data, policy=DEGRADED)
            except RankCrashedError:
                rejoin(
                    comm, data, min_peers=rejoin_peers, timeout=CONVERGE_TIMEOUT
                )
        else:
            comm.allreduce(data, policy=DEGRADED)
            _respawn_converge(comm, victim)
        comm.barrier()
        total = comm.allreduce(data, policy=DEGRADED)
        return total.tobytes()
    finally:
        comm.close()


def _respawn_shm_survivor(runtime, victim, elements, ckpt_dir, faults):
    comm = Communicator(runtime, faults=faults, detect_timeout=DETECT_TIMEOUT)
    try:
        comm.checkpoint().save(ckpt_dir)
        data = _int_payload(comm.rank, elements)
        if comm.rank == victim:
            try:
                comm.allreduce(data, policy=DEGRADED)
            except RankCrashedError:
                # Hard death: no cleanup, no result — the leftover shm
                # blocks are exactly what the replacement adopts.
                os._exit(17)
        comm.allreduce(data, policy=DEGRADED)
        _respawn_converge(comm, victim)
        comm.barrier()
        total = comm.allreduce(data, policy=DEGRADED)
        return total.tobytes()
    finally:
        comm.close()


def _respawn_shm_replacement(runtime, rejoin_peers, elements, ckpt_dir):
    snapshot = CommSnapshot.load(ckpt_dir, runtime.rank)
    comm = restore(runtime, snapshot, barrier=False)
    try:
        data = _int_payload(comm.rank, elements)
        rejoin(
            comm, data, advance=True, min_peers=rejoin_peers,
            timeout=CONVERGE_TIMEOUT,
        )
        sweep_stale_segments(comm.runtime, keep=[comm.last_segment_id])
        comm.barrier()
        total = comm.allreduce(data, policy=DEGRADED)
        return total.tobytes()
    finally:
        comm.close()


def run_respawn_demo(
    backend: str, ranks: int, elements: int = 2048
) -> Dict[str, object]:
    """Crash mid-collective → recover/respawn → exact re-convergence."""
    victim = ranks - 1
    faults = get_scenario("crash_then_respawn").plan(ranks)
    crash_op = max(1, (ranks - 1) // 2)
    # Survivors the victim reached before dying hold its contribution and
    # release their workspaces immediately; only the rest must (and can)
    # accept the re-driven contribution.
    rejoin_peers = (ranks - 1) - crash_op
    expected = np.arange(elements, dtype=np.int64) * ranks + 1000 * sum(range(ranks))
    expected_bytes = expected.tobytes()
    failures: List[str] = []

    if backend == "threaded":
        results = run_backend(
            ranks, _respawn_threaded_worker, victim, rejoin_peers, elements,
            faults, backend="threaded",
        )
        for rank, blob in enumerate(results):
            if blob != expected_bytes:
                failures.append(f"rank {rank} did not re-converge exactly")
        detail = f"in-place recovery, {ranks} ranks"
    else:
        with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as ckpt_dir:
            with ElasticShmWorld(ranks) as world:
                world.spawn_all(
                    _respawn_shm_survivor, victim, elements, ckpt_dir, faults
                )
                dead = world.wait([victim], timeout=CONVERGE_TIMEOUT)
                if dead[victim].status != "dead":
                    failures.append(
                        f"victim rank {victim} did not die hard "
                        f"(status {dead[victim].status!r})"
                    )
                else:
                    world.spawn(
                        victim, _respawn_shm_replacement, rejoin_peers,
                        elements, ckpt_dir,
                    )
                results = world.wait(timeout=2 * CONVERGE_TIMEOUT)
                for rank, res in sorted(results.items()):
                    if not res.ok:
                        failures.append(
                            f"rank {rank} finished {res.status}: {res.error}"
                        )
                    elif res.value != expected_bytes:
                        failures.append(f"rank {rank} did not re-converge exactly")
                leaked = world.leaked_blocks()
                if leaked:
                    failures.append(f"/dev/shm leak(s) before teardown: {leaked}")
                swept = world.close()
                if swept:
                    failures.append(f"teardown swept leaked block(s): {swept}")
        detail = f"process respawn via ElasticShmWorld, {ranks} ranks"

    return {
        "mode": "respawn",
        "backend": backend,
        "ranks": ranks,
        "ok": not failures,
        "failures": failures,
        "detail": detail,
    }


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.elastic",
        description="crash -> checkpoint -> shrink -> respawn demo",
    )
    parser.add_argument(
        "--backend", choices=list(BACKENDS) + ["both"], default="both",
        help="rank-world substrate(s) to exercise",
    )
    parser.add_argument(
        "--mode", choices=["checkpoint", "shrink", "respawn", "all"],
        default="all", help="which flow(s) to run",
    )
    parser.add_argument("--ranks", type=int, default=8, help="world size")
    parser.add_argument(
        "--elements", type=int, default=2048, help="payload elements per rank"
    )
    args = parser.parse_args(argv)

    backends = list(BACKENDS) if args.backend == "both" else [args.backend]
    modes = (
        ["checkpoint", "shrink", "respawn"] if args.mode == "all" else [args.mode]
    )
    runners = {
        "checkpoint": run_checkpoint_demo,
        "shrink": run_shrink_demo,
        "respawn": run_respawn_demo,
    }
    reports = []
    for backend in backends:
        for mode in modes:
            t0 = time.perf_counter()
            report = runners[mode](backend, args.ranks, elements=args.elements)
            report["seconds"] = time.perf_counter() - t0
            reports.append(report)
            status = "ok" if report["ok"] else "FAILED"
            print(
                f"[{status:>6}] {mode:<10} backend={backend:<8} "
                f"ranks={report['ranks']} ({report['seconds']:.1f}s) "
                f"- {report['detail']}"
            )
            for failure in report["failures"]:
                print(f"         ! {failure}")
    failed = [r for r in reports if not r["ok"]]
    print(
        f"\n{len(reports) - len(failed)}/{len(reports)} flow(s) passed"
        + (f"; {len(failed)} FAILED" if failed else "")
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
